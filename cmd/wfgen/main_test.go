package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"wfreach"
)

func buildGen(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and drives the wfgen binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "wfgen")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestWfgenAllBuiltinSpecs(t *testing.T) {
	bin := buildGen(t)
	for _, name := range []string{"running", "bioaid", "bioaid-nonrec", "fig6", "fig12", "synthetic"} {
		out, err := exec.Command(bin, "-spec", name).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, out)
		}
		if !strings.Contains(string(out), "class") {
			t.Fatalf("%s: summary missing:\n%s", name, out)
		}
	}
}

func TestWfgenWritesXMLRoundTrip(t *testing.T) {
	bin := buildGen(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")
	out, err := exec.Command(bin, "-spec", "bioaid", "-out", specPath,
		"-run", runPath, "-size", "256", "-seed", "9").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s, err := wfreach.LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	g := wfreach.MustCompile(s)
	r, err := wfreach.LoadRun(runPath, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() < 128 {
		t.Fatalf("run too small: %d", r.Size())
	}
	// The generated run labels correctly end to end.
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	src, snk := r.Graph.Sources()[0], r.Graph.Sinks()[0]
	if !d.Reach(src, snk) {
		t.Fatal("source must reach sink")
	}
}

func TestWfgenSyntheticParams(t *testing.T) {
	bin := buildGen(t)
	out, err := exec.Command(bin, "-spec", "synthetic", "-subsize", "12", "-depth", "6", "-rec", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "nonlinear") {
		t.Fatalf("rec=2 should be nonlinear:\n%s", out)
	}
}

func TestWfgenUnknownSpec(t *testing.T) {
	bin := buildGen(t)
	if out, err := exec.Command(bin, "-spec", "nope").CombinedOutput(); err == nil {
		t.Fatalf("unknown spec accepted:\n%s", out)
	}
}
