// Command wfgen builds workflow specifications and random runs and
// stores them as XML (the paper's data format, Section 7.1).
//
// Usage:
//
//	wfgen -spec bioaid -out spec.xml
//	wfgen -spec synthetic -subsize 20 -depth 5 -rec 1 -out spec.xml
//	wfgen -spec running -run run.xml -size 4096 -seed 7 -out spec.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"wfreach"
)

func main() {
	specName := flag.String("spec", "running", "specification: running | bioaid | bioaid-nonrec | fig6 | fig12 | synthetic")
	out := flag.String("out", "", "write the specification XML here")
	runOut := flag.String("run", "", "also generate a run and write its XML here")
	size := flag.Int("size", 1024, "target run size for -run")
	seed := flag.Int64("seed", 1, "random seed for -run and synthetic topology")
	subsize := flag.Int("subsize", 20, "synthetic: sub-workflow size")
	depth := flag.Int("depth", 5, "synthetic: nesting depth")
	rec := flag.Int("rec", 1, "synthetic: R modules in the recursive body (1 = linear)")
	flag.Parse()

	var s *wfreach.Spec
	switch *specName {
	case "running":
		s = wfreach.RunningExample()
	case "bioaid":
		s = wfreach.BioAID()
	case "bioaid-nonrec":
		s = wfreach.BioAIDNonRecursive()
	case "fig6":
		s = wfreach.LowerBoundGrammar()
	case "fig12":
		s = wfreach.PathGrammar()
	case "synthetic":
		s = wfreach.Synthetic(wfreach.SyntheticParams{
			SubSize: *subsize, Depth: *depth, RecModules: *rec, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "wfgen: unknown spec %q\n", *specName)
		os.Exit(2)
	}

	g, err := wfreach.Compile(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("spec %s: %d graphs, %d vertices total, class %s, min run %d\n",
		*specName, len(s.Graphs()), g.TotalVertices(), g.Class(), g.MinRunSize())

	if *out != "" {
		if err := wfreach.SaveSpec(*out, s); err != nil {
			fmt.Fprintf(os.Stderr, "wfgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *runOut != "" {
		r, err := wfreach.Generate(g, wfreach.GenOptions{TargetSize: *size, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfgen: %v\n", err)
			os.Exit(1)
		}
		if err := wfreach.SaveRun(*runOut, r); err != nil {
			fmt.Fprintf(os.Stderr, "wfgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d vertices, %d steps)\n", *runOut, r.Size(), len(r.Steps))
	}
}
