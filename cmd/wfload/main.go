// Command wfload drives a running wfserve through the Go client SDK
// (wfreach/client): it generates workflow runs, streams their
// execution events to the server at configurable concurrency and
// batch size, interleaves reachability (and optionally lineage)
// queries, and reports ingest/query throughput and latency
// percentiles.
//
// Usage:
//
//	wfload -matrix profiles/quick.json -report out.json
//	wfload -addr http://127.0.0.1:8080 -spec BioAID -size 10000 -sessions 4 -batch 128 -readers 4
//	wfload -addr http://127.0.0.1:8080 -spec BioAID -size 2000 -verify -reach-batch 16
//	wfload -addr http://127.0.0.1:8080 -spec BioAID -size 2000 -resume
//	wfload -addr http://127.0.0.1:8080 -legacy -verify -cleanup
//	wfload -addr http://127.0.0.1:8080 -replica http://127.0.0.1:8081 -verify
//	wfload -cluster cluster.json -sessions 12 -verify -move load-3=b
//
// -matrix switches wfload into scenario-matrix mode: the JSON file
// declares workloads (built-in grammars or the LLM-agent adversarial
// generator), topologies (single, replica, cluster3 — all launched
// in-process), transports, session counts and read/write mixes; the
// harness expands the cross product, drives every scenario through
// the client SDK, and gates each on its SLO assertions (p99 latency
// ceilings, a throughput floor, a replica-lag ceiling, zero verify
// mismatches). Any violated gate — or a declared soak that fails —
// exits non-zero. -report writes the machine-readable per-scenario
// report. All other workload flags are ignored in matrix mode; see
// profiles/ for ready-made matrices and docs/BENCHMARKS.md for the
// schema.
//
// -cluster drives a session-partitioned cluster instead of a single
// server: the same JSON map file the wfserve nodes load tells the
// client.Cluster router where every session lives, sessions spread
// across the nodes by consistent hashing on their names, and the
// report breaks ingest throughput down per node alongside the
// aggregate. -move "session=node" exercises a live move: once a
// quarter of the total stream is acknowledged, the named session is
// moved to the target node while its writer keeps ingesting — the
// router chases the handoff, and with -verify every answer is still
// checked against ground truth. Cluster mode uses the /v1 surface
// (-legacy is rejected) and routes reads through the map too
// (-replica is rejected; list followers in the map instead).
//
// -replica splits the workload across a primary/follower pair: writes
// stream to -addr while every read goes to the follower at -replica —
// the scale-out shape replication exists for. The run samples replica
// lag (the primary's committed WAL sequence minus the follower's
// applied sequence, per session) throughout, waits for the follower
// to catch up after ingest finishes, and reports lag percentiles plus
// the catch-up time; -verify checks the follower's answers against
// BFS ground truth. Replica reads tolerate vertex_not_labeled — a
// lagging follower legitimately trails the primary's acknowledged
// prefix.
//
// By default ingest uses the /v1 binary frame stream and queries the
// /v1 batch-reach endpoint; -reach-batch N amortizes one roundtrip
// over N reachability pairs per query call. -legacy switches the
// whole run onto the deprecated unversioned JSON surface (JSON event
// batches, one GET reach per pair) — useful to regression-test the
// adapter routes and to measure what /v1 buys. -cleanup deletes the
// created sessions at the end.
//
// Each session gets its own generated run (distinct seeds) and its
// own writer goroutine streaming event batches; -readers query
// goroutines per session issue reach queries over the
// already-acknowledged prefix while ingestion is in flight — with
// -lineage-every N, every Nth query call is a full (paginated)
// lineage scan instead. -shards asks the server for a specific store
// shard count per created session. With -verify every query answer is
// checked against BFS ground truth on the generated run.
//
// -json writes a machine-readable result report (throughput plus
// latency percentiles) to the given path, so performance runs can be
// tracked over time (see BENCH_service.json); -cpuprofile and
// -memprofile capture pprof profiles of the load generator itself.
//
// -resume is the crash/restart verification mode for a durable server
// (wfserve -data). Run a normal wfload, kill the server mid-ingest,
// restart it on the same data directory, then run wfload again with
// the same flags plus -resume: instead of creating sessions it
// regenerates the identical ground-truth runs (same seeds), reads how
// many vertices each recovered session holds, and checks -queries
// random reachability answers per session against BFS ground truth
// over that recovered prefix. Any mismatch means recovery diverged
// from the uninterrupted run and exits nonzero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfreach"
	"wfreach/client"
	"wfreach/internal/loadmatrix"
)

type config struct {
	addr         string
	replica      string
	clusterFile  string
	move         string
	spec         string
	size         int
	seed         int64
	sessions     int
	batch        int
	readers      int
	verify       bool
	prefix       string
	resume       bool
	queries      int
	shards       int
	lineageEvery int
	reachBatch   int
	legacy       bool
	cleanup      bool
	jsonPath     string
	cpuProfile   string
	memProfile   string
	matrix       string
	reportPath   string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "wfserve base URL (the primary: writes go here)")
	flag.StringVar(&cfg.replica, "replica", "", "follower base URL: send reads there, sample replica lag, wait for catch-up")
	flag.StringVar(&cfg.clusterFile, "cluster", "", "drive the session-partitioned cluster defined by this map file instead of -addr")
	flag.StringVar(&cfg.move, "move", "", "with -cluster: live-move \"session=node\" once a quarter of the stream is acknowledged")
	flag.StringVar(&cfg.spec, "spec", "BioAID", "built-in specification to load")
	flag.IntVar(&cfg.size, "size", 10000, "target vertices per generated run")
	flag.Int64Var(&cfg.seed, "seed", 1, "base generation seed (session i uses seed+i)")
	flag.IntVar(&cfg.sessions, "sessions", 2, "concurrent sessions (one writer each)")
	flag.IntVar(&cfg.batch, "batch", 128, "events per ingest batch")
	flag.IntVar(&cfg.readers, "readers", 2, "query goroutines per session")
	flag.BoolVar(&cfg.verify, "verify", false, "check query answers against BFS ground truth")
	flag.StringVar(&cfg.prefix, "prefix", "load", "session name prefix")
	flag.BoolVar(&cfg.resume, "resume", false, "verify sessions recovered by a restarted durable server instead of ingesting")
	flag.IntVar(&cfg.queries, "queries", 2000, "reach queries per session in -resume mode")
	flag.IntVar(&cfg.shards, "shards", 0, "store shard count per created session (0 = server default)")
	flag.IntVar(&cfg.lineageEvery, "lineage-every", 0, "issue a lineage query every N reader query calls (0 disables)")
	flag.IntVar(&cfg.reachBatch, "reach-batch", 1, "reachability pairs per batch-reach call")
	flag.BoolVar(&cfg.legacy, "legacy", false, "drive the deprecated unversioned JSON surface instead of /v1 binary+batch")
	flag.BoolVar(&cfg.cleanup, "cleanup", false, "delete the created sessions when the run finishes")
	flag.StringVar(&cfg.jsonPath, "json", "", "write a machine-readable result report to this path")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the load generator to this path")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile of the load generator to this path")
	flag.StringVar(&cfg.matrix, "matrix", "", "run the scenario-matrix harness on this spec file (in-process topologies, SLO gates)")
	flag.StringVar(&cfg.reportPath, "report", "", "with -matrix: write the machine-readable report to this path")
	flag.Parse()

	if cfg.matrix != "" {
		if err := runMatrix(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "wfload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wfload: %v\n", err)
		os.Exit(1)
	}
}

// runMatrix is -matrix mode: expand the matrix, drive every scenario
// against its in-process topology, gate on the SLOs, and exit
// non-zero on any violation.
func runMatrix(cfg config, out io.Writer) error {
	m, err := loadmatrix.ParseFile(cfg.matrix)
	if err != nil {
		return err
	}
	rep, err := loadmatrix.Run(context.Background(), m, loadmatrix.RunOptions{Out: out})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "matrix %s: %d/%d scenarios passed in %.1fs\n",
		rep.Name, rep.Passed, rep.Passed+rep.Failed, rep.ElapsedSec)
	if rep.Soak != nil {
		s := rep.Soak
		verdict := "passed"
		if !s.Pass {
			verdict = "FAILED"
		}
		fmt.Fprintf(out, "soak %s: %d live sessions over %.0fs, %d events (%.0f events/sec), %d queries — %s\n",
			s.Workload, s.LiveSessions, s.DurationSec, s.IngestEvents, s.EventsPerSec, s.Queries, verdict)
	}
	if cfg.reportPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.reportPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write -report: %w", err)
		}
		fmt.Fprintf(out, "report written to %s\n", cfg.reportPath)
	}
	if !rep.Pass {
		if rep.Failed > 0 {
			return fmt.Errorf("%d scenario(s) violated their SLOs", rep.Failed)
		}
		return fmt.Errorf("the soak violated its SLOs")
	}
	return nil
}

// latencies collects durations for percentile reporting.
type latencies struct {
	mu sync.Mutex
	ds []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *latencies) percentile(p float64) time.Duration {
	if len(l.ds) == 0 {
		return 0
	}
	i := int(p * float64(len(l.ds)-1))
	return l.ds[i]
}

func (l *latencies) sorted() *latencies {
	sort.Slice(l.ds, func(i, j int) bool { return l.ds[i] < l.ds[j] })
	return l
}

// reportPercentiles is the JSON form of a latency distribution.
type reportPercentiles struct {
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
}

func toPercentiles(l *latencies) reportPercentiles {
	return reportPercentiles{
		P50NS: l.percentile(0.50).Nanoseconds(),
		P90NS: l.percentile(0.90).Nanoseconds(),
		P99NS: l.percentile(0.99).Nanoseconds(),
	}
}

// reportLag is the -replica lag section of the report: sampled
// replica lag in events (primary committed sequence minus follower
// applied sequence, max across sessions per sample) and how long the
// follower took to fully catch up once ingest stopped.
type reportLag struct {
	Samples    int     `json:"samples"`
	P50Events  int64   `json:"p50_events"`
	P90Events  int64   `json:"p90_events"`
	MaxEvents  int64   `json:"max_events"`
	CatchupSec float64 `json:"catchup_sec"`
}

// reportNode is one cluster node's slice of the ingest throughput.
type reportNode struct {
	IngestEvents int64   `json:"ingest_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// reportMove records the -move live session transfer.
type reportMove struct {
	Session string  `json:"session"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Events  int64   `json:"events"`
	Sec     float64 `json:"sec"`
}

// reportRestore is the -resume result: how much recovered state the
// restarted server is holding and how the verification pass went.
// ArenaLabels counts labels served zero-copy from a mapped v2
// snapshot; LabelsPerSec is recovered labels over the verification
// wall-time (the server's own restore wall-time is on its stdout).
type reportRestore struct {
	Sessions     int     `json:"sessions"`
	Labels       int64   `json:"labels"`
	ArenaLabels  int64   `json:"arena_labels"`
	VerifySec    float64 `json:"verify_sec"`
	LabelsPerSec float64 `json:"labels_per_sec"`
	Queries      int64   `json:"queries"`
	Mismatches   int64   `json:"mismatches"`
}

// report is the -json result document: the workload configuration and
// the measured throughput and latency numbers, in stable units.
type report struct {
	Spec             string                `json:"spec"`
	Mode             string                `json:"mode"` // "v1-binary" or "legacy-json"
	Replica          string                `json:"replica,omitempty"`
	ReplicaLag       *reportLag            `json:"replica_lag,omitempty"`
	Cluster          string                `json:"cluster,omitempty"` // the -cluster map file
	Nodes            int                   `json:"nodes,omitempty"`
	PerNode          map[string]reportNode `json:"per_node,omitempty"`
	Move             *reportMove           `json:"move,omitempty"`
	Sessions         int                   `json:"sessions"`
	SizePerSession   int                   `json:"size_per_session"`
	Batch            int                   `json:"batch"`
	Readers          int                   `json:"readers"`
	ReachBatch       int                   `json:"reach_batch,omitempty"`
	Shards           int                   `json:"shards,omitempty"`
	LineageEvery     int                   `json:"lineage_every,omitempty"`
	Seed             int64                 `json:"seed"`
	ElapsedSec       float64               `json:"elapsed_sec"`
	IngestEvents     int64                 `json:"ingest_events"`
	EventsPerSec     float64               `json:"events_per_sec"`
	IngestLatency    reportPercentiles     `json:"ingest_batch_latency"`
	Queries          int64                 `json:"queries"`
	LineageQueries   int64                 `json:"lineage_queries"`
	QueryErrors      int64                 `json:"query_errors"`
	QueriesPerSec    float64               `json:"queries_per_sec"`
	QueryLatency     reportPercentiles     `json:"query_latency"`
	VerifyChecked    bool                  `json:"verify_checked"`
	VerifyMismatches int64                 `json:"verify_mismatches"`
	Restore          *reportRestore        `json:"restore,omitempty"`
}

func writeReport(path string, rep report) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func (cfg config) mode() string {
	if cfg.legacy {
		return "legacy-json"
	}
	return "v1-binary"
}

// newClient builds the SDK client for the configured mode.
func newClient(cfg config) *client.Client {
	opts := []client.Option{client.WithRetry(0, 0)} // measure the server, not the retry loop
	if cfg.legacy {
		opts = append(opts, client.WithUnversionedPaths())
	}
	return client.New(cfg.addr, opts...)
}

// driver is the slice of the SDK surface the load generator drives,
// satisfied by both the single-server client.Client and the routing
// client.Cluster — the workload code does not care which.
type driver interface {
	CreateSession(ctx context.Context, req client.CreateSessionRequest) (client.SessionStats, error)
	Session(ctx context.Context, name string) (client.SessionStats, error)
	DeleteSession(ctx context.Context, name string) error
	Ingest(ctx context.Context, session string, events []client.Event) (client.EventsResponse, error)
	IngestFrames(ctx context.Context, session string, events []client.Event) (client.EventsResponse, error)
	ReachBatch(ctx context.Context, session string, pairs []client.ReachPair) ([]client.ReachAnswer, error)
	Reach(ctx context.Context, session string, from, to int32) (bool, error)
	Lineage(ctx context.Context, session string, of int32) ([]int32, error)
}

// sessionLoad is one session's generated ground truth: the event
// stream the writer replays and the run that answers BFS oracle
// queries over it.
type sessionLoad struct {
	name   string
	events []wfreach.Event
	run    *wfreach.Run
}

// runResume is the crash/restart verification mode: the sessions are
// expected to exist already (restored by wfserve -data after a kill),
// each holding some acknowledged prefix of the regenerated stream.
// Recovery is correct iff every reachability answer over that prefix
// matches BFS ground truth on the regenerated run.
func runResume(ctx context.Context, cfg config, c driver, loads []sessionLoad, out io.Writer) error {
	fmt.Fprintf(out, "wfload: resume verification of %d session(s) against regenerated ground truth\n", len(loads))
	start := time.Now()
	var bad, checked, labels, arenaLabels int64
	for i, l := range loads {
		st, err := c.Session(ctx, l.name)
		if err != nil {
			return fmt.Errorf("session %s not recovered: %w", l.name, err)
		}
		n := int(st.Vertices)
		if n > len(l.events) {
			return fmt.Errorf("session %s: %d vertices recovered but only %d events were generated (seed mismatch?)",
				l.name, n, len(l.events))
		}
		labels += st.Vertices
		arenaLabels += st.ArenaVertices
		rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
		var mismatches, qs int64
		for q := 0; q < cfg.queries && n >= 1; q++ {
			v := l.events[rng.Int63n(int64(n))].V
			w := l.events[rng.Int63n(int64(n))].V
			reachable, err := c.Reach(ctx, l.name, int32(v), int32(w))
			if err != nil {
				return fmt.Errorf("session %s: reach(%d,%d): %w", l.name, v, w, err)
			}
			qs++
			if reachable != l.run.Reaches(v, w) {
				mismatches++
				fmt.Fprintf(out, "  MISMATCH %s: reach(%d,%d)=%v, oracle says %v\n",
					l.name, v, w, reachable, l.run.Reaches(v, w))
			}
		}
		fmt.Fprintf(out, "  %s: %d/%d vertices recovered (%d arena-mapped, durable=%v), %d queries, %d mismatches\n",
			l.name, n, len(l.events), st.ArenaVertices, st.Durable, qs, mismatches)
		bad += mismatches
		checked += qs
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "wfload: %d labels recovered (%d arena-mapped) across %d session(s), verified in %s (%.0f labels/sec)\n",
		labels, arenaLabels, len(loads), elapsed.Round(time.Millisecond),
		float64(labels)/max(elapsed.Seconds(), 1e-9))
	if cfg.jsonPath != "" {
		rep := report{
			Spec: cfg.spec, Mode: cfg.mode(), Sessions: cfg.sessions,
			SizePerSession: cfg.size, Seed: cfg.seed,
			ElapsedSec: elapsed.Seconds(), Queries: checked,
			VerifyChecked: true, VerifyMismatches: bad,
			Restore: &reportRestore{
				Sessions: len(loads), Labels: labels, ArenaLabels: arenaLabels,
				VerifySec:    elapsed.Seconds(),
				LabelsPerSec: float64(labels) / max(elapsed.Seconds(), 1e-9),
				Queries:      checked, Mismatches: bad,
			},
		}
		if err := writeReport(cfg.jsonPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wfload: wrote report to %s\n", cfg.jsonPath)
	}
	if bad > 0 {
		return fmt.Errorf("resume verification failed: %d mismatches", bad)
	}
	fmt.Fprintf(out, "resume verification passed\n")
	return nil
}

// ingestBatch sends one event batch in the configured mode and
// reports how many events were acknowledged.
func ingestBatch(ctx context.Context, cfg config, c driver, name string, events []wfreach.Event) (int, error) {
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	var resp client.EventsResponse
	var err error
	if cfg.legacy {
		resp, err = c.Ingest(ctx, name, wire)
	} else {
		resp, err = c.IngestFrames(ctx, name, wire)
	}
	return resp.Applied, err
}

func run(cfg config, out io.Writer) error {
	spec, ok := wfreach.BuiltinSpec(cfg.spec)
	if !ok {
		return fmt.Errorf("unknown builtin %q", cfg.spec)
	}
	g, err := wfreach.Compile(spec)
	if err != nil {
		return err
	}
	if cfg.reachBatch < 1 {
		cfg.reachBatch = 1
	}
	ctx := context.Background()
	c := newClient(cfg)
	rc := c // reads go to the replica when one is named
	if cfg.replica != "" {
		if cfg.legacy {
			return fmt.Errorf("-replica needs the /v1 surface; drop -legacy")
		}
		if cfg.resume {
			return fmt.Errorf("-replica and -resume are mutually exclusive")
		}
		rc = client.New(cfg.replica, client.WithRetry(0, 0), client.WithoutWriteRedirect())
	}
	// d carries writes, rd reads; in cluster mode both are the routing
	// client, otherwise the plain one(s).
	var d, rd driver = c, rc
	var cl *client.Cluster
	var moveSession, moveTarget string
	if cfg.clusterFile != "" {
		if cfg.legacy {
			return fmt.Errorf("-cluster needs the /v1 surface; drop -legacy")
		}
		if cfg.replica != "" {
			return fmt.Errorf("-cluster routes reads through the map; list followers in the map file instead of -replica")
		}
		m, err := wfreach.LoadClusterMap(cfg.clusterFile)
		if err != nil {
			return err
		}
		if cl, err = client.NewCluster(m, client.WithRetry(0, 0)); err != nil {
			return err
		}
		d, rd = cl, cl
	}
	if cfg.move != "" {
		if cl == nil {
			return fmt.Errorf("-move is a cluster operation; it needs -cluster")
		}
		var ok bool
		if moveSession, moveTarget, ok = strings.Cut(cfg.move, "="); !ok || moveSession == "" || moveTarget == "" {
			return fmt.Errorf("-move %q is not \"session=node\"", cfg.move)
		}
	}

	// Generate all streams up front so generation cost stays out of the
	// measured window (and so -resume can rebuild identical ground
	// truth from the same seeds).
	loads := make([]sessionLoad, cfg.sessions)
	total := 0
	for i := range loads {
		events, r, err := wfreach.GenerateEvents(g, wfreach.GenOptions{
			TargetSize: cfg.size, Seed: cfg.seed + int64(i),
		})
		if err != nil {
			return err
		}
		loads[i] = sessionLoad{name: fmt.Sprintf("%s-%d", cfg.prefix, i), events: events, run: r}
		total += len(events)
	}
	if cfg.resume {
		return runResume(ctx, cfg, d, loads, out)
	}
	fmt.Fprintf(out, "wfload: %s mode, %d sessions × ~%d vertices (%d events total), batch=%d, readers=%d/session, reach-batch=%d\n",
		cfg.mode(), cfg.sessions, cfg.size, total, cfg.batch, cfg.readers, cfg.reachBatch)
	if cl != nil {
		byNode := map[string]int{}
		for _, l := range loads {
			byNode[cl.Owner(l.name)]++
		}
		fmt.Fprintf(out, "wfload: cluster of %d node(s), session placement:", len(cl.NodeNames()))
		for _, n := range cl.NodeNames() {
			fmt.Fprintf(out, " %s=%d", n, byNode[n])
		}
		fmt.Fprintln(out)
	}

	for _, l := range loads {
		req := client.CreateSessionRequest{Name: l.name, Builtin: cfg.spec}
		if cfg.shards > 0 {
			req.Shards = cfg.shards
		}
		if _, err := d.CreateSession(ctx, req); err != nil {
			return fmt.Errorf("create session %s: %w", l.name, err)
		}
	}

	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var (
		wg         sync.WaitGroup
		ingested   atomic.Int64
		queried    atomic.Int64
		lineages   atomic.Int64
		queryErrs  atomic.Int64
		mismatches atomic.Int64
		ingestLat  latencies
		queryLat   latencies
		errMu      sync.Mutex
		firstErr   error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Per-node ingest counters: in cluster mode every acknowledged batch
	// is attributed to the session's owner at that moment, so a moved
	// session's events split across its successive owners.
	perNode := map[string]*atomic.Int64{}
	if cl != nil {
		for _, n := range cl.NodeNames() {
			perNode[n] = new(atomic.Int64)
		}
	}

	// With a replica, sample its lag throughout the run: the primary's
	// committed WAL sequence minus the follower's applied sequence,
	// maxed across the run's sessions.
	names := make(map[string]bool, len(loads))
	for _, l := range loads {
		names[l.name] = true
	}
	var lagMu sync.Mutex
	var lagSamples []int64
	sessionLag := func() (int64, bool) {
		pst, err := c.ReplicationStatus(ctx)
		if err != nil {
			return 0, false
		}
		rst, err := rc.ReplicationStatus(ctx)
		if err != nil {
			return 0, false
		}
		applied := make(map[string]int64, len(rst.Sessions))
		for _, s := range rst.Sessions {
			applied[s.Name] = s.WALSeq
		}
		var worst int64
		for _, s := range pst.Sessions {
			if !names[s.Name] {
				continue
			}
			if lag := s.WALSeq - applied[s.Name]; lag > worst {
				worst = lag
			}
		}
		return worst, true
	}
	lagStop := make(chan struct{})
	var lagWG sync.WaitGroup
	if cfg.replica != "" {
		lagWG.Add(1)
		go func() {
			defer lagWG.Done()
			ticker := time.NewTicker(200 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-lagStop:
					return
				case <-ticker.C:
				}
				if lag, ok := sessionLag(); ok {
					lagMu.Lock()
					lagSamples = append(lagSamples, lag)
					lagMu.Unlock()
				}
			}
		}()
	}

	start := time.Now()

	// The live move: wait until a quarter of the stream is acknowledged
	// (the cluster is busy), then transfer the named session while its
	// writer keeps going.
	var moveRep *reportMove
	if moveSession != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ingested.Load() < int64(total/4) {
				time.Sleep(10 * time.Millisecond)
			}
			t0 := time.Now()
			mv, err := cl.Move(ctx, moveSession, moveTarget)
			if err != nil {
				setErr(fmt.Errorf("move %s to %s: %w", moveSession, moveTarget, err))
				return
			}
			errMu.Lock()
			moveRep = &reportMove{Session: moveSession, From: mv.From, To: mv.To,
				Events: mv.Events, Sec: time.Since(t0).Seconds()}
			errMu.Unlock()
		}()
	}

	for i := range loads {
		l := loads[i]
		watermark := new(atomic.Int64)
		done := make(chan struct{})

		wg.Add(1)
		go func() { // single writer per session
			defer wg.Done()
			defer close(done)
			for lo := 0; lo < len(l.events); lo += cfg.batch {
				hi := min(lo+cfg.batch, len(l.events))
				t0 := time.Now()
				_, err := ingestBatch(ctx, cfg, d, l.name, l.events[lo:hi])
				ingestLat.add(time.Since(t0))
				if err != nil {
					setErr(fmt.Errorf("ingest %s at %d: %w", l.name, lo, err))
					return
				}
				ingested.Add(int64(hi - lo))
				if cl != nil {
					perNode[cl.Owner(l.name)].Add(int64(hi - lo))
				}
				watermark.Store(int64(hi))
			}
		}()

		for ri := 0; ri < cfg.readers; ri++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for n := 0; ; n++ {
					select {
					case <-done:
						return
					default:
					}
					wm := watermark.Load()
					if wm < 2 {
						time.Sleep(time.Millisecond)
						continue
					}
					if cfg.lineageEvery > 0 && n%cfg.lineageEvery == cfg.lineageEvery-1 {
						v := int32(l.events[rng.Int63n(wm)].V)
						t0 := time.Now()
						var err error
						if cfg.legacy {
							_, err = c.LineageLegacy(ctx, l.name, v)
						} else {
							_, err = rd.Lineage(ctx, l.name, v)
						}
						queryLat.add(time.Since(t0))
						if err != nil {
							queryErrs.Add(1)
							time.Sleep(time.Millisecond) // a lagging replica is not a spin target
							continue
						}
						lineages.Add(1)
						queried.Add(1)
						continue
					}
					if cfg.legacy {
						v := l.events[rng.Int63n(wm)].V
						w := l.events[rng.Int63n(wm)].V
						t0 := time.Now()
						reachable, err := c.ReachLegacy(ctx, l.name, int32(v), int32(w))
						queryLat.add(time.Since(t0))
						if err != nil {
							queryErrs.Add(1)
							continue
						}
						queried.Add(1)
						if cfg.verify && reachable != l.run.Reaches(v, w) {
							mismatches.Add(1)
							setErr(fmt.Errorf("query mismatch: %s reach(%d,%d)=%v", l.name, v, w, reachable))
						}
						continue
					}
					pairs := make([]client.ReachPair, cfg.reachBatch)
					for pi := range pairs {
						pairs[pi] = client.ReachPair{
							From: int32(l.events[rng.Int63n(wm)].V),
							To:   int32(l.events[rng.Int63n(wm)].V),
						}
					}
					t0 := time.Now()
					answers, err := rd.ReachBatch(ctx, l.name, pairs)
					queryLat.add(time.Since(t0))
					if err != nil {
						queryErrs.Add(1)
						time.Sleep(time.Millisecond) // session not yet on the replica, most likely
						continue
					}
					for _, ans := range answers {
						if ans.Code != "" {
							// On a replica, an unlabeled vertex usually just
							// means lag — the pair trails the primary's
							// acknowledged prefix.
							queryErrs.Add(1)
							continue
						}
						queried.Add(1)
						if cfg.verify && ans.Reachable != l.run.Reaches(wfreach.VertexID(ans.From), wfreach.VertexID(ans.To)) {
							mismatches.Add(1)
							setErr(fmt.Errorf("query mismatch: %s reach(%d,%d)=%v", l.name, ans.From, ans.To, ans.Reachable))
						}
					}
				}
			}(int64(i*cfg.readers + ri))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	var lag *reportLag
	if cfg.replica != "" {
		close(lagStop)
		lagWG.Wait()
		// Ingest is done; time the follower draining the rest.
		catchStart := time.Now()
		deadline := catchStart.Add(2 * time.Minute)
		for {
			worst, ok := sessionLag()
			if ok && worst <= 0 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica never caught up (still %d events behind after %v)", worst, time.Since(catchStart).Round(time.Millisecond))
			}
			time.Sleep(50 * time.Millisecond)
		}
		catchup := time.Since(catchStart)
		lagMu.Lock()
		sort.Slice(lagSamples, func(i, j int) bool { return lagSamples[i] < lagSamples[j] })
		lag = &reportLag{Samples: len(lagSamples), CatchupSec: catchup.Seconds()}
		if n := len(lagSamples); n > 0 {
			lag.P50Events = lagSamples[int(0.50*float64(n-1))]
			lag.P90Events = lagSamples[int(0.90*float64(n-1))]
			lag.MaxEvents = lagSamples[n-1]
		}
		lagMu.Unlock()
	}

	if firstErr != nil {
		return firstErr
	}

	il, ql := ingestLat.sorted(), queryLat.sorted()
	fmt.Fprintf(out, "ingest: %d events in %v  (%.0f events/sec)\n",
		ingested.Load(), elapsed.Round(time.Millisecond),
		float64(ingested.Load())/elapsed.Seconds())
	var nodeRep map[string]reportNode
	if cl != nil {
		nodeRep = make(map[string]reportNode, len(perNode))
		for _, n := range cl.NodeNames() {
			ev := perNode[n].Load()
			nodeRep[n] = reportNode{IngestEvents: ev, EventsPerSec: float64(ev) / elapsed.Seconds()}
			fmt.Fprintf(out, "  node %s: %d events  (%.0f events/sec)\n", n, ev, float64(ev)/elapsed.Seconds())
		}
	}
	if moveRep != nil {
		fmt.Fprintf(out, "move: %s %s->%s, %d events handed off in %.2fs mid-ingest\n",
			moveRep.Session, moveRep.From, moveRep.To, moveRep.Events, moveRep.Sec)
	}
	fmt.Fprintf(out, "ingest batch latency: p50=%v p90=%v p99=%v\n",
		il.percentile(0.50).Round(time.Microsecond),
		il.percentile(0.90).Round(time.Microsecond),
		il.percentile(0.99).Round(time.Microsecond))
	fmt.Fprintf(out, "queries: %d ok (%d lineage), %d errors  (%.0f queries/sec)\n",
		queried.Load(), lineages.Load(), queryErrs.Load(), float64(queried.Load())/elapsed.Seconds())
	fmt.Fprintf(out, "query latency: p50=%v p90=%v p99=%v\n",
		ql.percentile(0.50).Round(time.Microsecond),
		ql.percentile(0.90).Round(time.Microsecond),
		ql.percentile(0.99).Round(time.Microsecond))
	if cfg.verify {
		fmt.Fprintf(out, "verify: %d mismatches over %d checked queries\n", mismatches.Load(), queried.Load())
	}
	if lag != nil {
		fmt.Fprintf(out, "replica lag: p50=%d p90=%d max=%d events over %d samples; caught up %.2fs after ingest\n",
			lag.P50Events, lag.P90Events, lag.MaxEvents, lag.Samples, lag.CatchupSec)
	}

	if cfg.cleanup {
		for _, l := range loads {
			if err := d.DeleteSession(ctx, l.name); err != nil {
				return fmt.Errorf("cleanup %s: %w", l.name, err)
			}
		}
		fmt.Fprintf(out, "cleanup: deleted %d session(s)\n", len(loads))
	}

	if cfg.memProfile != "" {
		f, err := os.Create(cfg.memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if cfg.jsonPath != "" {
		rep := report{
			Spec:             cfg.spec,
			Mode:             cfg.mode(),
			Replica:          cfg.replica,
			ReplicaLag:       lag,
			Cluster:          cfg.clusterFile,
			Nodes:            len(nodeRep),
			PerNode:          nodeRep,
			Move:             moveRep,
			Sessions:         cfg.sessions,
			SizePerSession:   cfg.size,
			Batch:            cfg.batch,
			Readers:          cfg.readers,
			ReachBatch:       cfg.reachBatch,
			Shards:           cfg.shards,
			LineageEvery:     cfg.lineageEvery,
			Seed:             cfg.seed,
			ElapsedSec:       elapsed.Seconds(),
			IngestEvents:     ingested.Load(),
			EventsPerSec:     float64(ingested.Load()) / elapsed.Seconds(),
			IngestLatency:    toPercentiles(il),
			Queries:          queried.Load(),
			LineageQueries:   lineages.Load(),
			QueryErrors:      queryErrs.Load(),
			QueriesPerSec:    float64(queried.Load()) / elapsed.Seconds(),
			QueryLatency:     toPercentiles(ql),
			VerifyChecked:    cfg.verify,
			VerifyMismatches: mismatches.Load(),
		}
		if err := writeReport(cfg.jsonPath, rep); err != nil {
			return fmt.Errorf("write -json report: %w", err)
		}
		fmt.Fprintf(out, "report written to %s\n", cfg.jsonPath)
	}
	return nil
}
