// Command wfload drives a running wfserve: it generates workflow runs,
// replays their execution streams against the server at configurable
// concurrency and batch size, interleaves reachability queries, and
// reports ingest/query throughput and latency percentiles.
//
// Usage:
//
//	wfload -addr http://127.0.0.1:8080 -spec BioAID -size 10000 -sessions 4 -batch 128 -readers 4
//	wfload -addr http://127.0.0.1:8080 -spec BioAID -size 2000 -verify
//
// Each session gets its own generated run (distinct seeds) and its own
// writer goroutine streaming event batches; -readers query goroutines
// per session issue reach queries over the already-acknowledged prefix
// while ingestion is in flight. With -verify every query answer is
// checked against BFS ground truth on the generated run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfreach"
)

type config struct {
	addr     string
	spec     string
	size     int
	seed     int64
	sessions int
	batch    int
	readers  int
	verify   bool
	prefix   string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "wfserve base URL")
	flag.StringVar(&cfg.spec, "spec", "BioAID", "built-in specification to load")
	flag.IntVar(&cfg.size, "size", 10000, "target vertices per generated run")
	flag.Int64Var(&cfg.seed, "seed", 1, "base generation seed (session i uses seed+i)")
	flag.IntVar(&cfg.sessions, "sessions", 2, "concurrent sessions (one writer each)")
	flag.IntVar(&cfg.batch, "batch", 128, "events per ingest batch")
	flag.IntVar(&cfg.readers, "readers", 2, "query goroutines per session")
	flag.BoolVar(&cfg.verify, "verify", false, "check query answers against BFS ground truth")
	flag.StringVar(&cfg.prefix, "prefix", "load", "session name prefix")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wfload: %v\n", err)
		os.Exit(1)
	}
}

// latencies collects durations for percentile reporting.
type latencies struct {
	mu sync.Mutex
	ds []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *latencies) percentile(p float64) time.Duration {
	if len(l.ds) == 0 {
		return 0
	}
	i := int(p * float64(len(l.ds)-1))
	return l.ds[i]
}

func (l *latencies) sorted() *latencies {
	sort.Slice(l.ds, func(i, j int) bool { return l.ds[i] < l.ds[j] })
	return l
}

type client struct {
	base string
	http *http.Client
}

func (c *client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(raw))
	}
	if out != nil && len(raw) > 0 {
		return json.Unmarshal(raw, out)
	}
	return nil
}

type reachResponse struct {
	Reachable bool `json:"reachable"`
}

func run(cfg config, out io.Writer) error {
	spec, ok := wfreach.BuiltinSpec(cfg.spec)
	if !ok {
		return fmt.Errorf("unknown builtin %q", cfg.spec)
	}
	g, err := wfreach.Compile(spec)
	if err != nil {
		return err
	}
	c := &client{base: cfg.addr, http: &http.Client{Timeout: 30 * time.Second}}

	// Generate all streams up front so generation cost stays out of the
	// measured window.
	type sessionLoad struct {
		name   string
		events []wfreach.Event
		run    *wfreach.Run
	}
	loads := make([]sessionLoad, cfg.sessions)
	total := 0
	for i := range loads {
		events, r, err := wfreach.GenerateEvents(g, wfreach.GenOptions{
			TargetSize: cfg.size, Seed: cfg.seed + int64(i),
		})
		if err != nil {
			return err
		}
		loads[i] = sessionLoad{name: fmt.Sprintf("%s-%d", cfg.prefix, i), events: events, run: r}
		total += len(events)
	}
	fmt.Fprintf(out, "wfload: %d sessions × ~%d vertices (%d events total), batch=%d, readers=%d/session\n",
		cfg.sessions, cfg.size, total, cfg.batch, cfg.readers)

	for _, l := range loads {
		if err := c.do("POST", "/v1/sessions",
			map[string]string{"name": l.name, "builtin": cfg.spec}, nil); err != nil {
			return fmt.Errorf("create session %s: %w", l.name, err)
		}
	}

	var (
		wg         sync.WaitGroup
		ingested   atomic.Int64
		queried    atomic.Int64
		queryErrs  atomic.Int64
		mismatches atomic.Int64
		ingestLat  latencies
		queryLat   latencies
		errMu      sync.Mutex
		firstErr   error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	start := time.Now()
	for i := range loads {
		l := loads[i]
		watermark := new(atomic.Int64)
		done := make(chan struct{})

		wg.Add(1)
		go func() { // single writer per session
			defer wg.Done()
			defer close(done)
			for lo := 0; lo < len(l.events); lo += cfg.batch {
				hi := min(lo+cfg.batch, len(l.events))
				wire := make([]wfreach.WireEvent, 0, hi-lo)
				for _, ev := range l.events[lo:hi] {
					wire = append(wire, wfreach.ToWire(ev))
				}
				t0 := time.Now()
				err := c.do("POST", "/v1/sessions/"+l.name+"/events",
					map[string]any{"events": wire}, nil)
				ingestLat.add(time.Since(t0))
				if err != nil {
					setErr(fmt.Errorf("ingest %s at %d: %w", l.name, lo, err))
					return
				}
				ingested.Add(int64(hi - lo))
				watermark.Store(int64(hi))
			}
		}()

		for ri := 0; ri < cfg.readers; ri++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-done:
						return
					default:
					}
					wm := watermark.Load()
					if wm < 2 {
						time.Sleep(time.Millisecond)
						continue
					}
					v := l.events[rng.Int63n(wm)].V
					w := l.events[rng.Int63n(wm)].V
					var rr reachResponse
					t0 := time.Now()
					err := c.do("GET",
						fmt.Sprintf("/v1/sessions/%s/reach?from=%d&to=%d", l.name, v, w), nil, &rr)
					queryLat.add(time.Since(t0))
					if err != nil {
						queryErrs.Add(1)
						continue
					}
					queried.Add(1)
					if cfg.verify && rr.Reachable != l.run.Reaches(v, w) {
						mismatches.Add(1)
						setErr(fmt.Errorf("query mismatch: %s reach(%d,%d)=%v", l.name, v, w, rr.Reachable))
					}
				}
			}(int64(i*cfg.readers + ri))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	if firstErr != nil {
		return firstErr
	}

	il, ql := ingestLat.sorted(), queryLat.sorted()
	fmt.Fprintf(out, "ingest: %d events in %v  (%.0f events/sec)\n",
		ingested.Load(), elapsed.Round(time.Millisecond),
		float64(ingested.Load())/elapsed.Seconds())
	fmt.Fprintf(out, "ingest batch latency: p50=%v p90=%v p99=%v\n",
		il.percentile(0.50).Round(time.Microsecond),
		il.percentile(0.90).Round(time.Microsecond),
		il.percentile(0.99).Round(time.Microsecond))
	fmt.Fprintf(out, "queries: %d ok, %d errors  (%.0f queries/sec)\n",
		queried.Load(), queryErrs.Load(), float64(queried.Load())/elapsed.Seconds())
	fmt.Fprintf(out, "query latency: p50=%v p90=%v p99=%v\n",
		ql.percentile(0.50).Round(time.Microsecond),
		ql.percentile(0.90).Round(time.Microsecond),
		ql.percentile(0.99).Round(time.Microsecond))
	if cfg.verify {
		fmt.Fprintf(out, "verify: %d mismatches over %d checked queries\n", mismatches.Load(), queried.Load())
	}
	return nil
}
