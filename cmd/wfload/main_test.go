package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wfreach"
)

// TestRunAgainstInProcessServer drives the full load-generation path
// (create sessions, stream batches, interleaved verified queries,
// report) against an in-process wfserve handler.
func TestRunAgainstInProcessServer(t *testing.T) {
	srv := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	defer srv.Close()

	var out bytes.Buffer
	cfg := config{
		addr:     srv.URL,
		spec:     "BioAID",
		size:     800,
		seed:     1,
		sessions: 2,
		batch:    64,
		readers:  2,
		verify:   true,
		prefix:   "t",
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"events/sec", "queries/sec", "p50=", "p99=", "0 mismatches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "ingest: 0 events") {
		t.Fatalf("nothing ingested:\n%s", s)
	}
}

// TestRunWithReplica splits the workload across an in-process
// primary/follower pair: writes to the primary, reads from the
// follower, lag sampled and catch-up awaited, the report carrying the
// replica section.
func TestRunWithReplica(t *testing.T) {
	preg, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: t.TempDir(), Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer preg.Close()
	psrv := httptest.NewServer(wfreach.NewServiceHandler(preg))
	defer psrv.Close()

	freg, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: t.TempDir(), Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer freg.Close()
	fol := wfreach.NewFollower(psrv.URL, freg, wfreach.FollowerOptions{PollInterval: 25 * time.Millisecond})
	fol.Start()
	defer fol.Close()
	fsrv := httptest.NewServer(wfreach.NewServiceHandler(freg))
	defer fsrv.Close()

	jsonPath := filepath.Join(t.TempDir(), "rep.json")
	var out bytes.Buffer
	cfg := config{
		addr: psrv.URL, replica: fsrv.URL,
		spec: "RunningExample", size: 600, seed: 3,
		sessions: 2, batch: 64, readers: 2, reachBatch: 8,
		verify: true, prefix: "rep", jsonPath: jsonPath,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"replica lag:", "caught up", "0 mismatches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Replica != fsrv.URL || rep.ReplicaLag == nil {
		t.Fatalf("report replica section = %q / %+v", rep.Replica, rep.ReplicaLag)
	}

	// Conflicting modes are rejected up front.
	if err := run(config{addr: psrv.URL, replica: fsrv.URL, legacy: true, spec: "RunningExample"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-replica with -legacy accepted")
	}
	if err := run(config{addr: psrv.URL, replica: fsrv.URL, resume: true, spec: "RunningExample"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-replica with -resume accepted")
	}
}

func TestRunUnknownSpec(t *testing.T) {
	if err := run(config{spec: "NoSuchSpec"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestRunUnreachableServer(t *testing.T) {
	cfg := config{
		addr: "http://127.0.0.1:1", spec: "RunningExample",
		size: 50, sessions: 1, batch: 16, readers: 1, prefix: "x",
	}
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestWfloadBinaryBuildsAndFailsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the wfload binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "wfload")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	// No server at the target: clean error exit, not a hang or panic.
	out, err := exec.Command(bin, "-addr", "http://127.0.0.1:1", "-spec", "RunningExample",
		"-size", "50", "-sessions", "1", "-readers", "1").CombinedOutput()
	if err == nil {
		t.Fatalf("should fail with no server:\n%s", out)
	}
	if !strings.Contains(string(out), "wfload:") {
		t.Fatalf("no error message:\n%s", out)
	}
}

// TestResumeVerifiesRestoredSessions plays the full crash drill
// in-process: ingest into a durable registry, drop it cold, restore
// the data directory into a fresh registry behind a new server, and
// let -resume mode confirm the recovered sessions answer like the
// uninterrupted run.
func TestResumeVerifiesRestoredSessions(t *testing.T) {
	dir := t.TempDir()
	reg, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: dir, SnapshotEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wfreach.NewServiceHandler(reg))

	cfg := config{
		addr: srv.URL, spec: "RunningExample",
		size: 500, seed: 5, sessions: 2, batch: 32, readers: 1,
		verify: true, prefix: "r",
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	srv.Close() // no reg.Close(): the WAL was flushed per acked batch

	reg2, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(wfreach.NewServiceHandler(reg2))
	defer srv2.Close()

	cfg.addr = srv2.URL
	cfg.resume = true
	cfg.queries = 500
	out.Reset()
	if err := run(cfg, &out); err != nil {
		t.Fatalf("resume verification failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "resume verification passed") || strings.Contains(s, "MISMATCH") {
		t.Fatalf("unexpected resume report:\n%s", s)
	}

	// The same check must fail loudly if the server knows nothing.
	empty := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	defer empty.Close()
	cfg.addr = empty.URL
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("resume against an empty server should fail")
	}
}

// TestRunReportAndProfiles drives a query-heavy mixed workload
// (lineage interleaved) and checks the -json report and pprof profiles
// land on disk with sane contents.
func TestRunReportAndProfiles(t *testing.T) {
	srv := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	defer srv.Close()

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	cfg := config{
		addr:         srv.URL,
		spec:         "RunningExample",
		size:         400,
		seed:         5,
		sessions:     1,
		batch:        32,
		readers:      2,
		shards:       4,
		lineageEvery: 4,
		prefix:       "rep",
		jsonPath:     jsonPath,
		cpuProfile:   cpuPath,
		memProfile:   memPath,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "lineage") {
		t.Fatalf("no lineage count in output:\n%s", out.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, raw)
	}
	if rep.IngestEvents == 0 || rep.EventsPerSec <= 0 {
		t.Fatalf("report has no ingest numbers: %+v", rep)
	}
	if rep.Spec != "RunningExample" || rep.Shards != 4 || rep.LineageEvery != 4 {
		t.Fatalf("report config echo wrong: %+v", rep)
	}
	if rep.QueryErrors > 0 {
		t.Fatalf("query errors in report: %+v", rep)
	}
	if rep.Queries > 0 && rep.QueryLatency.P99NS < rep.QueryLatency.P50NS {
		t.Fatalf("latency percentiles not monotone: %+v", rep.QueryLatency)
	}
	for _, p := range []string{cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunLegacyAndBatchModes drives the same server once over the
// deprecated unversioned JSON surface and once over /v1 with batched
// reach calls and cleanup, verifying both against the oracle.
func TestRunLegacyAndBatchModes(t *testing.T) {
	srv := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	defer srv.Close()

	var out bytes.Buffer
	legacy := config{
		addr: srv.URL, spec: "RunningExample",
		size: 400, seed: 7, sessions: 1, batch: 32, readers: 2,
		verify: true, legacy: true, cleanup: true, prefix: "leg",
	}
	if err := run(legacy, &out); err != nil {
		t.Fatalf("legacy: %v\n%s", err, out.String())
	}
	if s := out.String(); !strings.Contains(s, "legacy-json mode") ||
		!strings.Contains(s, "0 mismatches") || !strings.Contains(s, "deleted 1 session(s)") {
		t.Fatalf("legacy report:\n%s", s)
	}

	out.Reset()
	batched := config{
		addr: srv.URL, spec: "RunningExample",
		size: 400, seed: 7, sessions: 1, batch: 32, readers: 2,
		verify: true, reachBatch: 16, lineageEvery: 8, cleanup: true, prefix: "leg", // name free again after legacy cleanup
	}
	if err := run(batched, &out); err != nil {
		t.Fatalf("batched: %v\n%s", err, out.String())
	}
	if s := out.String(); !strings.Contains(s, "v1-binary mode") || !strings.Contains(s, "0 mismatches") {
		t.Fatalf("batched report:\n%s", s)
	}
}
