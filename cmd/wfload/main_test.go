package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"wfreach"
)

// TestRunAgainstInProcessServer drives the full load-generation path
// (create sessions, stream batches, interleaved verified queries,
// report) against an in-process wfserve handler.
func TestRunAgainstInProcessServer(t *testing.T) {
	srv := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	defer srv.Close()

	var out bytes.Buffer
	cfg := config{
		addr:     srv.URL,
		spec:     "BioAID",
		size:     800,
		seed:     1,
		sessions: 2,
		batch:    64,
		readers:  2,
		verify:   true,
		prefix:   "t",
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"events/sec", "queries/sec", "p50=", "p99=", "0 mismatches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "ingest: 0 events") {
		t.Fatalf("nothing ingested:\n%s", s)
	}
}

func TestRunUnknownSpec(t *testing.T) {
	if err := run(config{spec: "NoSuchSpec"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestRunUnreachableServer(t *testing.T) {
	cfg := config{
		addr: "http://127.0.0.1:1", spec: "RunningExample",
		size: 50, sessions: 1, batch: 16, readers: 1, prefix: "x",
	}
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestWfloadBinaryBuildsAndFailsCleanly(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "wfload")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	// No server at the target: clean error exit, not a hang or panic.
	out, err := exec.Command(bin, "-addr", "http://127.0.0.1:1", "-spec", "RunningExample",
		"-size", "50", "-sessions", "1", "-readers", "1").CombinedOutput()
	if err == nil {
		t.Fatalf("should fail with no server:\n%s", out)
	}
	if !strings.Contains(string(out), "wfload:") {
		t.Fatalf("no error message:\n%s", out)
	}
}

// TestResumeVerifiesRestoredSessions plays the full crash drill
// in-process: ingest into a durable registry, drop it cold, restore
// the data directory into a fresh registry behind a new server, and
// let -resume mode confirm the recovered sessions answer like the
// uninterrupted run.
func TestResumeVerifiesRestoredSessions(t *testing.T) {
	dir := t.TempDir()
	reg, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: dir, SnapshotEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wfreach.NewServiceHandler(reg))

	cfg := config{
		addr: srv.URL, spec: "RunningExample",
		size: 500, seed: 5, sessions: 2, batch: 32, readers: 1,
		verify: true, prefix: "r",
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	srv.Close() // no reg.Close(): the WAL was flushed per acked batch

	reg2, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(wfreach.NewServiceHandler(reg2))
	defer srv2.Close()

	cfg.addr = srv2.URL
	cfg.resume = true
	cfg.queries = 500
	out.Reset()
	if err := run(cfg, &out); err != nil {
		t.Fatalf("resume verification failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "resume verification passed") || strings.Contains(s, "MISMATCH") {
		t.Fatalf("unexpected resume report:\n%s", s)
	}

	// The same check must fail loudly if the server knows nothing.
	empty := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	defer empty.Close()
	cfg.addr = empty.URL
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("resume against an empty server should fail")
	}
}
