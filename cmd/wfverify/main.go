// Command wfverify is the offline integrity auditor for a wfserve
// data directory: it re-verifies every session's tamper-evidence
// anchors — the Merkle root its latest arena snapshot recorded over
// the label extents, and the WAL hash-chain head the snapshot
// anchored at its watermark — from the raw files alone. Run it
// against a stopped server's -data directory or a filesystem
// snapshot of one; it never writes.
//
// Usage:
//
//	wfverify -data /var/lib/wfserve
//	wfverify -data /var/lib/wfserve -session prod
//	wfverify -data /var/lib/wfserve -session prod -head 3f1a…c9
//
// Without -session every session under the directory is audited.
// -head supplies an externally recorded chain head (the chain_head of
// GET /v1/sessions/{name}/integrity, captured at any past moment the
// session was quiescent at its current sequence) and requires
// -session; it is the only check that covers WAL records written
// after the last snapshot, which are otherwise CRC-protected only.
//
// Sessions from before integrity stamping (WFSNAP01/02 snapshots, or
// none) report "integrity: unavailable" — legal old data, not a
// violation.
//
// Exit status: 0 when nothing contradicts an anchor, 1 when any
// session's audit found a violation, 2 on usage or IO errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wfreach/internal/integrity/audit"
)

func main() {
	var (
		data    = flag.String("data", "", "wfserve data directory to audit (required)")
		session = flag.String("session", "", "audit only this session")
		head    = flag.String("head", "", "externally recorded chain head (hex) the session's full WAL must land on; requires -session")
	)
	flag.Parse()
	if *data == "" || flag.NArg() > 0 || (*head != "" && *session == "") {
		flag.Usage()
		os.Exit(2)
	}

	var reports []audit.SessionReport
	if *session != "" {
		sdir := filepath.Join(*data, *session)
		if _, err := os.Stat(sdir); err != nil {
			fmt.Fprintf(os.Stderr, "wfverify: %v\n", err)
			os.Exit(2)
		}
		reports = []audit.SessionReport{audit.VerifySession(sdir, *head)}
	} else {
		rep, err := audit.VerifyDir(*data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfverify: %v\n", err)
			os.Exit(2)
		}
		reports = rep.Sessions
	}

	violations := 0
	for _, r := range reports {
		switch r.Status {
		case audit.StatusVerified:
			fmt.Printf("%s: verified — %d WAL records, chain %s; snapshot at %d (merkle %s), tail of %d CRC-only\n",
				r.Session, r.WALRecords, r.ChainHead, r.SnapshotWatermark, r.MerkleRoot, r.TailRecords)
		case audit.StatusUnavailable:
			fmt.Printf("%s: integrity: unavailable — %d WAL records, chain %s (no integrity-stamped snapshot)\n",
				r.Session, r.WALRecords, r.ChainHead)
		case audit.StatusViolation:
			violations++
			fmt.Printf("%s: VIOLATION — %s\n", r.Session, r.Err)
		}
	}
	if len(reports) == 0 {
		fmt.Printf("no sessions under %s\n", *data)
	}
	if violations > 0 {
		os.Exit(1)
	}
}
