// Command wfbench regenerates the paper's evaluation (Section 7): it
// runs every figure and table experiment and prints Markdown tables
// with the measured series alongside the paper's reference
// expectations.
//
// Usage:
//
//	wfbench [-samples N] [-queries N] [-max SIZE] [-quick] [-only fig14,fig20]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wfreach/internal/bench"
)

func main() {
	samples := flag.Int("samples", 5, "random runs averaged per data point")
	queries := flag.Int("queries", 100000, "random queries per query-time measurement")
	maxSize := flag.Int("max", 32*1024, "largest run size of the 1K..32K sweeps")
	quick := flag.Bool("quick", false, "trim sweeps for a fast smoke pass")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig14,fig20,table2)")
	csvDir := flag.String("csv", "", "also write one plot-ready CSV per experiment into this directory")
	flag.Parse()

	cfg := bench.Config{Samples: *samples, Queries: *queries, MaxSize: *maxSize, Quick: *quick}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	all := map[string]func(bench.Config) *bench.Table{
		"fig01": bench.Fig01, "table2": bench.Table2,
		"fig14": bench.Fig14, "fig15": bench.Fig15, "fig16": bench.Fig16,
		"fig17": bench.Fig17, "fig18": bench.Fig18, "fig19": bench.Fig19,
		"fig20": bench.Fig20, "fig21": bench.Fig21, "fig22": bench.Fig22,
		"ablR": bench.AblationR, "ablEnc": bench.AblationEncoding,
		"ablSkel": bench.AblationSkeleton, "ex15": bench.Example15,
	}
	order := []string{"fig01", "table2", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22", "ablR", "ablEnc", "ablSkel", "ex15"}

	for id := range want {
		if _, ok := all[id]; !ok {
			fmt.Fprintf(os.Stderr, "wfbench: unknown experiment %q (known: %s)\n",
				id, strings.Join(order, ", "))
			os.Exit(2)
		}
	}

	fmt.Printf("# wfreach evaluation — %s\n\n", time.Now().Format(time.RFC1123))
	fmt.Printf("samples=%d queries=%d max=%d quick=%v\n\n", *samples, *queries, *maxSize, *quick)
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		start := time.Now()
		t := all[id](cfg)
		t.Render(os.Stdout)
		fmt.Printf("_(generated in %.1fs)_\n\n", time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.RenderCSV(f); err != nil {
		return err
	}
	return f.Close()
}
