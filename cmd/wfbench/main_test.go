package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBench(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and drives the wfbench binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "wfbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestWfbenchSelectedExperiments(t *testing.T) {
	bin := buildBench(t)
	out, err := exec.Command(bin, "-quick", "-samples", "1", "-queries", "1000",
		"-max", "2048", "-only", "fig14,table2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"## fig14", "## table2", "5565"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "## fig20") {
		t.Fatal("-only filter leaked other experiments")
	}
}

func TestWfbenchUnknownExperiment(t *testing.T) {
	bin := buildBench(t)
	if out, err := exec.Command(bin, "-only", "fig99").CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
}

func TestWfbenchCSVOutput(t *testing.T) {
	bin := buildBench(t)
	dir := filepath.Join(t.TempDir(), "csv")
	out, err := exec.Command(bin, "-quick", "-samples", "1", "-queries", "500",
		"-max", "2048", "-only", "table2,fig14", "-csv", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, f := range []string{"table2.csv", "fig14.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), ",") {
			t.Fatalf("%s is not CSV:\n%s", f, data)
		}
	}
}
