package main

import (
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"wfreach"
)

// buildOnce compiles the binary under test.
func buildOnce(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and drives the wflabel binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "wflabel")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestWflabelGeneratedRunStats(t *testing.T) {
	bin := buildOnce(t)
	out, err := exec.Command(bin, "-size", "300", "-seed", "3", "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"class=linear-recursive", "labels: max", "avg"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestWflabelVerifyAndQueries(t *testing.T) {
	bin := buildOnce(t)
	out, err := exec.Command(bin, "-size", "120", "-seed", "1", "-verify", "-query", "0,2", "-query", "2,0").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "verified") {
		t.Fatalf("verification missing:\n%s", s)
	}
	if !strings.Contains(s, "reach(0→2) = true") || !strings.Contains(s, "reach(2→0) = false") {
		t.Fatalf("query answers wrong:\n%s", s)
	}
}

func TestWflabelExecutionMode(t *testing.T) {
	bin := buildOnce(t)
	out, err := exec.Command(bin, "-size", "150", "-seed", "2", "-exec", "-bfs", "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "labels: max") {
		t.Fatalf("stats missing:\n%s", out)
	}
}

func TestWflabelLoadsXML(t *testing.T) {
	bin := buildOnce(t)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")
	s := wfreach.BioAID()
	if err := wfreach.SaveSpec(specPath, s); err != nil {
		t.Fatal(err)
	}
	g := wfreach.MustCompile(s)
	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 200, Seed: 4})
	if err := wfreach.SaveRun(runPath, r); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-spec", specPath, "-run", runPath, "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "labels: max") {
		t.Fatalf("stats missing:\n%s", out)
	}
}

func TestWflabelErrors(t *testing.T) {
	bin := buildOnce(t)
	cases := [][]string{
		{"-spec", "/nonexistent/spec.xml"},
		{"-size", "50", "-query", "garbage"},
		{"-size", "50", "-query", "1"},
		{"-size", "50", "-query", "999999,0"},
	}
	for _, args := range cases {
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Fatalf("args %v should fail:\n%s", args, out)
		}
	}
}

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in      string
		v, w    wfreach.VertexID
		wantErr string
	}{
		{in: "3,141", v: 3, w: 141},
		{in: "0,0", v: 0, w: 0},
		{in: " 7 , 9 ", v: 7, w: 9}, // whitespace tolerated
		{in: "3", wantErr: `not "v,w"`},
		{in: "", wantErr: `not "v,w"`},
		{in: "1,2,3", wantErr: `not "v,w"`},
		{in: "a,b", wantErr: "not a vertex id"},
		{in: "1,", wantErr: "not a vertex id"},
		{in: ",1", wantErr: "not a vertex id"},
		{in: "1.5,2", wantErr: "not a vertex id"},
		{in: "-1,2", wantErr: "is negative"},
		{in: "2,-4", wantErr: "is negative"},
		{in: "99999999999999,1", wantErr: "not a vertex id"}, // int32 overflow
		{in: "0x10,1", wantErr: "not a vertex id"},
	}
	for _, tc := range cases {
		v, w, err := parseQuery(tc.in)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("parseQuery(%q) = (%d,%d), want error containing %q", tc.in, v, w, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseQuery(%q) error %q, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseQuery(%q): %v", tc.in, err)
			continue
		}
		if v != tc.v || w != tc.w {
			t.Errorf("parseQuery(%q) = (%d,%d), want (%d,%d)", tc.in, v, w, tc.v, tc.w)
		}
	}
}

// Out-of-range but well-formed ids must produce a clear error naming
// the query, not a panic or a silent misparse.
func TestWflabelOutOfRangeQueryMessage(t *testing.T) {
	bin := buildOnce(t)
	out, err := exec.Command(bin, "-size", "50", "-query", "999999,0").CombinedOutput()
	if err == nil {
		t.Fatalf("out-of-range query should fail:\n%s", out)
	}
	s := string(out)
	if !strings.Contains(s, "999999,0") || !strings.Contains(s, "not a labeled run vertex") {
		t.Fatalf("unclear error message:\n%s", s)
	}
}

// TestWflabelRemoteMode labels a generated run on an in-process
// wfserve through the client SDK: create + binary stream + one
// batch-reach roundtrip for all queries, sampled verification, and
// session cleanup.
func TestWflabelRemoteMode(t *testing.T) {
	reg := wfreach.NewRegistry()
	srv := httptest.NewServer(wfreach.NewServiceHandler(reg))
	defer srv.Close()
	bin := buildOnce(t)

	out, err := exec.Command(bin, "-size", "200", "-seed", "1",
		"-addr", srv.URL, "-session", "remote", "-stats", "-verify",
		"-query", "0,2", "-query", "2,0").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"streamed", "server session:", "verified 2000 sampled pairs",
		"reach(0→2) = true", "reach(2→0) = false",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// Without -keep the session is deleted afterwards.
	if _, ok := reg.Get("remote"); ok {
		t.Fatal("session not cleaned up")
	}

	// -keep leaves it on the server.
	out, err = exec.Command(bin, "-size", "100", "-seed", "2",
		"-addr", srv.URL, "-session", "kept", "-keep").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	kept, ok := reg.Get("kept")
	if !ok || kept.Vertices() == 0 {
		t.Fatal("kept session missing or empty")
	}

	// -integrity is an audit of an existing session: a memory-only
	// server has no chain, which is reported as unavailability (exit
	// 0), not an error.
	out, err = exec.Command(bin, "-addr", srv.URL, "-session", "kept", "-integrity").CombinedOutput()
	if err != nil {
		t.Fatalf("integrity mode on a memory server: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "integrity: unavailable") {
		t.Fatalf("output missing unavailability notice:\n%s", out)
	}
}

// TestWflabelIntegrityMode audits a durable session: the printed
// anchor line must carry the chain head in wfverify -head form, and
// the audited session must be left exactly as it was.
func TestWflabelIntegrityMode(t *testing.T) {
	reg, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(wfreach.NewServiceHandler(reg))
	defer srv.Close()
	bin := buildOnce(t)

	// Seed a session through the normal remote workflow.
	if out, err := exec.Command(bin, "-size", "150", "-seed", "4",
		"-addr", srv.URL, "-session", "audited", "-keep").CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s, ok := reg.Get("audited")
	if !ok {
		t.Fatal("audited session missing")
	}
	before := s.Vertices()

	out, err := exec.Command(bin, "-addr", srv.URL, "-session", "audited", "-integrity").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	got := string(out)
	_, head, okc := s.ChainState()
	if !okc {
		t.Fatal("durable session has no chain")
	}
	for _, want := range []string{
		"integrity: chain " + head.String(),
		"wfverify -data <dir> -session audited -head " + head.String(),
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "streamed") || s.Vertices() != before {
		t.Fatalf("audit mode touched the session:\n%s", got)
	}
	// Auditing a session that does not exist is an error.
	if out, err := exec.Command(bin, "-addr", srv.URL, "-session", "nope", "-integrity").CombinedOutput(); err == nil {
		t.Fatalf("integrity mode invented a session:\n%s", out)
	}
}
