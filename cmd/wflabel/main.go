// Command wflabel labels a workflow run on the fly and answers
// reachability (provenance) queries from the labels.
//
// Usage:
//
//	wflabel -spec spec.xml -run run.xml -stats
//	wflabel -spec spec.xml -run run.xml -query 3,141 -query 0,20
//	wflabel -spec spec.xml -size 2048 -seed 5 -stats -verify
//
// Without -run a random run of -size vertices is generated. With
// -exec the execution-based labeler is used (events replayed in
// topological order) instead of the derivation-based one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wfreach"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ";") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	specPath := flag.String("spec", "", "specification XML (empty = built-in running example)")
	runPath := flag.String("run", "", "run XML (empty = generate with -size/-seed)")
	size := flag.Int("size", 1024, "generated run size")
	seed := flag.Int64("seed", 1, "generation seed")
	useExec := flag.Bool("exec", false, "use the execution-based labeler")
	useBFS := flag.Bool("bfs", false, "use the BFS skeleton instead of TCL")
	stats := flag.Bool("stats", false, "print label statistics")
	verify := flag.Bool("verify", false, "verify all labels against BFS ground truth (slow)")
	var queries queryList
	flag.Var(&queries, "query", "reachability query \"v,w\" (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "wflabel: %v\n", err)
		os.Exit(1)
	}

	s := wfreach.RunningExample()
	if *specPath != "" {
		var err error
		if s, err = wfreach.LoadSpec(*specPath); err != nil {
			fail(err)
		}
	}
	g, err := wfreach.Compile(s)
	if err != nil {
		fail(err)
	}
	var r *wfreach.Run
	if *runPath != "" {
		if r, err = wfreach.LoadRun(*runPath, g); err != nil {
			fail(err)
		}
	} else {
		if r, err = wfreach.Generate(g, wfreach.GenOptions{TargetSize: *size, Seed: *seed}); err != nil {
			fail(err)
		}
	}

	kind := wfreach.TCL
	if *useBFS {
		kind = wfreach.BFS
	}

	var reach func(v, w wfreach.VertexID) bool
	var labelOf func(v wfreach.VertexID) (wfreach.Label, bool)
	if *useExec {
		events, err := r.Execution(nil)
		if err != nil {
			fail(err)
		}
		e, err := wfreach.LabelExecution(g, events, kind, wfreach.RModeDesignated)
		if err != nil {
			fail(err)
		}
		reach, labelOf = e.Reach, e.Label
	} else {
		d, err := wfreach.LabelRun(r, kind, wfreach.RModeDesignated)
		if err != nil {
			fail(err)
		}
		reach, labelOf = d.Reach, d.Label
	}

	fmt.Printf("grammar: class=%s, |G(S)|=%d graphs, run: %d vertices, %d edges\n",
		g.Class(), len(s.Graphs()), r.Size(), r.Graph.NumEdges())

	if *stats {
		codec := wfreach.NewLabelCodec(g)
		maxBits, total, count := 0, 0, 0
		for _, v := range r.Graph.LiveVertices() {
			l, ok := labelOf(v)
			if !ok {
				fail(fmt.Errorf("vertex %d unlabeled", v))
			}
			b := codec.BitLen(l)
			if b > maxBits {
				maxBits = b
			}
			total += b
			count++
		}
		fmt.Printf("labels: max %d bits, avg %.1f bits over %d vertices\n",
			maxBits, float64(total)/float64(count), count)
	}

	if *verify {
		live := r.Graph.LiveVertices()
		checked := 0
		for _, v := range live {
			for _, w := range live {
				if reach(v, w) != r.Graph.Reaches(v, w) {
					fail(fmt.Errorf("label answer diverges from ground truth at (%d,%d)", v, w))
				}
				checked++
			}
		}
		fmt.Printf("verified %d pairs against ground truth\n", checked)
	}

	for _, q := range queries {
		vid, wid, err := parseQuery(q)
		if err != nil {
			fail(err)
		}
		if _, ok := labelOf(vid); !ok {
			fail(fmt.Errorf("query %q: vertex %d is not a labeled run vertex", q, vid))
		}
		if _, ok := labelOf(wid); !ok {
			fail(fmt.Errorf("query %q: vertex %d is not a labeled run vertex", q, wid))
		}
		fmt.Printf("reach(%d→%d) = %v   (%s → %s)\n", vid, wid, reach(vid, wid), r.NameOf(vid), r.NameOf(wid))
	}
}

// parseQuery parses a -query value "v,w" into two vertex ids. Exactly
// two comma-separated non-negative integers within the VertexID range
// are accepted; anything else is a descriptive error.
func parseQuery(q string) (v, w wfreach.VertexID, err error) {
	parts := strings.Split(q, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("query %q is not \"v,w\" (two comma-separated vertex ids)", q)
	}
	ids := [2]wfreach.VertexID{}
	for i, p := range parts {
		n, perr := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if perr != nil {
			return 0, 0, fmt.Errorf("query %q: %q is not a vertex id", q, strings.TrimSpace(p))
		}
		if n < 0 {
			return 0, 0, fmt.Errorf("query %q: vertex id %d is negative", q, n)
		}
		ids[i] = wfreach.VertexID(n)
	}
	return ids[0], ids[1], nil
}
