// Command wflabel labels a workflow run on the fly and answers
// reachability (provenance) queries from the labels.
//
// Usage:
//
//	wflabel -spec spec.xml -run run.xml -stats
//	wflabel -spec spec.xml -run run.xml -query 3,141 -query 0,20
//	wflabel -spec spec.xml -size 2048 -seed 5 -stats -verify
//	wflabel -addr http://127.0.0.1:8080 -size 2048 -query 3,141 -query 0,20
//
// Without -run a random run of -size vertices is generated. With
// -exec the execution-based labeler is used (events replayed in
// topological order) instead of the derivation-based one.
//
// With -addr the labeling happens on a running wfserve instead of in
// process: wflabel creates a session (named by -session) with the
// specification, streams the run's execution over the binary frame
// format through the Go client SDK, answers every -query in a single
// batch-reach roundtrip, and deletes the session unless -keep is
// given. -stats then reports the server's session statistics, and
// -verify samples server answers against local BFS ground truth.
//
// With -addr and -integrity, wflabel instead audits an existing
// session: it prints the session's tamper-evidence anchors (the WAL
// hash-chain head and, once a stamped snapshot exists, its Merkle
// root) in exactly the form `wfverify -head` consumes, and exits —
// nothing is created, ingested, or deleted:
//
//	wflabel -addr http://127.0.0.1:8080 -session prod -integrity
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"wfreach"
	"wfreach/client"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ";") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	specPath := flag.String("spec", "", "specification XML (empty = built-in running example)")
	runPath := flag.String("run", "", "run XML (empty = generate with -size/-seed)")
	size := flag.Int("size", 1024, "generated run size")
	seed := flag.Int64("seed", 1, "generation seed")
	useExec := flag.Bool("exec", false, "use the execution-based labeler")
	useBFS := flag.Bool("bfs", false, "use the BFS skeleton instead of TCL")
	stats := flag.Bool("stats", false, "print label statistics")
	verify := flag.Bool("verify", false, "verify labels against BFS ground truth (all pairs locally, a sample with -addr)")
	addr := flag.String("addr", "", "wfserve base URL: label on the server through the client SDK instead of in process")
	session := flag.String("session", "wflabel", "with -addr: session name to create")
	keep := flag.Bool("keep", false, "with -addr: leave the session on the server when done")
	integ := flag.Bool("integrity", false, "with -addr: print the named session's tamper-evidence anchors and exit (no run, no ingest)")
	var queries queryList
	flag.Var(&queries, "query", "reachability query \"v,w\" (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "wflabel: %v\n", err)
		os.Exit(1)
	}

	// Integrity audit mode: query an existing session's anchors and
	// exit — no run generation, no ingest, nothing created or deleted.
	if *integ {
		if *addr == "" {
			fail(errors.New("-integrity requires -addr"))
		}
		if err := printIntegrity(*addr, *session, os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	s := wfreach.RunningExample()
	if *specPath != "" {
		var err error
		if s, err = wfreach.LoadSpec(*specPath); err != nil {
			fail(err)
		}
	}
	g, err := wfreach.Compile(s)
	if err != nil {
		fail(err)
	}
	var r *wfreach.Run
	if *runPath != "" {
		if r, err = wfreach.LoadRun(*runPath, g); err != nil {
			fail(err)
		}
	} else {
		if r, err = wfreach.Generate(g, wfreach.GenOptions{TargetSize: *size, Seed: *seed}); err != nil {
			fail(err)
		}
	}

	fmt.Printf("grammar: class=%s, |G(S)|=%d graphs, run: %d vertices, %d edges\n",
		g.Class(), len(s.Graphs()), r.Size(), r.Graph.NumEdges())

	if *addr != "" {
		if err := runRemote(remoteConfig{
			addr: *addr, session: *session, keep: *keep,
			bfs: *useBFS, stats: *stats, verify: *verify, queries: queries,
		}, s, r, os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	kind := wfreach.TCL
	if *useBFS {
		kind = wfreach.BFS
	}

	var reach func(v, w wfreach.VertexID) bool
	var labelOf func(v wfreach.VertexID) (wfreach.Label, bool)
	if *useExec {
		events, err := r.Execution(nil)
		if err != nil {
			fail(err)
		}
		e, err := wfreach.LabelExecution(g, events, kind, wfreach.RModeDesignated)
		if err != nil {
			fail(err)
		}
		reach, labelOf = e.Reach, e.Label
	} else {
		d, err := wfreach.LabelRun(r, kind, wfreach.RModeDesignated)
		if err != nil {
			fail(err)
		}
		reach, labelOf = d.Reach, d.Label
	}

	if *stats {
		codec := wfreach.NewLabelCodec(g)
		maxBits, total, count := 0, 0, 0
		for _, v := range r.Graph.LiveVertices() {
			l, ok := labelOf(v)
			if !ok {
				fail(fmt.Errorf("vertex %d unlabeled", v))
			}
			b := codec.BitLen(l)
			if b > maxBits {
				maxBits = b
			}
			total += b
			count++
		}
		fmt.Printf("labels: max %d bits, avg %.1f bits over %d vertices\n",
			maxBits, float64(total)/float64(count), count)
	}

	if *verify {
		live := r.Graph.LiveVertices()
		checked := 0
		for _, v := range live {
			for _, w := range live {
				if reach(v, w) != r.Graph.Reaches(v, w) {
					fail(fmt.Errorf("label answer diverges from ground truth at (%d,%d)", v, w))
				}
				checked++
			}
		}
		fmt.Printf("verified %d pairs against ground truth\n", checked)
	}

	for _, q := range queries {
		vid, wid, err := parseQuery(q)
		if err != nil {
			fail(err)
		}
		if _, ok := labelOf(vid); !ok {
			fail(fmt.Errorf("query %q: vertex %d is not a labeled run vertex", q, vid))
		}
		if _, ok := labelOf(wid); !ok {
			fail(fmt.Errorf("query %q: vertex %d is not a labeled run vertex", q, wid))
		}
		fmt.Printf("reach(%d→%d) = %v   (%s → %s)\n", vid, wid, reach(vid, wid), r.NameOf(vid), r.NameOf(wid))
	}
}

type remoteConfig struct {
	addr    string
	session string
	keep    bool
	bfs     bool
	stats   bool
	verify  bool
	queries queryList
}

// printIntegrity fetches and prints an existing session's
// tamper-evidence anchors in exactly the form wfverify -head consumes.
// A server without a hash-chained log for the session (memory-only, or
// data predating the chain) answers a typed not_durable error, which
// is reported as unavailability, not failure.
func printIntegrity(addr, session string, out io.Writer) error {
	st, err := client.New(addr).Integrity(context.Background(), session)
	var ae *client.Error
	switch {
	case errors.As(err, &ae) && ae.Code == client.CodeNotDurable:
		fmt.Fprintf(out, "integrity: unavailable (%s)\n", ae.Message)
		return nil
	case err != nil:
		return fmt.Errorf("integrity: %w", err)
	}
	fmt.Fprintf(out, "integrity: chain %s at seq %d", st.ChainHead, st.WALSeq)
	if st.MerkleRoot != "" {
		fmt.Fprintf(out, ", snapshot merkle %s at %d", st.MerkleRoot, st.SnapshotWatermark)
	}
	fmt.Fprintf(out, "\n  anchor for: wfverify -data <dir> -session %s -head %s\n", session, st.ChainHead)
	return nil
}

// remoteVerifySample is how many random pairs -verify checks against
// the server in remote mode (the local mode checks all n², which
// would be n² roundtrips here).
const remoteVerifySample = 2000

// runRemote labels the run on a wfserve: create a session over the
// specification, stream the execution through the SDK's binary-frame
// uploader, then answer every query in one batch-reach roundtrip.
func runRemote(cfg remoteConfig, s *wfreach.Spec, r *wfreach.Run, out io.Writer) error {
	ctx := context.Background()
	c := client.New(cfg.addr)

	events, err := r.Execution(nil)
	if err != nil {
		return err
	}
	xml, err := wfreach.SpecXML(s)
	if err != nil {
		return err
	}
	req := client.CreateSessionRequest{Name: cfg.session, SpecXML: xml}
	if cfg.bfs {
		req.Skeleton = "BFS"
	}
	if _, err := c.CreateSession(ctx, req); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	if !cfg.keep {
		defer c.DeleteSession(context.Background(), cfg.session)
	}

	stream := c.Stream(ctx, cfg.session, client.StreamOptions{})
	for _, ev := range events {
		if err := stream.Send(wfreach.ToWire(ev)); err != nil {
			return fmt.Errorf("stream events: %w", err)
		}
	}
	if err := stream.Close(); err != nil {
		return fmt.Errorf("stream events: %w", err)
	}
	fmt.Fprintf(out, "streamed %d events to %s (session %q)\n", stream.Applied(), cfg.addr, cfg.session)

	if cfg.stats {
		st, err := c.Session(ctx, cfg.session)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "server session: %d vertices in %d batches, %d label bits (%d skeleton bits), skeleton %s, mode %s\n",
			st.Vertices, st.Batches, st.LabelBits, st.SkeletonBits, st.Skeleton, st.Mode)
	}

	if cfg.verify {
		live := r.Graph.LiveVertices()
		rng := rand.New(rand.NewSource(1))
		pairs := make([]client.ReachPair, 0, remoteVerifySample)
		for i := 0; i < remoteVerifySample; i++ {
			pairs = append(pairs, client.ReachPair{
				From: int32(live[rng.Intn(len(live))]),
				To:   int32(live[rng.Intn(len(live))]),
			})
		}
		answers, err := c.ReachBatch(ctx, cfg.session, pairs)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		for _, ans := range answers {
			if ans.Code != "" {
				return fmt.Errorf("verify: reach(%d,%d): %s: %s", ans.From, ans.To, ans.Code, ans.Error)
			}
			if want := r.Graph.Reaches(wfreach.VertexID(ans.From), wfreach.VertexID(ans.To)); ans.Reachable != want {
				return fmt.Errorf("server answer diverges from ground truth at (%d,%d)", ans.From, ans.To)
			}
		}
		fmt.Fprintf(out, "verified %d sampled pairs against ground truth\n", len(answers))
	}

	if len(cfg.queries) == 0 {
		return nil
	}
	pairs := make([]client.ReachPair, len(cfg.queries))
	for i, q := range cfg.queries {
		vid, wid, err := parseQuery(q)
		if err != nil {
			return err
		}
		pairs[i] = client.ReachPair{From: int32(vid), To: int32(wid)}
	}
	// Every -query answered in one roundtrip.
	answers, err := c.ReachBatch(ctx, cfg.session, pairs)
	if err != nil {
		return err
	}
	for i, ans := range answers {
		if ans.Code != "" {
			return fmt.Errorf("query %q: %s: %s", cfg.queries[i], ans.Code, ans.Error)
		}
		v, w := wfreach.VertexID(ans.From), wfreach.VertexID(ans.To)
		fmt.Fprintf(out, "reach(%d→%d) = %v   (%s → %s)\n", ans.From, ans.To, ans.Reachable, r.NameOf(v), r.NameOf(w))
	}
	return nil
}

// parseQuery parses a -query value "v,w" into two vertex ids. Exactly
// two comma-separated non-negative integers within the VertexID range
// are accepted; anything else is a descriptive error.
func parseQuery(q string) (v, w wfreach.VertexID, err error) {
	parts := strings.Split(q, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("query %q is not \"v,w\" (two comma-separated vertex ids)", q)
	}
	ids := [2]wfreach.VertexID{}
	for i, p := range parts {
		n, perr := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if perr != nil {
			return 0, 0, fmt.Errorf("query %q: %q is not a vertex id", q, strings.TrimSpace(p))
		}
		if n < 0 {
			return 0, 0, fmt.Errorf("query %q: vertex id %d is negative", q, n)
		}
		ids[i] = wfreach.VertexID(n)
	}
	return ids[0], ids[1], nil
}
