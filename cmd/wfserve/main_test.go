package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"wfreach"
	"wfreach/client"
)

func buildOnce(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and drives the wfserve binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "wfserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// startServer launches the binary on an ephemeral port and returns its
// base URL, scraping the printed listen address.
func startServer(t *testing.T, args ...string) string {
	base, _ := startServerCmd(t, buildOnce(t), args...)
	return base
}

// startServerCmd is startServer with a prebuilt binary, also handing
// back the process so tests can kill it abruptly.
func startServerCmd(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	urlCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
				urlCh <- strings.TrimSpace(rest)
				return
			}
		}
	}()
	select {
	case u := <-urlCh:
		return u, cmd
	case <-deadline:
		t.Fatal("server never printed its listen address")
		return "", nil
	}
}

func TestWfserveEndToEnd(t *testing.T) {
	base := startServer(t)

	// Create a session on a built-in spec.
	body, _ := json.Marshal(map[string]string{"name": "e2e", "builtin": "RunningExample"})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	// Stream a generated execution and query it.
	g := wfreach.MustCompile(wfreach.RunningExample())
	events, r, err := wfreach.GenerateEvents(g, wfreach.GenOptions{TargetSize: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]wfreach.WireEvent, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	body, _ = json.Marshal(map[string]any{"events": wire})
	resp, err = http.Post(base+"/v1/sessions/e2e/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}

	for i := 0; i < 50; i++ {
		v, w := events[i%len(events)].V, events[(i*13)%len(events)].V
		resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/e2e/reach?from=%d&to=%d", base, v, w))
		if err != nil {
			t.Fatal(err)
		}
		var rr struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if want := r.Graph.Reaches(v, w); rr.Reachable != want {
			t.Fatalf("reach(%d,%d) = %v, oracle %v", v, w, rr.Reachable, want)
		}
	}
}

func TestWfservePrecreatedSession(t *testing.T) {
	base := startServer(t, "-session", "pre=BioAID")
	resp, err := http.Get(base + "/v1/sessions/pre")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st wfreach.SessionStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "pre" || st.Class != "linear-recursive" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWfserveBadSessionFlag(t *testing.T) {
	bin := buildOnce(t)
	for _, args := range [][]string{
		{"-session", "nonsense"},
		{"-session", "x=NoSuchSpec"},
	} {
		if out, err := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...).CombinedOutput(); err == nil {
			t.Fatalf("args %v should fail:\n%s", args, out)
		}
	}
}

// TestWfserveCrashRecovery is the end-to-end durability check: a
// server with -data is killed (SIGKILL, no shutdown path) while a
// client is streaming events; a second server on the same directory
// must recover the session and answer every reachability query over
// the recovered prefix exactly as an uninterrupted run would —
// verified against BFS ground truth on the generated run.
func TestWfserveCrashRecovery(t *testing.T) {
	bin := buildOnce(t)
	dataDir := t.TempDir()
	base, cmd := startServerCmd(t, bin, "-data", dataDir)

	body, _ := json.Marshal(map[string]string{"name": "crash", "builtin": "RunningExample"})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	g := wfreach.MustCompile(wfreach.RunningExample())
	events, r, err := wfreach.GenerateEvents(g, wfreach.GenOptions{TargetSize: 600, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Stream in small batches from a goroutine and SIGKILL the server
	// while the stream is in flight.
	const batch = 20
	var acked atomic.Int64
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		for lo := 0; lo < len(events); lo += batch {
			hi := lo + batch
			if hi > len(events) {
				hi = len(events)
			}
			wire := make([]wfreach.WireEvent, 0, hi-lo)
			for _, ev := range events[lo:hi] {
				wire = append(wire, wfreach.ToWire(ev))
			}
			b, _ := json.Marshal(map[string]any{"events": wire})
			resp, err := http.Post(base+"/v1/sessions/crash/events", "application/json", bytes.NewReader(b))
			if err != nil {
				return // the kill landed
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			acked.Store(int64(hi))
		}
	}()
	for acked.Load() < 5*batch {
		time.Sleep(time.Millisecond)
	}
	_ = cmd.Process.Kill()
	<-streamDone
	_ = cmd.Wait()
	ackedN := int(acked.Load())
	if ackedN >= len(events) {
		t.Fatalf("stream finished before the kill; raise the event count")
	}

	// Restart on the same directory.
	base2, _ := startServerCmd(t, bin, "-data", dataDir)
	resp, err = http.Get(base2 + "/v1/sessions/crash")
	if err != nil {
		t.Fatal(err)
	}
	var st wfreach.SessionStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Durable {
		t.Fatal("recovered session not marked durable")
	}
	n := int(st.Vertices)
	// Everything acknowledged must have survived; a partially logged
	// in-flight batch may legitimately push n past ackedN.
	if n < ackedN || n > len(events) {
		t.Fatalf("recovered %d vertices, acked %d of %d", n, ackedN, len(events))
	}

	// Every query over the recovered prefix must match the BFS oracle.
	for i := 0; i < n; i++ {
		for _, j := range []int{0, i / 2, i, n - 1 - i%n} {
			v, w := events[i].V, events[j].V
			resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/crash/reach?from=%d&to=%d", base2, v, w))
			if err != nil {
				t.Fatal(err)
			}
			var rr struct {
				Reachable bool `json:"reachable"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if want := r.Reaches(v, w); rr.Reachable != want {
				t.Fatalf("after recovery reach(%d,%d) = %v, oracle %v", v, w, rr.Reachable, want)
			}
		}
	}
}

// TestWfserveGracefulShutdown exercises the SIGTERM path: a durable
// server is asked to shut down while it holds acknowledged events; it
// must exit zero (drain, flush, close the WALs) and a second server on
// the same directory must restore every acknowledged vertex.
func TestWfserveGracefulShutdown(t *testing.T) {
	bin := buildOnce(t)
	dataDir := t.TempDir()
	base, cmd := startServerCmd(t, bin, "-data", dataDir)

	body, _ := json.Marshal(map[string]string{"name": "calm", "builtin": "RunningExample"})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	g := wfreach.MustCompile(wfreach.RunningExample())
	events, r, err := wfreach.GenerateEvents(g, wfreach.GenOptions{TargetSize: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]wfreach.WireEvent, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	b, _ := json.Marshal(map[string]any{"events": wire})
	resp, err = http.Post(base+"/v1/sessions/calm/events", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("server did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit within 15s of SIGTERM")
	}

	// Everything acknowledged survives the planned restart.
	base2, _ := startServerCmd(t, bin, "-data", dataDir)
	resp, err = http.Get(base2 + "/v1/sessions/calm")
	if err != nil {
		t.Fatal(err)
	}
	var st wfreach.SessionStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Vertices != int64(len(events)) {
		t.Fatalf("recovered %d vertices, want %d", st.Vertices, len(events))
	}
	for i := 0; i < 40; i++ {
		v, w := events[i%len(events)].V, events[(i*17)%len(events)].V
		resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/calm/reach?from=%d&to=%d", base2, v, w))
		if err != nil {
			t.Fatal(err)
		}
		var rr struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if want := r.Reaches(v, w); rr.Reachable != want {
			t.Fatalf("after restart reach(%d,%d) = %v, oracle %v", v, w, rr.Reachable, want)
		}
	}
}

// TestWfserveFollowerPromote is the end-to-end failover drill: a
// durable primary and a durable follower (-follow) as separate
// processes, writes streamed to the primary and replicated to the
// follower, reads answered by the follower; then the primary is
// SIGKILLed, the follower is promoted via `wfserve -promote`, ingest
// continues against the promoted server, and a restart of it recovers
// the full stream — its WAL is a valid continuation.
func TestWfserveFollowerPromote(t *testing.T) {
	bin := buildOnce(t)
	pdir, fdir := t.TempDir(), t.TempDir()
	pbase, pcmd := startServerCmd(t, bin, "-data", pdir)
	fbase, _ := startServerCmd(t, bin, "-data", fdir, "-follow", pbase, "-follow-poll", "100ms")

	ctx := context.Background()
	pc := client.New(pbase)
	fc := client.New(fbase)
	if _, err := pc.CreateSession(ctx, client.CreateSessionRequest{Name: "fo", Builtin: "RunningExample"}); err != nil {
		t.Fatal(err)
	}
	g := wfreach.MustCompile(wfreach.RunningExample())
	events, r, err := wfreach.GenerateEvents(g, wfreach.GenOptions{TargetSize: 400, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	half := len(wire) / 2
	if _, err := pc.IngestFrames(ctx, "fo", wire[:half]); err != nil {
		t.Fatal(err)
	}

	// The follower catches up (status-API driven) and answers reads.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := fc.ReplicationStatus(ctx)
		if err == nil && st.Role == "follower" && len(st.Sessions) == 1 && st.Sessions[0].WALSeq == int64(half) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v, %v", st, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	for i := 0; i < half; i += 9 {
		v, w := events[i].V, events[(i*7)%half].V
		got, err := fc.Reach(ctx, "fo", int32(v), int32(w))
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Reaches(v, w); got != want {
			t.Fatalf("follower reach(%d,%d) = %v, oracle %v", v, w, got, want)
		}
	}
	// A write against the follower redirects to the primary.
	if _, err := fc.IngestFrames(ctx, "fo", wire[half:half+1]); err != nil {
		t.Fatalf("redirected write: %v", err)
	}
	half++
	// Let replication drain before the kill: an event the primary
	// acknowledged but never shipped is legitimately lost on failover,
	// and this test wants the lossless path.
	for {
		st, err := fc.ReplicationStatus(ctx)
		if err == nil && len(st.Sessions) == 1 && st.Sessions[0].WALSeq == int64(half) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("redirected write never replicated")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Failover: SIGKILL the primary, promote the follower through the
	// admin flag, and keep ingesting against the promoted server.
	_ = pcmd.Process.Kill()
	_ = pcmd.Wait()
	if out, err := exec.Command(bin, "-promote", fbase).CombinedOutput(); err != nil {
		t.Fatalf("wfserve -promote: %v\n%s", err, out)
	}
	if _, err := fc.IngestFrames(ctx, "fo", wire[half:]); err != nil {
		t.Fatalf("ingest after promote: %v", err)
	}
	st, err := fc.Session(ctx, "fo")
	if err != nil || st.Vertices != int64(len(events)) {
		t.Fatalf("promoted session: %+v, %v", st, err)
	}
	for i := 0; i < len(events); i += 9 {
		v, w := events[i].V, events[(i*11)%len(events)].V
		got, err := fc.Reach(ctx, "fo", int32(v), int32(w))
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Reaches(v, w); got != want {
			t.Fatalf("promoted reach(%d,%d) = %v, oracle %v", v, w, got, want)
		}
	}

	// The promoted server's WAL restores cleanly in a fresh process.
	rbase, _ := startServerCmd(t, bin, "-data", fdir)
	rc := client.New(rbase)
	st, err = rc.Session(ctx, "fo")
	if err != nil || st.Vertices != int64(len(events)) {
		t.Fatalf("restore of promoted data: %+v, %v", st, err)
	}
}

// TestWfserveShardsFlag checks -shards steers the default store shard
// count of created sessions.
func TestWfserveShardsFlag(t *testing.T) {
	base := startServer(t, "-shards", "4", "-session", "sh=RunningExample")
	resp, err := http.Get(base + "/v1/sessions/sh")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wfreach.SessionStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("session has %d shards, want 4 from -shards", len(st.Shards))
	}
}
