// Command wfserve is the concurrent provenance service: a long-lived
// HTTP server hosting many labeling sessions, each ingesting workflow
// execution events as they happen and answering label-based
// reachability queries over the partial, still-running execution.
//
// Usage:
//
//	wfserve -addr :8080
//	wfserve -addr 127.0.0.1:0 -session demo=BioAID
//	wfserve -addr :8080 -data /var/lib/wfserve -shards 32
//	wfserve -addr :8080 -debug-addr 127.0.0.1:6060
//
// # Observability
//
// GET /v1/metrics serves the node's metrics registry in the
// Prometheus text exposition format: ingest throughput, WAL commit
// and fsync latency, snapshot and restore durations, replica lag,
// cluster move counters (metric table in ARCHITECTURE.md). Every
// request is logged as one structured logfmt line on stderr (request
// id, method, route, status, bytes, duration); requests slower than
// -slow-request get an extra warn line. -debug-addr serves
// net/http/pprof on a separate listener, so profiling never shares
// the API port.
//
// With -data the service is durable: every session persists its
// specification, an append-only write-ahead log of ingested events,
// and periodic label snapshots under the given directory (the on-disk
// format is specified in ARCHITECTURE.md). On startup all sessions
// found there are restored — a server killed mid-ingest comes back
// answering exactly what it had acknowledged — and ingestion resumes
// where the log ends. -fsync (default true) makes acknowledged batches
// survive machine crashes, not just process crashes; -snapshot-every
// tunes how many events may need label re-encoding at recovery.
// Concurrent batches across sessions share WAL flushes through group
// commit.
//
// -shards sets the default store shard count for new and restored
// sessions (a per-session "shards" field on the create request
// overrides it). Queries run lock-free against the sharded store's
// published views, so more shards chiefly buy cheaper publishes on
// very large sessions.
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting connections, drains in-flight requests (live WAL tails
// are cut by the shutdown signal so the drain never waits on them),
// then flushes and closes every session's write-ahead log, so a
// planned restart never relies on crash recovery.
//
// # Replication
//
//	wfserve -addr :8081 -data /var/lib/wfreplica -follow http://primary:8080
//	wfserve -promote http://replica:8081
//
// With -follow the server is a read-only follower: it discovers the
// primary's sessions, tails each session's write-ahead log over
// GET /v1/sessions/{name}/wal (history first, then live), and replays
// the shipped frames — byte-identical to both the primary's WAL
// records and the binary ingest frames — into local sessions teed to
// its own WAL. It serves the full query surface (reach, batch reach,
// lineage, stats) while rejecting writes with a structured read_only
// error naming the primary; the Go SDK redirects such writes
// automatically. A restarted follower resumes from its own recovered
// log. GET /v1/replication/status reports role and per-session
// sequences on both sides; replica lag is the primary's wal_seq minus
// the follower's.
//
// -promote is the failover command: it POSTs /v1/replication/promote
// to the named follower — final catch-up from the primary if it is
// still reachable, then flip to writable — prints the resulting
// status, and exits. The promoted server's WAL is a valid
// continuation of everything it replicated, so its next restart
// recovers normally.
//
// # Clustering
//
//	wfserve -addr :8081 -data /var/lib/wf-a -cluster cluster.json -node a
//	wfserve -addr :8082 -data /var/lib/wf-b -cluster cluster.json -node b
//
// With -cluster the server is one node of a session-partitioned
// cluster: the JSON map file (shared by every node) lists the node
// set, sessions are placed on nodes by consistent hashing on the
// session name, and each node serves only the sessions it owns.
// Requests for a session owned elsewhere are rejected with a
// structured wrong_node error naming the owner's base URL; the Go
// SDK's client.Cluster follows such rejections automatically. The
// /v1/cluster routes expose the map, a health view (role, WAL
// sequences, peer liveness), and POST /v1/cluster/move, which
// transfers one live session to another node by tailing its WAL —
// ingest continues on the old owner until the handoff instant, and
// no acknowledged event is lost. Cluster mode requires -data (moves
// ride the write-ahead log) and composes with per-node replication:
// give each node its own -follow replica and record it in the map's
// "follower" fields so clients can fail over.
//
// The versioned /v1 API (wire contract in internal/api, full
// reference with curl and Go-client snippets in docs/API.md; drive it
// programmatically with the wfreach/client SDK):
//
//	POST   /v1/sessions                 {"name":"r1","builtin":"BioAID"}
//	POST   /v1/sessions                 {"name":"r2","spec_xml":"<spec>…","shards":32}
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{name}          session stats (also /v1/sessions/{name}/stats)
//	DELETE /v1/sessions/{name}          drop a session
//	POST   /v1/sessions/{name}/events   {"events":[…]} — or a binary frame stream
//	                                    (Content-Type application/x-wfreach-frame)
//	POST   /v1/sessions/{name}/reach    {"pairs":[{"from":3,"to":141},…]} batch query
//	GET    /v1/sessions/{name}/reach    ?from=3&to=141 (deprecated single-pair form)
//	GET    /v1/sessions/{name}/lineage  ?of=12&cursor=&limit= (paginated)
//
// Events carry either a specification reference ("graph","vertex") or
// a module "name" (the Section 5.3 naming-restriction setting). On a
// durable server, binary-frame ingest is teed to the write-ahead log
// byte-for-byte — the wire frame and the WAL frame are the same
// format. Errors are structured ({"error":{"code","message","detail"}})
// with machine-readable codes; the pre-/v1 unversioned paths survive
// as deprecated adapters. The bound address is printed on startup so
// callers can use -addr :0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wfreach"
	"wfreach/client"
)

type sessionFlags []string

func (s *sessionFlags) String() string     { return strings.Join(*s, ";") }
func (s *sessionFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	dataDir := flag.String("data", "", "data directory: persist sessions (WAL + snapshots) and restore them on boot")
	fsync := flag.Bool("fsync", true, "with -data: fsync the WAL before acknowledging a batch")
	snapEvery := flag.Int("snapshot-every", 0, "with -data: events between label snapshots (0 = default, <0 disables)")
	shards := flag.Int("shards", 0, "default store shard count per session (0 = built-in default)")
	drain := flag.Duration("drain", 10*time.Second, "in-flight request drain timeout on shutdown")
	follow := flag.String("follow", "", "run as a read-only follower replicating the primary at this base URL")
	followPoll := flag.Duration("follow-poll", 2*time.Second, "with -follow: session-discovery poll interval")
	promote := flag.String("promote", "", "admin mode: promote the follower at this base URL to writable, print its status, exit")
	clusterFile := flag.String("cluster", "", "run as one node of a session-partitioned cluster defined by this JSON map file (requires -data and -node)")
	nodeName := flag.String("node", "", "with -cluster: this server's node name in the map")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate listener (empty disables)")
	slowReq := flag.Duration("slow-request", time.Second, "log a warn line for requests slower than this (0 disables)")
	var sessions sessionFlags
	flag.Var(&sessions, "session", "pre-create a session \"name=Builtin\" (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
		os.Exit(1)
	}
	if *promote != "" {
		if err := runPromote(*promote); err != nil {
			fail(err)
		}
		return
	}
	if *shards < 0 {
		fail(fmt.Errorf("-shards must be non-negative, got %d", *shards))
	}
	if *follow != "" && len(sessions) > 0 {
		fail(fmt.Errorf("-session creates sessions, which a -follow replica must not; drop one of the flags"))
	}
	if (*clusterFile == "") != (*nodeName == "") {
		fail(fmt.Errorf("-cluster and -node go together: the map file defines the cluster, -node says which entry this server is"))
	}
	if *clusterFile != "" && *dataDir == "" {
		fail(fmt.Errorf("-cluster requires -data: session moves ride the write-ahead log"))
	}
	if *clusterFile != "" && *follow != "" {
		fail(fmt.Errorf("-cluster and -follow are different roles: a cluster node is a primary; run its replica as a plain -follow server and list it in the map's follower field"))
	}

	reg := wfreach.NewRegistry()
	if *dataDir != "" {
		var err error
		reg, err = wfreach.NewDurableRegistry(wfreach.DurableOptions{
			Dir: *dataDir, SnapshotEvery: *snapEvery, Fsync: *fsync,
		})
		if err != nil {
			fail(err)
		}
		reg.SetDefaultShards(*shards)
		restoreStart := time.Now()
		restored, err := reg.Restore(*dataDir)
		if err != nil {
			fail(err)
		}
		elapsed := time.Since(restoreStart)
		var labels int64
		for _, name := range restored {
			if s, ok := reg.Get(name); ok {
				labels += s.Vertices()
			}
		}
		rate := float64(labels) / max(elapsed.Seconds(), 1e-9)
		fmt.Printf("wfserve: durable under %s, restored %d session(s) in %s (%.0f labels/sec)\n",
			*dataDir, len(restored), elapsed.Round(time.Millisecond), rate)
		for _, name := range restored {
			if s, ok := reg.Get(name); ok {
				st := s.Stats()
				fmt.Printf("wfserve: restored %q: %d vertices (%d arena-mapped), WAL seq %d\n",
					name, st.Vertices, st.ArenaVertices, s.WALSeq())
			}
		}
	} else {
		reg.SetDefaultShards(*shards)
	}
	var follower *wfreach.Follower
	if *follow != "" {
		follower = wfreach.NewFollower(*follow, reg, wfreach.FollowerOptions{
			PollInterval: *followPoll,
			Logf: func(format string, args ...any) {
				fmt.Printf("wfserve: "+format+"\n", args...)
			},
		})
		follower.Start()
		fmt.Printf("wfserve: following %s (read-only until promoted)\n", *follow)
	}
	for _, sf := range sessions {
		name, builtin, ok := strings.Cut(sf, "=")
		if !ok {
			fail(fmt.Errorf("-session %q is not \"name=Builtin\"", sf))
		}
		if _, exists := reg.Get(name); exists {
			// The restored session wins; its spec may differ from the
			// flag's builtin, so say so instead of silently skipping.
			fmt.Printf("wfserve: session %q already restored from -data; ignoring -session %s\n", name, sf)
			continue
		}
		if err := createBuiltin(reg, name, builtin); err != nil {
			fail(err)
		}
		fmt.Printf("wfserve: session %q on builtin %s\n", name, builtin)
	}

	var ctl *wfreach.ClusterController
	if *clusterFile != "" {
		m, err := wfreach.LoadClusterMap(*clusterFile)
		if err != nil {
			fail(err)
		}
		ctl, err = wfreach.NewClusterController(*nodeName, m, reg, wfreach.ClusterOptions{
			Logf: func(format string, args ...any) {
				fmt.Printf("wfserve: "+format+"\n", args...)
			},
		})
		if err != nil {
			fail(err)
		}
		ctl.Start()
		fmt.Printf("wfserve: cluster node %q of %d (map v%d from %s)\n",
			*nodeName, len(m.Nodes), m.Version, *clusterFile)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("wfserve: listening on http://%s\n", ln.Addr())

	if *debugAddr != "" {
		// pprof rides the default mux (the blank net/http/pprof import),
		// served on its own listener so profiling never shares a port —
		// or an authn perimeter — with the API.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(fmt.Errorf("-debug-addr: %w", err))
		}
		go func() { _ = http.Serve(dln, nil) }()
		fmt.Printf("wfserve: debug (pprof) on http://%s/debug/pprof/\n", dln.Addr())
	}

	logger := wfreach.NewObsLogger(os.Stderr)
	mode := "memory"
	if *dataDir != "" {
		mode = "durable"
	}
	if *follow != "" {
		mode = "follower"
	}
	if *clusterFile != "" {
		mode = "cluster"
	}
	var walSeqs []string
	for _, name := range reg.Names() {
		if s, ok := reg.Get(name); ok {
			walSeqs = append(walSeqs, fmt.Sprintf("%s=%d", name, s.WALSeq()))
		}
	}
	logger.Info("server started",
		"mode", mode,
		"addr", ln.Addr().String(),
		"data", *dataDir,
		"shards", *shards,
		"sessions", len(walSeqs),
		"wal_seqs", strings.Join(walSeqs, ","),
	)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and
	// close the registry so the WALs end flushed instead of relying on
	// crash recovery at the next boot. Request contexts derive from the
	// signal context, so live WAL tails end at the signal instead of
	// pinning the drain until its timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Handler: wfreach.AccessLog(wfreach.NewServiceHandler(reg), logger,
			wfreach.AccessLogOptions{Slow: *slowReq, Metrics: reg.Obs()}),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		fmt.Printf("wfserve: shutting down (draining up to %v)\n", *drain)
		drainStart := time.Now()
		if follower != nil {
			follower.Close()
		}
		if ctl != nil {
			ctl.Close()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "wfserve: drain: %v\n", err)
		}
		if err := reg.Close(); err != nil {
			fail(fmt.Errorf("closing sessions: %w", err))
		}
		logger.Info("shutdown complete", "drain", time.Since(drainStart).Round(time.Millisecond).String())
	}
}

// runPromote drives the promote admin endpoint on a running follower.
func runPromote(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := client.New(base).Promote(ctx)
	if err != nil {
		return fmt.Errorf("promote %s: %w", base, err)
	}
	fmt.Printf("wfserve: promoted %s to %s\n", base, st.Role)
	for _, s := range st.Sessions {
		fmt.Printf("wfserve: session %q at WAL seq %d\n", s.Name, s.WALSeq)
	}
	return nil
}

func createBuiltin(reg *wfreach.Registry, name, builtin string) error {
	spec, ok := wfreach.BuiltinSpec(builtin)
	if !ok {
		return fmt.Errorf("unknown builtin %q (have %s)", builtin, strings.Join(wfreach.BuiltinSpecNames(), ", "))
	}
	g, err := wfreach.Compile(spec)
	if err != nil {
		return err
	}
	_, err = reg.Create(name, g, wfreach.SessionConfig{})
	return err
}
