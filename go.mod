module wfreach

go 1.24
