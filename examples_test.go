package wfreach_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end; each must
// exit zero and print its headline result.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := map[string]string{
		"./examples/quickstart": "longest label",
		"./examples/provenance": "lineage",
		"./examples/streaming":  "labels identical to the derivation-based scheme",
		"./examples/nonlinear":  "lower bound is real",
		"./examples/namedlog":   "provenance from names alone",
	}
	for dir, want := range cases {
		dir, want := dir, want
		t.Run(strings.TrimPrefix(dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", dir)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", dir, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("%s output missing %q:\n%s", dir, want, out)
			}
		})
	}
}
