package wfreach_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wfreach"
)

// Example demonstrates end-to-end use of the public API on the paper's
// running example: compile the specification, derive a run, label it,
// and answer a provenance query.
func Example() {
	s := wfreach.RunningExample()
	g := wfreach.MustCompile(s)
	fmt.Println("class:", g.Class())

	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 50, Seed: 1})
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		panic(err)
	}
	src := r.Graph.Sources()[0]
	snk := r.Graph.Sinks()[0]
	fmt.Println("source reaches sink:", d.Reach(src, snk))
	fmt.Println("sink reaches source:", d.Reach(snk, src))
	// Output:
	// class: linear-recursive
	// source reaches sink: true
	// sink reaches source: false
}

// ExampleNewExecutionLabeler shows on-the-fly labeling: vertices are
// labeled as execution events stream in, and queries are answered over
// the partial run.
func ExampleNewExecutionLabeler() {
	g := wfreach.MustCompile(wfreach.RunningExample())
	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 40, Seed: 2})
	events, err := r.Execution(nil)
	if err != nil {
		panic(err)
	}
	e := wfreach.NewExecutionLabeler(g, wfreach.TCL, wfreach.RModeDesignated)
	// Feed only the first half of the execution.
	half := events[:len(events)/2]
	for _, ev := range half {
		if _, err := e.Insert(ev); err != nil {
			panic(err)
		}
	}
	// Query over the partial execution: the first inserted vertex (the
	// workflow source) reaches the most recent one.
	first, last := half[0].V, half[len(half)-1].V
	fmt.Println("partial query:", e.Reach(first, last))
	// Output:
	// partial query: true
}

func ExampleSpecBuilder() {
	s := wfreach.NewSpec().
		Loop("Align").
		Start("g0", wfreach.NewGraph([]string{"in", "Align", "out"},
			[2]string{"in", "Align"}, [2]string{"Align", "out"})).
		Implement("Align", "body", wfreach.NewGraph([]string{"read", "blast", "emit"},
			[2]string{"read", "blast"}, [2]string{"blast", "emit"})).
		MustBuild()
	g := wfreach.MustCompile(s)
	fmt.Println(g.Class())
	fmt.Println(g.MinRunSize())
	// Output:
	// non-recursive
	// 5
}

func TestPublicAPISurface(t *testing.T) {
	g := wfreach.MustCompile(wfreach.BioAID())
	if g.Class() != wfreach.ClassLinear {
		t.Fatalf("BioAID class = %v", g.Class())
	}
	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 200, Seed: 3})
	d, err := wfreach.LabelRun(r, wfreach.BFS, wfreach.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	codec := wfreach.NewLabelCodec(g)
	for _, v := range r.Graph.LiveVertices() {
		l := d.MustLabel(v)
		if codec.BitLen(l) <= 0 {
			t.Fatal("label has no bits")
		}
		dec, err := codec.Decode(codec.Encode(l))
		if err != nil || !dec.Equal(l) {
			t.Fatal("codec round trip failed")
		}
	}
}

func TestSKLFacade(t *testing.T) {
	g := wfreach.MustCompile(wfreach.BioAIDNonRecursive())
	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 150, Seed: 4})
	s, err := wfreach.BuildSKL(r, wfreach.TCL)
	if err != nil {
		t.Fatal(err)
	}
	src := r.Graph.Sources()[0]
	snk := r.Graph.Sinks()[0]
	if !s.Reach(src, snk) || s.Reach(snk, src) {
		t.Fatal("SKL facade broken")
	}
}

func TestTCLDynamicFacade(t *testing.T) {
	l := wfreach.NewTCLDynamic()
	if _, err := l.Insert(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Insert(1, []wfreach.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	ok, err := l.Reach(0, 1)
	if err != nil || !ok {
		t.Fatal("TCL dynamic facade broken")
	}
}

func TestXMLFacade(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")

	s := wfreach.RunningExample()
	if err := wfreach.SaveSpec(specPath, s); err != nil {
		t.Fatal(err)
	}
	s2, err := wfreach.LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != s.String() {
		t.Fatal("spec xml mismatch")
	}
	g := wfreach.MustCompile(s2)
	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 80, Seed: 5})
	if err := wfreach.SaveRun(runPath, r); err != nil {
		t.Fatal(err)
	}
	r2, err := wfreach.LoadRun(runPath, g)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != r.Size() {
		t.Fatal("run xml mismatch")
	}
	if _, err := wfreach.LoadSpec(filepath.Join(dir, "missing.xml")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := wfreach.LoadRun(filepath.Join(dir, "missing.xml"), g); err == nil {
		t.Fatal("missing run accepted")
	}
	if err := wfreach.SaveSpec(filepath.Join(dir, "nodir", "x.xml"), s); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := wfreach.SaveRun(filepath.Join(dir, "nodir", "x.xml"), r); err == nil {
		t.Fatal("bad path accepted")
	}
	// Keep os import honest.
	if _, err := os.Stat(specPath); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticFacade(t *testing.T) {
	s := wfreach.Synthetic(wfreach.SyntheticParams{SubSize: 10, Depth: 5, RecModules: 1, Seed: 6})
	g := wfreach.MustCompile(s)
	if !g.IsLinearRecursive() {
		t.Fatal("synthetic(1R) should be linear")
	}
	lb := wfreach.MustCompile(wfreach.LowerBoundGrammar())
	if lb.Class() != wfreach.ClassNonlinearParallel {
		t.Fatal("lower-bound grammar class wrong")
	}
	pg := wfreach.MustCompile(wfreach.PathGrammar())
	if pg.Class() != wfreach.ClassNonlinearSeries {
		t.Fatal("path grammar class wrong")
	}
}
