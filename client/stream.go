package client

import (
	"context"
	"errors"
	"sync"
	"time"

	"wfreach/internal/api"
)

// StreamOptions configures a Stream's batching.
type StreamOptions struct {
	// BatchSize flushes when this many events are buffered. Zero
	// selects 256.
	BatchSize int
	// FlushInterval, when positive, also flushes any buffered events
	// this long after the previous flush — bounding how stale a
	// low-rate stream's acknowledged prefix can get.
	FlushInterval time.Duration
}

// DefaultStreamBatch is the BatchSize used when StreamOptions leaves
// it zero.
const DefaultStreamBatch = 256

// Stream is a batching event uploader over the binary frame format.
// Send buffers an event (encoding it immediately into the frame the
// server will both ingest and, when durable, write to its log
// verbatim); a buffer of BatchSize events — or FlushInterval elapsing
// — posts one ingest request. Close flushes the tail.
//
// A Stream is safe for concurrent Send, though events interleave in
// arrival order. Any flush error poisons the stream: Send, Flush and
// Close return it from then on, and the events it covered are not
// retried (ingest is not idempotent). Applied() remains an accurate
// resync point even then — a partially applied batch's progress is
// read off the error envelope.
type Stream struct {
	c       *Client
	ctx     context.Context
	session string
	opts    StreamOptions

	mu       sync.Mutex
	buf      []byte
	n        int
	applied  int64
	vertices int64
	err      error
	closed   bool
	timer    *time.Timer
}

// Stream opens a batching binary-frame uploader into the session.
// The context bounds every flush this stream performs.
func (c *Client) Stream(ctx context.Context, session string, opts StreamOptions) *Stream {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultStreamBatch
	}
	s := &Stream{c: c, ctx: ctx, session: session, opts: opts}
	if opts.FlushInterval > 0 {
		s.timer = time.AfterFunc(opts.FlushInterval, s.timedFlush)
	}
	return s
}

func (s *Stream) timedFlush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	_ = s.flushLocked() // the error is sticky; Send/Flush/Close surface it
	s.timer.Reset(s.opts.FlushInterval)
}

// Send buffers one event, flushing if the batch is full. The returned
// error is either an encoding error for this event (the stream stays
// usable) or the stream's sticky flush error.
func (s *Stream) Send(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return api.Errorf(api.CodeBadRequest, "send on closed stream")
	}
	if s.err != nil {
		return s.err
	}
	buf, err := api.AppendFrame(s.buf, ev)
	if err != nil {
		return err
	}
	s.buf = buf
	s.n++
	if s.n >= s.opts.BatchSize {
		return s.flushLocked()
	}
	return nil
}

// Flush posts any buffered events now.
func (s *Stream) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.flushLocked()
}

func (s *Stream) flushLocked() error {
	if s.n == 0 {
		return nil
	}
	resp, err := s.c.ingestRaw(s.ctx, s.session, s.buf)
	s.buf, s.n = s.buf[:0], 0
	if err != nil {
		// A partial failure still applied a prefix; the server reports
		// it on the error envelope, so Applied() stays an accurate
		// resync point.
		var ae *Error
		if errors.As(err, &ae) {
			s.applied += int64(ae.Applied)
		}
		s.err = err
		return err
	}
	s.applied += int64(resp.Applied)
	s.vertices = resp.Vertices
	return nil
}

// Close flushes the tail and stops the interval timer. Further Sends
// fail. Close returns the stream's first error, if any.
func (s *Stream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
	}
	if s.err != nil {
		return s.err
	}
	return s.flushLocked()
}

// Applied returns the events the server has acknowledged so far on
// this stream.
func (s *Stream) Applied() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Vertices returns the session's labeled-vertex total as of the last
// acknowledged flush.
func (s *Stream) Vertices() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vertices
}
