package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Metrics scrapes GET /v1/metrics and returns every sample as a flat
// map: plain series key on their metric name ("wf_sessions"), labeled
// series on name{key="value"} exactly as exposed, and summaries on
// their quantile/_sum/_count series. Values are the exposed float64s
// (durations in seconds). The map is a point-in-time cut — subtract
// two scrapes to get deltas over a window, as wfload -matrix does.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+c.prefix+"/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, decodeError(resp.StatusCode, raw)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics reads a Prometheus text exposition into the flat
// series → value map Metrics returns. Comment and blank lines are
// skipped; a sample line that does not end in a float is an error
// (the scrape is corrupt, not partially useful).
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated token; everything before
		// it is the series key (label values may themselves hold spaces).
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("client: metrics line %q has no value", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("client: metrics line %q: %w", line, err)
		}
		out[strings.TrimSpace(line[:cut])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: read metrics: %w", err)
	}
	return out, nil
}
