package client

import (
	"testing"
	"time"
)

// The retry schedule doubles from the base, caps at the max, and
// jitters each delay uniformly within [d/2, d] so synchronized
// clients spread out instead of retrying in lockstep.
func TestRetryDelaySchedule(t *testing.T) {
	base := 10 * time.Millisecond
	max := 80 * time.Millisecond
	// Uncapped exponential: 10, 20, 40, 80, then capped at 80.
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond,
	}
	for attempt, full := range want {
		// Jitter is random: sample repeatedly and check the bounds.
		lo, hi := full, time.Duration(0)
		for i := 0; i < 200; i++ {
			d := retryDelay(base, max, attempt)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
			}
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		// 200 uniform samples over a multi-millisecond range should
		// not all collapse to one value.
		if full >= 2*time.Millisecond && lo == hi {
			t.Errorf("attempt %d: no jitter observed (all %v)", attempt, lo)
		}
	}
}

func TestRetryDelayEdges(t *testing.T) {
	if d := retryDelay(0, time.Second, 3); d != 0 {
		t.Errorf("zero base: got %v, want 0", d)
	}
	if d := retryDelay(-time.Second, time.Second, 0); d != 0 {
		t.Errorf("negative base: got %v, want 0", d)
	}
	// A zero max falls back to the default cap rather than
	// disabling it.
	for i := 0; i < 50; i++ {
		if d := retryDelay(time.Second, 0, 20); d > defaultMaxBackoff {
			t.Fatalf("zero max: delay %v above default cap %v", d, defaultMaxBackoff)
		}
	}
	// A base above the max is clamped down to it.
	for i := 0; i < 50; i++ {
		d := retryDelay(time.Second, 100*time.Millisecond, 0)
		if d > 100*time.Millisecond || d < 50*time.Millisecond {
			t.Fatalf("base>max: delay %v outside [50ms, 100ms]", d)
		}
	}
	// Large attempt counts must not overflow into negative delays.
	for i := 0; i < 50; i++ {
		d := retryDelay(time.Second, 5*time.Second, 500)
		if d < 0 || d > 5*time.Second {
			t.Fatalf("attempt 500: delay %v outside [0, 5s]", d)
		}
	}
}
