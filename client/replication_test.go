package client_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"wfreach"
	"wfreach/client"
)

// httptestPair is one durable registry served over HTTP.
type httptestPair struct {
	reg *wfreach.Registry
	srv *httptest.Server
}

func newDurablePair(t *testing.T) *httptestPair {
	t.Helper()
	reg, err := wfreach.NewDurableRegistry(wfreach.DurableOptions{Dir: t.TempDir(), Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = reg.Close() })
	srv := httptest.NewServer(wfreach.NewServiceHandler(reg))
	t.Cleanup(srv.Close)
	return &httptestPair{reg: reg, srv: srv}
}

// replicationPair boots a durable primary plus a tailing follower,
// both served over HTTP, and returns their clients.
func replicationPair(t *testing.T) (primary, follower *httptestPair) {
	t.Helper()
	p := newDurablePair(t)
	f := newDurablePair(t)
	fol := wfreach.NewFollower(p.srv.URL, f.reg, wfreach.FollowerOptions{
		PollInterval: 25 * time.Millisecond,
	})
	fol.Start()
	t.Cleanup(fol.Close)
	return p, f
}

// TestWriteRedirect: a write sent to a follower is transparently
// re-sent to the primary the rejection names; with the redirect
// disabled the typed error surfaces instead, carrying the primary.
func TestWriteRedirect(t *testing.T) {
	p, f := replicationPair(t)
	ctx := context.Background()

	// The follower's client, writes pointed at the wrong server.
	fc := client.New(f.srv.URL)
	st, err := fc.CreateSession(ctx, client.CreateSessionRequest{Name: "redir", Builtin: "RunningExample"})
	if err != nil {
		t.Fatalf("redirected create failed: %v", err)
	}
	if st.Name != "redir" {
		t.Fatalf("create stats = %+v", st)
	}
	// The session landed on the primary, not the follower's registry.
	if _, ok := p.reg.Get("redir"); !ok {
		t.Fatal("redirected create did not reach the primary")
	}

	events, r := generate(t, "RunningExample", 200, 5)
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	if _, err := fc.IngestFrames(ctx, "redir", wire); err != nil {
		t.Fatalf("redirected binary ingest failed: %v", err)
	}

	// The follower replicates what the redirect wrote, and answers
	// reads itself.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if s, ok := f.reg.Get("redir"); ok && s.Vertices() == int64(len(events)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never replicated the redirected writes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, err := fc.Reach(ctx, "redir", int32(events[0].V), int32(events[len(events)-1].V))
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Reaches(events[0].V, events[len(events)-1].V); got != want {
		t.Fatalf("replicated reach = %v, want %v", got, want)
	}

	// Redirect disabled: the typed rejection surfaces, and the primary
	// hint is recoverable via errors.As / PrimaryFromError.
	nc := client.New(f.srv.URL, client.WithoutWriteRedirect())
	_, err = nc.CreateSession(ctx, client.CreateSessionRequest{Name: "nope", Builtin: "RunningExample"})
	var ae *client.Error
	if !errors.As(err, &ae) || ae.Code != client.CodeReadOnly {
		t.Fatalf("undirected create = %v, want CodeReadOnly", err)
	}
	if hint, ok := client.PrimaryFromError(err); !ok || hint != p.srv.URL {
		t.Fatalf("PrimaryFromError = %q/%v, want %q", hint, ok, p.srv.URL)
	}
	if _, ok := p.reg.Get("nope"); ok {
		t.Fatal("disabled redirect still wrote to the primary")
	}
}

// TestTailWALClient drives the tail endpoint through the SDK: history
// without waiting, resumption from a sequence, and typed errors for
// untailable sessions.
func TestTailWALClient(t *testing.T) {
	p := newDurablePair(t)
	ctx := context.Background()
	c := client.New(p.srv.URL)

	if _, err := c.CreateSession(ctx, client.CreateSessionRequest{Name: "tw", Builtin: "RunningExample"}); err != nil {
		t.Fatal(err)
	}
	events, _ := generate(t, "RunningExample", 150, 9)
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	if _, err := c.IngestFrames(ctx, "tw", wire); err != nil {
		t.Fatal(err)
	}

	tail, err := c.TailWAL(ctx, "tw", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	var last int64
	for {
		e, err := tail.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != last+1 || len(e.Frame) == 0 {
			t.Fatalf("entry seq %d after %d (frame %d bytes)", e.Seq, last, len(e.Frame))
		}
		last = e.Seq
	}
	if last != int64(len(events)) {
		t.Fatalf("tailed %d entries, want %d", last, len(events))
	}

	mid, err := c.TailWAL(ctx, "tw", last-5, false)
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	e, err := mid.Next()
	if err != nil || e.Seq != last-5 {
		t.Fatalf("resume at %d got seq %d, err %v", last-5, e.Seq, err)
	}

	// Memory sessions are not tailable.
	msrv := newServer(t)
	mc := client.New(msrv.URL)
	if _, err := mc.CreateSession(ctx, client.CreateSessionRequest{Name: "m", Builtin: "RunningExample"}); err != nil {
		t.Fatal(err)
	}
	_, err = mc.TailWAL(ctx, "m", 1, false)
	var ae *client.Error
	if !errors.As(err, &ae) || ae.Code != client.CodeNotDurable {
		t.Fatalf("memory tail = %v, want CodeNotDurable", err)
	}
}

// TestReplicationStatusAndSpec exercises the status, spec and promote
// SDK calls against a live pair.
func TestReplicationStatusAndSpec(t *testing.T) {
	p, f := replicationPair(t)
	ctx := context.Background()
	pc, fc := client.New(p.srv.URL), client.New(f.srv.URL)

	if _, err := pc.CreateSession(ctx, client.CreateSessionRequest{Name: "s", Builtin: "BioAID"}); err != nil {
		t.Fatal(err)
	}
	events, _ := generate(t, "BioAID", 300, 2)
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	if _, err := pc.IngestFrames(ctx, "s", wire); err != nil {
		t.Fatal(err)
	}

	pst, err := pc.ReplicationStatus(ctx)
	if err != nil || pst.Role != client.RolePrimary || len(pst.Sessions) != 1 {
		t.Fatalf("primary status %+v, %v", pst, err)
	}
	if pst.Sessions[0].WALSeq != int64(len(events)) {
		t.Fatalf("primary WALSeq = %d, want %d", pst.Sessions[0].WALSeq, len(events))
	}

	// Wait for the follower to drain, via the status API alone.
	deadline := time.Now().Add(15 * time.Second)
	for {
		fst, err := fc.ReplicationStatus(ctx)
		if err == nil && fst.Role == client.RoleFollower && fst.Primary == p.srv.URL &&
			len(fst.Sessions) == 1 && fst.Sessions[0].WALSeq == int64(len(events)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower status never converged: %+v, %v", fst, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	raw, err := fc.SessionSpec(ctx, "s")
	if err != nil || len(raw) == 0 {
		t.Fatalf("spec: %d bytes, %v", len(raw), err)
	}

	// Promote over the wire; the follower reports itself primary after.
	st, err := fc.Promote(ctx)
	if err != nil || st.Role != client.RolePrimary {
		t.Fatalf("promote: %+v, %v", st, err)
	}
	// Promote is idempotent: a re-POST reports the server already
	// writable instead of failing the retry.
	if st, err := fc.Promote(ctx); err != nil || st.Role != client.RolePrimary {
		t.Fatalf("second promote: %+v, %v", st, err)
	}
	if _, err := fc.CreateSession(ctx, client.CreateSessionRequest{Name: "after", Builtin: "RunningExample"}); err != nil {
		t.Fatalf("create on promoted server: %v", err)
	}
	if _, ok := f.reg.Get("after"); !ok {
		t.Fatal("post-promote create did not land on the promoted server")
	}
}
