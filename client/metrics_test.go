package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseMetrics(t *testing.T) {
	text := strings.Join([]string{
		"# HELP wf_sessions Live sessions.",
		"# TYPE wf_sessions gauge",
		"wf_sessions 3",
		`wf_ingest_events_total{session="a b"} 42`,
		`wf_wal_commit_seconds{quantile="0.99"} 0.00125`,
		"",
		"wf_replica_lag_seconds 1.5",
	}, "\n")
	got, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"wf_sessions":                            3,
		`wf_ingest_events_total{session="a b"}`:  42,
		`wf_wal_commit_seconds{quantile="0.99"}`: 0.00125,
		"wf_replica_lag_seconds":                 1.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d series, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %g, want %g", k, got[k], v)
		}
	}
	if _, err := ParseMetrics(strings.NewReader("wf_bad notanumber")); err == nil {
		t.Fatal("malformed sample line did not error")
	}
}

func TestClientMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics" || r.Method != http.MethodGet {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte("# HELP wf_sessions Live sessions.\n# TYPE wf_sessions gauge\nwf_sessions 2\n"))
	}))
	defer srv.Close()
	got, err := New(srv.URL).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got["wf_sessions"] != 2 {
		t.Fatalf("wf_sessions = %g, want 2", got["wf_sessions"])
	}
}
