package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"wfreach"
	"wfreach/client"
	"wfreach/internal/cluster"
	"wfreach/internal/service"
)

// newTestCluster builds an n-node durable cluster (registries,
// servers, controllers) and the shared map.
func newTestCluster(t *testing.T, n int) ([]*service.Registry, []*cluster.Controller, client.ClusterMap) {
	t.Helper()
	regs := make([]*service.Registry, n)
	m := client.ClusterMap{Version: 1}
	for i := range regs {
		reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: t.TempDir(), Fsync: false})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = reg.Close() })
		srv := httptest.NewServer(service.NewHandler(reg))
		t.Cleanup(srv.Close)
		regs[i] = reg
		m.Nodes = append(m.Nodes, client.ClusterNode{Name: fmt.Sprintf("n%d", i), URL: srv.URL})
	}
	ctls := make([]*cluster.Controller, n)
	for i, reg := range regs {
		ctl, err := cluster.New(m.Nodes[i].Name, m, reg, cluster.Options{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		ctls[i] = ctl
	}
	return regs, ctls, m
}

// TestClusterClientRouting drives the full session lifecycle through
// the routing client: every call lands on the owner without the
// caller naming nodes, and a move is chased transparently by a stale
// client.
func TestClusterClientRouting(t *testing.T) {
	regs, _, m := newTestCluster(t, 3)
	cl, err := client.NewCluster(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Spread a handful of sessions; each must materialize only on the
	// registry of the node the map places it on.
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	owners := map[string]string{}
	for _, name := range names {
		if _, err := cl.CreateSession(ctx, client.CreateSessionRequest{Name: name, Builtin: "RunningExample"}); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		owners[name] = cl.Owner(name)
	}
	placed := 0
	for i, reg := range regs {
		node := fmt.Sprintf("n%d", i)
		for _, name := range names {
			_, here := reg.Get(name)
			if want := owners[name] == node; here != want {
				t.Errorf("session %s on %s: present=%v, want %v", name, node, here, want)
			}
			if here {
				placed++
			}
		}
	}
	if placed != len(names) {
		t.Fatalf("%d sessions materialized, want %d", placed, len(names))
	}
	if len(owners) > 0 {
		distinct := map[string]bool{}
		for _, o := range owners {
			distinct[o] = true
		}
		if len(distinct) < 2 {
			t.Logf("note: all %d sessions hashed to one node (legal, just unlucky)", len(names))
		}
	}

	// Ingest + query through the router, verified against the oracle.
	events, r := generate(t, "RunningExample", 600, 5)
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	if _, err := cl.Ingest(ctx, "alpha", wire[:300]); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, err := cl.IngestFrames(ctx, "alpha", wire[300:]); err != nil {
		t.Fatalf("ingest frames: %v", err)
	}
	st, err := cl.Session(ctx, "alpha")
	if err != nil || st.Vertices != int64(len(events)) {
		t.Fatalf("stats: %+v, %v", st, err)
	}
	var pairs []client.ReachPair
	for i := 0; i < 64; i++ {
		pairs = append(pairs, client.ReachPair{
			From: int32(events[(i*13)%len(events)].V), To: int32(events[(i*31)%len(events)].V)})
	}
	answers, err := cl.ReachBatch(ctx, "alpha", pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ans := range answers {
		if want := r.Reaches(wfreach.VertexID(ans.From), wfreach.VertexID(ans.To)); ans.Code != "" || ans.Reachable != want {
			t.Fatalf("pair %d: %+v, oracle %v", i, ans, want)
		}
	}

	// Cluster-wide list: all sessions, each exactly once.
	list, err := cl.Sessions(ctx)
	if err != nil || len(list) != len(names) {
		t.Fatalf("sessions: %d entries, %v", len(list), err)
	}

	// Move alpha to a node that does not own it; the mover adopts the
	// response map immediately.
	target := "n0"
	if owners["alpha"] == "n0" {
		target = "n1"
	}
	mv, err := cl.Move(ctx, "alpha", target)
	if err != nil || mv.To != target || mv.Events != int64(len(events)) {
		t.Fatalf("move: %+v, %v", mv, err)
	}
	if cl.Owner("alpha") != target {
		t.Fatalf("mover still routes alpha to %s", cl.Owner("alpha"))
	}
	if st, err := cl.Session(ctx, "alpha"); err != nil || st.Vertices != int64(len(events)) {
		t.Fatalf("post-move stats via mover: %+v, %v", st, err)
	}

	// A second client still holding the original map: reads against
	// the old owner's retained copy are served (stale, like a
	// follower's), so reads alone teach it nothing...
	stale, err := client.NewCluster(m)
	if err != nil {
		t.Fatal(err)
	}
	if o := stale.Owner("alpha"); o == target {
		t.Fatalf("stale client already routes to %s — test is vacuous", target)
	}
	if st, err := stale.Session(ctx, "alpha"); err != nil || st.Vertices != int64(len(events)) {
		t.Fatalf("stale read: %+v, %v", st, err)
	}
	// ...but its first write routes to the old owner, which answers
	// read_only naming the new one; the client merges the fix, the
	// retried call lands on the new owner, and the delete (a write)
	// goes through.
	if err := stale.DeleteSession(ctx, "alpha"); err != nil {
		t.Fatalf("delete via stale client: %v", err)
	}
	if o := stale.Owner("alpha"); o != target {
		t.Fatalf("stale client learned owner %s, want %s", o, target)
	}
	if _, ok := regs[nodeIndex(target)].Get("alpha"); ok {
		t.Fatal("alpha still on the new owner after delete")
	}
}

// nodeIndex maps a test node name "n<i>" back to its registry index.
func nodeIndex(name string) int {
	var i int
	fmt.Sscanf(name, "n%d", &i)
	return i
}

// failoverFixture is a one-node cluster whose node entry names a
// follower: a second, independent writable server standing in for an
// already-promoted replica that holds the session with the first batch
// replicated.
func failoverFixture(t *testing.T) (primary, follower *service.Registry, kill func(), m client.ClusterMap, wire []client.Event) {
	t.Helper()
	newServer := func() (*service.Registry, *httptest.Server) {
		reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: t.TempDir(), Fsync: false})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = reg.Close() })
		srv := httptest.NewServer(service.NewHandler(reg))
		t.Cleanup(srv.Close)
		return reg, srv
	}
	regA, srvA := newServer()
	regB, srvB := newServer()
	m = client.ClusterMap{Version: 1,
		Nodes: []client.ClusterNode{{Name: "n0", URL: srvA.URL, Follower: srvB.URL}}}

	events, _ := generate(t, "RunningExample", 400, 7)
	wire = make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	g, err := wfreach.Compile(mustBuiltin(t, "RunningExample"))
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range []*service.Registry{regA, regB} {
		s, err := reg.Create("moved", g, service.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(events[:200]); err != nil {
			t.Fatal(err)
		}
	}
	return regA, regB, srvA.Close, m, wire
}

func mustBuiltin(t *testing.T, name string) *wfreach.Spec {
	t.Helper()
	s, ok := wfreach.BuiltinSpec(name)
	if !ok {
		t.Fatalf("no builtin %s", name)
	}
	return s
}

// TestClusterClientIngestNotReplayedOnFailover kills the primary
// mid-stream: the client must fail the in-flight ingest over to the
// promoted follower for routing purposes but NOT re-send the batch —
// the dead node may have applied and replicated it with only the
// response lost, so a replay would duplicate events. Reads do retry.
func TestClusterClientIngestNotReplayedOnFailover(t *testing.T) {
	_, regB, kill, m, wire := failoverFixture(t)
	cl, err := client.NewCluster(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	kill()

	if _, err := cl.Ingest(ctx, "moved", wire[200:]); err == nil {
		t.Fatal("ingest into a dead primary reported success")
	}
	s, ok := regB.Get("moved")
	if !ok {
		t.Fatal("follower lost the session")
	}
	if got := s.Vertices(); got != 200 {
		t.Fatalf("follower has %d events after failed ingest, want 200 (no replay)", got)
	}
	// The failover healed the client: reads now serve from the
	// follower without touching the dead URL.
	st, err := cl.Session(ctx, "moved")
	if err != nil || st.Vertices != 200 {
		t.Fatalf("read after failover: %+v, %v", st, err)
	}
}

// TestClusterClientReadRetriesAcrossFailover is the counterpart: a
// read in flight when the primary dies is replayed on the follower
// transparently (reads are idempotent).
func TestClusterClientReadRetriesAcrossFailover(t *testing.T) {
	_, _, kill, m, _ := failoverFixture(t)
	cl, err := client.NewCluster(m)
	if err != nil {
		t.Fatal(err)
	}
	kill()
	st, err := cl.Session(context.Background(), "moved")
	if err != nil || st.Vertices != 200 {
		t.Fatalf("read across failover: %+v, %v", st, err)
	}
}

// TestClusterClientCancelIsNotFailover checks a cancelled context is
// treated as the caller giving up, not as a dead node: the error
// surfaces as the context's, and the client keeps routing to the
// (alive) primary afterwards.
func TestClusterClientCancelIsNotFailover(t *testing.T) {
	_, _, _, m, wire := failoverFixture(t)
	cl, err := client.NewCluster(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Make the primary distinguishable from the follower stand-in: it
	// alone gets events past the replicated prefix.
	if _, err := cl.Ingest(ctx, "moved", wire[200:250]); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := cl.Session(cancelled, "moved"); !errors.Is(err, context.Canceled) {
		t.Fatalf("call with cancelled context: %v, want context.Canceled", err)
	}
	// Still routed to the primary (alive), not failed over.
	st, err := cl.Session(ctx, "moved")
	if err != nil || st.Vertices != 250 {
		t.Fatalf("read after cancelled call: %+v, %v (want primary's 250 events)", st, err)
	}
}

// TestClusterClientRejectsBadMap checks constructor validation.
func TestClusterClientRejectsBadMap(t *testing.T) {
	if _, err := client.NewCluster(client.ClusterMap{}); err == nil {
		t.Error("empty map accepted")
	}
	m := client.ClusterMap{Nodes: []client.ClusterNode{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}}}
	if _, err := client.NewCluster(m); err == nil {
		t.Error("duplicate node names accepted")
	}
}
