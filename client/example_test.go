package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"wfreach"
	"wfreach/client"
)

// Example streams a generated workflow execution into a session over
// the binary frame format and answers a batch of provenance queries,
// verifying every answer against the BFS ground-truth oracle.
func Example() {
	// An in-process server; point New at a real wfserve in production.
	srv := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	defer srv.Close()

	ctx := context.Background()
	c := client.New(srv.URL)

	if _, err := c.CreateSession(ctx, client.CreateSessionRequest{
		Name: "demo", Builtin: "RunningExample",
	}); err != nil {
		panic(err)
	}

	// Generate a deterministic execution with its oracle run.
	g := wfreach.MustCompile(wfreach.RunningExample())
	events, run, err := wfreach.GenerateEvents(g, wfreach.GenOptions{TargetSize: 300, Seed: 1})
	if err != nil {
		panic(err)
	}

	// Stream the events; batches flush automatically.
	stream := c.Stream(ctx, "demo", client.StreamOptions{BatchSize: 64})
	for _, ev := range events {
		if err := stream.Send(wfreach.ToWire(ev)); err != nil {
			panic(err)
		}
	}
	if err := stream.Close(); err != nil {
		panic(err)
	}
	fmt.Println("every event acknowledged:", stream.Applied() == int64(len(events)))

	// Ask 64 reachability questions in one roundtrip.
	var pairs []client.ReachPair
	for i := 0; i < 64; i++ {
		pairs = append(pairs, client.ReachPair{
			From: int32(events[(i*5)%len(events)].V),
			To:   int32(events[(i*17)%len(events)].V),
		})
	}
	answers, err := c.ReachBatch(ctx, "demo", pairs)
	if err != nil {
		panic(err)
	}
	agree := true
	for _, ans := range answers {
		if ans.Reachable != run.Reaches(wfreach.VertexID(ans.From), wfreach.VertexID(ans.To)) {
			agree = false
		}
	}
	fmt.Println("answers agree with the BFS oracle:", agree)
	// Output:
	// every event acknowledged: true
	// answers agree with the BFS oracle: true
}
