package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"wfreach/internal/api"
	"wfreach/internal/cluster"
)

// Cluster wire types, re-exported from the contract package.
type (
	// ClusterMap is the versioned session-placement map.
	ClusterMap = api.ClusterMap
	// ClusterNode is one node entry of the map.
	ClusterNode = api.ClusterNode
	// ClusterHealth is one node's cluster health report.
	ClusterHealth = api.ClusterHealth
	// MoveResponse reports a completed session move.
	MoveResponse = api.MoveResponse
)

// Cluster error codes, re-exported verbatim.
const (
	// CodeWrongNode is a session request sent to a node that does not
	// own the session; the detail names the owner.
	CodeWrongNode = api.CodeWrongNode
	// CodeNotClustered is a cluster call on a non-clustered server.
	CodeNotClustered = api.CodeNotClustered
)

// OwnerFromError extracts the owning node's base URL from a
// wrong_node rejection; the Cluster client chases these
// automatically.
func OwnerFromError(err error) (string, bool) { return api.OwnerFromError(err) }

// ClusterMap fetches the node's cluster placement map.
func (c *Client) ClusterMap(ctx context.Context) (ClusterMap, error) {
	var m ClusterMap
	err := c.do(ctx, http.MethodGet, "/cluster/map", nil, &m, true)
	return m, err
}

// ClusterHealth fetches the node's cluster health: role, map version,
// per-session WAL sequences, and its prober's view of the peers.
func (c *Client) ClusterHealth(ctx context.Context) (ClusterHealth, error) {
	var h ClusterHealth
	err := c.do(ctx, http.MethodGet, "/cluster/health", nil, &h, true)
	return h, err
}

// MoveSession asks the cluster to move the session to the target
// node. Any node accepts the request (non-targets forward it); the
// call returns once the target has caught up, taken the handoff, and
// started serving. Moving a session to its current owner succeeds
// immediately. The call is idempotent but not retried automatically;
// a move of a large session can legitimately outlast short HTTP
// timeouts, so size the client's timeout accordingly.
func (c *Client) MoveSession(ctx context.Context, session, target string) (MoveResponse, error) {
	var resp MoveResponse
	err := c.do(ctx, http.MethodPost, "/cluster/move",
		api.MoveRequest{Session: session, Target: target}, &resp, false)
	return resp, err
}

// clusterRouteAttempts bounds how many times one logical call chases
// routing rejections before giving up. Mid-move, a session's old
// owner answers read_only(new owner) while the new owner still
// answers wrong_node(old owner) until its drain completes; the
// bounded, jittered retry loop rides out that window (hundreds of
// milliseconds for typical sessions) without spinning.
const clusterRouteAttempts = 20

// clusterNode is one node's client, with the URL it is currently
// reached at — the map URL, or the promoted follower's after a
// failover.
type clusterNode struct {
	entry  api.ClusterNode
	active string
	c      *Client
}

// Cluster is the smart-routing client of a session-partitioned
// cluster: it wraps one Client per node and routes every call by
// session through the cluster map — the same consistent-hash
// placement (plus per-session move overrides) the servers use, so a
// current map routes every request to its owner in one hop.
//
// Self-healing, in order of escalation:
//   - a wrong_node/read_only rejection means the map is stale; the
//     rejection names the owner, whose map is fetched, merged, and
//     the call retried — rejected writes were not applied, so the
//     retry is safe;
//   - a node that stops answering fails over to its configured
//     follower once the follower reports itself promoted to primary
//     (promotion itself stays an operator action);
//   - map versions learned from move responses are merged in, so a
//     mover's client routes to the new owner immediately.
//
// A Cluster is safe for concurrent use.
type Cluster struct {
	opts  []Option
	state *cluster.State

	mu    sync.Mutex
	nodes map[string]*clusterNode
}

// NewCluster builds a routing client over the map (typically loaded
// from the same -cluster config file the servers use). The options
// configure every per-node Client; the follower write redirect is
// handled by the Cluster itself, so per-node clients run with it
// disabled.
func NewCluster(m ClusterMap, opts ...Option) (*Cluster, error) {
	st, err := cluster.NewState(m)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		opts:  append(append([]Option(nil), opts...), WithoutWriteRedirect()),
		state: st,
		nodes: make(map[string]*clusterNode, len(m.Nodes)),
	}
	for _, n := range m.Nodes {
		active := strings.TrimRight(n.URL, "/")
		cl.nodes[n.Name] = &clusterNode{entry: n, active: active, c: New(active, cl.opts...)}
	}
	return cl, nil
}

// Map snapshots the client's current view of the cluster map.
func (cl *Cluster) Map() ClusterMap { return cl.state.Map() }

// Owner returns the name of the node the client would route the
// session to.
func (cl *Cluster) Owner(session string) string { return cl.state.Place(session).Name }

// NodeNames returns the cluster's node names, sorted.
func (cl *Cluster) NodeNames() []string {
	out := make([]string, 0, len(cl.nodes))
	for name := range cl.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Node returns the Client currently serving the named node (after a
// failover, the promoted follower's).
func (cl *Cluster) Node(name string) (*Client, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n, ok := cl.nodes[name]
	if !ok {
		return nil, false
	}
	return n.c, true
}

// RefreshMap polls every reachable node's map and merges the newest
// overrides in. The routing loop self-heals lazily on rejections;
// Refresh is for callers that want to converge proactively (e.g.
// before reporting placement).
func (cl *Cluster) RefreshMap(ctx context.Context) {
	for _, name := range cl.NodeNames() {
		c, _ := cl.Node(name)
		if m, err := c.ClusterMap(ctx); err == nil {
			_, _ = cl.state.Merge(m)
		}
	}
}

// clientFor resolves the session's current owner.
func (cl *Cluster) clientFor(session string) (string, *Client) {
	owner := cl.state.Place(session)
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return owner.Name, cl.nodes[owner.Name].c
}

// do routes one logical call: place the session, run f against the
// owner's client, and on a routing rejection or node failure learn
// the correction and retry. Routing rejections (wrong_node/read_only)
// are issued before any part of the request is applied, so re-invoking
// f after one is safe even for ingest. A transport failure is
// different: the dead node may have applied the request and lost only
// the response, so after a successful failover f is re-invoked only
// when retryable marks it safe to replay (reads; never ingest, whose
// replay would duplicate the batch on the promoted follower).
func (cl *Cluster) do(ctx context.Context, session string, retryable bool, f func(c *Client) error) error {
	var lastErr error
	for attempt := 0; attempt < clusterRouteAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retryDelay(5*time.Millisecond, 250*time.Millisecond, attempt-1)):
			}
		}
		node, c := cl.clientFor(session)
		err := f(c)
		if err == nil {
			return nil
		}
		lastErr = err
		if u, ok := redirectTarget(err); ok {
			cl.learn(ctx, u)
			continue
		}
		if isTransport(err) && cl.failover(ctx, node) {
			if retryable {
				continue
			}
			// The failover healed the client for later calls, but this
			// one stays ambiguous: surface it instead of guessing.
			return fmt.Errorf("client: node %s stopped answering mid-request and its follower took over; "+
				"the request may or may not have been applied — verify before re-sending: %w", node, err)
		}
		return err
	}
	return fmt.Errorf("client: routing %q did not settle after %d attempts: %w",
		session, clusterRouteAttempts, lastErr)
}

// redirectTarget extracts the better node's URL from a routing
// rejection — wrong_node (no copy here) or read_only (a moved or
// replicated session; writes go to the named owner/primary).
func redirectTarget(err error) (string, bool) {
	if u, ok := api.OwnerFromError(err); ok {
		return u, true
	}
	return api.PrimaryFromError(err)
}

// isTransport reports whether the error is a transport failure (no
// structured response at all) — the signature of a dead node, as
// opposed to a server that answered with an error. A cancelled or
// expired context is the caller giving up, not the node dying, and
// must not trigger a failover.
func isTransport(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *Error
	return !errors.As(err, &ae)
}

// learn absorbs a routing correction pointing at base URL u:
// preferably by merging u's map (the authoritative fix — it carries
// the override that caused the rejection); failing that, u is likely
// a promoted follower outside the map's node set, and it becomes the
// active URL of the node it replicates.
func (cl *Cluster) learn(ctx context.Context, u string) {
	u = strings.TrimRight(u, "/")
	if m, err := New(u, cl.opts...).ClusterMap(ctx); err == nil {
		if _, merr := cl.state.Merge(m); merr == nil {
			return
		}
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, n := range cl.nodes {
		if strings.TrimRight(n.entry.Follower, "/") == u && n.active != u {
			n.active = u
			n.c = New(u, cl.opts...)
		}
	}
}

// failover checks whether the named node's configured follower has
// been promoted to a writable primary, and if so swaps it in as the
// node's active URL. It never promotes anything itself — operators
// (or their tooling) decide failover; the client just follows.
func (cl *Cluster) failover(ctx context.Context, name string) bool {
	cl.mu.Lock()
	n, ok := cl.nodes[name]
	if !ok || n.entry.Follower == "" || n.active == strings.TrimRight(n.entry.Follower, "/") {
		cl.mu.Unlock()
		return false
	}
	follower := strings.TrimRight(n.entry.Follower, "/")
	cl.mu.Unlock()
	st, err := New(follower, cl.opts...).ReplicationStatus(ctx)
	if err != nil || st.Role != RolePrimary {
		return false
	}
	cl.mu.Lock()
	n.active = follower
	n.c = New(follower, cl.opts...)
	cl.mu.Unlock()
	return true
}

// Move moves the session to the target node and adopts the resulting
// map, so this client routes to the new owner immediately.
func (cl *Cluster) Move(ctx context.Context, session, target string) (MoveResponse, error) {
	c, ok := cl.Node(target)
	if !ok {
		return MoveResponse{}, fmt.Errorf("client: unknown target node %q", target)
	}
	resp, err := c.MoveSession(ctx, session, target)
	if err != nil {
		return MoveResponse{}, err
	}
	_, _ = cl.state.Merge(resp.Map)
	return resp, nil
}

// CreateSession opens a session on the node that owns its name.
func (cl *Cluster) CreateSession(ctx context.Context, req CreateSessionRequest) (SessionStats, error) {
	var st SessionStats
	err := cl.do(ctx, req.Name, false, func(c *Client) error {
		var cerr error
		st, cerr = c.CreateSession(ctx, req)
		return cerr
	})
	return st, err
}

// Session returns the session's stats from its owner.
func (cl *Cluster) Session(ctx context.Context, name string) (SessionStats, error) {
	var st SessionStats
	err := cl.do(ctx, name, true, func(c *Client) error {
		var cerr error
		st, cerr = c.Session(ctx, name)
		return cerr
	})
	return st, err
}

// DeleteSession removes the session from its owner.
func (cl *Cluster) DeleteSession(ctx context.Context, name string) error {
	return cl.do(ctx, name, false, func(c *Client) error {
		return c.DeleteSession(ctx, name)
	})
}

// Sessions lists every session in the cluster: each node's list,
// filtered to the sessions it owns (a moved session's retained old
// copy is skipped), merged and sorted by name. Unreachable nodes are
// skipped — the list is best-effort, like any cluster-wide snapshot.
func (cl *Cluster) Sessions(ctx context.Context) ([]SessionStats, error) {
	seen := make(map[string]bool)
	var out []SessionStats
	var lastErr error
	answered := 0
	for _, name := range cl.NodeNames() {
		c, _ := cl.Node(name)
		stats, err := c.Sessions(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		answered++
		for _, st := range stats {
			if cl.Owner(st.Name) != name || seen[st.Name] {
				continue
			}
			seen[st.Name] = true
			out = append(out, st)
		}
	}
	if answered == 0 {
		return nil, lastErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Ingest appends a JSON event batch to the session's owner. Routing
// rejections are chased like every call; a batch the server started
// applying fails like the single-node client's (the typed error's
// Applied field reports progress) and is not replayed.
func (cl *Cluster) Ingest(ctx context.Context, session string, events []Event) (EventsResponse, error) {
	var resp EventsResponse
	err := cl.do(ctx, session, false, func(c *Client) error {
		var cerr error
		resp, cerr = c.Ingest(ctx, session, events)
		return cerr
	})
	return resp, err
}

// IngestFrames appends a binary-frame event batch to the session's
// owner (the frames are encoded once and reused across routing
// retries).
func (cl *Cluster) IngestFrames(ctx context.Context, session string, events []Event) (EventsResponse, error) {
	var buf []byte
	var err error
	for _, ev := range events {
		if buf, err = api.AppendFrame(buf, ev); err != nil {
			return EventsResponse{}, err
		}
	}
	var resp EventsResponse
	err = cl.do(ctx, session, false, func(c *Client) error {
		var cerr error
		resp, cerr = c.ingestRaw(ctx, session, buf)
		return cerr
	})
	return resp, err
}

// ReachBatch answers reachability pairs from the session's owner.
func (cl *Cluster) ReachBatch(ctx context.Context, session string, pairs []ReachPair) ([]ReachAnswer, error) {
	var answers []ReachAnswer
	err := cl.do(ctx, session, true, func(c *Client) error {
		var cerr error
		answers, cerr = c.ReachBatch(ctx, session, pairs)
		return cerr
	})
	return answers, err
}

// Reach asks one reachability pair (see Client.Reach).
func (cl *Cluster) Reach(ctx context.Context, session string, from, to int32) (bool, error) {
	var reachable bool
	err := cl.do(ctx, session, true, func(c *Client) error {
		var cerr error
		reachable, cerr = c.Reach(ctx, session, from, to)
		return cerr
	})
	return reachable, err
}

// Lineage returns the full provenance closure of a vertex from the
// session's owner.
func (cl *Cluster) Lineage(ctx context.Context, session string, of int32) ([]int32, error) {
	var out []int32
	err := cl.do(ctx, session, true, func(c *Client) error {
		var cerr error
		out, cerr = c.Lineage(ctx, session, of)
		return cerr
	})
	return out, err
}
