package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"wfreach/internal/api"
)

// Replication wire types, re-exported from the contract package.
type (
	// ReplicationStatus is the server's replication role and
	// per-session progress.
	ReplicationStatus = api.ReplicationStatus
	// SessionReplication is one session's replication state.
	SessionReplication = api.SessionReplication
	// TailEntry is one WAL tail-stream entry: an absolute sequence
	// number plus the raw, CRC-verified WAL frame.
	TailEntry = api.TailEntry
)

// Replication roles (see ReplicationStatus.Role).
const (
	RolePrimary  = api.RolePrimary
	RoleFollower = api.RoleFollower
)

// PrimaryFromError extracts the primary's base URL from a follower's
// read-only write rejection (a *Error with CodeReadOnly). The SDK
// redirects such writes automatically unless WithoutWriteRedirect is
// set; this helper serves callers that disabled that.
func PrimaryFromError(err error) (string, bool) { return api.PrimaryFromError(err) }

// ReplicationStatus reports the server's replication role and
// per-session WAL progress. On a primary, each session's WALSeq is
// the committed sequence a follower can tail up to; on a follower it
// is the applied sequence — the difference is the session's replica
// lag in events.
func (c *Client) ReplicationStatus(ctx context.Context) (ReplicationStatus, error) {
	var st ReplicationStatus
	err := c.do(ctx, http.MethodGet, "/replication/status", nil, &st, true)
	return st, err
}

// Promote asks a follower to stop tailing its primary, catch up on
// whatever the primary can still serve, and become a writable
// primary. It returns the post-promote replication status. Promote is
// idempotent: on a server that is already writable it changes nothing
// and answers with the current status, so failover tooling can re-POST
// until it gets an answer.
func (c *Client) Promote(ctx context.Context) (ReplicationStatus, error) {
	var st ReplicationStatus
	err := c.do(ctx, http.MethodPost, "/replication/promote", nil, &st, false)
	return st, err
}

// SessionSpec fetches the session's workflow specification as XML —
// together with the stats' skeleton/rmode/shard configuration, all a
// replica needs to rebuild the session before replaying its WAL.
func (c *Client) SessionSpec(ctx context.Context, name string) ([]byte, error) {
	var raw []byte
	err := c.doRead(ctx, "/sessions/"+url.PathEscape(name)+"/spec", func(body io.Reader) error {
		var rerr error
		raw, rerr = io.ReadAll(body)
		return rerr
	})
	return raw, err
}

// doRead runs one retryable GET whose successful body is consumed by
// read (non-JSON responses; errors still decode the structured model).
func (c *Client) doRead(ctx context.Context, path string, read func(io.Reader) error) error {
	for attempt := 0; ; attempt++ {
		resp, err := c.get(ctx, c.base, path, 0)
		if err == nil {
			err = read(resp.Body)
			resp.Body.Close()
			if err == nil {
				return nil
			}
		}
		if attempt >= c.retries || !transient(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retryDelay(c.backoff, c.maxBackoff, attempt)):
		}
	}
}

// get issues one GET and maps non-2xx responses to structured errors.
// timeout zero uses the client's configured HTTP client; a negative
// timeout strips the overall request timeout (for live tails, which
// legitimately stay open forever).
func (c *Client) get(ctx context.Context, base, path string, timeout int) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+c.prefix+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	hc := c.hc
	if timeout < 0 && hc.Timeout != 0 {
		untimed := *hc
		untimed.Timeout = 0
		hc = &untimed
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, decodeError(resp.StatusCode, raw)
	}
	return resp, nil
}

// WALTail is an open WAL tail stream (see Client.TailWAL).
type WALTail struct {
	body io.ReadCloser
	tr   *api.TailReader
}

// TailWAL opens a tail of the session's write-ahead log starting at
// sequence from (1 is the first event ever ingested; pass
// lastApplied+1 to resume). With wait the stream is live: it delivers
// the committed history, then blocks and delivers new events as the
// primary commits them, until the context ends, the primary closes
// the log, or the connection drops — a replica reconnects and resumes
// from its last applied sequence. Without wait the stream ends after
// the committed history. The call itself does not retry; tailing a
// memory-only session fails with CodeNotDurable.
func (c *Client) TailWAL(ctx context.Context, session string, from int64, wait bool) (*WALTail, error) {
	q := url.Values{"from": {strconv.FormatInt(from, 10)}}
	if !wait {
		q.Set("wait", "false")
	}
	timeout := 0
	if wait {
		timeout = -1 // a live tail must outlive any overall HTTP timeout
	}
	resp, err := c.get(ctx, c.base, "/sessions/"+url.PathEscape(session)+"/wal?"+q.Encode(), timeout)
	if err != nil {
		return nil, err
	}
	return &WALTail{body: resp.Body, tr: api.NewTailReader(resp.Body)}, nil
}

// Next returns the next entry. The entry's Frame is reused by the
// following Next call — callers that keep it must copy. A cleanly
// ended stream returns io.EOF; a truncated or corrupt stream returns
// a CodeBadFrame error (reconnect and resume).
func (t *WALTail) Next() (TailEntry, error) { return t.tr.Next() }

// Buffered reports whether more of the stream has already arrived —
// the cue that a consumer can keep batching without blocking on the
// network.
func (t *WALTail) Buffered() bool { return t.tr.Buffered() }

// Close drops the stream.
func (t *WALTail) Close() error { return t.body.Close() }
