package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wfreach"
	"wfreach/client"
)

func newServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(wfreach.NewServiceHandler(wfreach.NewRegistry()))
	t.Cleanup(srv.Close)
	return srv
}

func generate(t testing.TB, builtin string, size int, seed int64) ([]wfreach.Event, *wfreach.Run) {
	t.Helper()
	s, ok := wfreach.BuiltinSpec(builtin)
	if !ok {
		t.Fatalf("no builtin %s", builtin)
	}
	g, err := wfreach.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	events, r, err := wfreach.GenerateEvents(g, wfreach.GenOptions{TargetSize: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return events, r
}

// TestLifecycleE2E drives the full v1 surface through the SDK:
// create, JSON ingest, binary streaming ingest, single and batch
// reach (checked against the BFS oracle), paginated lineage, stats,
// list, delete.
func TestLifecycleE2E(t *testing.T) {
	srv := newServer(t)
	c := client.New(srv.URL)
	ctx := context.Background()

	st, err := c.CreateSession(ctx, client.CreateSessionRequest{Name: "a", Builtin: "BioAID"})
	if err != nil || st.Name != "a" || st.Vertices != 0 {
		t.Fatalf("create: %+v, %v", st, err)
	}

	events, r := generate(t, "BioAID", 1200, 3)
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}

	// JSON route for the first half, binary stream for the rest.
	half := len(wire) / 2
	er, err := c.Ingest(ctx, "a", wire[:half])
	if err != nil || er.Applied != half {
		t.Fatalf("json ingest: %+v, %v", er, err)
	}
	stream := c.Stream(ctx, "a", client.StreamOptions{BatchSize: 128})
	for _, ev := range wire[half:] {
		if err := stream.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if got := stream.Applied(); got != int64(len(wire)-half) {
		t.Fatalf("stream applied %d, want %d", got, len(wire)-half)
	}
	if got := stream.Vertices(); got != int64(len(wire)) {
		t.Fatalf("stream vertices %d, want %d", got, len(wire))
	}

	// Single and batch reach agree with the oracle.
	var pairs []client.ReachPair
	for i := 0; i < 128; i++ {
		pairs = append(pairs, client.ReachPair{
			From: int32(events[(i*11)%len(events)].V), To: int32(events[(i*29)%len(events)].V)})
	}
	answers, err := c.ReachBatch(ctx, "a", pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ans := range answers {
		if ans.Code != "" {
			t.Fatalf("pair %d errored: %+v", i, ans)
		}
		if want := r.Reaches(wfreach.VertexID(ans.From), wfreach.VertexID(ans.To)); ans.Reachable != want {
			t.Fatalf("pair %d: %v, oracle %v", i, ans.Reachable, want)
		}
	}
	ok, err := c.Reach(ctx, "a", pairs[0].From, pairs[0].To)
	if err != nil || ok != answers[0].Reachable {
		t.Fatalf("single reach: %v, %v", ok, err)
	}
	if ok, err := c.ReachLegacy(ctx, "a", pairs[0].From, pairs[0].To); err != nil || ok != answers[0].Reachable {
		t.Fatalf("legacy reach: %v, %v", ok, err)
	}

	// Paginated lineage equals the legacy full scan.
	sink := int32(events[len(events)-1].V)
	full, err := c.LineageLegacy(ctx, "a", sink)
	if err != nil {
		t.Fatal(err)
	}
	page, err := c.LineagePage(ctx, "a", sink, "", 5)
	if err != nil || len(page.Ancestors) != 5 || page.NextCursor == "" {
		t.Fatalf("first page: %+v, %v", page, err)
	}
	all, err := c.Lineage(ctx, "a", sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(full) {
		t.Fatalf("paginated %d ancestors, legacy %d", len(all), len(full))
	}
	for i := range all {
		if all[i] != full[i] {
			t.Fatalf("ancestor %d: %d != %d", i, all[i], full[i])
		}
	}

	// Stats and list see the session; delete removes it.
	if st, err := c.Session(ctx, "a"); err != nil || st.Vertices != int64(len(events)) {
		t.Fatalf("stats: %+v, %v", st, err)
	}
	if ss, err := c.Sessions(ctx); err != nil || len(ss) != 1 {
		t.Fatalf("list: %+v, %v", ss, err)
	}
	if err := c.DeleteSession(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if ss, err := c.Sessions(ctx); err != nil || len(ss) != 0 {
		t.Fatalf("list after delete: %+v, %v", ss, err)
	}
}

// TestTypedErrors exercises the errors.As contract on the main error
// paths.
func TestTypedErrors(t *testing.T) {
	srv := newServer(t)
	c := client.New(srv.URL)
	ctx := context.Background()

	_, err := c.Session(ctx, "ghost")
	var ae *client.Error
	if !errors.As(err, &ae) || ae.Code != client.CodeSessionNotFound || ae.HTTPStatus != http.StatusNotFound {
		t.Fatalf("missing session error = %v (%+v)", err, ae)
	}

	if _, err := c.CreateSession(ctx, client.CreateSessionRequest{Name: "x", Builtin: "zap"}); !errors.As(err, &ae) || ae.Code != client.CodeUnknownBuiltin {
		t.Fatalf("unknown builtin error = %v", err)
	}

	c.CreateSession(ctx, client.CreateSessionRequest{Name: "s", Builtin: "RunningExample"})
	if _, err := c.CreateSession(ctx, client.CreateSessionRequest{Name: "s", Builtin: "RunningExample"}); !errors.As(err, &ae) || ae.Code != client.CodeSessionExists || ae.HTTPStatus != http.StatusConflict {
		t.Fatalf("duplicate create error = %v", err)
	}

	// A pair-level failure surfaces as a typed error from Reach.
	if _, err := c.Reach(ctx, "s", 0, 12345); !errors.As(err, &ae) || ae.Code != client.CodeVertexNotLabeled {
		t.Fatalf("unlabeled reach error = %v", err)
	}

	// Malformed ingest events carry the batch index.
	if _, err := c.Ingest(ctx, "s", []client.Event{{V: 1}}); !errors.As(err, &ae) || ae.Code != client.CodeBadEvent {
		t.Fatalf("bad event error = %v", err)
	}
}

// TestRetryOn5xx: transient server failures on read-only calls are
// retried with backoff; ingest is never replayed.
func TestRetryOn5xx(t *testing.T) {
	inner := wfreach.NewServiceHandler(wfreach.NewRegistry())
	var gets, posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && gets.Add(1) <= 2 {
			http.Error(w, "wedged", http.StatusServiceUnavailable)
			return
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sessions/s/events" {
			posts.Add(1)
			http.Error(w, "wedged", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := client.New(srv.URL, client.WithRetry(3, time.Millisecond))
	ctx := context.Background()
	if _, err := c.Sessions(ctx); err != nil {
		t.Fatalf("GET did not survive two 503s: %v", err)
	}
	if got := gets.Load(); got != 3 {
		t.Fatalf("GET attempts = %d, want 3", got)
	}

	c.CreateSession(ctx, client.CreateSessionRequest{Name: "s", Builtin: "RunningExample"})
	_, err := c.Ingest(ctx, "s", []client.Event{{V: 0, Name: "x"}})
	var ae *client.Error
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("ingest error = %v", err)
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("ingest attempts = %d, want 1 (not idempotent, never retried)", got)
	}
}

// TestStreamFlushing covers both flush triggers: batch size and the
// interval timer.
func TestStreamFlushing(t *testing.T) {
	srv := newServer(t)
	c := client.New(srv.URL)
	ctx := context.Background()
	c.CreateSession(ctx, client.CreateSessionRequest{Name: "s", Builtin: "RunningExample"})
	events, _ := generate(t, "RunningExample", 300, 5)

	// Size-triggered: after 2*batch sends, at least 2 batches are out.
	stream := c.Stream(ctx, "s", client.StreamOptions{BatchSize: 64})
	for _, ev := range events[:128] {
		if err := stream.Send(wfreach.ToWire(ev)); err != nil {
			t.Fatal(err)
		}
	}
	if got := stream.Applied(); got != 128 {
		t.Fatalf("applied %d after two full batches, want 128", got)
	}

	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}

	// Interval-triggered: a short tail under the batch size flushes on
	// the timer without Close.
	timed := c.Stream(ctx, "s", client.StreamOptions{BatchSize: 1 << 20, FlushInterval: 10 * time.Millisecond})
	defer timed.Close()
	for _, ev := range events[128:140] {
		if err := timed.Send(wfreach.ToWire(ev)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for timed.Applied() != 12 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never happened: applied %d", timed.Applied())
		}
		time.Sleep(time.Millisecond)
	}

	// A poisoned stream (delete the session mid-stream) reports its
	// sticky error from Send and Close.
	poisoned := c.Stream(ctx, "s", client.StreamOptions{BatchSize: 4})
	if err := c.DeleteSession(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for _, ev := range events[140:160] {
		if firstErr = poisoned.Send(wfreach.ToWire(ev)); firstErr != nil {
			break
		}
	}
	var ae *client.Error
	if !errors.As(firstErr, &ae) || ae.Code != client.CodeSessionNotFound {
		t.Fatalf("poisoned stream error = %v", firstErr)
	}
	if err := poisoned.Close(); !errors.As(err, &ae) {
		t.Fatalf("Close after poison = %v", err)
	}
}

// TestUnversionedPaths drives the deprecated legacy prefix through
// the SDK's compatibility option.
func TestUnversionedPaths(t *testing.T) {
	srv := newServer(t)
	c := client.New(srv.URL, client.WithUnversionedPaths())
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, client.CreateSessionRequest{Name: "s", Builtin: "RunningExample"}); err != nil {
		t.Fatal(err)
	}
	events, r := generate(t, "RunningExample", 120, 2)
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}
	if resp, err := c.Ingest(ctx, "s", wire); err != nil || resp.Applied != len(wire) {
		t.Fatalf("legacy ingest: %+v, %v", resp, err)
	}
	v, w := int32(events[0].V), int32(events[len(events)-1].V)
	ok, err := c.ReachLegacy(ctx, "s", v, w)
	if err != nil || ok != r.Reaches(events[0].V, events[len(events)-1].V) {
		t.Fatalf("legacy reach: %v, %v", ok, err)
	}
	if anc, err := c.LineageLegacy(ctx, "s", w); err != nil || len(anc) == 0 {
		t.Fatalf("legacy lineage: %v, %v", anc, err)
	}
}

// TestPartialIngestReportsApplied: a batch that fails mid-way reports
// the durably applied prefix on the typed error, and a Stream keeps
// Applied() accurate across such a failure.
func TestPartialIngestReportsApplied(t *testing.T) {
	srv := newServer(t)
	c := client.New(srv.URL)
	ctx := context.Background()
	c.CreateSession(ctx, client.CreateSessionRequest{Name: "p", Builtin: "RunningExample"})
	events, _ := generate(t, "RunningExample", 120, 9)
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = wfreach.ToWire(ev)
	}

	// Index 10 duplicates an earlier vertex: the server applies 10.
	bad := append(append([]client.Event{}, wire[:10]...), wire[3])
	_, err := c.Ingest(ctx, "p", bad)
	var ae *client.Error
	if !errors.As(err, &ae) || ae.Code != client.CodeBadEvent || ae.Applied != 10 {
		t.Fatalf("partial JSON ingest error = %v (applied %d, want 10)", err, ae.Applied)
	}

	// Same through the binary stream: Applied() counts the prefix.
	stream := c.Stream(ctx, "p", client.StreamOptions{BatchSize: 1 << 20})
	for _, ev := range wire[10:20] {
		if err := stream.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := stream.Send(wire[12]); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := stream.Flush(); err == nil {
		t.Fatal("duplicate should fail the flush")
	}
	if got := stream.Applied(); got != 10 {
		t.Fatalf("stream applied %d after partial flush, want 10", got)
	}
	stream.Close()

	// The session really holds exactly the applied prefix.
	if st, err := c.Session(ctx, "p"); err != nil || st.Vertices != 20 {
		t.Fatalf("session after partial batches: %+v, %v", st, err)
	}
}
