// Package client is the Go SDK for the wfserve /v1 HTTP API (the
// concurrent provenance-labeling service; see docs/API.md for the
// wire reference).
//
// A Client is safe for concurrent use. Every method takes a context,
// decodes the server's structured errors into *Error values usable
// with errors.As, and retries transient server failures (5xx, network
// errors) on read-only calls with exponential backoff:
//
//	c := client.New("http://127.0.0.1:8080")
//	stats, err := c.CreateSession(ctx, client.CreateSessionRequest{
//		Name: "run1", Builtin: "BioAID",
//	})
//	var apiErr *client.Error
//	if errors.As(err, &apiErr) && apiErr.Code == client.CodeSessionExists {
//		// reuse the session
//	}
//
// For ingest, Stream sends events over the binary frame format —
// byte-identical to the server's write-ahead-log frame, so a durable
// server logs accepted frames without re-encoding — batching
// automatically by size and, optionally, by flush interval. Reach and
// ReachBatch answer reachability over the batch endpoint, amortizing
// one roundtrip over many pairs; Lineage walks the paginated closure
// scan for arbitrarily large provenance sets.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"wfreach/internal/api"
)

// Wire types, re-exported from the contract package (internal/api) so
// external callers can name them.
type (
	// Event is the wire form of one execution event: exactly one of
	// (Graph, Vertex) or Name identifies the executed specification
	// vertex.
	Event = api.Event
	// CreateSessionRequest configures a new session.
	CreateSessionRequest = api.CreateSessionRequest
	// SessionStats is a point-in-time snapshot of one session.
	SessionStats = api.SessionStats
	// SessionIntegrity is a session's tamper-evidence anchors: the
	// WAL hash-chain head and the last snapshot's Merkle root.
	SessionIntegrity = api.SessionIntegrity
	// EventsResponse reports how far an ingest request got.
	EventsResponse = api.EventsResponse
	// ReachPair is one reachability question.
	ReachPair = api.ReachPair
	// ReachAnswer answers one pair; failed pairs carry Code/Error.
	ReachAnswer = api.ReachAnswer
	// LineagePage is one page of a provenance-closure scan.
	LineagePage = api.LineageResponse
	// Error is the service's structured error; retrieve it with
	// errors.As and dispatch on Code.
	Error = api.Error
	// ErrorCode classifies an Error.
	ErrorCode = api.ErrorCode
)

// The error codes a client dispatches on (the full set lives in
// internal/api; these are re-exported verbatim).
const (
	CodeBadRequest       = api.CodeBadRequest
	CodeBadJSON          = api.CodeBadJSON
	CodeBadVertex        = api.CodeBadVertex
	CodeBadEvent         = api.CodeBadEvent
	CodeBadFrame         = api.CodeBadFrame
	CodeBadSpec          = api.CodeBadSpec
	CodeUnknownBuiltin   = api.CodeUnknownBuiltin
	CodeSessionNotFound  = api.CodeSessionNotFound
	CodeSessionExists    = api.CodeSessionExists
	CodeVertexNotLabeled = api.CodeVertexNotLabeled
	CodeSessionPoisoned  = api.CodeSessionPoisoned
	CodeReadOnly         = api.CodeReadOnly
	CodeNotFollower      = api.CodeNotFollower
	CodeNotDurable       = api.CodeNotDurable
	CodeMethodNotAllowed = api.CodeMethodNotAllowed
	CodeNotFound         = api.CodeNotFound
	CodeInternal         = api.CodeInternal
	CodeUnknown          = api.CodeUnknown
)

// Client talks to one wfserve instance.
type Client struct {
	base       string
	prefix     string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	noRedirect bool
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets how many times a retryable request (read-only, or
// transport-level failure before any byte was processed) is retried
// on 5xx or network error, and the initial backoff, doubled per
// attempt up to the WithMaxBackoff cap. Each sleep is jittered —
// drawn uniformly from the upper half of the scheduled delay — so a
// fleet of clients retrying against a recovering server spreads out
// instead of thundering in lockstep. The default is 2 retries
// starting at 100ms; WithRetry(0, 0) disables retrying.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) { c.retries = retries; c.backoff = backoff }
}

// WithMaxBackoff caps the per-attempt retry delay (the exponential
// schedule stops doubling there). The default cap is 5s; zero or
// negative restores it.
func WithMaxBackoff(max time.Duration) Option {
	return func(c *Client) {
		if max <= 0 {
			max = defaultMaxBackoff
		}
		c.maxBackoff = max
	}
}

// WithoutWriteRedirect disables the follower-aware write redirect.
// By default, a write rejected by a read-only follower (CodeReadOnly,
// with the primary's base URL in the error detail) is re-sent to the
// primary once — safe even for non-idempotent ingest, because the
// follower rejected the write without applying anything. Disable it
// to surface the rejection instead (use PrimaryFromError to route by
// hand).
func WithoutWriteRedirect() Option { return func(c *Client) { c.noRedirect = true } }

// WithUnversionedPaths switches the client onto the deprecated
// unversioned route prefix (the pre-/v1 surface kept as an adapter).
//
// Deprecated: exists to drive and regression-test the legacy surface;
// new code should not use it.
func WithUnversionedPaths() Option { return func(c *Client) { c.prefix = "" } }

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	c := &Client{
		base:       base,
		prefix:     "/v1",
		hc:         &http.Client{Timeout: 30 * time.Second},
		retries:    2,
		backoff:    100 * time.Millisecond,
		maxBackoff: defaultMaxBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one JSON request. body nil means no request body; out nil
// discards the response body. retryable marks requests safe to replay
// (reads; never ingest, which is not idempotent).
func (c *Client) do(ctx context.Context, method, path string, body, out any, retryable bool) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	return c.doRaw(ctx, method, path, api.ContentTypeJSON, raw, out, retryable)
}

func (c *Client) doRaw(ctx context.Context, method, path, contentType string, body []byte, out any, retryable bool) error {
	base := c.base
	redirected := false
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, base, method, path, contentType, body, out)
		if err == nil {
			return nil
		}
		if !redirected && !c.noRedirect {
			if primary, ok := api.PrimaryFromError(err); ok {
				// A read-only follower rejected a write without applying
				// anything; re-send it to the primary it named, once.
				base = strings.TrimRight(primary, "/")
				redirected = true
				continue
			}
		}
		if !retryable || attempt >= c.retries || !transient(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retryDelay(c.backoff, c.maxBackoff, attempt)):
		}
	}
}

// defaultMaxBackoff caps the retry schedule unless WithMaxBackoff
// overrides it.
const defaultMaxBackoff = 5 * time.Second

// retryDelay returns the sleep before retrying attempt (0-based): the
// exponential schedule base<<attempt, capped at max, jittered by
// drawing uniformly from the upper half of the capped delay. The
// jitter is what keeps a fleet of clients — every routing client in a
// cluster retries the same recovering node at once — from hammering
// it in synchronized waves; the half-floor keeps the schedule's
// pacing (a jittered delay is never less than half the scheduled
// one).
func retryDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max <= 0 {
		max = defaultMaxBackoff
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(rand.Int64N(int64(d-half)+1))
	}
	return d
}

// transient reports whether an error is worth retrying: a server-side
// 5xx, or a transport failure that never produced a response.
func transient(err error) bool {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.HTTPStatus >= 500
	}
	return true // transport error
}

func (c *Client) once(ctx context.Context, base, method, path, contentType string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+c.prefix+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: %s %s: read response: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		return decodeError(resp.StatusCode, raw)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: %s %s: decode response: %w", method, path, err)
		}
	}
	return nil
}

// decodeError rebuilds the server's structured error — including the
// partial-ingest Applied count from the response envelope — so a
// caller can resync after a failed batch. A body that is not in the
// structured shape (a proxy error page, …) becomes CodeUnknown with
// the raw body as message.
func decodeError(status int, raw []byte) *Error {
	var resp api.ErrorResponse
	if err := json.Unmarshal(raw, &resp); err == nil && resp.Err != nil && resp.Err.Code != "" {
		resp.Err.HTTPStatus = status
		resp.Err.Applied = resp.Applied
		return resp.Err
	}
	return &Error{
		Code:       CodeUnknown,
		Message:    fmt.Sprintf("HTTP %d: %s", status, bytes.TrimSpace(raw)),
		HTTPStatus: status,
	}
}

// CreateSession opens a new labeling session and returns its initial
// stats.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (SessionStats, error) {
	var st SessionStats
	err := c.do(ctx, http.MethodPost, "/sessions", req, &st, false)
	return st, err
}

// Sessions lists the open sessions with their stats, sorted by name.
func (c *Client) Sessions(ctx context.Context) ([]SessionStats, error) {
	var resp api.ListSessionsResponse
	if err := c.do(ctx, http.MethodGet, "/sessions", nil, &resp, true); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// Session returns one session's stats.
func (c *Client) Session(ctx context.Context, name string) (SessionStats, error) {
	var st SessionStats
	err := c.do(ctx, http.MethodGet, "/sessions/"+url.PathEscape(name), nil, &st, true)
	return st, err
}

// Integrity returns the session's tamper-evidence anchors: the hash
// chain head over its WAL at the committed sequence, and — when an
// integrity-stamped snapshot exists — the snapshot's Merkle root and
// watermark. Record the anchors externally to make tampering of the
// server's on-disk history detectable by wfverify. A session with no
// WAL (memory-only, or one whose log failed) answers with a typed
// error carrying CodeNotDurable.
func (c *Client) Integrity(ctx context.Context, session string) (SessionIntegrity, error) {
	var st SessionIntegrity
	err := c.do(ctx, http.MethodGet, "/sessions/"+url.PathEscape(session)+"/integrity", nil, &st, true)
	return st, err
}

// DeleteSession removes a session; on a durable server its on-disk
// data is deleted too.
func (c *Client) DeleteSession(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/sessions/"+url.PathEscape(name), nil, nil, false)
}

// Ingest appends a batch of events over the JSON route, in order,
// returning how far the batch got. For sustained ingest prefer
// Stream, which uses the binary frame format. Ingest is not
// idempotent and is never retried; on a partial failure the typed
// error's Applied field carries how many events the server durably
// applied before stopping.
func (c *Client) Ingest(ctx context.Context, session string, events []Event) (EventsResponse, error) {
	var resp EventsResponse
	err := c.do(ctx, http.MethodPost, "/sessions/"+url.PathEscape(session)+"/events",
		api.EventsRequest{Events: events}, &resp, false)
	return resp, err
}

// IngestFrames appends a batch of events in one binary-frame request
// (what Stream uses per flush).
func (c *Client) IngestFrames(ctx context.Context, session string, events []Event) (EventsResponse, error) {
	var buf []byte
	var err error
	for _, ev := range events {
		if buf, err = api.AppendFrame(buf, ev); err != nil {
			return EventsResponse{}, err
		}
	}
	return c.ingestRaw(ctx, session, buf)
}

func (c *Client) ingestRaw(ctx context.Context, session string, frames []byte) (EventsResponse, error) {
	var resp EventsResponse
	err := c.doRaw(ctx, http.MethodPost, "/sessions/"+url.PathEscape(session)+"/events",
		api.ContentTypeFrame, frames, &resp, false)
	return resp, err
}

// ReachBatch answers many reachability pairs in one roundtrip, one
// answer per pair in order. Pair-level failures (an unlabeled vertex)
// arrive inline on the answer, not as a call error.
func (c *Client) ReachBatch(ctx context.Context, session string, pairs []ReachPair) ([]ReachAnswer, error) {
	var resp api.BatchReachResponse
	err := c.do(ctx, http.MethodPost, "/sessions/"+url.PathEscape(session)+"/reach",
		api.BatchReachRequest{Pairs: pairs}, &resp, true)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(pairs) {
		return nil, fmt.Errorf("client: %d answers for %d pairs", len(resp.Results), len(pairs))
	}
	return resp.Results, nil
}

// Reach asks whether from reaches to (reflexive). It rides on the
// batch endpoint; ask many pairs at once with ReachBatch to amortize
// the roundtrip.
func (c *Client) Reach(ctx context.Context, session string, from, to int32) (bool, error) {
	answers, err := c.ReachBatch(ctx, session, []ReachPair{{From: from, To: to}})
	if err != nil {
		return false, err
	}
	if answers[0].Code != "" {
		return false, &Error{Code: answers[0].Code, Message: answers[0].Error}
	}
	return answers[0].Reachable, nil
}

// ReachLegacy asks one pair over the deprecated GET form.
//
// Deprecated: use Reach or ReachBatch; this exists to regression-test
// the legacy surface.
func (c *Client) ReachLegacy(ctx context.Context, session string, from, to int32) (bool, error) {
	var ans ReachAnswer
	err := c.do(ctx, http.MethodGet,
		fmt.Sprintf("/sessions/%s/reach?from=%d&to=%d", url.PathEscape(session), from, to), nil, &ans, true)
	return ans.Reachable, err
}

// LineagePage fetches one page of the provenance closure of a vertex:
// up to limit ancestors after the cursor (empty cursor starts the
// scan; limit <= 0 uses the server default). The returned page's
// NextCursor resumes the scan; empty means done. Every page costs the
// server a full scan over the session's labels (reachability is
// answered from labels alone — there is no ancestor index to seek
// into), so pick limits that bound the response size, and prefer
// Lineage when the whole closure is wanted.
func (c *Client) LineagePage(ctx context.Context, session string, of int32, cursor string, limit int) (LineagePage, error) {
	q := url.Values{"of": {strconv.Itoa(int(of))}}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	} else if cursor == "" {
		// Force pagination even on the first page — a bare ?of= request
		// is the deprecated full scan.
		q.Set("limit", strconv.Itoa(api.DefaultLineageLimit))
	}
	var page LineagePage
	err := c.do(ctx, http.MethodGet,
		"/sessions/"+url.PathEscape(session)+"/lineage?"+q.Encode(), nil, &page, true)
	return page, err
}

// Lineage returns the full provenance closure of a vertex, ascending,
// walking the paginated scan until it is exhausted. It asks for the
// server's maximum page size: each page costs the server a full label
// scan (see LineagePage), so fewer, larger pages are strictly
// cheaper — small limits are for bounding response sizes, not work.
func (c *Client) Lineage(ctx context.Context, session string, of int32) ([]int32, error) {
	var out []int32
	cursor := ""
	for {
		page, err := c.LineagePage(ctx, session, of, cursor, api.MaxLineageLimit)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Ancestors...)
		if page.NextCursor == "" {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// LineageLegacy returns the full closure in one unpaginated response.
//
// Deprecated: use Lineage; this exists to regression-test the legacy
// surface.
func (c *Client) LineageLegacy(ctx context.Context, session string, of int32) ([]int32, error) {
	var resp LineagePage
	err := c.do(ctx, http.MethodGet,
		fmt.Sprintf("/sessions/%s/lineage?of=%d", url.PathEscape(session), of), nil, &resp, true)
	return resp.Ancestors, err
}
