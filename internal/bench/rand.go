package bench

import "math/rand"

// newRand isolates the harness's randomness behind a seeded source so
// every experiment is reproducible.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
