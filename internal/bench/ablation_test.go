package bench_test

import (
	"testing"

	"wfreach/internal/bench"
)

// TestAblationRShape: disabling R compression must deepen the tree and
// lengthen labels on deep-recursion runs.
func TestAblationRShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.AblationR(bench.Config{Samples: 1, Queries: 1, MaxSize: 4096, Quick: true})
	last := len(tb.Rows) - 1
	withR := numAt(t, tb, last, 1)
	depthWithR := numAt(t, tb, last, 2)
	withoutR := numAt(t, tb, last, 3)
	depthWithoutR := numAt(t, tb, last, 4)
	if withoutR <= withR {
		t.Fatalf("no-R labels (%v) should exceed designated-R labels (%v)", withoutR, withR)
	}
	if depthWithoutR <= depthWithR {
		t.Fatalf("no-R depth (%v) should exceed designated-R depth (%v)", depthWithoutR, depthWithR)
	}
	// Lemma 4.1: designated-R depth is grammar-bounded (the synthetic
	// spec has 5 composite names ⇒ ≤ 2·5 edges ⇒ ≤ 11 levels).
	if depthWithR > 11 {
		t.Fatalf("designated-R depth %v exceeds Lemma 4.1's bound", depthWithR)
	}
}

// TestAblationEncodingShape: the wire format costs a bounded constant
// over the word-RAM accounting.
func TestAblationEncodingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.AblationEncoding(bench.Config{Samples: 1, Queries: 1, MaxSize: 2048, Quick: true})
	for i := range tb.Rows {
		acc := numAt(t, tb, i, 1)
		wire := numAt(t, tb, i, 2)
		if wire <= acc {
			t.Fatalf("wire bits (%v) must exceed accounting bits (%v)", wire, acc)
		}
		if wire > acc+80 {
			t.Fatalf("framing overhead too large: %v vs %v", wire, acc)
		}
	}
}

// TestAblationSkeletonShape: TCL stores bits, BFS stores none.
func TestAblationSkeletonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.AblationSkeleton(bench.Config{Samples: 1, Queries: 2000, MaxSize: 1024, Quick: true})
	if numAt(t, tb, 0, 1) <= 0 {
		t.Fatal("TCL skeleton must store bits")
	}
	if numAt(t, tb, 1, 1) != 0 {
		t.Fatal("BFS skeleton must store nothing")
	}
}

// TestExample15Shape: the index scheme stays logarithmic while adapted
// DRL grows on deep Figure 12 derivations.
func TestExample15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.Example15(bench.Config{Samples: 1, Queries: 1, MaxSize: 4096, Quick: true})
	last := len(tb.Rows) - 1
	idx := numAt(t, tb, last, 1)
	drl := numAt(t, tb, last, 2)
	if idx >= 32 {
		t.Fatalf("index labels should be ≤ log n bits, got %v", idx)
	}
	if drl < 4*idx {
		t.Fatalf("adapted DRL (%v) should dwarf the index scheme (%v) on deep paths", drl, idx)
	}
}
