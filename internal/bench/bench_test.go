package bench_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"wfreach/internal/bench"
)

func quickCfg() bench.Config {
	return bench.Config{Samples: 1, Queries: 2000, MaxSize: 4096, Quick: true}
}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables := bench.All(quickCfg())
	if len(tables) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(tables))
	}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Rows) == 0 || len(tb.Columns) == 0 {
			t.Fatalf("table %q is empty", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("table %s: row width %d != %d columns", tb.ID, len(row), len(tb.Columns))
			}
		}
		var buf bytes.Buffer
		tb.Render(&buf)
		if !strings.Contains(buf.String(), "|") {
			t.Fatalf("table %s did not render", tb.ID)
		}
	}
}

// numAt parses the numeric cell at rows[r][c].
func numAt(t *testing.T, tb *bench.Table, r, c int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tb.Rows[r][c], "K")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q not numeric", tb.ID, r, c, tb.Rows[r][c])
	}
	return v
}

// TestFig14Shape: DRL label growth is logarithmic — quadrupling the
// run size must add only a handful of bits, nowhere near linear
// growth.
func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.Fig14(bench.Config{Samples: 2, Queries: 1, MaxSize: 8192})
	first := numAt(t, tb, 0, 2)
	last := numAt(t, tb, len(tb.Rows)-1, 2)
	if last < first {
		t.Fatalf("max label shrank: %v -> %v", first, last)
	}
	if last > first+40 {
		t.Fatalf("max label grew too fast for O(log n): %v -> %v over 8x size", first, last)
	}
}

// TestFig20Shape: SKL labels are longer than DRL labels for large runs
// (the paper's factor-3 headline).
func TestFig20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.Fig20(bench.Config{Samples: 2, Queries: 1, MaxSize: 16384})
	lastRow := len(tb.Rows) - 1
	drl := numAt(t, tb, lastRow, 1)
	skl := numAt(t, tb, lastRow, 2)
	if skl <= drl {
		t.Fatalf("SKL (%v bits) should exceed DRL (%v bits) at 16K", skl, drl)
	}
}

// TestFig19Shape: nonlinear recursion costs more than linear but far
// less than TCL's n-1.
func TestFig19Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.Fig19(bench.Config{Samples: 1, Queries: 1, MaxSize: 8192})
	lastRow := len(tb.Rows) - 1
	lin := numAt(t, tb, lastRow, 1)
	non := numAt(t, tb, lastRow, 2)
	tcl := numAt(t, tb, lastRow, 3)
	if non < lin {
		t.Fatalf("nonlinear (%v) should not beat linear (%v)", non, lin)
	}
	if non >= tcl/4 {
		t.Fatalf("nonlinear (%v) should stay well below TCL's n-1 (%v)", non, tcl)
	}
}

// TestTable2Exact: the skeleton space is reproduced exactly for SKL
// (5565 bits: the 106-vertex global specification).
func TestTable2Exact(t *testing.T) {
	tb := bench.Table2(bench.Config{Samples: 1, Queries: 1, MaxSize: 1024})
	if tb.Rows[1][1] != "5565" {
		t.Fatalf("SKL skeleton bits = %s, want 5565", tb.Rows[1][1])
	}
	drl := numAt(t, tb, 0, 1)
	if drl <= 0 || drl >= 5565 {
		t.Fatalf("DRL skeleton bits = %v, want small and below SKL's", drl)
	}
}

// TestFig01Shape: the Θ(n) classes dwarf the Θ(log n) classes at the
// largest size, and TCL's bound is exactly n-1.
func TestFig01Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := bench.Fig01(bench.Config{Samples: 1, Queries: 1, MaxSize: 8192, Quick: true})
	lastRow := len(tb.Rows) - 1
	sklBits := numAt(t, tb, lastRow, 1)
	drlBits := numAt(t, tb, lastRow, 2)
	recBits := numAt(t, tb, lastRow, 3)
	tclBits := numAt(t, tb, lastRow, 4)
	// Θ(n) vs Θ(log n): the recursive class must dwarf the linear one.
	if recBits < 8*drlBits {
		t.Fatalf("recursive class (%v) should dwarf linear class (%v)", recBits, drlBits)
	}
	// TCL's upper bound is exactly n-1 by construction.
	if tclBits != 8192-1 {
		t.Fatalf("TCL column = %v, want 8191", tclBits)
	}
	// Both Θ(n) witnesses scale with n (within constant factors).
	if recBits < tclBits/4 {
		t.Fatalf("recursive class (%v) should be within a constant of n (%v)", recBits, tclBits)
	}
	if sklBits <= 0 || drlBits <= 0 {
		t.Fatal("compact classes must have positive label sizes")
	}
}
