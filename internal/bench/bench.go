// Package bench is the experiment harness reproducing the paper's
// evaluation (Section 7): every figure and table has a generator that
// builds the paper's workload, measures the same quantities, and
// renders a table with the measured series next to the paper's
// reference expectations. cmd/wfbench drives the full suite;
// bench_test.go exposes each experiment as a Go benchmark.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/skl"
	"wfreach/internal/spec"
	"wfreach/internal/tcldyn"
	"wfreach/internal/wfspecs"
)

// Config sizes the experiments. The paper averages label/time results
// over 10^3 runs and query times over 10^5 queries; the defaults are
// lighter so the suite completes in seconds, and Quick trims further
// for smoke tests.
type Config struct {
	// Samples is the number of random runs averaged per data point.
	Samples int
	// Queries is the number of random reachability queries per
	// query-time measurement.
	Queries int
	// MaxSize is the largest run size of the 1K..32K sweeps.
	MaxSize int
	// Quick trims sweeps to two points for smoke tests.
	Quick bool
}

// DefaultConfig mirrors the paper's sweep shapes at tractable cost.
func DefaultConfig() Config {
	return Config{Samples: 5, Queries: 100000, MaxSize: 32 * 1024}
}

func (c Config) normalized() Config {
	if c.Samples <= 0 {
		c.Samples = 3
	}
	if c.Queries <= 0 {
		c.Queries = 10000
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 32 * 1024
	}
	return c
}

// sizes returns the run-size sweep 1K, 2K, ..., MaxSize (Section 7.1:
// "we vary the size of runs from 1K to 32K by a factor of 2").
func (c Config) sizes() []int {
	var out []int
	for n := 1024; n <= c.MaxSize; n *= 2 {
		out = append(out, n)
	}
	if c.Quick && len(out) > 2 {
		out = []int{out[0], out[len(out)-1]}
	}
	return out
}

// Table is one rendered experiment.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as Markdown.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as RFC-4180-ish CSV (plot-ready: one
// header line, one line per row; notes are omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// labelStats measures max and average encoded label length over the
// live vertices of a labeled run.
func labelStats(d *core.DerivationLabeler, r *run.Run, cod *label.Codec) (maxBits int, avgBits float64) {
	total := 0
	count := 0
	for _, v := range r.Graph.LiveVertices() {
		b := cod.BitLen(d.MustLabel(v))
		if b > maxBits {
			maxBits = b
		}
		total += b
		count++
	}
	if count > 0 {
		avgBits = float64(total) / float64(count)
	}
	return maxBits, avgBits
}

func sizeName(n int) string {
	if n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%d", n)
}

// Fig14 — BioAID label length versus run size, against the paper's
// asymptote f(n) = log n + 13 (both max and average grow as
// c·log n + O(1) with c close to 1 and a small constant max-avg gap).
func Fig14(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAID())
	cod := label.NewCodec(g)
	t := &Table{
		ID:      "fig14",
		Title:   "BioAID label length vs run size (bits)",
		Columns: []string{"run size", "avg length", "max length", "log2(n)+13 (paper ref)"},
		Notes: []string{
			"Paper: both curves grow logarithmically, roughly parallel to log(n)+13, with a small constant max-avg gap (Fig. 14).",
		},
	}
	for _, n := range cfg.sizes() {
		var maxB, sumAvg float64
		for s := 0; s < cfg.Samples; s++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(n + s)})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				panic(err)
			}
			mb, ab := labelStats(d, r, cod)
			if float64(mb) > maxB {
				maxB = float64(mb)
			}
			sumAvg += ab
		}
		t.Rows = append(t.Rows, []string{
			sizeName(n),
			fmt.Sprintf("%.1f", sumAvg/float64(cfg.Samples)),
			fmt.Sprintf("%.0f", maxB),
			fmt.Sprintf("%.1f", math.Log2(float64(n))+13),
		})
	}
	return t
}

// Fig15 — BioAID total construction time for the derivation-based and
// execution-based schemes (linear in run size; derivation-based
// faster).
func Fig15(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAID())
	t := &Table{
		ID:      "fig15",
		Title:   "BioAID total construction time vs run size",
		Columns: []string{"run size", "derivation-based (ms)", "execution-based (ms)", "per-vertex deriv (µs)"},
		Notes: []string{
			"Paper: both grow linearly with run size; derivation-based is faster since the execution-based scheme must locate each vertex's context and origin (Fig. 15).",
		},
	}
	for _, n := range cfg.sizes() {
		var dTot, eTot time.Duration
		for s := 0; s < cfg.Samples; s++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(2*n + s)})
			evs, err := r.Execution(nil)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			if _, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated); err != nil {
				panic(err)
			}
			dTot += time.Since(start)
			start = time.Now()
			if _, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated); err != nil {
				panic(err)
			}
			eTot += time.Since(start)
		}
		dMs := float64(dTot.Microseconds()) / 1000 / float64(cfg.Samples)
		eMs := float64(eTot.Microseconds()) / 1000 / float64(cfg.Samples)
		t.Rows = append(t.Rows, []string{
			sizeName(n),
			fmt.Sprintf("%.2f", dMs),
			fmt.Sprintf("%.2f", eMs),
			fmt.Sprintf("%.3f", dMs*1000/float64(n)),
		})
	}
	return t
}

// queryTimer measures average query latency over pre-drawn random
// vertex pairs.
func queryTimer(pairs [][2]graph.VertexID, f func(v, w graph.VertexID) bool) time.Duration {
	sink := false
	start := time.Now()
	for _, p := range pairs {
		sink = sink != f(p[0], p[1])
	}
	elapsed := time.Since(start)
	if sink {
		_ = sink
	}
	return elapsed / time.Duration(len(pairs))
}

// drlQueryTimer measures π on prefetched DRL labels — the paper's
// setting, where the querier holds two labels and decides reachability
// from them alone.
func drlQueryTimer(d *core.DerivationLabeler, pairs [][2]graph.VertexID) time.Duration {
	ls := make([][2]label.Label, len(pairs))
	for i, p := range pairs {
		ls[i] = [2]label.Label{d.MustLabel(p[0]), d.MustLabel(p[1])}
	}
	skel := d.Skeleton()
	sink := false
	start := time.Now()
	for i := range ls {
		sink = sink != core.Pi(skel, ls[i][0], ls[i][1])
	}
	elapsed := time.Since(start)
	_ = sink
	return elapsed / time.Duration(len(pairs))
}

// sklQueryTimer measures SKL's π on prefetched labels.
func sklQueryTimer(s *skl.Scheme, pairs [][2]graph.VertexID) time.Duration {
	ls := make([][2]*skl.Label, len(pairs))
	for i, p := range pairs {
		ls[i] = [2]*skl.Label{s.MustLabel(p[0]), s.MustLabel(p[1])}
	}
	sink := false
	start := time.Now()
	for i := range ls {
		sink = sink != s.Pi(ls[i][0], ls[i][1])
	}
	elapsed := time.Since(start)
	_ = sink
	return elapsed / time.Duration(len(pairs))
}

func randomPairs(r *run.Run, n int, seed int64) [][2]graph.VertexID {
	live := r.Graph.LiveVertices()
	rng := newRand(seed)
	pairs := make([][2]graph.VertexID, n)
	for i := range pairs {
		pairs[i] = [2]graph.VertexID{live[rng.Intn(len(live))], live[rng.Intn(len(live))]}
	}
	return pairs
}

// Fig16 — BioAID query time for DRL(TCL) and DRL(BFS): flat in run
// size, DRL(TCL) slightly faster.
func Fig16(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAID())
	t := &Table{
		ID:      "fig16",
		Title:   "BioAID query time vs run size",
		Columns: []string{"run size", "DRL(TCL) ns/query", "DRL(BFS) ns/query"},
		Notes: []string{
			"Paper: both are effectively constant in run size because skeleton graphs are small and fixed; DRL(TCL) is slightly faster than DRL(BFS) (Fig. 16).",
		},
	}
	for _, n := range cfg.sizes() {
		r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(3 * n)})
		pairs := randomPairs(r, cfg.Queries, int64(n))
		dTCL, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		dBFS, err := core.LabelRun(r, skeleton.BFS, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			sizeName(n),
			fmt.Sprintf("%d", drlQueryTimer(dTCL, pairs).Nanoseconds()),
			fmt.Sprintf("%d", drlQueryTimer(dBFS, pairs).Nanoseconds()),
		})
	}
	return t
}

// Fig17 — maximum label length versus sub-workflow size (linear
// recursive synthetic workflows, nesting depth 5, 5K-vertex runs):
// roughly logarithmic growth.
func Fig17(cfg Config) *Table {
	cfg = cfg.normalized()
	t := &Table{
		ID:      "fig17",
		Title:   "Max label length vs sub-workflow size (depth 5, 5K runs)",
		Columns: []string{"sub-workflow size", "max label (bits)"},
		Notes: []string{
			"Paper: grows almost logarithmically with sub-workflow size — log n_G rises while log θ_t falls slowly (Fig. 17).",
		},
	}
	sizes := []int{10, 20, 40, 80, 160}
	if cfg.Quick {
		sizes = []int{10, 80}
	}
	for _, sub := range sizes {
		maxB := 0
		for s := 0; s < cfg.Samples; s++ {
			sp := wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: sub, Depth: 5, RecModules: 1, Seed: int64(sub + s)})
			g := spec.MustCompile(sp)
			cod := label.NewCodec(g)
			r := gen.MustGenerate(g, gen.Options{TargetSize: 5120, Seed: int64(s)})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				panic(err)
			}
			mb, _ := labelStats(d, r, cod)
			if mb > maxB {
				maxB = mb
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", sub), fmt.Sprintf("%d", maxB)})
	}
	return t
}

// Fig18 — maximum label length versus nesting depth (sub-workflow size
// 20, 5K-vertex runs): linear growth, the dominant cost factor.
func Fig18(cfg Config) *Table {
	cfg = cfg.normalized()
	t := &Table{
		ID:      "fig18",
		Title:   "Max label length vs nesting depth (size 20, 5K runs)",
		Columns: []string{"nesting depth", "max label (bits)"},
		Notes: []string{
			"Paper: grows linearly with nesting depth — d_t is proportional to it (Fig. 18); real workflows rarely nest deeper than 5.",
		},
	}
	depths := []int{5, 10, 15, 20, 25}
	if cfg.Quick {
		depths = []int{5, 15}
	}
	for _, depth := range depths {
		maxB := 0
		for s := 0; s < cfg.Samples; s++ {
			sp := wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 20, Depth: depth, RecModules: 1, Seed: int64(depth + s)})
			g := spec.MustCompile(sp)
			cod := label.NewCodec(g)
			r := gen.MustGenerate(g, gen.Options{TargetSize: 5120, Seed: int64(s)})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				panic(err)
			}
			mb, _ := labelStats(d, r, cod)
			if mb > maxB {
				maxB = mb
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", depth), fmt.Sprintf("%d", maxB)})
	}
	return t
}

// Fig19 — maximum label length, linear versus nonlinear recursion
// (Figure 13 family with 1 vs 2 R modules), with the TCL n-1 line for
// scale.
func Fig19(cfg Config) *Table {
	cfg = cfg.normalized()
	t := &Table{
		ID:      "fig19",
		Title:   "Max label length: linear vs nonlinear recursion",
		Columns: []string{"run size", "linear (bits)", "nonlinear (bits)", "TCL n-1 (bits)"},
		Notes: []string{
			"Paper: nonlinear recursion produces longer labels (linear-size in the worst case, Theorem 1) yet stays far below TCL's n-1 in practice — under 120 bits at 32K (Fig. 19).",
		},
	}
	lin := spec.MustCompile(wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 20, Depth: 5, RecModules: 1, Seed: 40}))
	non := spec.MustCompile(wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 20, Depth: 5, RecModules: 2, Seed: 40}))
	codLin, codNon := label.NewCodec(lin), label.NewCodec(non)
	for _, n := range cfg.sizes() {
		maxLin, maxNon := 0, 0
		for s := 0; s < cfg.Samples; s++ {
			rl := gen.MustGenerate(lin, gen.Options{TargetSize: n, Seed: int64(n + s)})
			dl, err := core.LabelRun(rl, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				panic(err)
			}
			if mb, _ := labelStats(dl, rl, codLin); mb > maxLin {
				maxLin = mb
			}
			rn := gen.MustGenerate(non, gen.Options{TargetSize: n, Seed: int64(n + s)})
			dn, err := core.LabelRun(rn, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				panic(err)
			}
			if mb, _ := labelStats(dn, rn, codNon); mb > maxNon {
				maxNon = mb
			}
		}
		t.Rows = append(t.Rows, []string{
			sizeName(n),
			fmt.Sprintf("%d", maxLin),
			fmt.Sprintf("%d", maxNon),
			fmt.Sprintf("%d", n-1),
		})
	}
	return t
}

// Fig20 — DRL versus SKL maximum label length on the de-recursed
// BioAID: DRL's slope is ~1·log n against SKL's ~3·log n, crossing
// over at small run sizes.
func Fig20(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	cod := label.NewCodec(g)
	t := &Table{
		ID:      "fig20",
		Title:   "DRL vs SKL max label length (bits, non-recursive BioAID)",
		Columns: []string{"run size", "DRL (dynamic)", "SKL (static)"},
		Notes: []string{
			"Paper: SKL's logarithmic term has factor 3 vs DRL's ≈1, so DRL wins for runs beyond ~1.5K and by a factor approaching 3 asymptotically (Fig. 20).",
		},
	}
	for _, n := range cfg.sizes() {
		maxDRL, maxSKL := 0, 0
		for s := 0; s < cfg.Samples; s++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(5*n + s)})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				panic(err)
			}
			if mb, _ := labelStats(d, r, cod); mb > maxDRL {
				maxDRL = mb
			}
			sk, err := skl.Build(r, skeleton.TCL)
			if err != nil {
				panic(err)
			}
			for _, v := range r.Graph.LiveVertices() {
				if b := sk.BitLen(sk.MustLabel(v)); b > maxSKL {
					maxSKL = b
				}
			}
		}
		t.Rows = append(t.Rows, []string{sizeName(n), fmt.Sprintf("%d", maxDRL), fmt.Sprintf("%d", maxSKL)})
	}
	return t
}

// Fig21 — construction time: derivation-based DRL, execution-based
// DRL, and static SKL (SKL faster per vertex, but only usable once the
// run has completed).
func Fig21(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	t := &Table{
		ID:      "fig21",
		Title:   "Construction time: DRL vs SKL (non-recursive BioAID)",
		Columns: []string{"run size", "DRL derivation (ms)", "DRL execution (ms)", "SKL static (ms)"},
		Notes: []string{
			"Paper: SKL builds simpler labels and is ~2× faster than derivation-based and ~4× faster than execution-based DRL — but cannot start until the run completes (Fig. 21).",
		},
	}
	for _, n := range cfg.sizes() {
		var dTot, eTot, sTot time.Duration
		for s := 0; s < cfg.Samples; s++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(7*n + s)})
			evs, err := r.Execution(nil)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			if _, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated); err != nil {
				panic(err)
			}
			dTot += time.Since(start)
			start = time.Now()
			if _, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated); err != nil {
				panic(err)
			}
			eTot += time.Since(start)
			start = time.Now()
			if _, err := skl.Build(r, skeleton.TCL); err != nil {
				panic(err)
			}
			sTot += time.Since(start)
		}
		f := func(d time.Duration) string {
			return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000/float64(cfg.Samples))
		}
		t.Rows = append(t.Rows, []string{sizeName(n), f(dTot), f(eTot), f(sTot)})
	}
	return t
}

// Fig22 — query time for the four scheme/skeleton combinations.
func Fig22(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	t := &Table{
		ID:      "fig22",
		Title:   "Query time: DRL vs SKL × TCL vs BFS (ns/query)",
		Columns: []string{"run size", "DRL(TCL)", "DRL(BFS)", "SKL(TCL)", "SKL(BFS)"},
		Notes: []string{
			"Paper: SKL(BFS) searches the 106-vertex global specification and is ~10× slower than DRL(BFS), which searches one ~10-vertex sub-workflow; with TCL skeletons both are fast, SKL(TCL) slightly ahead (Fig. 22).",
		},
	}
	for _, n := range cfg.sizes() {
		r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(9 * n)})
		pairs := randomPairs(r, cfg.Queries, int64(n+1))
		dTCL, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		dBFS, err := core.LabelRun(r, skeleton.BFS, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		sTCL, err := skl.Build(r, skeleton.TCL)
		if err != nil {
			panic(err)
		}
		sBFS, err := skl.Build(r, skeleton.BFS)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			sizeName(n),
			fmt.Sprintf("%d", drlQueryTimer(dTCL, pairs).Nanoseconds()),
			fmt.Sprintf("%d", drlQueryTimer(dBFS, pairs).Nanoseconds()),
			fmt.Sprintf("%d", sklQueryTimer(sTCL, pairs).Nanoseconds()),
			fmt.Sprintf("%d", sklQueryTimer(sBFS, pairs).Nanoseconds()),
		})
	}
	return t
}

// Table2 — overhead of labeling the specification: total skeleton
// space and construction time for DRL(TCL) (per-sub-workflow skeletons
// of the recursive BioAID) versus SKL(TCL) (the 106-vertex global
// specification).
func Table2(cfg Config) *Table {
	cfg = cfg.normalized()
	gRec := spec.MustCompile(wfspecs.BioAID())
	gNon := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	reps := 500

	// Minimum over repetitions: the steady-state cost, robust against
	// GC pauses from neighboring experiments.
	minTime := func(f func()) time.Duration {
		best := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	var drlBits int
	drlTime := minTime(func() {
		sch := skeleton.New(skeleton.TCL, gRec)
		drlBits = sch.Bits()
	})

	in, err := gNon.InlineAll()
	if err != nil {
		panic(err)
	}
	var sklBits int
	sklTime := minTime(func() {
		gs := skeleton.NewGraphScheme(skeleton.TCL, in.Graph)
		sklBits = gs.Bits()
	})

	return &Table{
		ID:      "table2",
		Title:   "Overhead of labeling the specification",
		Columns: []string{"scheme", "total space (bits)", "construction time (µs)"},
		Rows: [][]string{
			{"DRL(TCL)", fmt.Sprintf("%d", drlBits), fmt.Sprintf("%.2f", float64(drlTime.Nanoseconds())/1000)},
			{"SKL(TCL)", fmt.Sprintf("%d", sklBits), fmt.Sprintf("%.2f", float64(sklTime.Nanoseconds())/1000)},
		},
		Notes: []string{
			"Paper (Table 2): DRL(TCL) 650 bits / 43.75 µs; SKL(TCL) 5565 bits / 163.28 µs. The global inlined specification has 106 vertices, so SKL's triangular skeleton is exactly 106·105/2 = 5565 bits; DRL labels each sub-workflow separately.",
		},
	}
}

// Fig01 — the compactness landscape of Figure 1, demonstrated
// empirically: maximum label length by graph class and scheme as run
// size grows. Θ(log n) classes stay flat-ish on the log scale; Θ(n)
// classes grow linearly.
func Fig01(cfg Config) *Table {
	cfg = cfg.normalized()
	t := &Table{
		ID:    "fig01",
		Title: "Compactness by class (max label bits)",
		Columns: []string{
			"run size",
			"static run / SKL (Θ(log n))",
			"dynamic linear-recursive / DRL (Θ(log n))",
			"dynamic recursive / DRL (Θ(n))",
			"dynamic DAG / TCL (n-1)",
		},
		Notes: []string{
			"Figure 1's landscape: static runs and dynamic linear-recursive runs admit Θ(log n) labels; dynamic recursive runs and general dynamic DAGs require Θ(n) (Theorems 1-5).",
		},
	}
	linG := spec.MustCompile(wfspecs.BioAID())
	linCod := label.NewCodec(linG)
	nonG := spec.MustCompile(wfspecs.Fig6())
	nonCod := label.NewCodec(nonG)
	sklG := spec.MustCompile(wfspecs.BioAIDNonRecursive())

	sizes := cfg.sizes()
	if len(sizes) > 4 && !cfg.Quick {
		sizes = []int{sizes[0], sizes[1], sizes[len(sizes)/2], sizes[len(sizes)-1]}
	}
	for _, n := range sizes {
		// SKL on a static non-recursive run.
		rs := gen.MustGenerate(sklG, gen.Options{TargetSize: n, Seed: int64(n)})
		sk, err := skl.Build(rs, skeleton.TCL)
		if err != nil {
			panic(err)
		}
		maxSKL := 0
		for _, v := range rs.Graph.LiveVertices() {
			if b := sk.BitLen(sk.MustLabel(v)); b > maxSKL {
				maxSKL = b
			}
		}
		// DRL on a linear recursive run.
		rl := gen.MustGenerate(linG, gen.Options{TargetSize: n, Seed: int64(n)})
		dl, err := core.LabelRun(rl, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		maxLin, _ := labelStats(dl, rl, linCod)
		// DRL (adapted) on the Figure 6 lower-bound grammar, driven by
		// a depth-first derivation (the adversarial shape of Theorem 1;
		// balanced random derivations would stay shallow).
		rn := gen.MustGenerate(nonG, gen.Options{TargetSize: n, Seed: int64(n), DepthFirst: true})
		dn, err := core.LabelRun(rn, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		maxNon, _ := labelStats(dn, rn, nonCod)
		t.Rows = append(t.Rows, []string{
			sizeName(n),
			fmt.Sprintf("%d", maxSKL),
			fmt.Sprintf("%d", maxLin),
			fmt.Sprintf("%d", maxNon),
			fmt.Sprintf("%d", n-1),
		})
	}
	// The TCL column is exact by construction; demonstrate it once.
	l := tcldyn.New()
	_, _ = l.Insert(0, nil)
	return t
}

// All runs the full experiment suite: the paper's figures and tables
// in paper order, followed by this repository's ablations and the
// Example 15 demonstration.
func All(cfg Config) []*Table {
	return []*Table{
		Fig01(cfg), Table2(cfg),
		Fig14(cfg), Fig15(cfg), Fig16(cfg),
		Fig17(cfg), Fig18(cfg), Fig19(cfg),
		Fig20(cfg), Fig21(cfg), Fig22(cfg),
		AblationR(cfg), AblationEncoding(cfg), AblationSkeleton(cfg), Example15(cfg),
	}
}
