package bench

import (
	"fmt"
	"time"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/label"
	"wfreach/internal/pathlabel"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// AblationR quantifies the value of R-node compression (Section 6):
// on a linear recursive workflow driven into deep recursion, the
// designated-R mode keeps the explicit parse tree depth constant and
// labels logarithmic, while the no-R mode's depth — and with it the
// label length — grows with the recursion depth.
func AblationR(cfg Config) *Table {
	cfg = cfg.normalized()
	// The Figure 13 synthetic family with copies capped, so the size
	// budget flows into recursion depth rather than loop width.
	g := spec.MustCompile(wfspecs.Synthetic(wfspecs.SyntheticParams{
		SubSize: 10, Depth: 5, RecModules: 1, Seed: 23,
	}))
	cod := label.NewCodec(g)
	t := &Table{
		ID:    "ablR",
		Title: "Ablation: R-node compression (deep-recursion synthetic runs)",
		Columns: []string{"run size", "designated-R max bits", "designated-R tree depth",
			"no-R max bits", "no-R tree depth"},
		Notes: []string{
			"Designated-R realizes Lemma 4.1's constant depth bound; without R nodes the tree deepens with recursion and labels lose their O(log n) guarantee (Section 6).",
		},
	}
	for _, n := range cfg.sizes() {
		r := gen.MustGenerate(g, gen.Options{
			TargetSize: n, Seed: int64(11 * n), DepthFirst: true, MaxCopies: 2,
		})
		row := []string{sizeName(n)}
		for _, mode := range []core.RMode{core.RModeDesignated, core.RModeNone} {
			d, err := core.LabelRun(r, skeleton.TCL, mode)
			if err != nil {
				panic(err)
			}
			mb, _ := labelStats(d, r, cod)
			row = append(row, fmt.Sprintf("%d", mb), fmt.Sprintf("%d", d.Tree().Depth()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AblationEncoding compares the paper's word-RAM label accounting
// (BitLen) with the actual self-delimiting wire format (EncodedBits):
// the framing costs a constant ~5 bits per level plus byte padding.
func AblationEncoding(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAID())
	cod := label.NewCodec(g)
	t := &Table{
		ID:      "ablEnc",
		Title:   "Ablation: label accounting vs wire encoding (BioAID)",
		Columns: []string{"run size", "avg BitLen", "avg wire bits", "overhead (bits)"},
		Notes: []string{
			"BitLen is Theorem 3's accounting (type + index value bits + skeleton pointer + recursion flags); the wire codec adds 5-bit index width headers, an entry-count frame and byte padding so stored labels are self-delimiting.",
		},
	}
	for _, n := range cfg.sizes() {
		r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(13 * n)})
		d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		var acc, wire, cnt int
		for _, v := range r.Graph.LiveVertices() {
			l := d.MustLabel(v)
			acc += cod.BitLen(l)
			wire += cod.EncodedBits(l)
			cnt++
		}
		t.Rows = append(t.Rows, []string{
			sizeName(n),
			fmt.Sprintf("%.1f", float64(acc)/float64(cnt)),
			fmt.Sprintf("%.1f", float64(wire)/float64(cnt)),
			fmt.Sprintf("%.1f", float64(wire-acc)/float64(cnt)),
		})
	}
	return t
}

// AblationSkeleton isolates the skeleton-scheme choice (Section 7.1's
// TCL vs BFS): storage, labeling-time and query-time impact on one
// representative run.
func AblationSkeleton(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.BioAID())
	n := 8192
	if cfg.Quick {
		n = 1024
	}
	r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: 123})
	pairs := randomPairs(r, cfg.Queries, 5)
	t := &Table{
		ID:      "ablSkel",
		Title:   fmt.Sprintf("Ablation: skeleton scheme (BioAID, %s run)", sizeName(n)),
		Columns: []string{"skeleton", "skeleton bits", "construction (ms)", "query (ns)"},
		Notes: []string{
			"TCL stores n(n-1)/2 bits per specification graph for O(1) skeleton queries; BFS stores nothing and searches the (small) sub-workflow per query. Construction also consults the skeleton for recursion flags (Algorithm 1, lines 9-10).",
		},
	}
	for _, kind := range []skeleton.Kind{skeleton.TCL, skeleton.BFS} {
		var d *core.DerivationLabeler
		var err error
		start := time.Now()
		for s := 0; s < cfg.Samples; s++ {
			if d, err = core.LabelRun(r, kind, core.RModeDesignated); err != nil {
				panic(err)
			}
		}
		build := time.Since(start) / time.Duration(cfg.Samples)
		q := drlQueryTimer(d, pairs)
		t.Rows = append(t.Rows, []string{
			kind.String(),
			fmt.Sprintf("%d", d.Skeleton().Bits()),
			fmt.Sprintf("%.2f", float64(build.Microseconds())/1000),
			fmt.Sprintf("%d", q.Nanoseconds()),
		})
	}
	return t
}

// Example15 demonstrates the open-boundary case of Section 6: the
// Figure 12 grammar is nonlinear (no compact derivation-based scheme
// exists, Theorem 4), yet its runs are simple paths and the naive
// index scheme labels them compactly on the fly — while adapted DRL
// pays linear-size labels on deep derivations.
func Example15(cfg Config) *Table {
	cfg = cfg.normalized()
	g := spec.MustCompile(wfspecs.Fig12())
	cod := label.NewCodec(g)
	t := &Table{
		ID:      "ex15",
		Title:   "Example 15: Figure 12 path runs — index scheme vs adapted DRL",
		Columns: []string{"run size", "index scheme max bits", "adapted DRL max bits"},
		Notes: []string{
			"Nonlinear series recursion sometimes admits compact execution-based labeling (Example 15); whether all non-parallel recursive workflows do is the paper's open problem.",
		},
	}
	sizes := cfg.sizes()
	if len(sizes) > 3 {
		sizes = sizes[:3]
	}
	for _, n := range sizes {
		r := gen.MustGenerate(g, gen.Options{TargetSize: n, Seed: int64(n), DepthFirst: true})
		evs, err := r.Execution(nil)
		if err != nil {
			panic(err)
		}
		p := pathlabel.New()
		for _, ev := range evs {
			if _, err := p.Insert(ev.V, ev.Preds); err != nil {
				panic(err)
			}
		}
		d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			panic(err)
		}
		mb, _ := labelStats(d, r, cod)
		t.Rows = append(t.Rows, []string{
			sizeName(r.Size()), fmt.Sprintf("%d", p.MaxBits()), fmt.Sprintf("%d", mb),
		})
	}
	return t
}
