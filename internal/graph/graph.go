// Package graph implements the directed acyclic graphs underlying
// workflow specifications and runs, together with the four graph
// operations of the paper's Section 2.1: series composition, parallel
// composition, vertex insertion and vertex replacement (Definitions
// 1-4 of Bao, Davidson and Milo, "Labeling Recursive Workflow
// Executions On-the-Fly", SIGMOD 2011).
//
// Throughout the package, "graph" means a directed acyclic graph with
// no self-loops and no multi-edges. Every vertex carries a name (the
// module name in workflow terms); reachability labels are handled by
// higher layers.
package graph

import (
	"errors"
	"fmt"
	"strings"
)

// VertexID identifies a vertex within one Graph. IDs are dense
// non-negative integers assigned by the graph in insertion order.
type VertexID int32

// None is the sentinel VertexID for "no vertex".
const None VertexID = -1

// Graph is a mutable directed acyclic graph. The zero value is not
// usable; call New.
type Graph struct {
	names []string     // vertex id -> name
	out   [][]VertexID // adjacency, insertion-ordered
	in    [][]VertexID // reverse adjacency, insertion-ordered
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names: append([]string(nil), g.names...),
		out:   make([][]VertexID, len(g.out)),
		in:    make([][]VertexID, len(g.in)),
		edges: g.edges,
	}
	for i := range g.out {
		c.out[i] = append([]VertexID(nil), g.out[i]...)
		c.in[i] = append([]VertexID(nil), g.in[i]...)
	}
	return c
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.names) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddVertex adds a vertex with the given name and returns its id.
func (g *Graph) AddVertex(name string) VertexID {
	id := VertexID(len(g.names))
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// Name returns the name of v. It panics if v is out of range.
func (g *Graph) Name(v VertexID) string { return g.names[v] }

// Valid reports whether v is a vertex of g.
func (g *Graph) Valid(v VertexID) bool { return v >= 0 && int(v) < len(g.names) }

// ErrCycle is returned by AddEdge when the edge would create a cycle.
var ErrCycle = errors.New("graph: edge would create a cycle")

// ErrDuplicateEdge is returned by AddEdge for an existing edge.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// ErrSelfLoop is returned by AddEdge for a self-loop.
var ErrSelfLoop = errors.New("graph: self-loop")

// AddEdge inserts the edge (from, to). It rejects self-loops,
// duplicate edges, and edges that would create a cycle.
func (g *Graph) AddEdge(from, to VertexID) error {
	if !g.Valid(from) || !g.Valid(to) {
		return fmt.Errorf("graph: vertex out of range (%d, %d)", from, to)
	}
	if from == to {
		return ErrSelfLoop
	}
	for _, w := range g.out[from] {
		if w == to {
			return ErrDuplicateEdge
		}
	}
	if g.Reaches(to, from) {
		return ErrCycle
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge panicking on error; for use in builders whose
// input is known to be acyclic.
func (g *Graph) MustAddEdge(from, to VertexID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the edge (from, to) exists.
func (g *Graph) HasEdge(from, to VertexID) bool {
	if !g.Valid(from) || !g.Valid(to) {
		return false
	}
	for _, w := range g.out[from] {
		if w == to {
			return true
		}
	}
	return false
}

// Out returns the successors of v. The slice is shared; callers must
// not modify it.
func (g *Graph) Out(v VertexID) []VertexID { return g.out[v] }

// In returns the predecessors of v. The slice is shared; callers must
// not modify it.
func (g *Graph) In(v VertexID) []VertexID { return g.in[v] }

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v VertexID) int { return len(g.in[v]) }

// Sources returns the non-tombstone vertices with no incoming edges,
// in id order.
func (g *Graph) Sources() []VertexID {
	var s []VertexID
	for v := range g.names {
		if len(g.in[v]) == 0 && !g.IsTombstone(VertexID(v)) {
			s = append(s, VertexID(v))
		}
	}
	return s
}

// Sinks returns the non-tombstone vertices with no outgoing edges, in
// id order.
func (g *Graph) Sinks() []VertexID {
	var s []VertexID
	for v := range g.names {
		if len(g.out[v]) == 0 && !g.IsTombstone(VertexID(v)) {
			s = append(s, VertexID(v))
		}
	}
	return s
}

// Reaches reports whether there is a (possibly empty) path from v to
// w: the reflexive-transitive reachability v ;* w used throughout the
// paper. It runs a breadth-first search in O(V+E).
func (g *Graph) Reaches(v, w VertexID) bool {
	if !g.Valid(v) || !g.Valid(w) {
		return false
	}
	if v == w {
		return true
	}
	seen := make([]bool, len(g.names))
	queue := []VertexID{v}
	seen[v] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range g.out[cur] {
			if nxt == w {
				return true
			}
			if !seen[nxt] {
				seen[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	return false
}

// TopoOrder returns the vertices in a deterministic topological order
// (Kahn's algorithm with smallest-id tie-breaking via a binary
// min-heap).
func (g *Graph) TopoOrder() []VertexID {
	n := len(g.names)
	indeg := make([]int, n)
	var frontier idHeap
	for v := 0; v < n; v++ {
		indeg[v] = len(g.in[v])
		if indeg[v] == 0 {
			frontier.push(VertexID(v))
		}
	}
	order := make([]VertexID, 0, n)
	for frontier.len() > 0 {
		v := frontier.pop()
		if !g.IsTombstone(v) {
			order = append(order, v)
		}
		for _, w := range g.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier.push(w)
			}
		}
	}
	return order
}

// idHeap is a binary min-heap of vertex ids.
type idHeap struct{ s []VertexID }

func (h *idHeap) len() int { return len(h.s) }

func (h *idHeap) push(v VertexID) {
	h.s = append(h.s, v)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.s[p] <= h.s[i] {
			break
		}
		h.s[p], h.s[i] = h.s[i], h.s[p]
		i = p
	}
}

func (h *idHeap) pop() VertexID {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.s[l] < h.s[m] {
			m = l
		}
		if r < last && h.s[r] < h.s[m] {
			m = r
		}
		if m == i {
			break
		}
		h.s[i], h.s[m] = h.s[m], h.s[i]
		i = m
	}
	return top
}

// Closure returns the full reachability matrix as bitsets: row v has
// bit w set iff v ;* w (reflexive). Intended for small specification
// graphs and for ground truth in tests.
func (g *Graph) Closure() *Closure {
	n := len(g.names)
	c := &Closure{n: n, words: (n + 63) / 64}
	c.bits = make([]uint64, n*c.words)
	order := g.TopoOrder()
	// Process in reverse topological order so each vertex ORs in the
	// closed rows of its successors.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		row := c.row(int(v))
		row[int(v)/64] |= 1 << (uint(v) % 64)
		for _, w := range g.out[v] {
			wrow := c.row(int(w))
			for k := range row {
				row[k] |= wrow[k]
			}
		}
	}
	return c
}

// Closure is a dense reachability matrix over vertex bitsets.
type Closure struct {
	n     int
	words int
	bits  []uint64
}

func (c *Closure) row(v int) []uint64 {
	return c.bits[v*c.words : (v+1)*c.words]
}

// Reaches reports v ;* w (reflexive) from the precomputed matrix.
func (c *Closure) Reaches(v, w VertexID) bool {
	if int(v) >= c.n || int(w) >= c.n || v < 0 || w < 0 {
		return false
	}
	return c.row(int(v))[int(w)/64]&(1<<(uint(w)%64)) != 0
}

// N returns the number of vertices covered by the matrix.
func (c *Closure) N() int { return c.n }

// IsTwoTerminal reports whether g has a single source and a single
// sink (Section 2.1's two-terminal graphs). The empty graph is not
// two-terminal.
func (g *Graph) IsTwoTerminal() bool {
	return len(g.Sources()) == 1 && len(g.Sinks()) == 1 && g.LiveCount() > 0
}

// Source returns the unique source of a two-terminal graph, or None.
func (g *Graph) Source() VertexID {
	s := g.Sources()
	if len(s) != 1 {
		return None
	}
	return s[0]
}

// Sink returns the unique sink of a two-terminal graph, or None.
func (g *Graph) Sink() VertexID {
	s := g.Sinks()
	if len(s) != 1 {
		return None
	}
	return s[0]
}

// SpansSourceToSink reports whether every vertex lies on some path
// from the unique source to the unique sink — the well-formedness
// condition for workflow graphs: the source starts every execution and
// the sink collects every result.
func (g *Graph) SpansSourceToSink() bool {
	if !g.IsTwoTerminal() {
		return false
	}
	src, snk := g.Source(), g.Sink()
	n := len(g.names)
	fromSrc := g.reachableSet(src, false)
	toSink := g.reachableSet(snk, true)
	for v := 0; v < n; v++ {
		if g.IsTombstone(VertexID(v)) {
			continue
		}
		if !fromSrc[v] || !toSink[v] {
			return false
		}
	}
	return true
}

// reachableSet returns the set of vertices reachable from v, following
// reverse edges when rev is true. v itself is included.
func (g *Graph) reachableSet(v VertexID, rev bool) []bool {
	seen := make([]bool, len(g.names))
	seen[v] = true
	queue := []VertexID{v}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		adj := g.out[cur]
		if rev {
			adj = g.in[cur]
		}
		for _, nxt := range adj {
			if !seen[nxt] {
				seen[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	return seen
}

// String renders the graph compactly for debugging:
// "name0(id0)->[ids] ...".
func (g *Graph) String() string {
	var b strings.Builder
	for v := range g.names {
		if v > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s(%d)->%v", g.names[v], v, g.out[v])
	}
	return b.String()
}
