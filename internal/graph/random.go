package graph

import (
	"fmt"
	"math/rand"
)

// RandomTwoTerminal builds a random two-terminal DAG with n vertices
// in which every vertex lies on a source-to-sink path, as used for the
// synthetic sub-workflows of Section 7.3 ("all sub-workflows are
// random two-terminal graphs of some fixed size"). Vertex i is named
// names[i] when names is non-nil (len(names) must then be n);
// otherwise vertices are named v0..v{n-1}. Vertex 0 is the source and
// vertex n-1 the sink; edges only go from lower to higher ids, with
// density controlling the expected extra edges beyond the spanning
// chain structure (0 <= density <= 1).
func RandomTwoTerminal(rng *rand.Rand, n int, density float64, names []string) *Graph {
	if n < 2 {
		panic("graph: RandomTwoTerminal needs n >= 2")
	}
	if names != nil && len(names) != n {
		panic("graph: RandomTwoTerminal names length mismatch")
	}
	g := New()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%d", i)
		if names != nil {
			name = names[i]
		}
		g.AddVertex(name)
	}
	// Guarantee the source-to-sink spanning property: every interior
	// vertex gets one predecessor among lower ids and one successor
	// among higher ids; the sink hangs off at least one predecessor.
	for i := 1; i < n-1; i++ {
		p := VertexID(rng.Intn(i))
		if err := g.AddEdge(p, VertexID(i)); err != nil {
			panic(err)
		}
	}
	for i := 1; i < n-1; i++ {
		// Successor strictly above i; bias toward the sink to keep the
		// graph shallow like real workflow steps.
		s := VertexID(i + 1 + rng.Intn(n-1-i))
		if err := g.AddEdge(VertexID(i), s); err != nil && err != ErrDuplicateEdge {
			panic(err)
		}
	}
	if g.InDegree(VertexID(n-1)) == 0 {
		g.MustAddEdge(VertexID(n-2), VertexID(n-1))
	}
	if n == 2 {
		if !g.HasEdge(0, 1) {
			g.MustAddEdge(0, 1)
		}
		return g
	}
	if g.OutDegree(0) == 0 {
		g.MustAddEdge(0, 1)
	}
	// Extra random forward edges.
	extra := int(density * float64(n))
	for k := 0; k < extra; k++ {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-1-i)
		err := g.AddEdge(VertexID(i), VertexID(j))
		if err != nil && err != ErrDuplicateEdge && err != ErrCycle {
			panic(err)
		}
	}
	return g
}

// RandomDAG builds a random DAG (not necessarily two-terminal) with n
// vertices and roughly density*n*(n-1)/2 of the possible forward
// edges. Used by property tests for the general dynamic-DAG scheme.
func RandomDAG(rng *rand.Rand, n int, density float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(fmt.Sprintf("d%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.MustAddEdge(VertexID(i), VertexID(j))
			}
		}
	}
	return g
}
