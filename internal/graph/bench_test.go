package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkReaches(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := RandomDAG(rng, 500, 0.05)
	pairs := make([][2]VertexID, 1024)
	for i := range pairs {
		pairs[i] = [2]VertexID{VertexID(rng.Intn(500)), VertexID(rng.Intn(500))}
	}
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sink = sink != g.Reaches(p[0], p[1])
	}
	_ = sink
}

func BenchmarkTopoOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := RandomDAG(rng, 1000, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.TopoOrder()
	}
}

func BenchmarkClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := RandomDAG(rng, 200, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Closure()
	}
}

func BenchmarkReplace(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	h := RandomTwoTerminal(rng, 10, 0.4, nil)
	proto := RandomTwoTerminal(rng, 50, 0.2, nil)
	targets := make([]VertexID, 64)
	for i := range targets {
		targets[i] = VertexID(1 + rng.Intn(48))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := proto.Clone()
		if _, err := g.Replace(targets[i%len(targets)], h); err != nil {
			b.Fatal(err)
		}
	}
}
