package graph

import "fmt"

// This file implements the four graph operations of Section 2.1
// (Definitions 1-4). Series and parallel composition formalize loop
// and fork executions; vertex insertion and vertex replacement
// formalize execution-based and derivation-based dynamic runs.
//
// Compositions build a fresh graph; the returned Mapping records where
// each input vertex landed so callers (the run builder, the labelers)
// can track identities across operations.

// Mapping records, for each operand graph of a composition, the new id
// of each of its vertices: Mapping[k][v] is the id in the result of
// vertex v of operand k.
type Mapping [][]VertexID

// Series forms the series composition S(g1, ..., gn) of two-terminal
// graphs (Definition 1): the disjoint union plus an edge from the sink
// of each operand to the source of the next. It panics if any operand
// is not two-terminal, matching the definition's precondition.
func Series(gs ...*Graph) (*Graph, Mapping) {
	res, m := disjointUnion(gs)
	for i := 0; i+1 < len(gs); i++ {
		t := m[i][gs[i].Sink()]
		s := m[i+1][gs[i+1].Source()]
		res.MustAddEdge(t, s)
	}
	return res, m
}

// Parallel forms the parallel composition P(g1, ..., gn) (Definition
// 2): simply the disjoint union of the operands. The result is in
// general not two-terminal; the replacement operation wires all its
// sources and sinks into the host graph.
func Parallel(gs ...*Graph) (*Graph, Mapping) {
	return disjointUnion(gs)
}

func disjointUnion(gs []*Graph) (*Graph, Mapping) {
	res := New()
	m := make(Mapping, len(gs))
	for k, g := range gs {
		if len(gs) > 1 && !g.IsTwoTerminal() {
			panic(fmt.Sprintf("graph: composition operand %d is not two-terminal", k))
		}
		m[k] = make([]VertexID, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			m[k][v] = res.AddVertex(g.Name(VertexID(v)))
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Out(VertexID(v)) {
				res.MustAddEdge(m[k][v], m[k][w])
			}
		}
	}
	return res, m
}

// Insert adds a new vertex labeled name to g with edges from every
// vertex of preds to it (Definition 3: g + (v, C)). It returns the new
// vertex's id. Duplicate predecessors are rejected.
func (g *Graph) Insert(name string, preds []VertexID) (VertexID, error) {
	seen := make(map[VertexID]bool, len(preds))
	for _, p := range preds {
		if !g.Valid(p) {
			return None, fmt.Errorf("graph: insert predecessor %d out of range", p)
		}
		if seen[p] {
			return None, fmt.Errorf("graph: insert duplicate predecessor %d", p)
		}
		seen[p] = true
	}
	v := g.AddVertex(name)
	for _, p := range preds {
		// Cannot create a cycle: v has no outgoing edges yet.
		g.out[p] = append(g.out[p], v)
		g.in[v] = append(g.in[v], p)
		g.edges++
	}
	return v, nil
}

// ReplaceResult reports the outcome of a Replace: the ids in the host
// graph of each vertex of the replacement graph.
type ReplaceResult struct {
	// VertexOf[v] is the host id of vertex v of the replacement graph.
	VertexOf []VertexID
}

// Replace substitutes vertex u of g with the graph h (Definition 4:
// g[u/h]): u and its incident edges are removed; h is added; every
// former predecessor of u gains an edge to every source of h, and
// every sink of h gains an edge to every former successor of u.
//
// The host graph keeps its existing vertex ids stable: u's id becomes
// a tombstone that is never reused, which lets the run builder track
// vertices across a whole derivation without renumbering. Tombstones
// keep their name prefixed with "\x00" and have no edges; they are
// excluded from Sources/Sinks by construction (no edges ≠ no incident
// edges... a tombstone has degree zero), so callers that need
// source/sink structure use Live() views or the spec-level builders,
// which never query a graph with tombstones for terminals.
func (g *Graph) Replace(u VertexID, h *Graph) (ReplaceResult, error) {
	if !g.Valid(u) {
		return ReplaceResult{}, fmt.Errorf("graph: replace target %d out of range", u)
	}
	if g.IsTombstone(u) {
		return ReplaceResult{}, fmt.Errorf("graph: replace target %d already replaced", u)
	}
	if h.NumVertices() == 0 {
		return ReplaceResult{}, fmt.Errorf("graph: replacement graph is empty")
	}
	preds := append([]VertexID(nil), g.in[u]...)
	succs := append([]VertexID(nil), g.out[u]...)

	// Remove u's incident edges.
	for _, p := range preds {
		g.out[p] = removeID(g.out[p], u)
	}
	for _, s := range succs {
		g.in[s] = removeID(g.in[s], u)
	}
	g.edges -= len(preds) + len(succs)
	g.in[u] = nil
	g.out[u] = nil
	g.names[u] = "\x00" + g.names[u]

	// Add h.
	res := ReplaceResult{VertexOf: make([]VertexID, h.NumVertices())}
	for v := 0; v < h.NumVertices(); v++ {
		res.VertexOf[v] = g.AddVertex(h.Name(VertexID(v)))
	}
	for v := 0; v < h.NumVertices(); v++ {
		for _, w := range h.Out(VertexID(v)) {
			nv, nw := res.VertexOf[v], res.VertexOf[w]
			g.out[nv] = append(g.out[nv], nw)
			g.in[nw] = append(g.in[nw], nv)
			g.edges++
		}
	}

	// Wire sources and sinks.
	for v := 0; v < h.NumVertices(); v++ {
		hv := VertexID(v)
		nv := res.VertexOf[v]
		if h.InDegree(hv) == 0 {
			for _, p := range preds {
				g.out[p] = append(g.out[p], nv)
				g.in[nv] = append(g.in[nv], p)
				g.edges++
			}
		}
		if h.OutDegree(hv) == 0 {
			for _, s := range succs {
				g.out[nv] = append(g.out[nv], s)
				g.in[s] = append(g.in[s], nv)
				g.edges++
			}
		}
	}
	return res, nil
}

// IsTombstone reports whether v was consumed by a Replace.
func (g *Graph) IsTombstone(v VertexID) bool {
	return g.Valid(v) && len(g.names[v]) > 0 && g.names[v][0] == '\x00'
}

// LiveCount returns the number of non-tombstone vertices.
func (g *Graph) LiveCount() int {
	n := 0
	for v := range g.names {
		if !g.IsTombstone(VertexID(v)) {
			n++
		}
	}
	return n
}

// LiveVertices returns the non-tombstone vertices in id order.
func (g *Graph) LiveVertices() []VertexID {
	var vs []VertexID
	for v := range g.names {
		if !g.IsTombstone(VertexID(v)) {
			vs = append(vs, VertexID(v))
		}
	}
	return vs
}

func removeID(s []VertexID, v VertexID) []VertexID {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
