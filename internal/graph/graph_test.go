package graph

import (
	"math/rand"
	"testing"
)

// chain builds s -> a -> b -> ... -> t with the given names.
func chain(t *testing.T, names ...string) *Graph {
	t.Helper()
	g := New()
	var prev VertexID = None
	for _, n := range names {
		v := g.AddVertex(n)
		if prev != None {
			g.MustAddEdge(prev, v)
		}
		prev = v
	}
	return g
}

func TestAddVertexAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if got := g.AddVertex("x"); got != VertexID(i) {
			t.Fatalf("AddVertex #%d = %d", i, got)
		}
	}
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	v := g.AddVertex("a")
	if err := g.AddEdge(v, v); err != ErrSelfLoop {
		t.Fatalf("self-loop error = %v, want ErrSelfLoop", err)
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New()
	a, b := g.AddVertex("a"), g.AddVertex("b")
	g.MustAddEdge(a, b)
	if err := g.AddEdge(a, b); err != ErrDuplicateEdge {
		t.Fatalf("duplicate error = %v, want ErrDuplicateEdge", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgeRejectsCycle(t *testing.T) {
	g := chain(t, "a", "b", "c")
	if err := g.AddEdge(2, 0); err != ErrCycle {
		t.Fatalf("cycle error = %v, want ErrCycle", err)
	}
	// Diamond closing edge is fine.
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatalf("forward edge: %v", err)
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New()
	g.AddVertex("a")
	if err := g.AddEdge(0, 7); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative edge accepted")
	}
}

func TestReachesReflexiveAndTransitive(t *testing.T) {
	g := chain(t, "a", "b", "c", "d")
	cases := []struct {
		v, w VertexID
		want bool
	}{
		{0, 0, true}, {0, 3, true}, {1, 3, true}, {3, 0, false}, {2, 1, false},
	}
	for _, c := range cases {
		if got := g.Reaches(c.v, c.w); got != c.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", c.v, c.w, got, c.want)
		}
	}
}

func TestReachesDiamond(t *testing.T) {
	g := New()
	s := g.AddVertex("s")
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	u := g.AddVertex("t")
	g.MustAddEdge(s, a)
	g.MustAddEdge(s, b)
	g.MustAddEdge(a, u)
	g.MustAddEdge(b, u)
	if !g.Reaches(s, u) {
		t.Fatal("s should reach t")
	}
	if g.Reaches(a, b) || g.Reaches(b, a) {
		t.Fatal("parallel branches must not reach each other")
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		g := RandomDAG(rng, 30, 0.2)
		order := g.TopoOrder()
		if len(order) != g.NumVertices() {
			t.Fatalf("topo order misses vertices: %d vs %d", len(order), g.NumVertices())
		}
		pos := make(map[VertexID]int)
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Out(VertexID(v)) {
				if pos[VertexID(v)] >= pos[w] {
					t.Fatalf("edge %d->%d violates topo order", v, w)
				}
			}
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomDAG(rng, 40, 0.15)
	a := g.TopoOrder()
	b := g.TopoOrder()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopoOrder is not deterministic")
		}
	}
}

func TestClosureMatchesReaches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := RandomDAG(rng, 25, 0.25)
		c := g.Closure()
		for v := 0; v < g.NumVertices(); v++ {
			for w := 0; w < g.NumVertices(); w++ {
				got := c.Reaches(VertexID(v), VertexID(w))
				want := g.Reaches(VertexID(v), VertexID(w))
				if got != want {
					t.Fatalf("closure(%d,%d) = %v, BFS = %v", v, w, got, want)
				}
			}
		}
	}
}

func TestClosureOutOfRange(t *testing.T) {
	g := chain(t, "a", "b")
	c := g.Closure()
	if c.Reaches(0, 9) || c.Reaches(-1, 0) {
		t.Fatal("out-of-range closure query should be false")
	}
	if c.N() != 2 {
		t.Fatalf("Closure.N = %d", c.N())
	}
}

func TestTwoTerminalDetection(t *testing.T) {
	g := chain(t, "s", "m", "t")
	if !g.IsTwoTerminal() {
		t.Fatal("chain should be two-terminal")
	}
	if g.Source() != 0 || g.Sink() != 2 {
		t.Fatalf("source/sink = %d/%d", g.Source(), g.Sink())
	}
	g.AddVertex("orphan")
	if g.IsTwoTerminal() {
		t.Fatal("orphan vertex breaks two-terminality")
	}
	if g.Source() != None {
		t.Fatal("ambiguous source should be None")
	}
	if New().IsTwoTerminal() {
		t.Fatal("empty graph is not two-terminal")
	}
}

func TestSpansSourceToSink(t *testing.T) {
	g := chain(t, "s", "a", "t")
	if !g.SpansSourceToSink() {
		t.Fatal("chain spans source to sink")
	}
	// A vertex hanging off the side, reachable from s but not reaching t,
	// still yields a unique source/sink pair but fails the span check...
	// it would be a second sink, so build the dead-end as a diamond leg
	// that skips the sink instead: s->a->t, s->b, b->t makes it span; use
	// b with no outgoing edge: that makes two sinks, caught either way.
	v := g.AddVertex("dead")
	g.MustAddEdge(0, v)
	if g.SpansSourceToSink() {
		t.Fatal("dead-end vertex must fail the span check")
	}
}

func TestSeriesComposition(t *testing.T) {
	g1 := chain(t, "s1", "t1")
	g2 := chain(t, "s2", "t2")
	g3 := chain(t, "s3", "t3")
	res, m := Series(g1, g2, g3)
	if res.NumVertices() != 6 {
		t.Fatalf("vertices = %d", res.NumVertices())
	}
	// Definition 1: edge from sink of g_i to source of g_{i+1}.
	if !res.HasEdge(m[0][1], m[1][0]) || !res.HasEdge(m[1][1], m[2][0]) {
		t.Fatal("series edges missing")
	}
	if !res.IsTwoTerminal() {
		t.Fatal("series of two-terminal graphs is two-terminal")
	}
	if !res.Reaches(m[0][0], m[2][1]) {
		t.Fatal("series start must reach series end")
	}
}

func TestParallelComposition(t *testing.T) {
	g1 := chain(t, "s1", "t1")
	g2 := chain(t, "s2", "t2")
	res, m := Parallel(g1, g2)
	if res.NumVertices() != 4 || res.NumEdges() != 2 {
		t.Fatalf("parallel composition wrong shape: %v", res)
	}
	if res.Reaches(m[0][0], m[1][1]) || res.Reaches(m[1][0], m[0][1]) {
		t.Fatal("parallel operands must stay disconnected")
	}
	if res.IsTwoTerminal() {
		t.Fatal("parallel composition of 2 graphs has 2 sources")
	}
}

func TestSeriesPanicsOnNonTwoTerminal(t *testing.T) {
	bad := New()
	bad.AddVertex("a")
	bad.AddVertex("b") // two sources, two sinks
	defer func() {
		if recover() == nil {
			t.Fatal("Series must panic on a non-two-terminal operand")
		}
	}()
	Series(bad, bad)
}

func TestInsert(t *testing.T) {
	g := chain(t, "a", "b")
	v, err := g.Insert("c", []VertexID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, v) || !g.HasEdge(1, v) {
		t.Fatal("insert edges missing")
	}
	if _, err := g.Insert("d", []VertexID{0, 0}); err == nil {
		t.Fatal("duplicate predecessor accepted")
	}
	if _, err := g.Insert("d", []VertexID{42}); err == nil {
		t.Fatal("out-of-range predecessor accepted")
	}
	// Insertion with empty predecessor set: a fresh source.
	w, err := g.Insert("e", nil)
	if err != nil || g.InDegree(w) != 0 {
		t.Fatalf("empty insert: %v", err)
	}
}

func TestReplaceBasic(t *testing.T) {
	// p -> u -> s, replace u with a 2-vertex chain.
	g := chain(t, "p", "u", "s")
	h := chain(t, "h1", "h2")
	res, err := g.Replace(1, h)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := res.VertexOf[0], res.VertexOf[1]
	if !g.HasEdge(0, h1) || !g.HasEdge(h2, 2) || !g.HasEdge(h1, h2) {
		t.Fatalf("replacement wiring wrong: %v", g)
	}
	if !g.IsTombstone(1) {
		t.Fatal("replaced vertex must be a tombstone")
	}
	if g.LiveCount() != 4 {
		t.Fatalf("LiveCount = %d, want 4", g.LiveCount())
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Fatal("edges incident to u must be removed")
	}
}

func TestReplaceWiresAllSourcesAndSinks(t *testing.T) {
	// Definition 4 wires every source and every sink of h, which is what
	// connects the copies of a parallel (fork) composition.
	g := chain(t, "p", "u", "s")
	c1 := chain(t, "a1", "b1")
	c2 := chain(t, "a2", "b2")
	par, _ := Parallel(c1, c2)
	res, err := g.Replace(1, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := res.VertexOf[i]
		if par.InDegree(VertexID(i)) == 0 && !g.HasEdge(0, v) {
			t.Fatalf("source copy %d not wired from predecessor", i)
		}
		if par.OutDegree(VertexID(i)) == 0 && !g.HasEdge(v, 2) {
			t.Fatalf("sink copy %d not wired to successor", i)
		}
	}
	// The two copies remain mutually unreachable.
	if g.Reaches(res.VertexOf[0], res.VertexOf[3]) {
		t.Fatal("fork copies must not reach each other")
	}
}

func TestReplaceErrors(t *testing.T) {
	g := chain(t, "a", "b")
	if _, err := g.Replace(9, chain(t, "x", "y")); err == nil {
		t.Fatal("out-of-range replace accepted")
	}
	if _, err := g.Replace(1, New()); err == nil {
		t.Fatal("empty replacement accepted")
	}
	if _, err := g.Replace(1, chain(t, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Replace(1, chain(t, "x")); err == nil {
		t.Fatal("double replace accepted")
	}
}

// TestReplacePreservesReachability checks Lemma 4.3: replacement
// preserves reachability between pairs of pre-existing vertices.
func TestReplacePreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := RandomTwoTerminal(rng, 8+rng.Intn(6), 0.4, nil)
		before := make(map[[2]VertexID]bool)
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				before[[2]VertexID{VertexID(v), VertexID(w)}] = g.Reaches(VertexID(v), VertexID(w))
			}
		}
		// Replace a random interior vertex.
		u := VertexID(1 + rng.Intn(n-2))
		h := RandomTwoTerminal(rng, 2+rng.Intn(5), 0.3, nil)
		if _, err := g.Replace(u, h); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if VertexID(v) == u || VertexID(w) == u {
					continue
				}
				got := g.Reaches(VertexID(v), VertexID(w))
				if got != before[[2]VertexID{VertexID(v), VertexID(w)}] {
					t.Fatalf("trial %d: replacement changed reachability %d->%d", trial, v, w)
				}
			}
		}
	}
}

// TestInsertPreservesReachability checks the same preservation for
// vertex insertion (the other dynamic update of Section 2.4).
func TestInsertPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := RandomDAG(rng, 20, 0.2)
	n := g.NumVertices()
	before := make([][]bool, n)
	for v := 0; v < n; v++ {
		before[v] = make([]bool, n)
		for w := 0; w < n; w++ {
			before[v][w] = g.Reaches(VertexID(v), VertexID(w))
		}
	}
	if _, err := g.Insert("new", []VertexID{0, 5, 7}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			if g.Reaches(VertexID(v), VertexID(w)) != before[v][w] {
				t.Fatalf("insertion changed reachability %d->%d", v, w)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := chain(t, "a", "b")
	c := g.Clone()
	c.AddVertex("c")
	c.MustAddEdge(1, 2)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestRandomTwoTerminalInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := RandomTwoTerminal(rng, n, rng.Float64(), nil)
		if !g.IsTwoTerminal() {
			t.Fatalf("n=%d: not two-terminal: %v", n, g)
		}
		if !g.SpansSourceToSink() {
			t.Fatalf("n=%d: does not span source to sink: %v", n, g)
		}
		if g.Source() != 0 || g.Sink() != VertexID(n-1) {
			t.Fatalf("n=%d: terminals moved", n)
		}
	}
}

func TestRandomTwoTerminalNames(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := RandomTwoTerminal(rng, 3, 0, []string{"x", "y", "z"})
	if g.Name(0) != "x" || g.Name(2) != "z" {
		t.Fatal("names not applied")
	}
}

func TestStringSmoke(t *testing.T) {
	g := chain(t, "a", "b")
	if g.String() == "" {
		t.Fatal("String should render something")
	}
}
