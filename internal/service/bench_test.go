package service

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

func benchEvents(b *testing.B, size int) (*spec.Grammar, []run.Event) {
	b.Helper()
	s, _ := Builtin("BioAID")
	g, err := spec.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: size, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return g, events
}

func ingestAll(b *testing.B, s *Session, events []run.Event, batch int) {
	b.Helper()
	for i := 0; i < len(events); i += batch {
		end := min(i+batch, len(events))
		if _, err := s.Append(events[i:end]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionIngest measures streaming-ingest throughput through
// a session (labeling + encoding + store publication), reporting
// events/sec — the service hot path future scaling PRs optimize.
func BenchmarkSessionIngest(b *testing.B) {
	g, events := benchEvents(b, 8192)
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := NewRegistry()
		s, err := reg.Create("b", g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ingestAll(b, s, events, 256)
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSessionIngestConcurrentReaders is the same ingest with
// query goroutines hammering the read side, measuring how much
// concurrent readers cost the writer.
func BenchmarkSessionIngestConcurrentReaders(b *testing.B) {
	const readers = 4
	g, events := benchEvents(b, 8192)
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	var queries atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := NewRegistry()
		s, err := reg.Create("b", g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for ri := 0; ri < readers; ri++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					n := s.Vertices()
					if n < 2 {
						continue
					}
					v := events[rng.Int63n(n)].V
					w := events[rng.Int63n(n)].V
					if _, err := s.Reach(v, w); err == nil {
						queries.Add(1)
					}
				}
			}(int64(ri))
		}
		ingestAll(b, s, events, 256)
		close(stop)
		wg.Wait()
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(queries.Load())/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkSessionQuery measures read-side reachability throughput on
// a fully ingested session, across parallel readers.
func BenchmarkSessionQuery(b *testing.B) {
	g, events := benchEvents(b, 8192)
	reg := NewRegistry()
	s, err := reg.Create("b", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		b.Fatal(err)
	}
	ingestAll(b, s, events, 256)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(7))
		for pb.Next() {
			v := events[rng.Intn(len(events))].V
			w := events[rng.Intn(len(events))].V
			if _, err := s.Reach(v, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkSessionLineage measures the lock-free full-closure scan on
// a fully ingested session.
func BenchmarkSessionLineage(b *testing.B) {
	g, events := benchEvents(b, 4096)
	reg := NewRegistry()
	s, err := reg.Create("b", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		b.Fatal(err)
	}
	ingestAll(b, s, events, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lineage(events[i%len(events)].V); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lineages/sec")
}

// BenchmarkDurableConcurrentSessions measures WAL group commit: many
// sessions ingest concurrently on one durable registry, so their
// per-batch flushes coalesce through the cross-session committer.
// events/sec is the aggregate across sessions.
func BenchmarkDurableConcurrentSessions(b *testing.B) {
	const sessions = 4
	g, events := benchEvents(b, 4096)
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		reg, err := NewDurableRegistry(DurableOptions{Dir: b.TempDir(), SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		ss := make([]*Session, sessions)
		for si := range ss {
			if ss[si], err = reg.Create(string(rune('a'+si)), g, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for _, s := range ss {
			wg.Add(1)
			go func(s *Session) {
				defer wg.Done()
				for lo := 0; lo < len(events); lo += 256 {
					hi := min(lo+256, len(events))
					if _, err := s.Append(events[lo:hi]); err != nil {
						b.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		b.StopTimer()
		if err := reg.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(len(events)*sessions*b.N)/b.Elapsed().Seconds(), "events/sec")
}
