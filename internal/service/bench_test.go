package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfreach/client"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/service"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

func benchEvents(b *testing.B, size int) (*spec.Grammar, []run.Event) {
	b.Helper()
	s, _ := service.Builtin("BioAID")
	g, err := spec.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: size, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return g, events
}

func ingestAll(b *testing.B, s *service.Session, events []run.Event, batch int) {
	b.Helper()
	for i := 0; i < len(events); i += batch {
		end := min(i+batch, len(events))
		if _, err := s.Append(events[i:end]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionIngest measures streaming-ingest throughput through
// a session (labeling + encoding + store publication), reporting
// events/sec — the service hot path future scaling PRs optimize.
func BenchmarkSessionIngest(b *testing.B) {
	g, events := benchEvents(b, 8192)
	cfg := service.Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := service.NewRegistry()
		s, err := reg.Create("b", g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ingestAll(b, s, events, 256)
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSessionIngestConcurrentReaders is the same ingest with
// query goroutines hammering the read side, measuring how much
// concurrent readers cost the writer.
func BenchmarkSessionIngestConcurrentReaders(b *testing.B) {
	const readers = 4
	g, events := benchEvents(b, 8192)
	cfg := service.Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	var queries atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := service.NewRegistry()
		s, err := reg.Create("b", g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for ri := 0; ri < readers; ri++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					n := s.Vertices()
					if n < 2 {
						continue
					}
					v := events[rng.Int63n(n)].V
					w := events[rng.Int63n(n)].V
					if _, err := s.Reach(v, w); err == nil {
						queries.Add(1)
					}
				}
			}(int64(ri))
		}
		ingestAll(b, s, events, 256)
		close(stop)
		wg.Wait()
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(queries.Load())/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkSessionQuery measures read-side reachability throughput on
// a fully ingested session, across parallel readers.
func BenchmarkSessionQuery(b *testing.B) {
	g, events := benchEvents(b, 8192)
	reg := service.NewRegistry()
	s, err := reg.Create("b", g, service.Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		b.Fatal(err)
	}
	ingestAll(b, s, events, 256)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(7))
		for pb.Next() {
			v := events[rng.Intn(len(events))].V
			w := events[rng.Intn(len(events))].V
			if _, err := s.Reach(v, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkSessionLineage measures the lock-free full-closure scan on
// a fully ingested session.
func BenchmarkSessionLineage(b *testing.B) {
	g, events := benchEvents(b, 4096)
	reg := service.NewRegistry()
	s, err := reg.Create("b", g, service.Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		b.Fatal(err)
	}
	ingestAll(b, s, events, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lineage(events[i%len(events)].V); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lineages/sec")
}

// BenchmarkDurableConcurrentSessions measures WAL group commit: many
// sessions ingest concurrently on one durable registry, so their
// per-batch flushes coalesce through the cross-session committer.
// events/sec is the aggregate across sessions.
func BenchmarkDurableConcurrentSessions(b *testing.B) {
	const sessions = 4
	g, events := benchEvents(b, 4096)
	cfg := service.Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: b.TempDir(), SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		ss := make([]*service.Session, sessions)
		for si := range ss {
			if ss[si], err = reg.Create(string(rune('a'+si)), g, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for _, s := range ss {
			wg.Add(1)
			go func(s *service.Session) {
				defer wg.Done()
				for lo := 0; lo < len(events); lo += 256 {
					hi := min(lo+256, len(events))
					if _, err := s.Append(events[lo:hi]); err != nil {
						b.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		b.StopTimer()
		if err := reg.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(len(events)*sessions*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// --- HTTP wire benchmarks: what the /v1 redesign buys on the wire.
// They run through a real HTTP stack (httptest server + the Go client
// SDK), so the numbers include framing, checksums and roundtrips.

func benchHTTP(b *testing.B, durable bool) (*service.Registry, *client.Client, func() string) {
	b.Helper()
	reg := service.NewRegistry()
	if durable {
		// Fsync off, snapshots off: the measured difference is the wire
		// format and the WAL tee, not the disk.
		var err error
		if reg, err = service.NewDurableRegistry(service.DurableOptions{Dir: b.TempDir(), SnapshotEvery: -1}); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { reg.Close() })
	}
	srv := httptest.NewServer(service.NewHandler(reg))
	b.Cleanup(srv.Close)
	c := client.New(srv.URL, client.WithRetry(0, 0))
	n := 0
	nextSession := func() string {
		n++
		name := fmt.Sprintf("b%d", n)
		if _, err := c.CreateSession(context.Background(), client.CreateSessionRequest{
			Name: name, Builtin: "BioAID",
		}); err != nil {
			b.Fatal(err)
		}
		return name
	}
	return reg, c, nextSession
}

func wireEvents(b *testing.B, events []run.Event) []client.Event {
	b.Helper()
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = service.ToWire(ev)
	}
	return wire
}

// BenchmarkHTTPIngestJSON streams 256-event batches into a durable
// session over the JSON events route — the pre-redesign wire path:
// decode JSON, then re-encode every event into its WAL frame
// server-side.
func BenchmarkHTTPIngestJSON(b *testing.B) {
	_, events := benchEvents(b, 8192)
	_, c, nextSession := benchHTTP(b, true)
	wire := wireEvents(b, events)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := nextSession()
		for lo := 0; lo < len(wire); lo += 256 {
			hi := min(lo+256, len(wire))
			if _, err := c.Ingest(ctx, name, wire[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(len(wire)*b.N), "ns/event")
	b.ReportMetric(float64(len(wire)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkHTTPIngestBinary streams the same batches into a durable
// session over the binary frame route: one length-prefixed CRC-framed
// record per event, byte-identical to the WAL frame, teed to the log
// without re-encoding.
func BenchmarkHTTPIngestBinary(b *testing.B) {
	_, events := benchEvents(b, 8192)
	_, c, nextSession := benchHTTP(b, true)
	wire := wireEvents(b, events)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := nextSession()
		for lo := 0; lo < len(wire); lo += 256 {
			hi := min(lo+256, len(wire))
			if _, err := c.IngestFrames(ctx, name, wire[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(len(wire)*b.N), "ns/event")
	b.ReportMetric(float64(len(wire)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkHTTPIngestBinaryScraped is the identical saturated binary
// stream with a concurrent scraper hitting GET /v1/metrics once per
// second — still 5–15× a production Prometheus cadence. The
// Binary/BinaryScraped pair prices observability on the hot ingest
// path (acceptance budget: ≤1%). Note the baseline already carries
// the always-on instrumentation (hot-path atomics); this pair
// isolates pure scrape concurrency. It also reports ms/scrape (wall
// time of one full GET /v1/metrics round-trip under saturated
// ingest), from which overhead at any cadence follows directly:
// overhead = scrape_ms × scrapes_per_sec / 1000.
func BenchmarkHTTPIngestBinaryScraped(b *testing.B) {
	_, events := benchEvents(b, 8192)
	_, c, nextSession := benchHTTP(b, true)
	wire := wireEvents(b, events)
	ctx := context.Background()
	stop := make(chan struct{})
	var scrapes atomic.Int64
	var scrapeNS atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			start := time.Now()
			if _, err := c.Metrics(ctx); err == nil {
				scrapes.Add(1)
				scrapeNS.Add(time.Since(start).Nanoseconds())
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := nextSession()
		for lo := 0; lo < len(wire); lo += 256 {
			hi := min(lo+256, len(wire))
			if _, err := c.IngestFrames(ctx, name, wire[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(len(wire)*b.N), "ns/event")
	b.ReportMetric(float64(len(wire)*b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(scrapes.Load())/b.Elapsed().Seconds(), "scrapes/sec")
	if n := scrapes.Load(); n > 0 {
		b.ReportMetric(float64(scrapeNS.Load())/float64(n)/1e6, "ms/scrape")
	}
}

// BenchmarkHTTPIngestBinaryNoChain is the identical stream with the
// WAL hash chain switched off: the Binary/NoChain pair prices tamper
// evidence on the hot ingest path (acceptance budget: ≤5%). The chain
// is one batched SHA-256 pass per group-commit flush, so the delta
// should be hashing throughput, not extra synchronization.
func BenchmarkHTTPIngestBinaryNoChain(b *testing.B) {
	_, events := benchEvents(b, 8192)
	reg, c, nextSession := benchHTTP(b, true)
	wire := wireEvents(b, events)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := nextSession()
		if s, ok := reg.Get(name); ok {
			service.DisableChain(s)
		}
		for lo := 0; lo < len(wire); lo += 256 {
			hi := min(lo+256, len(wire))
			if _, err := c.IngestFrames(ctx, name, wire[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(len(wire)*b.N), "ns/event")
	b.ReportMetric(float64(len(wire)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkHTTPReachSingle answers one reachability pair per
// roundtrip over the deprecated GET form — ns/op is the per-pair
// cost the batch endpoint amortizes.
func BenchmarkHTTPReachSingle(b *testing.B) {
	_, events := benchEvents(b, 8192)
	_, c, nextSession := benchHTTP(b, false)
	name := nextSession()
	ctx := context.Background()
	if _, err := c.IngestFrames(ctx, name, wireEvents(b, events)); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int32(events[rng.Intn(len(events))].V)
		w := int32(events[rng.Intn(len(events))].V)
		if _, err := c.ReachLegacy(ctx, name, v, w); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/pair")
}

// BenchmarkHTTPReachBatch64 answers 64 pairs per roundtrip over the
// /v1 batch endpoint; ns/pair is directly comparable to
// BenchmarkHTTPReachSingle.
func BenchmarkHTTPReachBatch64(b *testing.B) {
	const batch = 64
	_, events := benchEvents(b, 8192)
	_, c, nextSession := benchHTTP(b, false)
	name := nextSession()
	ctx := context.Background()
	if _, err := c.IngestFrames(ctx, name, wireEvents(b, events)); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pairs := make([]client.ReachPair, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pi := range pairs {
			pairs[pi] = client.ReachPair{
				From: int32(events[rng.Intn(len(events))].V),
				To:   int32(events[rng.Intn(len(events))].V),
			}
		}
		if _, err := c.ReachBatch(ctx, name, pairs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(batch*b.N), "ns/pair")
}
