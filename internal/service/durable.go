package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"wfreach/internal/api"
	"wfreach/internal/arena"
	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/integrity"
	"wfreach/internal/label"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wal"
	"wfreach/internal/wfxml"
)

// Per-session data files under <DurableOptions.Dir>/<session name>/.
// Their byte-level layouts are specified in ARCHITECTURE.md.
const (
	metaFile = "session.json" // sessionMeta: labeling configuration
	specFile = "spec.xml"     // the workflow specification, as wfxml
	walFile  = "events.wal"   // append-only event log (internal/wal)
	snapFile = "labels.snap"  // latest label snapshot (internal/wal)
)

// metaFormat is the session.json format version this build writes.
const metaFormat = 1

// DefaultSnapshotEvery is the snapshot cadence used when
// DurableOptions.SnapshotEvery is zero.
const DefaultSnapshotEvery = 4096

// ErrDurability marks server-side persistence failures (a WAL that
// cannot be written, flushed or reopened). It lets callers — the HTTP
// layer in particular — distinguish "your events are invalid" from
// "the server cannot keep its durability promise".
var ErrDurability = errors.New("durability failure")

// DurableOptions configures the persistence layer of a registry.
type DurableOptions struct {
	// Dir is the root data directory. Each session owns the
	// subdirectory Dir/<name> holding its specification, metadata,
	// event WAL and label snapshot.
	Dir string
	// SnapshotEvery is the number of ingested events between label-map
	// snapshots. Zero selects DefaultSnapshotEvery; negative disables
	// snapshotting (recovery then replays the full WAL).
	SnapshotEvery int
	// Fsync forces the WAL to stable storage before a batch is
	// acknowledged. With it off, an acknowledged batch survives a
	// process crash (the OS holds the written bytes) but may be lost to
	// a whole-machine crash.
	Fsync bool
}

// sessionMeta is the JSON body of a session's metadata file, written
// once at creation. Shards records the session's configured store
// shard count (zero: the registry default at restore time); ID the
// session's stable identity (Config.ID). Both are absent in files
// written before the fields existed, which decodes as zero/empty.
type sessionMeta struct {
	Format   int    `json:"format"`
	Name     string `json:"name"`
	ID       string `json:"id,omitempty"`
	Skeleton string `json:"skeleton"`
	RMode    string `json:"rmode"`
	Shards   int    `json:"shards,omitempty"`
}

// NewDurableRegistry returns a registry whose sessions persist to
// opts.Dir: every Create writes the session's specification and
// metadata and opens its write-ahead log, every acknowledged event
// batch is logged before it becomes queryable, and Restore rebuilds
// the sessions after a restart. The directory is created if absent.
func NewDurableRegistry(opts DurableOptions) (*Registry, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("service: durable registry needs a data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	r := NewRegistry()
	r.durable = &opts
	r.committer = wal.NewCommitter()
	r.committer.SetMetrics(r.metrics.wal)
	return r, nil
}

// validateSessionName rejects names that cannot double as directory
// names. Durable sessions live at Dir/<name>, so the name must be a
// single clean path element of filesystem-friendly length with no
// control characters.
func validateSessionName(name string) error {
	if name == "" || name == "." || name == ".." || len(name) > 255 ||
		strings.ContainsAny(name, "/\\") || name != filepath.Clean(name) {
		return fmt.Errorf("service: session name %q is not usable as a directory name", name)
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return fmt.Errorf("service: session name %q contains control characters", name)
		}
	}
	return nil
}

// writeFileSync creates path, streams content through write, and
// fsyncs before closing — metadata files must not be left half-written
// by a machine crash (a session with torn metadata aborts Restore).
func writeFileSync(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}

// syncDir fsyncs a directory, committing the entries created in it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if closeErr := d.Close(); err == nil {
		err = closeErr
	}
	return err
}

// initDurable attaches persistence to a freshly created session:
// creates its directory, writes spec.xml and session.json (fsynced,
// along with the directories, so a machine crash cannot leave torn
// metadata behind a successful Create), and opens an empty WAL. Called
// with the session's name reserved in the registry but no lock held.
func (s *Session) initDurable(opts *DurableOptions, committer *wal.Committer) error {
	dir := filepath.Join(opts.Dir, s.name)
	if _, err := os.Stat(dir); err == nil {
		return fmt.Errorf("service: session data already exists at %s (restore or remove it)", dir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("service: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: %w: %v", ErrDurability, err)
	}
	cleanup := func() { os.RemoveAll(dir) }

	err := writeFileSync(filepath.Join(dir, specFile), func(f *os.File) error {
		return wfxml.EncodeSpec(f, s.g.Spec())
	})
	if err != nil {
		cleanup()
		return fmt.Errorf("service: persist spec: %w: %v", ErrDurability, err)
	}

	meta, err := json.MarshalIndent(sessionMeta{
		Format:   metaFormat,
		Name:     s.name,
		ID:       s.cfg.ID,
		Skeleton: s.cfg.Skeleton.String(),
		RMode:    s.cfg.Mode.String(),
		Shards:   s.cfg.Shards,
	}, "", "  ")
	if err == nil {
		err = writeFileSync(filepath.Join(dir, metaFile), func(f *os.File) error {
			_, werr := f.Write(append(meta, '\n'))
			return werr
		})
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err == nil {
		err = syncDir(opts.Dir)
	}
	if err != nil {
		cleanup()
		return fmt.Errorf("service: persist metadata: %w: %v", ErrDurability, err)
	}

	log, err := wal.Open(filepath.Join(dir, walFile), 0, 0, opts.Fsync)
	if err != nil {
		cleanup()
		return fmt.Errorf("service: %w: %v", ErrDurability, err)
	}
	s.attachWAL(dir, log, opts, committer)
	return nil
}

// attachWAL flips the session into durable mode.
func (s *Session) attachWAL(dir string, log *wal.Log, opts *DurableOptions, committer *wal.Committer) {
	s.durable = true
	s.dir = dir
	s.wal = log
	s.committer = committer
	s.snapEvery = int64(opts.SnapshotEvery)
	if s.metrics != nil {
		log.SetMetrics(s.metrics.wal)
	}
}

// logRecord appends one successfully labeled event to the WAL. A write
// failure poisons the session: the labeler has already advanced past
// the log, so accepting more events would make the on-disk state
// unrecoverable. Called with ingestMu held.
func (s *Session) logRecord(rec wal.Record) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(rec); err != nil {
		s.ioErr = fmt.Errorf("service: session %q: %w: %v", s.name, ErrDurability, err)
		return s.ioErr
	}
	s.walEvents++
	return nil
}

// logFrame appends one successfully labeled event to the WAL as a
// pre-encoded, CRC-verified wire frame (byte-identical to the WAL
// frame — see internal/api), skipping re-encoding. Failure semantics
// match logRecord: a write failure poisons the session. Called with
// ingestMu held.
func (s *Session) logFrame(frame []byte) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.AppendRaw(frame); err != nil {
		s.ioErr = fmt.Errorf("service: session %q: %w: %v", s.name, ErrDurability, err)
		return s.ioErr
	}
	s.walEvents++
	return nil
}

// commitWAL makes everything appended to the log up to seq durable —
// flushed, and fsynced as the registry is configured — before the
// batch is acknowledged. The flush goes through the registry's group
// committer (attachWAL always wires one: only durable registries open
// WALs, and every durable registry owns a committer), so it coalesces
// with concurrent batches — one disk round-trip covers every batch
// that queued behind it. Called without ingestMu: a commit in flight
// must not block the next batch from labeling and logging. A commit
// failure poisons the session.
func (s *Session) commitWAL(log *wal.Log, seq int64) error {
	start := time.Now()
	err := s.committer.Commit(log, seq)
	s.observeCommit(start)
	if err == nil {
		return nil
	}
	werr := fmt.Errorf("service: session %q: %w: %v", s.name, ErrDurability, err)
	s.ingestMu.Lock()
	if s.ioErr == nil {
		s.ioErr = werr
	}
	s.ingestMu.Unlock()
	return werr
}

// writeArenaSnapshot writes an arena snapshot (see internal/arena):
// events is the covered record count, walBytes the log byte offset the
// covered prefix ends at, entries the encoded labels. The entry bytes
// are aliased, never copied — labels are write-once, so a concurrent
// ingest can only add entries the snapshot does not reference. With
// hasChain set, chain is the WAL hash-chain head at record events and
// the snapshot is stamped in the WFSNAP03 format (Merkle root over the
// entries plus the chain head); otherwise plain WFSNAP02 is written.
// The Merkle root of a v3 snapshot is returned.
func writeArenaSnapshot(path string, events, walBytes int64, entries []store.Entry, chain integrity.Head, hasChain bool) (integrity.Head, error) {
	aes := make([]arena.Entry, len(entries))
	for i, e := range entries {
		aes[i] = arena.Entry{V: e.V, Enc: e.Enc}
	}
	return arena.Write(path, arena.Meta{Events: events, WALBytes: walBytes, ChainHead: chain, HasChain: hasChain}, aes)
}

// maybeSnapshot starts a label snapshot if enough events accumulated
// since the last one and none is in flight. The consistent view —
// label entries plus the event and byte watermarks — is captured under
// ingestMu: the published store holds exactly the logged event prefix
// whenever the ingest lock is free, so the watermarks and the staged
// entry list agree. The file write and fsync, which grow with session
// size, run in a goroutine off the ingest path. Snapshots are written
// in the arena (WFSNAP02) format — a session restored from a v1 file
// upgrades to v2 at its next snapshot. Failures are not fatal — the
// WAL alone is always sufficient for recovery — and are retried at a
// later batch because the watermark does not advance. Called after a
// successful commit, without ingestMu held.
func (s *Session) maybeSnapshot() {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.wal == nil || s.snapEvery <= 0 || s.walEvents-s.snapEvents < s.snapEvery || s.snapBusy {
		return
	}
	s.snapBusy = true
	events := s.walEvents
	walBytes := s.wal.AppendBytes()
	entries := s.store.SnapshotEntries()
	// The chain head at the captured watermark: under ingestMu the
	// log's append sequence equals walEvents (every logged record
	// advanced both), so folding the pending frames in now yields the
	// head of exactly the covered prefix.
	chainSeq, chainHead, hasChain := s.wal.ChainHead()
	hasChain = hasChain && chainSeq == events
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		t0 := time.Now()
		root, err := writeArenaSnapshot(filepath.Join(s.dir, snapFile), events, walBytes, entries, chainHead, hasChain)
		s.observeSnapshot(t0, err)
		s.ingestMu.Lock()
		s.snapBusy = false
		if err == nil && events > s.snapEvents {
			s.snapEvents = events
			s.snapRoot, s.snapChain, s.snapIntegrity = root, chainHead, hasChain
		}
		s.ingestMu.Unlock()
	}()
}

// WALSeq returns the sequence of the last event committed to the
// session's write-ahead log — an absolute, restart-stable position in
// the event stream (the count of events ever logged). It is 0 for
// memory-only sessions and frozen once a durable session's log closes
// or poisons.
func (s *Session) WALSeq() int64 {
	s.ingestMu.Lock()
	log := s.wal
	s.ingestMu.Unlock()
	if log == nil {
		return 0
	}
	return log.DurableSeq()
}

// NewWALTailer opens a tailer over the session's write-ahead log,
// serving committed records from sequence from (1-based) — history
// off the disk, then live as batches commit. The caller owns closing
// it. Sessions without an open log (memory-only, closed, poisoned)
// cannot be tailed; the error is a typed CodeNotDurable.
func (s *Session) NewWALTailer(from int64) (*wal.Tailer, error) {
	s.ingestMu.Lock()
	log := s.wal
	s.ingestMu.Unlock()
	if log == nil {
		return nil, api.Errorf(api.CodeNotDurable, "session %q has no write-ahead log to tail", s.name)
	}
	if from <= 0 {
		return nil, api.Errorf(api.CodeBadRequest, "tail sequence must be positive, got %d", from)
	}
	t, err := wal.NewTailer(log, from)
	if err != nil {
		return nil, api.Errorf(api.CodeInternal, "open WAL tail: %v", err)
	}
	return t, nil
}

// closeWAL detaches and closes the session's log and waits for any
// in-flight snapshot write to settle. Further ingestion fails; queries
// keep working from the in-memory store. With finalSnap set and events
// beyond the last snapshot, a synchronous arena snapshot is written
// after the close — the log is flushed, so the snapshot covers every
// record and the next restore is a pure mmap with an empty WAL tail.
func (s *Session) closeWAL(finalSnap bool) error {
	s.ingestMu.Lock()
	if s.wal == nil {
		s.ingestMu.Unlock()
		return nil
	}
	events := s.walEvents
	walBytes := s.wal.AppendBytes()
	behind := s.snapEvery > 0 && events > s.snapEvents
	chainSeq, chainHead, hasChain := s.wal.ChainHead()
	hasChain = hasChain && chainSeq == events
	err := s.wal.Close()
	s.wal = nil
	if s.ioErr == nil {
		s.ioErr = fmt.Errorf("service: session %q: %w: log closed", s.name, ErrDurability)
	}
	s.ingestMu.Unlock()
	// Outside ingestMu: the snapshot goroutine needs it to finish, and
	// with the log gone no new snapshot can start.
	s.snapWG.Wait()
	if finalSnap && behind && err == nil {
		// Best-effort: a failed snapshot just means the next restore
		// replays the log, exactly as if the process had crashed here.
		t0 := time.Now()
		_, serr := writeArenaSnapshot(filepath.Join(s.dir, snapFile), events, walBytes, s.store.SnapshotEntries(), chainHead, hasChain)
		s.observeSnapshot(t0, serr)
	}
	return err
}

// Close flushes and closes every durable session's WAL, writing each
// session a final arena snapshot so the next Restore maps it back in
// without replaying the log. Durable sessions stop accepting events
// (their logs are gone) but remain queryable; a memory-only registry
// is unaffected. Use it for graceful shutdown or before handing the
// data directory to another process.
func (r *Registry) Close() error {
	r.mu.RLock()
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.RUnlock()
	var first error
	for _, s := range sessions {
		if err := s.closeWAL(true); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// errReplayHalt marks a WAL record the labeler rejected during
// restore. It is handled like tail corruption: the valid prefix is
// kept and the log is truncated before the offending record.
var errReplayHalt = errors.New("service: replay halted")

// replayRecord applies one WAL record to the session's labeler,
// returning the vertex it labeled.
func (s *Session) replayRecord(rec wal.Record) (graph.VertexID, label.Label, error) {
	if rec.Named {
		l, err := s.labeler.InsertNamed(rec.NamedEv)
		return rec.NamedEv.V, l, err
	}
	l, err := s.labeler.Insert(rec.Ref)
	return rec.Ref.V, l, err
}

// restoreArena rebuilds the session's store around an opened arena
// snapshot. The arena becomes the store's immutable base layer — its
// label bytes are served straight from the mapping, never decoded or
// copied — and only the WAL tail past the arena's byte watermark is
// replayed. With an empty tail (graceful shutdown) even the labeler
// rebuild is deferred to the first ingest (see ensureLabelerLocked),
// making restore O(open + index validation) regardless of session
// size.
//
// ok=false (with err nil) reports an arena the log cannot back — ahead
// of the durable log after an OS crash with Fsync off, or covering
// records the labeler rejects — in which case the caller discards it
// and replays the full log; the session's labeler and store are left
// for replayFull to reset.
func (s *Session) restoreArena(a *arena.Arena, walPath string, shards int) (ok bool, replayed, validSize int64, err error) {
	var size int64
	switch fi, err := os.Stat(walPath); {
	case err == nil:
		size = fi.Size()
	case errors.Is(err, fs.ErrNotExist):
		// no log at all: only an empty arena is consistent with it
	default:
		return false, 0, 0, err
	}
	if a.WALBytes() > size || a.Events() < 0 {
		return false, 0, 0, nil // snapshot ahead of the log: discard
	}
	// Probe the tail before committing to the arena: how many records
	// does the log hold past the snapshot's watermark?
	tailN, tailValid, err := wal.ScanFrom(walPath, a.WALBytes(), nil)
	if err != nil {
		return false, 0, 0, err
	}
	st, err := store.NewFromArena(s.g, s.cfg.Skeleton, shards, a)
	if err != nil {
		return false, 0, 0, err
	}
	if tailN == 0 {
		// The snapshot covers the whole log — the common case after a
		// graceful shutdown. Nothing to replay: the store serves the
		// mapped bytes, and the labeler (only needed for future ingest)
		// is rebuilt lazily on the first batch.
		s.store = st
		s.needLabelerReplay = a.Events() > 0
		return true, a.Events(), tailValid, nil
	}
	// A non-empty tail needs labeler state for the whole prefix, so the
	// log is replayed eagerly — but the arena still supplies the label
	// bytes for the records it covers, so the covered prefix skips the
	// encode and store staging that dominate a v1 restore.
	s.store = st
	n, vs, err := wal.Scan(walPath, func(i int, rec wal.Record) error {
		v, l, ierr := s.replayRecord(rec)
		if ierr != nil {
			return fmt.Errorf("%w at record %d: %v", errReplayHalt, i, ierr)
		}
		if int64(i) < a.Events() {
			return nil // the arena already holds this label
		}
		return s.store.StageOwned(v, s.store.Encode(l))
	})
	if errors.Is(err, errReplayHalt) {
		if int64(n) < a.Events() {
			// The log cannot reproduce the arena's covered prefix: the
			// arena holds labels the truncated log will never re-issue.
			// Discard it — replayFull resets the labeler and store.
			return false, 0, 0, nil
		}
		err = nil // tail halt: keep the valid prefix, truncate the rest
	}
	if err != nil {
		return false, 0, 0, err
	}
	s.store.Publish()
	return true, int64(n), vs, nil
}

// replayFull rebuilds the session from the log alone (optionally with
// a v1 snapshot supplying already-encoded label bytes for its covered
// prefix) — the pre-arena restore path, kept for v1 data directories
// and as the fallback when an arena snapshot is unusable. It resets
// the labeler and store, so it can follow an abandoned arena attempt.
func (s *Session) replayFull(walPath string, snap wal.Snapshot, shards int) (replayed, validSize int64, err error) {
	s.labeler = core.NewExecutionLabeler(s.g, s.cfg.Skeleton, s.cfg.Mode)
	s.store = store.NewSharded(s.g, s.cfg.Skeleton, shards)
	s.needLabelerReplay = false
	// Replay: every record rebuilds labeler state; the label bytes come
	// from the snapshot where it applies and from re-encoding beyond
	// it. Labels are staged as they replay and published once at the
	// end — one view rebuild for the whole log instead of one per
	// record.
	n, vs, err := wal.Scan(walPath, func(i int, rec wal.Record) error {
		v, l, ierr := s.replayRecord(rec)
		if ierr != nil {
			return fmt.Errorf("%w at record %d: %v", errReplayHalt, i, ierr)
		}
		enc, ok := snap.Labels[v]
		if !ok || int64(i) >= snap.Events {
			enc = s.store.Encode(l)
		}
		// Snapshot bytes: ReadSnapshot allocated enc for us alone, so it
		// is handed over without another copy.
		return s.store.StageOwned(v, enc)
	})
	if errors.Is(err, errReplayHalt) {
		err = nil // keep the valid prefix, truncate the rest below
	}
	if err != nil {
		return 0, 0, err
	}
	s.store.Publish()
	return int64(n), vs, nil
}

// Restore scans dir for session directories and rebuilds each session
// from its persisted specification, label snapshot and WAL: the full
// event log is replayed through a fresh labeler (labeling is
// deterministic, so replay reissues the exact same labels) while the
// snapshot supplies the already-encoded label bytes for the prefix it
// covers — those bytes go straight back into the store, never
// re-encoded. A torn or corrupt WAL tail is detected by CRC and
// dropped; a missing or corrupt snapshot falls back to full-replay
// encoding; a snapshot that claims more events than the log holds
// (possible only after an OS crash with Fsync off) is discarded.
//
// On a durable registry the restored sessions reopen their WALs —
// truncating any corrupt tail — and continue accepting events exactly
// where the log ends. On a memory-only registry the sessions are
// rebuilt read-write but nothing further is persisted and no file is
// modified, which is useful for inspecting a copied data directory.
//
// Restore returns the restored session names, sorted. A missing dir
// restores nothing. Corrupt session metadata (unreadable session.json
// or spec.xml) aborts with an error naming the session; already-open
// names collide like Create.
//
// dir is usually the registry's own DurableOptions.Dir, but any data
// directory is accepted: sessions restored from elsewhere keep
// persisting under *that* directory, while new Creates go to
// DurableOptions.Dir — deliberately, so a copied data directory can
// be inspected or adopted, but a typo here silently splits the data
// across two roots.
func (r *Registry) Restore(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	var restored []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sdir := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sdir, metaFile)); errors.Is(err, fs.ErrNotExist) {
			continue // not a session directory
		}
		// Reserve the name before touching any file: restoring a name
		// that is already live — or mid-restore in a concurrent call —
		// would truncate that session's WAL out from under it when the
		// log is reopened below.
		r.mu.Lock()
		_, dup := r.sessions[e.Name()]
		dup = dup || r.creating[e.Name()]
		if !dup {
			r.creating[e.Name()] = true
		}
		r.mu.Unlock()
		if dup {
			return restored, fmt.Errorf("service: restore %s: session already open", e.Name())
		}
		s, err := r.restoreSession(sdir, e.Name())
		r.mu.Lock()
		delete(r.creating, e.Name())
		if err == nil {
			r.sessions[s.name] = s
		}
		r.mu.Unlock()
		if err != nil {
			return restored, fmt.Errorf("service: restore %s: %w", e.Name(), err)
		}
		restored = append(restored, s.name)
	}
	sort.Strings(restored)
	return restored, nil
}

// restoreSession rebuilds one session from its directory.
func (r *Registry) restoreSession(sdir, dirName string) (*Session, error) {
	restoreStart := time.Now()
	raw, err := os.ReadFile(filepath.Join(sdir, metaFile))
	if err != nil {
		return nil, err
	}
	var meta sessionMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("bad %s: %w", metaFile, err)
	}
	if meta.Format != metaFormat {
		return nil, fmt.Errorf("bad %s: format %d not supported", metaFile, meta.Format)
	}
	if meta.Name != dirName {
		return nil, fmt.Errorf("bad %s: names session %q", metaFile, meta.Name)
	}
	cfg, err := ParseConfig(meta.Skeleton, meta.RMode)
	if err != nil {
		return nil, fmt.Errorf("bad %s: %w", metaFile, err)
	}
	if meta.Shards < 0 {
		return nil, fmt.Errorf("bad %s: negative shard count %d", metaFile, meta.Shards)
	}
	cfg.Shards = meta.Shards
	// The identity is restored as persisted — possibly empty for
	// pre-field data — never regenerated: a restart must not make the
	// session look like a different one to its replicas.
	cfg.ID = meta.ID

	sf, err := os.Open(filepath.Join(sdir, specFile))
	if err != nil {
		return nil, err
	}
	sp, err := wfxml.DecodeSpec(sf)
	sf.Close()
	if err != nil {
		return nil, fmt.Errorf("bad %s: %w", specFile, err)
	}
	g, err := spec.Compile(sp)
	if err != nil {
		return nil, fmt.Errorf("bad %s: %w", specFile, err)
	}

	s := &Session{
		name:    meta.Name,
		g:       g,
		cfg:     cfg,
		labeler: core.NewExecutionLabeler(g, cfg.Skeleton, cfg.Mode),
		store:   store.NewSharded(g, cfg.Skeleton, r.shardsFor(cfg)),
	}
	s.bindMetrics(r.metrics)

	walPath := filepath.Join(sdir, walFile)
	s.walPath = walPath
	snapPath := filepath.Join(sdir, snapFile)

	// The snapshot decides the restore path. A v2 (arena) file is
	// mapped and adopted as the store's base layer — zero decoding,
	// zero copying, and with an empty WAL tail even the labeler rebuild
	// is deferred to the first ingest. A v1 file takes the legacy
	// decode-and-replay path; a missing or damaged file of either
	// version falls back to full log replay.
	var (
		replayed  int64
		validSize int64
		snapped   int64 // events the kept snapshot covers
		chainSeed integrity.Head
		seeded    bool // chainSeed covers the valid prefix already
	)
	a, aerr := arena.Open(snapPath)
	switch {
	case aerr == nil:
		var ok bool
		var arerr error
		if ok, replayed, validSize, arerr = s.restoreArena(a, walPath, r.shardsFor(cfg)); arerr != nil {
			a.Close()
			return nil, arerr
		}
		if ok {
			snapped = a.Events()
			if root, anchor, hasChain := a.Integrity(); hasChain {
				// A v3 snapshot must prove itself before it boots: its
				// label bytes against its Merkle root, and its chain head
				// against the WAL prefix it claims to cover. A CRC-valid
				// but rewritten snapshot (or a rewritten committed WAL
				// record below the watermark) dies here instead of serving
				// forged provenance. The same pass extends the chain over
				// the replayed tail, re-seeding the head the log continues
				// from.
				vstart := time.Now()
				var vframes int64
				verr := a.VerifyMerkle()
				var headWm integrity.Head
				if verr == nil {
					var n int64
					if headWm, n, verr = wal.ChainTo(walPath, 0, a.WALBytes(), integrity.Head{}); verr != nil {
						verr = fmt.Errorf("chain over covered WAL prefix: %w", verr)
					} else if headWm != anchor {
						verr = fmt.Errorf("WAL chain head %s at snapshot watermark (record %d) does not match the snapshot's anchor %s: history below the watermark was rewritten", headWm, a.Events(), anchor)
					}
					vframes += n
				}
				if verr == nil {
					var n int64
					if chainSeed, n, verr = wal.ChainTo(walPath, a.WALBytes(), validSize, headWm); verr != nil {
						verr = fmt.Errorf("chain over WAL tail: %w", verr)
					}
					vframes += n
				}
				if verr != nil {
					a.Close()
					return nil, fmt.Errorf("integrity: %w", verr)
				}
				r.metrics.chainVerified(vstart, vframes)
				seeded = true
				s.snapRoot, s.snapChain, s.snapIntegrity = root, anchor, true
			}
			break
		}
		// The arena is ahead of the log (possible only after an OS crash
		// with Fsync off) or inconsistent with it: discard it and rebuild
		// everything from the log alone.
		a.Close()
		if replayed, validSize, err = s.replayFull(walPath, wal.Snapshot{}, r.shardsFor(cfg)); err != nil {
			return nil, err
		}
	case errors.Is(aerr, arena.ErrVersion):
		// v1 snapshot. Count replayable records first, so a snapshot from
		// beyond the durable log can be rejected before it pollutes the
		// store; the session upgrades to v2 at its next snapshot.
		total, _, err := wal.Scan(walPath, nil)
		if err != nil {
			return nil, err
		}
		snap, err := wal.ReadSnapshot(snapPath)
		switch {
		case err == nil && snap.Events <= int64(total):
			snapped = snap.Events
		case err == nil, errors.Is(err, wal.ErrCorrupt):
			snap = wal.Snapshot{} // damaged or ahead of the log: full replay
		default:
			return nil, err
		}
		if replayed, validSize, err = s.replayFull(walPath, snap, r.shardsFor(cfg)); err != nil {
			return nil, err
		}
	case errors.Is(aerr, fs.ErrNotExist), errors.Is(aerr, arena.ErrCorrupt):
		if replayed, validSize, err = s.replayFull(walPath, wal.Snapshot{}, r.shardsFor(cfg)); err != nil {
			return nil, err
		}
	default:
		return nil, aerr
	}
	s.vertices.Store(int64(s.store.Count()))
	s.walEvents = replayed
	if snapped <= s.walEvents {
		s.snapEvents = snapped
	}
	if !seeded {
		// No v3 anchor to verify against (v1/v2 data, or a discarded
		// arena): hash the valid prefix so the reopened log continues
		// the chain and the session's next snapshot carries an anchor.
		vstart := time.Now()
		var n int64
		if chainSeed, n, err = wal.ChainTo(walPath, 0, validSize, integrity.Head{}); err != nil {
			return nil, fmt.Errorf("integrity: chain over WAL: %w", err)
		}
		r.metrics.chainVerified(vstart, n)
	}

	if r.durable != nil {
		// Sweep snapshot temp files orphaned by a crash mid-snapshot;
		// they are never valid (the rename is what commits a snapshot).
		if tmps, _ := filepath.Glob(filepath.Join(sdir, snapFile+".tmp*")); len(tmps) > 0 {
			for _, tmp := range tmps {
				os.Remove(tmp)
			}
		}
		// The replayed count seeds the log's absolute sequence numbers,
		// so WAL shipping keeps one continuous numbering across restarts.
		log, err := wal.Open(walPath, validSize, int64(replayed), r.durable.Fsync)
		if err != nil {
			return nil, err
		}
		log.SeedChain(chainSeed)
		s.attachWAL(sdir, log, r.durable, r.committer)
	}
	r.metrics.restores.Inc()
	r.metrics.restoreSec.Observe(time.Since(restoreStart))
	if n := int64(s.store.ArenaCount()); n > 0 {
		r.metrics.arenaMaps.Add(1)
		r.metrics.arenaVerts.Add(n)
	}
	return s, nil
}

// Integrity reports the session's live integrity anchors: the WAL hash
// chain head (folding in everything appended so far) with the sequence
// it covers, plus the Merkle root and watermark of the last integrity-
// stamped snapshot, if one exists. Sessions without a chained log —
// memory-only, closed, poisoned, or restored data predating the hash
// chain that has not re-seeded — report a typed CodeNotDurable error:
// integrity is unavailable, not violated.
func (s *Session) Integrity() (api.SessionIntegrity, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.wal == nil {
		return api.SessionIntegrity{}, api.Errorf(api.CodeNotDurable, "session %q has no open write-ahead log: integrity unavailable", s.name)
	}
	seq, head, ok := s.wal.ChainHead()
	if !ok {
		return api.SessionIntegrity{}, api.Errorf(api.CodeNotDurable, "session %q has no hash chain: integrity unavailable", s.name)
	}
	st := api.SessionIntegrity{Session: s.name, WALSeq: seq, ChainHead: head.String()}
	if s.snapIntegrity {
		st.MerkleRoot = s.snapRoot.String()
		st.SnapshotWatermark = s.snapEvents
	}
	return st, nil
}

// ChainState returns the WAL hash-chain head covering every event
// appended to the session so far, and the sequence it covers. ok is
// false when the session has no chained log. Unlike Integrity it
// returns the raw head — the form the replication and cluster planes
// compare.
func (s *Session) ChainState() (seq int64, head integrity.Head, ok bool) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.wal == nil {
		return 0, integrity.Head{}, false
	}
	return s.wal.ChainHead()
}
