package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"wfreach/internal/api"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/run"
)

// decodeError parses a structured error response body.
func decodeError(t testing.TB, raw string) *api.Error {
	t.Helper()
	var resp api.ErrorResponse
	if err := json.Unmarshal([]byte(raw), &resp); err != nil || resp.Err == nil {
		t.Fatalf("body is not a structured error: %q (%v)", raw, err)
	}
	return resp.Err
}

func expectCode(t testing.TB, wantStatus int, wantCode api.ErrorCode, gotStatus int, raw string) {
	t.Helper()
	if gotStatus != wantStatus {
		t.Fatalf("status = %d, want %d (%s)", gotStatus, wantStatus, raw)
	}
	if e := decodeError(t, raw); e.Code != wantCode {
		t.Fatalf("code = %s, want %s (%s)", e.Code, wantCode, raw)
	}
}

// TestHTTPMethodTable drives every route × verb combination, on both
// the /v1 and the deprecated unversioned prefix: wrong verbs on known
// paths must be 405 with an Allow header (never a 404), and allowed
// verbs must dispatch.
func TestHTTPMethodTable(t *testing.T) {
	srv := newTestServer(t)
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "s", Builtin: "RunningExample"}, nil)

	routes := []struct {
		path  string
		allow string // the exact Allow header for disallowed verbs
	}{
		{"/sessions", "GET, HEAD, POST"},
		{"/sessions/s", "DELETE, GET, HEAD"},
		{"/sessions/s/events", "POST"},
		{"/sessions/s/reach", "GET, HEAD, POST"},
		{"/sessions/s/lineage", "GET, HEAD"},
		{"/v1/sessions", "GET, HEAD, POST"},
		{"/v1/sessions/s", "DELETE, GET, HEAD"},
		{"/v1/sessions/s/stats", "GET, HEAD"},
		{"/v1/sessions/s/events", "POST"},
		{"/v1/sessions/s/reach", "GET, HEAD, POST"},
		{"/v1/sessions/s/lineage", "GET, HEAD"},
	}
	verbs := []string{"GET", "HEAD", "POST", "PUT", "DELETE", "PATCH", "OPTIONS"}
	inAllow := func(allow, verb string) bool {
		for _, a := range splitComma(allow) {
			if a == verb {
				return true
			}
		}
		return false
	}
	for _, rt := range routes {
		for _, verb := range verbs {
			// DELETE /sessions/s would tear down the shared fixture; it is
			// covered by the lifecycle test.
			if verb == "DELETE" && inAllow(rt.allow, verb) {
				continue
			}
			req, err := http.NewRequest(verb, srv.URL+rt.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if inAllow(rt.allow, verb) {
				if resp.StatusCode == http.StatusMethodNotAllowed || resp.StatusCode == http.StatusNotFound {
					t.Errorf("%s %s = %d, want dispatch (%s)", verb, rt.path, resp.StatusCode, raw)
				}
				continue
			}
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405 (%s)", verb, rt.path, resp.StatusCode, raw)
				continue
			}
			if got := resp.Header.Get("Allow"); got != rt.allow {
				t.Errorf("%s %s Allow = %q, want %q", verb, rt.path, got, rt.allow)
			}
			if verb != "HEAD" { // HEAD responses have no body to decode
				if e := decodeError(t, string(raw)); e.Code != api.CodeMethodNotAllowed {
					t.Errorf("%s %s code = %s", verb, rt.path, e.Code)
				}
			}
		}
	}
}

func splitComma(s string) []string {
	var out []string
	for _, part := range bytes.Split([]byte(s), []byte(", ")) {
		out = append(out, string(part))
	}
	return out
}

// TestHTTPErrorCodes asserts the machine-readable code on every
// client-visible error path — clients dispatch on codes, so each one
// is contract.
func TestHTTPErrorCodes(t *testing.T) {
	srv := newTestServer(t)
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "s", Builtin: "RunningExample"}, nil)

	code, raw := doJSON(t, "GET", srv.URL+"/v1/nope", nil, nil)
	expectCode(t, 404, api.CodeNotFound, code, raw)

	code, raw = doJSON(t, "GET", srv.URL+"/v1/sessions/ghost", nil, nil)
	expectCode(t, 404, api.CodeSessionNotFound, code, raw)

	code, raw = doJSON(t, "DELETE", srv.URL+"/v1/sessions/ghost", nil, nil)
	expectCode(t, 404, api.CodeSessionNotFound, code, raw)

	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "s", Builtin: "RunningExample"}, nil)
	expectCode(t, 409, api.CodeSessionExists, code, raw)

	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "x", Builtin: "zap"}, nil)
	expectCode(t, 400, api.CodeUnknownBuiltin, code, raw)
	if e := decodeError(t, raw); e.Detail == "" {
		t.Fatalf("unknown_builtin should detail the valid names: %s", raw)
	}

	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "x", SpecXML: "<junk"}, nil)
	expectCode(t, 400, api.CodeBadSpec, code, raw)

	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "x"}, nil)
	expectCode(t, 400, api.CodeBadRequest, code, raw)

	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	expectCode(t, 400, api.CodeBadJSON, resp.StatusCode, string(raw2))

	// Query-side codes.
	code, raw = doJSON(t, "GET", srv.URL+"/v1/sessions/s/reach?from=a&to=1", nil, nil)
	expectCode(t, 400, api.CodeBadVertex, code, raw)

	code, raw = doJSON(t, "GET", srv.URL+"/v1/sessions/s/reach?from=0&to=999999", nil, nil)
	expectCode(t, 404, api.CodeVertexNotLabeled, code, raw)

	code, raw = doJSON(t, "GET", srv.URL+"/v1/sessions/s/lineage?of=zap", nil, nil)
	expectCode(t, 400, api.CodeBadVertex, code, raw)

	code, raw = doJSON(t, "GET", srv.URL+"/v1/sessions/s/lineage?of=0&limit=-3", nil, nil)
	expectCode(t, 400, api.CodeBadRequest, code, raw)

	code, raw = doJSON(t, "GET", srv.URL+"/v1/sessions/s/lineage?of=0&cursor=bad", nil, nil)
	expectCode(t, 400, api.CodeBadVertex, code, raw)

	// Ingest-side codes.
	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions/s/events",
		EventsRequest{Events: []WireEvent{{V: 1}}}, nil)
	expectCode(t, 400, api.CodeBadEvent, code, raw)
}

func frameStream(t testing.TB, events []run.Event) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, ev := range events {
		if buf, err = api.AppendFrame(buf, api.FromRun(ev)); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func postBinary(t testing.TB, url string, body []byte, out any) (int, string) {
	t.Helper()
	resp, err := http.Post(url, api.ContentTypeFrame, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

// TestHTTPBinaryIngest streams the binary frame form into a session
// and verifies it against the BFS oracle, then exercises the damage
// and partial-application paths.
func TestHTTPBinaryIngest(t *testing.T) {
	srv := newTestServer(t)
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "bin", Builtin: "BioAID"}, nil)

	g := compileBuiltin(t, "BioAID")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 1500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var er EventsResponse
	code, raw := postBinary(t, srv.URL+"/v1/sessions/bin/events", frameStream(t, events), &er)
	if code != http.StatusOK {
		t.Fatalf("binary ingest: %d %s", code, raw)
	}
	if er.Applied != len(events) || er.Vertices != int64(len(events)) {
		t.Fatalf("binary ingest response = %+v, want %d events", er, len(events))
	}
	for i := 0; i < 300; i++ {
		v, w := events[i%len(events)].V, events[(i*13)%len(events)].V
		var rr ReachResponse
		if code, raw := doJSON(t, "GET",
			fmt.Sprintf("%s/v1/sessions/bin/reach?from=%d&to=%d", srv.URL, v, w), nil, &rr); code != http.StatusOK {
			t.Fatalf("reach: %d %s", code, raw)
		} else if rr.Reachable != r.Graph.Reaches(v, w) {
			t.Fatalf("reach(%d,%d) = %v, oracle disagrees", v, w, rr.Reachable)
		}
	}

	// Damage mid-stream: the valid prefix applies, the response is a
	// structured bad_frame with the applied count.
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "dmg", Builtin: "BioAID"}, nil)
	good := frameStream(t, events[:10])
	code, raw = postBinary(t, srv.URL+"/v1/sessions/dmg/events", append(good, 0xde, 0xad, 0xbe), nil)
	expectCode(t, 400, api.CodeBadFrame, code, raw)
	var resp api.ErrorResponse
	if err := json.Unmarshal([]byte(raw), &resp); err != nil || resp.Applied != 10 {
		t.Fatalf("damaged stream applied = %s", raw)
	}

	// A duplicate vertex mid-stream is a bad_event at its index.
	dup := frameStream(t, append(append([]run.Event{}, events[10:12]...), events[11]))
	code, raw = postBinary(t, srv.URL+"/v1/sessions/dmg/events", dup, nil)
	expectCode(t, 400, api.CodeBadEvent, code, raw)
	if e := decodeError(t, raw); e.Message == "" || !bytes.Contains([]byte(e.Message), []byte("event 2")) {
		t.Fatalf("duplicate index not named: %s", raw)
	}
}

// TestHTTPBinaryIngestTeesWALBytes is the tee guarantee end to end: a
// durable server's write-ahead log ends up byte-identical to the
// binary request body it acknowledged, because accepted frames are
// logged as received rather than re-encoded.
func TestHTTPBinaryIngestTeesWALBytes(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewDurableRegistry(DurableOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "tee", Builtin: "RunningExample"}, nil)
	g := compileBuiltin(t, "RunningExample")
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	body := frameStream(t, events)
	if code, raw := postBinary(t, srv.URL+"/v1/sessions/tee/events", body, nil); code != http.StatusOK {
		t.Fatalf("binary ingest: %d %s", code, raw)
	}
	disk, err := os.ReadFile(filepath.Join(dir, "tee", "events.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, body) {
		t.Fatalf("WAL (%d bytes) is not byte-identical to the wire body (%d bytes)", len(disk), len(body))
	}
}

// TestHTTPBatchReach answers many pairs per roundtrip, with pair-level
// errors inline.
func TestHTTPBatchReach(t *testing.T) {
	srv := newTestServer(t)
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "s", Builtin: "BioAID"}, nil)
	g := compileBuiltin(t, "BioAID")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 900, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if code, raw := postBinary(t, srv.URL+"/v1/sessions/s/events", frameStream(t, events), nil); code != 200 {
		t.Fatalf("ingest: %d %s", code, raw)
	}

	var req api.BatchReachRequest
	for i := 0; i < 64; i++ {
		req.Pairs = append(req.Pairs, api.ReachPair{
			From: int32(events[(i*7)%len(events)].V), To: int32(events[(i*31)%len(events)].V)})
	}
	req.Pairs = append(req.Pairs, api.ReachPair{From: 0, To: 999999}) // unanswerable pair

	var br api.BatchReachResponse
	code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions/s/reach", req, &br)
	if code != http.StatusOK {
		t.Fatalf("batch reach: %d %s", code, raw)
	}
	if len(br.Results) != len(req.Pairs) {
		t.Fatalf("%d results for %d pairs", len(br.Results), len(req.Pairs))
	}
	for i, ans := range br.Results[:64] {
		if ans.Code != "" {
			t.Fatalf("pair %d failed: %+v", i, ans)
		}
		if want := r.Graph.Reaches(graph.VertexID(ans.From), graph.VertexID(ans.To)); ans.Reachable != want {
			t.Fatalf("pair %d: reach(%d,%d) = %v, oracle %v", i, ans.From, ans.To, ans.Reachable, want)
		}
	}
	last := br.Results[64]
	if last.Code != api.CodeVertexNotLabeled || last.Error == "" {
		t.Fatalf("unanswerable pair = %+v, want inline vertex_not_labeled", last)
	}

	// Empty batch: empty results, not an error.
	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions/s/reach", api.BatchReachRequest{}, &br)
	if code != http.StatusOK || br.Results == nil || len(br.Results) != 0 {
		t.Fatalf("empty batch: %d %s", code, raw)
	}

	// Oversized batch: structured 400.
	big := api.BatchReachRequest{Pairs: make([]api.ReachPair, api.MaxReachPairs+1)}
	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions/s/reach", big, nil)
	expectCode(t, 400, api.CodeBadRequest, code, raw)
}

// TestHTTPLineagePagination pages through a closure with cursor+limit
// and checks the concatenation equals the unpaginated scan.
func TestHTTPLineagePagination(t *testing.T) {
	srv := newTestServer(t)
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "s", Builtin: "BioAID"}, nil)
	g := compileBuiltin(t, "BioAID")
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 600, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if code, raw := postBinary(t, srv.URL+"/v1/sessions/s/events", frameStream(t, events), nil); code != 200 {
		t.Fatalf("ingest: %d %s", code, raw)
	}
	sink := events[len(events)-1].V

	var full LineageResponse
	if code, raw := doJSON(t, "GET",
		fmt.Sprintf("%s/v1/sessions/s/lineage?of=%d", srv.URL, sink), nil, &full); code != 200 {
		t.Fatalf("full lineage: %d %s", code, raw)
	}
	if full.NextCursor != "" || len(full.Ancestors) < 8 {
		t.Fatalf("full lineage = %d ancestors, cursor %q", len(full.Ancestors), full.NextCursor)
	}

	var paged []int32
	cursor := ""
	pages := 0
	for {
		url := fmt.Sprintf("%s/v1/sessions/s/lineage?of=%d&limit=7", srv.URL, sink)
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page LineageResponse
		if code, raw := doJSON(t, "GET", url, nil, &page); code != 200 {
			t.Fatalf("page %d: %d %s", pages, code, raw)
		}
		if len(page.Ancestors) > 7 {
			t.Fatalf("page %d has %d ancestors, limit 7", pages, len(page.Ancestors))
		}
		paged = append(paged, page.Ancestors...)
		pages++
		if page.NextCursor == "" {
			break
		}
		if _, err := strconv.Atoi(page.NextCursor); err != nil {
			t.Fatalf("next_cursor %q is not a vertex id", page.NextCursor)
		}
		cursor = page.NextCursor
	}
	if pages < 2 {
		t.Fatalf("closure of %d ancestors paged in %d pages", len(full.Ancestors), pages)
	}
	if len(paged) != len(full.Ancestors) {
		t.Fatalf("paged %d ancestors, full scan %d", len(paged), len(full.Ancestors))
	}
	for i := range paged {
		if paged[i] != full.Ancestors[i] {
			t.Fatalf("ancestor %d: paged %d, full %d", i, paged[i], full.Ancestors[i])
		}
	}
}

// TestHTTPLegacyRoutes proves the deprecated unversioned paths behave
// exactly like their /v1 counterparts.
func TestHTTPLegacyRoutes(t *testing.T) {
	srv := newTestServer(t)

	var st Stats
	code, raw := doJSON(t, "POST", srv.URL+"/sessions", CreateRequest{Name: "leg", Builtin: "RunningExample"}, &st)
	if code != http.StatusCreated || st.Name != "leg" {
		t.Fatalf("legacy create: %d %s", code, raw)
	}
	g := compileBuiltin(t, "RunningExample")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 150, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]WireEvent, len(events))
	for i, ev := range events {
		wire[i] = ToWire(ev)
	}
	var er EventsResponse
	if code, raw := doJSON(t, "POST", srv.URL+"/sessions/leg/events",
		EventsRequest{Events: wire}, &er); code != http.StatusOK || er.Applied != len(events) {
		t.Fatalf("legacy events: %d %s", code, raw)
	}
	v, w := events[3].V, events[len(events)-1].V
	var rr ReachResponse
	if code, raw := doJSON(t, "GET",
		fmt.Sprintf("%s/sessions/leg/reach?from=%d&to=%d", srv.URL, v, w), nil, &rr); code != http.StatusOK {
		t.Fatalf("legacy reach: %d %s", code, raw)
	} else if rr.Reachable != r.Graph.Reaches(v, w) {
		t.Fatalf("legacy reach(%d,%d) = %v, oracle disagrees", v, w, rr.Reachable)
	}
	var lr LineageResponse
	if code, raw := doJSON(t, "GET",
		fmt.Sprintf("%s/sessions/leg/lineage?of=%d", srv.URL, w), nil, &lr); code != http.StatusOK || len(lr.Ancestors) == 0 {
		t.Fatalf("legacy lineage: %d %s", code, raw)
	}
	var list ListResponse
	if code, _ := doJSON(t, "GET", srv.URL+"/sessions", nil, &list); code != 200 || len(list.Sessions) != 1 {
		t.Fatalf("legacy list: %d %+v", code, list)
	}
	if code, _ := doJSON(t, "DELETE", srv.URL+"/sessions/leg", nil, nil); code != http.StatusNoContent {
		t.Fatalf("legacy delete: %d", code)
	}
}
