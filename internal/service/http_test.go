package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"wfreach/internal/gen"
	"wfreach/internal/wfspecs"
	"wfreach/internal/wfxml"
)

func newTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(NewRegistry()))
	t.Cleanup(srv.Close)
	return srv
}

func doJSON(t testing.TB, method, url string, body, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func TestHTTPSessionLifecycle(t *testing.T) {
	srv := newTestServer(t)

	var st Stats
	code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "s1", Builtin: "RunningExample"}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if st.Name != "s1" || st.Vertices != 0 || st.SkeletonBits == 0 {
		t.Fatalf("create stats = %+v", st)
	}

	// Duplicate name conflicts; bad builtin and empty body are 400s.
	if code, _ := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "s1", Builtin: "RunningExample"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", code)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "s2", Builtin: "nope"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad builtin: %d", code)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "s2"}, nil); code != http.StatusBadRequest {
		t.Fatalf("specless create: %d", code)
	}
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Builtin: "RunningExample"}, nil); code != http.StatusBadRequest {
		t.Fatalf("nameless create should be 400, got %d %s", code, raw)
	}

	// Inline spec XML in the JSON body.
	var xml bytes.Buffer
	if err := wfxml.EncodeSpec(&xml, wfspecs.RunningExample()); err != nil {
		t.Fatal(err)
	}
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "s2", SpecXML: xml.String(), Skeleton: "BFS"}, &st); code != http.StatusCreated {
		t.Fatalf("inline spec create: %d %s", code, raw)
	} else if st.Skeleton != "BFS" {
		t.Fatalf("inline spec stats = %+v", st)
	}

	// Raw XML upload with query-parameter options.
	resp, err := http.Post(srv.URL+"/v1/sessions?name=s3&rmode=none", "application/xml",
		strings.NewReader(xml.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("xml upload: %d", resp.StatusCode)
	}

	var list ListResponse
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list.Sessions) != 3 {
		t.Fatalf("list = %+v", list)
	}

	if code, _ := doJSON(t, "DELETE", srv.URL+"/v1/sessions/s3", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := doJSON(t, "DELETE", srv.URL+"/v1/sessions/s3", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/sessions/s3", nil, nil); code != http.StatusNotFound {
		t.Fatalf("stats of deleted: %d", code)
	}
}

func TestHTTPEventFormsAndErrors(t *testing.T) {
	srv := newTestServer(t)
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "s", Builtin: "RunningExample"}, nil)

	g := compileBuiltin(t, "RunningExample")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Mixed batch: ref-form and name-form events interleaved.
	wire := make([]WireEvent, len(events))
	for i, ev := range events {
		if i%2 == 0 {
			wire[i] = ToWire(ev)
		} else {
			wire[i] = ToWireNamed(toNamed(r, ev))
		}
	}
	var er EventsResponse
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions/s/events",
		EventsRequest{Events: wire}, &er); code != http.StatusOK {
		t.Fatalf("events: %d %s", code, raw)
	}
	if er.Applied != len(events) || er.Vertices != int64(len(events)) {
		t.Fatalf("events response = %+v", er)
	}

	// Replaying the stream is a 400 with applied=0 (duplicate vertex).
	code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions/s/events",
		EventsRequest{Events: wire[:1]}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("replay: %d %s", code, raw)
	}

	// Malformed events.
	g0 := int32(0)
	for _, bad := range [][]WireEvent{
		{{V: 999}}, // neither form
		{{V: 999, Name: "x", Graph: &g0, Vertex: &g0}}, // both forms
	} {
		if code, _ := doJSON(t, "POST", srv.URL+"/v1/sessions/s/events",
			EventsRequest{Events: bad}, nil); code != http.StatusBadRequest {
			t.Fatalf("bad event %+v: %d", bad, code)
		}
	}

	// A failing event in a mixed batch is reported at its position in
	// the submitted batch, not within a same-form sub-batch.
	doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "mix", Builtin: "RunningExample"}, nil)
	mixed := []WireEvent{
		ToWire(events[0]),
		ToWireNamed(toNamed(r, events[1])),
		ToWireNamed(toNamed(r, events[2])),
		ToWireNamed(toNamed(r, events[2])), // duplicate: fails at batch index 3
	}
	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions/mix/events", EventsRequest{Events: mixed}, nil)
	if code != http.StatusBadRequest || !strings.Contains(raw, "event 3:") {
		t.Fatalf("mixed-batch failure index: %d %s", code, raw)
	}

	// Reach and lineage answers match the oracle.
	for i := 0; i < 200; i++ {
		v, w := events[i%len(events)].V, events[(i*7)%len(events)].V
		var rr ReachResponse
		if code, raw := doJSON(t, "GET",
			fmt.Sprintf("%s/v1/sessions/s/reach?from=%d&to=%d", srv.URL, v, w), nil, &rr); code != http.StatusOK {
			t.Fatalf("reach: %d %s", code, raw)
		}
		if rr.Reachable != r.Graph.Reaches(v, w) {
			t.Fatalf("reach(%d,%d) = %v, oracle %v", v, w, rr.Reachable, !rr.Reachable)
		}
	}
	var lr LineageResponse
	sink := events[len(events)-1].V
	if code, raw := doJSON(t, "GET",
		fmt.Sprintf("%s/v1/sessions/s/lineage?of=%d", srv.URL, sink), nil, &lr); code != http.StatusOK {
		t.Fatalf("lineage: %d %s", code, raw)
	}
	if len(lr.Ancestors) == 0 {
		t.Fatal("empty lineage for sink")
	}

	// Query-side errors: unlabeled vertex, junk params, unknown session.
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/sessions/s/reach?from=0&to=999999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unlabeled reach: %d", code)
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/sessions/s/reach?from=a&to=1", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("junk reach: %d", code)
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/sessions/nope/reach?from=0&to=1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d", code)
	}
}

// TestHTTPStreamingE2E is the acceptance scenario: a ≥10k-vertex
// generated execution streamed to the server in batches while reader
// goroutines issue interleaved reachability queries over HTTP, every
// answer checked against the BFS ground-truth oracle. Run with -race.
func TestHTTPStreamingE2E(t *testing.T) {
	const (
		batch   = 256
		readers = 4
	)
	srv := newTestServer(t)
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "big", Builtin: "BioAID"}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}

	g := compileBuiltin(t, "BioAID")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 11000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 10000 {
		t.Fatalf("generated only %d events, want ≥10000", len(events))
	}

	watermark := new(atomic.Int64)
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // single writer streams batches
		defer wg.Done()
		defer close(done)
		for i := 0; i < len(events); i += batch {
			end := min(i+batch, len(events))
			wire := make([]WireEvent, 0, end-i)
			for _, ev := range events[i:end] {
				wire = append(wire, ToWire(ev))
			}
			var er EventsResponse
			if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions/big/events",
				EventsRequest{Events: wire}, &er); code != http.StatusOK {
				t.Errorf("batch at %d: %d %s", i, code, raw)
				return
			}
			if er.Vertices != int64(end) {
				t.Errorf("after batch at %d: vertices=%d want %d", i, er.Vertices, end)
				return
			}
			watermark.Store(int64(end))
		}
	}()

	queries := new(atomic.Int64)
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			writerDone := func() bool {
				select {
				case <-done:
					return true
				default:
					return false
				}
			}
			// Keep querying until the writer finishes, with a floor of 100
			// verified queries per reader either way.
			for q := 0; q < 100 || !writerDone(); q++ {
				wm := watermark.Load()
				if wm < 2 {
					q--
					continue
				}
				v := events[rng.Int63n(wm)].V
				w := events[rng.Int63n(wm)].V
				var rr ReachResponse
				code, raw := doJSON(t, "GET",
					fmt.Sprintf("%s/v1/sessions/big/reach?from=%d&to=%d", srv.URL, v, w), nil, &rr)
				if code != http.StatusOK {
					t.Errorf("reach(%d,%d): %d %s", v, w, code, raw)
					return
				}
				if want := r.Graph.Reaches(v, w); rr.Reachable != want {
					t.Errorf("reach(%d,%d) = %v, oracle %v", v, w, rr.Reachable, want)
					return
				}
				queries.Add(1)
			}
		}(int64(ri))
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var st Stats
	doJSON(t, "GET", srv.URL+"/v1/sessions/big", nil, &st)
	if st.Vertices != int64(len(events)) {
		t.Fatalf("final vertices = %d, want %d", st.Vertices, len(events))
	}
	if queries.Load() == 0 {
		t.Fatal("no interleaved queries executed")
	}
	t.Logf("streamed %d vertices in %d-event batches, %d interleaved queries verified",
		len(events), batch, queries.Load())
}

// TestHTTPShardsParameter covers the shards field on both create
// forms and its surfacing in stats.
func TestHTTPShardsParameter(t *testing.T) {
	srv := newTestServer(t)

	var st Stats
	code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "sharded", Builtin: "RunningExample", Shards: 8}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	if len(st.Shards) != 8 {
		t.Fatalf("stats report %d shards, want 8", len(st.Shards))
	}

	// Raw-XML create with ?shards=.
	var xml bytes.Buffer
	if err := wfxml.EncodeSpec(&xml, wfspecs.RunningExample()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/sessions?name=xmlsharded&shards=2", "application/xml", &xml)
	if err != nil {
		t.Fatal(err)
	}
	var st2 Stats
	if err := json.NewDecoder(resp.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("xml create: %d", resp.StatusCode)
	}
	if len(st2.Shards) != 2 {
		t.Fatalf("xml create: %d shards, want 2", len(st2.Shards))
	}

	// Bad shard values are client errors.
	code, _ = doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "bad", Builtin: "RunningExample", Shards: -1}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("negative shards: %d, want 400", code)
	}
	resp, err = http.Post(srv.URL+"/v1/sessions?name=bad2&shards=zap", "application/xml",
		strings.NewReader("<spec/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage shards: %d, want 400", resp.StatusCode)
	}

	// Ingest + query still behave on a sharded session, and the
	// publish epoch advances.
	g := compileBuiltin(t, "RunningExample")
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]WireEvent, len(events))
	for i, ev := range events {
		wire[i] = ToWire(ev)
	}
	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions/sharded/events",
		EventsRequest{Events: wire}, nil)
	if code != http.StatusOK {
		t.Fatalf("events: %d %s", code, raw)
	}
	doJSON(t, "GET", srv.URL+"/v1/sessions/sharded", nil, &st)
	if st.PublishEpoch == 0 || st.Vertices != int64(len(events)) {
		t.Fatalf("stats after ingest: %+v", st)
	}
	sum := 0
	for _, sh := range st.Shards {
		sum += sh.Vertices
	}
	if sum != len(events) {
		t.Fatalf("shard counts sum to %d, want %d", sum, len(events))
	}
}

// TestListSessionsUnderChurn hammers GET /v1/sessions while other
// goroutines create and delete sessions as fast as the handler lets
// them. Every snapshot must be well-formed: no duplicate names, no
// torn entries (a listed session always carries its full stats), and
// sessions that are not being churned keep their exact counts in
// every response.
func TestListSessionsUnderChurn(t *testing.T) {
	srv := newTestServer(t)

	// Two anchors with known sizes that every snapshot must report
	// intact, whatever the churners are doing.
	g := compileBuiltin(t, "RunningExample")
	anchors := map[string]int64{"anchor-a": 120, "anchor-b": 60}
	for name, n := range anchors {
		if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
			CreateRequest{Name: name, Builtin: "RunningExample"}, nil); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", name, code, raw)
		}
		events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: int(n), Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		wire := make([]WireEvent, len(events))
		for i, ev := range events {
			wire[i] = ToWire(ev)
		}
		if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions/"+name+"/events",
			EventsRequest{Events: wire}, nil); code != http.StatusOK {
			t.Fatalf("ingest %s: %d %s", name, code, raw)
		}
		anchors[name] = int64(len(events))
	}
	anchorIDs := make(map[string]string, len(anchors))
	for name := range anchors {
		var st Stats
		doJSON(t, "GET", srv.URL+"/v1/sessions/"+name, nil, &st)
		anchorIDs[name] = st.ID
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("churn-%d-%d", c, i%5)
				if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
					CreateRequest{Name: name, Builtin: "RunningExample"}, nil); code != http.StatusCreated {
					t.Errorf("churn create %s: %d %s", name, code, raw)
					return
				}
				if code, raw := doJSON(t, "DELETE", srv.URL+"/v1/sessions/"+name, nil, nil); code != http.StatusNoContent {
					t.Errorf("churn delete %s: %d %s", name, code, raw)
					return
				}
			}
		}(c)
	}

	for i := 0; i < 150 && !t.Failed(); i++ {
		var list ListResponse
		if code, raw := doJSON(t, "GET", srv.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
			t.Fatalf("list #%d: %d %s", i, code, raw)
		}
		seen := make(map[string]bool, len(list.Sessions))
		for _, s := range list.Sessions {
			if seen[s.Name] {
				t.Fatalf("list #%d: duplicate entry %q", i, s.Name)
			}
			seen[s.Name] = true
			// A torn entry would surface as a zero-value stats blob:
			// every session, churned or not, has a class, a skeleton
			// and an identity the moment it is listable.
			if s.Name == "" || s.Class == "" || s.Skeleton == "" || s.ID == "" {
				t.Fatalf("list #%d: torn entry %+v", i, s)
			}
			if want, ok := anchors[s.Name]; ok {
				if s.Vertices != want {
					t.Fatalf("list #%d: %s has %d vertices, want %d", i, s.Name, s.Vertices, want)
				}
				// Identity is stable: the churn next door must never
				// make an untouched session look recreated.
				if s.ID != anchorIDs[s.Name] {
					t.Fatalf("list #%d: %s id flipped %q -> %q", i, s.Name, anchorIDs[s.Name], s.ID)
				}
			}
		}
		for name := range anchors {
			if !seen[name] {
				t.Fatalf("list #%d: anchor %q missing", i, name)
			}
		}
	}
	close(stop)
	wg.Wait()
}
