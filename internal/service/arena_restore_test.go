package service

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"wfreach/internal/arena"
	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/integrity"
	"wfreach/internal/skeleton"
	"wfreach/internal/wal"
)

// TestArenaRestoreDeferredLabeler covers the graceful-shutdown fast
// path: Close writes a final arena snapshot, so the next restore is a
// pure mmap — the store serves the mapped labels, the labeler replay
// is deferred, and the first ingest settles it transparently.
func TestArenaRestoreDeferredLabeler(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, r := genEvents(t, g, 300, 21)
	cut := len(events) / 2

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 1 << 20})
	s, err := reg.Create("lazy", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events[:cut], 41)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// The final snapshot must be an arena covering the whole log.
	a, err := arena.Open(filepath.Join(dir, "lazy", snapFile))
	if err != nil {
		t.Fatalf("Close did not leave an arena snapshot: %v", err)
	}
	if a.Events() != int64(cut) || a.Count() != cut {
		t.Fatalf("final snapshot covers %d events / %d labels, want %d", a.Events(), a.Count(), cut)
	}
	a.Close()

	reg2 := durableReg(t, dir, DurableOptions{SnapshotEvery: 1 << 20})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("lazy")
	s2.ingestMu.Lock()
	deferred := s2.needLabelerReplay
	s2.ingestMu.Unlock()
	if !deferred {
		t.Fatal("tail-empty arena restore should defer the labeler replay")
	}
	if got := s2.Stats().ArenaVertices; got != int64(cut) {
		t.Fatalf("ArenaVertices = %d, want %d", got, cut)
	}
	// Queries work without ever touching the labeler.
	checkOracle(t, s2, events, r, cut)

	// The first ingest rebuilds the labeler and continues seamlessly.
	appendAll(t, s2, events[cut:], 41)
	s2.ingestMu.Lock()
	deferred = s2.needLabelerReplay
	s2.ingestMu.Unlock()
	if deferred {
		t.Fatal("ingest did not settle the deferred labeler replay")
	}
	checkOracle(t, s2, events, r, len(events))
	reg2.Close()
}

// TestArenaRestoreWithTail covers the crash case: an arena snapshot
// mid-stream plus committed WAL records past its watermark. Restore
// must adopt the arena for the covered prefix and replay only what the
// log holds beyond it.
func TestArenaRestoreWithTail(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, r := genEvents(t, g, 300, 9)
	cut := len(events) / 2

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 64})
	s, err := reg.Create("tail", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events[:cut-40], 37)
	s.snapWG.Wait() // let the periodic snapshot land
	// Disable snapshotting and append more, so the log provably holds
	// records past the snapshot watermark.
	s.ingestMu.Lock()
	s.snapEvery = -1
	s.ingestMu.Unlock()
	appendAll(t, s, events[cut-40:cut], 37)
	// No Close: the WAL holds records past the snapshot watermark.

	a, err := arena.Open(filepath.Join(dir, "tail", snapFile))
	if err != nil {
		t.Fatalf("no arena snapshot: %v", err)
	}
	snapped := a.Events()
	a.Close()
	if snapped <= 0 || snapped >= int64(cut) {
		t.Fatalf("want a snapshot strictly inside the stream, got %d of %d", snapped, cut)
	}

	reg2 := durableReg(t, dir, DurableOptions{SnapshotEvery: 64})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("tail")
	if got := s2.Stats().ArenaVertices; got != snapped {
		t.Fatalf("ArenaVertices = %d, want the snapshot's %d", got, snapped)
	}
	s2.ingestMu.Lock()
	deferred := s2.needLabelerReplay
	s2.ingestMu.Unlock()
	if deferred {
		t.Fatal("a non-empty tail must replay the labeler eagerly")
	}
	checkOracle(t, s2, events, r, cut)
	appendAll(t, s2, events[cut:], 37)
	checkOracle(t, s2, events, r, len(events))
	reg2.Close()
}

// TestArenaRestoreEquivalentToV1 restores the same session state from
// a v2 (arena) snapshot and from a hand-written v1 snapshot of the
// identical state, and requires the two restores to be semantically
// indistinguishable: same stats (the fields that describe the labeling,
// not the in-memory representation), same reachability and lineage
// answers, and byte-identical re-snapshots.
func TestArenaRestoreEquivalentToV1(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, _ := genEvents(t, g, 400, 13)

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 1 << 20})
	s, err := reg.Create("eq", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 64)
	walEvents := s.walEvents
	labels := s.store.Snapshot()
	if err := reg.Close(); err != nil { // leaves the v2 snapshot
		t.Fatal(err)
	}

	v2 := durableReg(t, t.TempDir(), DurableOptions{})
	if _, err := v2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	sv2, _ := v2.Get("eq")
	if sv2.Stats().ArenaVertices == 0 {
		t.Fatal("v2 restore did not adopt the arena")
	}

	// Rewrite the snapshot in the v1 format and restore again.
	if err := wal.WriteSnapshot(filepath.Join(dir, "eq", snapFile), wal.Snapshot{Events: walEvents, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	v1 := durableReg(t, t.TempDir(), DurableOptions{})
	if _, err := v1.Restore(dir); err != nil {
		t.Fatal(err)
	}
	sv1, _ := v1.Get("eq")
	if sv1.Stats().ArenaVertices != 0 {
		t.Fatal("v1 restore should not report arena labels")
	}

	// Semantic stats fields agree (publish epochs and shard breakdowns
	// are representation counters and legitimately differ).
	st1, st2 := sv1.Stats(), sv2.Stats()
	if st1.Name != st2.Name || st1.Class != st2.Class || st1.Skeleton != st2.Skeleton ||
		st1.Mode != st2.Mode || st1.Vertices != st2.Vertices ||
		st1.LabelBits != st2.LabelBits || st1.SkeletonBits != st2.SkeletonBits ||
		st1.Durable != st2.Durable {
		t.Fatalf("stats diverge:\nv1: %+v\nv2: %+v", st1, st2)
	}

	// Every query answer agrees.
	for i := 0; i < len(events); i += 7 {
		for j := 0; j < len(events); j += 11 {
			v, w := events[i].V, events[j].V
			r1, err1 := sv1.Reach(v, w)
			r2, err2 := sv2.Reach(v, w)
			if (err1 == nil) != (err2 == nil) || r1 != r2 {
				t.Fatalf("reach(%d,%d): v1=%v,%v v2=%v,%v", v, w, r1, err1, r2, err2)
			}
		}
		l1, err1 := sv1.Lineage(events[i].V)
		l2, err2 := sv2.Lineage(events[i].V)
		if (err1 == nil) != (err2 == nil) || len(l1) != len(l2) {
			t.Fatalf("lineage(%d) diverges", events[i].V)
		}
		for k := range l1 {
			if l1[k] != l2[k] {
				t.Fatalf("lineage(%d) diverges at %d", events[i].V, k)
			}
		}
	}

	// Re-snapshotting both restored stores produces identical files.
	p1 := filepath.Join(t.TempDir(), "re1.snap")
	p2 := filepath.Join(t.TempDir(), "re2.snap")
	if _, err := writeArenaSnapshot(p1, walEvents, 0, sv1.store.SnapshotEntries(), integrity.Head{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := writeArenaSnapshot(p2, walEvents, 0, sv2.store.SnapshotEntries(), integrity.Head{}, false); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-snapshots of v1- and v2-restored stores differ")
	}
}

// TestArenaAheadOfLogDiscarded simulates an OS crash with Fsync off:
// the snapshot claims WAL bytes the durable log never got. The arena
// must be discarded and recovery must fall back to what the log alone
// can prove.
func TestArenaAheadOfLogDiscarded(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, r := genEvents(t, g, 200, 17)

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 1 << 20})
	s, err := reg.Create("ahead", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 50)
	reg.Close()

	// Truncate the log below the snapshot's watermark.
	walPath := filepath.Join(dir, "ahead", walFile)
	a, err := arena.Open(filepath.Join(dir, "ahead", snapFile))
	if err != nil {
		t.Fatal(err)
	}
	wb := a.WALBytes()
	a.Close()
	if err := os.Truncate(walPath, wb-1); err != nil {
		t.Fatal(err)
	}

	reg2 := durableReg(t, dir, DurableOptions{})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("ahead")
	if got := s2.Stats().ArenaVertices; got != 0 {
		t.Fatalf("a snapshot ahead of the log must be discarded, ArenaVertices = %d", got)
	}
	// The replayable prefix still answers correctly.
	n := int(s2.Vertices())
	if n == 0 || n >= len(events) {
		t.Fatalf("restored %d vertices, want a strict prefix of %d", n, len(events))
	}
	checkOracle(t, s2, events, r, n)
	reg2.Close()
}

// TestArenaRestoreCorruptFallsBack flips a byte in the arena index and
// requires restore to fall back to full log replay.
func TestArenaRestoreCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, r := genEvents(t, g, 150, 29)

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 1 << 20})
	s, err := reg.Create("rot", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 50)
	reg.Close()

	snapPath := filepath.Join(dir, "rot", snapFile)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[52] ^= 0x01 // inside the index
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := durableReg(t, dir, DurableOptions{})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("rot")
	if s2.Stats().ArenaVertices != 0 {
		t.Fatal("corrupt arena was adopted")
	}
	checkOracle(t, s2, events, r, len(events))
	reg2.Close()
}

// TestGoldenV1Restore restores the committed v1-format fixture — a
// data directory written by the pre-arena code — and checks its
// queries against expected answers baked into the fixture. This is the
// compatibility contract: v1 data directories keep restoring on every
// future build. The fixture is regenerated by gen_golden_test.go (run
// with -run TestWriteGoldenV1Fixture -golden).
func TestGoldenV1Restore(t *testing.T) {
	dir := filepath.Join("testdata", "golden-v1")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	reg := NewRegistry()
	restored, err := reg.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "golden" {
		t.Fatalf("restored %v, want [golden]", restored)
	}
	s, _ := reg.Get("golden")

	// The expectations file holds one binary record per line-less
	// entry: vertex pairs with their reachability verdict.
	raw, err := os.ReadFile(filepath.Join(dir, "expect.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw)%9 != 0 {
		t.Fatalf("expect.bin has %d bytes, not a multiple of 9", len(raw))
	}
	checked := 0
	for off := 0; off+9 <= len(raw); off += 9 {
		v := graph.VertexID(binary.LittleEndian.Uint32(raw[off:]))
		w := graph.VertexID(binary.LittleEndian.Uint32(raw[off+4:]))
		want := raw[off+8] == 1
		got, err := s.Reach(v, w)
		if err != nil {
			t.Fatalf("reach(%d,%d): %v", v, w, err)
		}
		if got != want {
			t.Fatalf("reach(%d,%d) = %v, fixture says %v", v, w, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("fixture carries no expectations")
	}
}

// TestConcurrentArenaQueriesDuringIngest exercises the aliasing
// contract under the race detector: readers query an arena-backed
// session (mapped bytes) while a writer ingests the tail and snapshots
// rewrite the file underneath the mapping.
func TestConcurrentArenaQueriesDuringIngest(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, _ := genEvents(t, g, 400, 31)
	cut := len(events) / 2

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 1 << 20})
	s, err := reg.Create("race", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events[:cut], 64)
	reg.Close()

	reg2 := durableReg(t, dir, DurableOptions{SnapshotEvery: 32})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("race")
	if s2.Stats().ArenaVertices == 0 {
		t.Fatal("restore did not adopt the arena")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := events[(i*7+seed)%cut].V
				w := events[(i*13+seed)%cut].V
				if _, err := s2.Reach(v, w); err != nil {
					t.Errorf("reach: %v", err)
					return
				}
				if i%50 == 0 {
					if _, err := s2.Lineage(v); err != nil {
						t.Errorf("lineage: %v", err)
						return
					}
					s2.Stats()
				}
			}
		}(r)
	}
	// Ingest the tail with a tiny snapshot cadence, so live snapshots
	// rewrite labels.snap while readers serve the old mapping.
	appendAll(t, s2, events[cut:], 16)
	close(stop)
	wg.Wait()
	if int(s2.Vertices()) != len(events) {
		t.Fatalf("vertices = %d, want %d", s2.Vertices(), len(events))
	}
	reg2.Close()
}
