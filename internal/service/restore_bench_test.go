package service

import (
	"path/filepath"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/integrity"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wal"
)

// buildRestoreFixture ingests size events into a durable session and
// shuts down cleanly, leaving a snapshot covering the whole log. With
// v1 set, the arena snapshot is rewritten in the legacy WFSNAP01
// format, so Restore takes the decode-and-replay path.
func buildRestoreFixture(b *testing.B, dir string, size int, v1 bool) int {
	b.Helper()
	sp, ok := Builtin("BioAID")
	if !ok {
		b.Fatal("no BioAID builtin")
	}
	g, err := spec.Compile(sp)
	if err != nil {
		b.Fatal(err)
	}
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: size, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	reg, err := NewDurableRegistry(DurableOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := reg.Create("r", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		b.Fatal(err)
	}
	for lo := 0; lo < len(events); lo += 512 {
		hi := min(lo+512, len(events))
		if _, err := s.Append(events[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	walEvents := s.walEvents
	walBytes := s.wal.AppendBytes()
	var labels map[graph.VertexID][]byte
	if v1 {
		labels = s.store.Snapshot()
	}
	entries := s.store.SnapshotEntries()
	if err := reg.Close(); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "r", snapFile)
	if v1 {
		if err := wal.WriteSnapshot(path, wal.Snapshot{Events: walEvents, Labels: labels}); err != nil {
			b.Fatal(err)
		}
	} else if _, err := writeArenaSnapshot(path, walEvents, walBytes, entries, integrity.Head{}, false); err != nil {
		b.Fatal(err)
	}
	return len(events)
}

// benchmarkRestore measures a full Registry.Restore of the fixture —
// the cold-start path a daemon pays before it can serve its first
// query — reporting labels/sec of recovered state.
func benchmarkRestore(b *testing.B, size int, v1 bool) {
	dir := b.TempDir()
	n := buildRestoreFixture(b, dir, size, v1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := NewDurableRegistry(DurableOptions{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Restore(dir); err != nil {
			b.Fatal(err)
		}
		s, ok := reg.Get("r")
		if !ok || int(s.Vertices()) != n {
			b.Fatalf("restored %d vertices, want %d", s.Vertices(), n)
		}
		b.StopTimer()
		reg.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "labels/sec")
}

func BenchmarkRestoreV1_100k(b *testing.B)    { benchmarkRestore(b, 100_000, true) }
func BenchmarkRestoreArena_100k(b *testing.B) { benchmarkRestore(b, 100_000, false) }

func BenchmarkRestoreV1_1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-label fixture; skipped in -short")
	}
	benchmarkRestore(b, 1_000_000, true)
}

func BenchmarkRestoreArena_1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-label fixture; skipped in -short")
	}
	benchmarkRestore(b, 1_000_000, false)
}
