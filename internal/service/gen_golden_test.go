package service

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/skeleton"
	"wfreach/internal/wal"
)

// TestWriteGoldenV1Fixture regenerates testdata/golden-v1 — the
// committed v1-format data directory TestGoldenV1Restore guards. It is
// a tool, not a test: it only runs with WFREACH_WRITE_GOLDEN=1, and it
// should essentially never need re-running (the whole point of the
// fixture is that old data keeps restoring unchanged; regenerate it
// only if the fixture itself was wrong, never to make a failing compat
// test pass).
func TestWriteGoldenV1Fixture(t *testing.T) {
	if os.Getenv("WFREACH_WRITE_GOLDEN") == "" {
		t.Skip("fixture generator; set WFREACH_WRITE_GOLDEN=1 to run")
	}
	scratch := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, r := genEvents(t, g, 250, 424242)

	reg := durableReg(t, scratch, DurableOptions{SnapshotEvery: -1})
	s, err := reg.Create("golden", g, Config{
		Skeleton: skeleton.TCL, Mode: core.RModeDesignated, ID: "golden-v1-fixture",
	})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 50)
	walEvents := s.walEvents
	labels := s.store.Snapshot()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	// Force the snapshot into the v1 format the old code wrote.
	if err := wal.WriteSnapshot(filepath.Join(scratch, "golden", snapFile), wal.Snapshot{Events: walEvents, Labels: labels}); err != nil {
		t.Fatal(err)
	}

	// Bake expected reachability answers: every 7th × every 11th vertex.
	var expect []byte
	for i := 0; i < len(events); i += 7 {
		for j := 0; j < len(events); j += 11 {
			v, w := events[i].V, events[j].V
			var rec [9]byte
			binary.LittleEndian.PutUint32(rec[0:4], uint32(v))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(w))
			if r.Reaches(v, w) {
				rec[8] = 1
			}
			expect = append(expect, rec[:]...)
		}
	}

	dst := filepath.Join("testdata", "golden-v1")
	if err := os.RemoveAll(dst); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dst, "golden"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{metaFile, specFile, walFile, snapFile} {
		b, err := os.ReadFile(filepath.Join(scratch, "golden", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, "golden", name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dst, "expect.bin"), expect, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d events, %d expectations", dst, walEvents, len(expect)/9)
}
