package service

import (
	"strings"
	"time"

	"wfreach/internal/api"
	"wfreach/internal/obs"
	"wfreach/internal/wal"
)

// MetricsSnapshot is the wire shape of the typed metrics view (owned
// by internal/api, like every /v1 body).
type MetricsSnapshot = api.MetricsSnapshot

// nodeMetrics is the registry's instrument set — one per node, built
// once in NewRegistry (constructor path). Registration in obs is
// idempotent, so the replication and cluster subsystems re-register
// the shared families (replica lag, move and rejection counters)
// against the same obs.Registry and land on the same atomics; building
// them here too guarantees every family a monitor expects is present
// on the scrape from the moment the node is up, clustered or not.
type nodeMetrics struct {
	obs *obs.Registry

	sessions     *obs.Gauge
	ingestEvents *obs.CounterVec
	ingestBytes  *obs.CounterVec
	publishEpoch *obs.GaugeVec

	wal *wal.Metrics

	snapWrites   *obs.Counter
	snapErrors   *obs.Counter
	snapWriteSec *obs.Histogram
	restoreSec   *obs.Histogram
	restores     *obs.Counter
	arenaMaps    *obs.Gauge
	arenaVerts   *obs.Gauge

	chainFrames    *obs.Counter
	chainVerifySec *obs.Histogram

	replicaLagEvents  *obs.Gauge
	replicaLagSeconds *obs.FloatGauge
	moves             *obs.CounterVec
	rejections        *obs.CounterVec
}

func newNodeMetrics(r *obs.Registry) *nodeMetrics {
	m := &nodeMetrics{
		obs:          r,
		sessions:     r.Gauge("wf_sessions", "Open sessions."),
		ingestEvents: r.CounterVec("wf_ingest_events_total", "Events ingested, by session (capped; overflow in \"other\").", "session"),
		ingestBytes:  r.CounterVec("wf_ingest_bytes_total", "Ingest request bytes, by session (capped; overflow in \"other\").", "session"),
		publishEpoch: r.GaugeVec("wf_publish_epoch", "Store publish epoch, by session (capped; overflow in \"other\").", "session"),

		wal: wal.NewMetrics(r),

		snapWrites:   r.Counter("wf_snapshot_writes_total", "Arena snapshots written."),
		snapErrors:   r.Counter("wf_snapshot_errors_total", "Arena snapshot writes that failed."),
		snapWriteSec: r.Histogram("wf_snapshot_write_seconds", "Arena snapshot write duration."),
		restoreSec:   r.Histogram("wf_snapshot_restore_seconds", "Session restore duration."),
		restores:     r.Counter("wf_restore_sessions_total", "Sessions restored from the data directory."),
		arenaMaps:    r.Gauge("wf_arena_maps", "Sessions serving labels from a mapped arena snapshot."),
		arenaVerts:   r.Gauge("wf_arena_vertices", "Vertices served zero-copy from mapped arenas."),

		chainFrames:    r.Counter("wf_chain_verify_frames_total", "WAL frames hashed during chain verification."),
		chainVerifySec: r.Histogram("wf_chain_verify_seconds", "Chain verification pass duration."),

		replicaLagEvents:  r.Gauge("wf_replica_lag_events", "Worst follower tail lag across sessions, in events."),
		replicaLagSeconds: r.FloatGauge("wf_replica_lag_seconds", "Approximate follower tail lag, in seconds."),
		moves:             r.CounterVec("wf_cluster_moves_total", "Cluster session-move phase transitions.", "phase"),
		rejections:        r.CounterVec("wf_cluster_rejections_total", "Placement rejections served.", "code"),
	}
	// Pre-create the series CI's mid-drill curl asserts on, so they are
	// numeric from the first scrape rather than absent until the first
	// move or misrouted request.
	m.moves.With("completed")
	m.rejections.With("wrong_node")
	m.rejections.With("read_only")
	return m
}

// Obs returns the node's metrics registry — the exposition mounted at
// GET /v1/metrics, and the registration point for the replication and
// cluster subsystems' instruments.
func (r *Registry) Obs() *obs.Registry { return r.metrics.obs }

// WALMetrics returns the WAL plane's instrument set (shared by every
// session log and the group committer).
func (r *Registry) WALMetrics() *wal.Metrics { return r.metrics.wal }

// bindMetrics resolves the session's per-session series once, at
// create/restore time, so the ingest path adds to cached atomics
// instead of looking label values up per batch.
func (s *Session) bindMetrics(m *nodeMetrics) {
	s.metrics = m
	s.mEvents = m.ingestEvents.With(s.name)
	s.mBytes = m.ingestBytes.With(s.name)
	s.mEpoch = m.publishEpoch.With(s.name)
}

// forgetSession drops the deleted session's labeled series.
func (m *nodeMetrics) forgetSession(name string) {
	m.ingestEvents.Forget(name)
	m.ingestBytes.Forget(name)
	m.publishEpoch.Forget(name)
}

// AddIngestBytes attributes wire bytes to the session's ingest-bytes
// counter — the HTTP layer calls it with the request body size.
func (s *Session) AddIngestBytes(n int64) {
	if s.mBytes != nil {
		s.mBytes.Add(n)
	}
}

// MetricsSnapshot builds the typed point-in-time metrics view surfaced
// on GET /v1/cluster/health (api.MetricsSnapshot).
func (r *Registry) MetricsSnapshot() *MetricsSnapshot {
	m := r.metrics
	var events, bytes int64
	for k, v := range m.obs.Values() {
		switch {
		case strings.HasPrefix(k, "wf_ingest_events_total"):
			events += int64(v)
		case strings.HasPrefix(k, "wf_ingest_bytes_total"):
			bytes += int64(v)
		}
	}
	return &MetricsSnapshot{
		Sessions:            m.sessions.Value(),
		IngestEvents:        events,
		IngestBytes:         bytes,
		WALAppends:          m.wal.Appends.Value(),
		WALCommitP99US:      float64(m.wal.CommitLatency.Quantile(0.99)) / 1e3,
		WALFsyncP99US:       float64(m.wal.FsyncLatency.Quantile(0.99)) / 1e3,
		SnapshotWrites:      m.snapWrites.Value(),
		ArenaMaps:           m.arenaMaps.Value(),
		ReplicaLagEvents:    m.replicaLagEvents.Value(),
		ReplicaLagSeconds:   m.replicaLagSeconds.Value(),
		MovesCompleted:      m.moves.With("completed").Value(),
		WrongNodeRejections: m.rejections.With("wrong_node").Value(),
		ReadOnlyRejections:  m.rejections.With("read_only").Value(),
		ChainFramesVerified: m.chainFrames.Value(),
	}
}

// observeCommit wraps the group-commit wait with its latency
// instrument.
func (s *Session) observeCommit(start time.Time) {
	if s.metrics != nil {
		s.metrics.wal.CommitLatency.Add(time.Since(start))
	}
}

// observeSnapshot records one arena snapshot write attempt.
func (s *Session) observeSnapshot(start time.Time, err error) {
	if s.metrics == nil {
		return
	}
	if err != nil {
		s.metrics.snapErrors.Inc()
		return
	}
	s.metrics.snapWrites.Inc()
	s.metrics.snapWriteSec.Observe(time.Since(start))
}

// chainVerified records one hash-chain verification pass over frames
// WAL frames.
func (m *nodeMetrics) chainVerified(start time.Time, frames int64) {
	m.chainFrames.Add(frames)
	m.chainVerifySec.Observe(time.Since(start))
}
