// Package service hosts long-lived, concurrent provenance-labeling
// sessions: the piece a provenance-aware workflow system runs as a
// daemon. Each session wraps a compiled grammar, an execution-based
// labeler and an encoded label store, ingesting execution events as
// they happen and answering "did A contribute to B?" the moment both
// vertices exist — over partial, still-running executions, which is
// the paper's whole point (labels are issued on the fly and never
// change).
//
// # Concurrency discipline
//
// The labeler is single-writer (see internal/core): a session
// serializes event ingestion under an ingest mutex. Every label the
// labeler issues is immediately copied, encoded, into the session's
// store under a short write lock; reads (reachability, lineage,
// stats) take the corresponding read lock only to fetch the encoded
// bytes and answer from those bytes outside the lock — labels are
// immutable (Section 2.4), so a completed vertex's query never blocks
// on ingest for longer than one map access. The registry itself is a
// plain RWMutex-guarded name map; sessions are independent, so
// ingestion into one session never contends with queries on another.
package service

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wal"
	"wfreach/internal/wfspecs"
)

// Config selects the labeling scheme of a session.
type Config struct {
	// Skeleton is the specification-labeling scheme (TCL or BFS).
	Skeleton skeleton.Kind
	// Mode is the recursion-compression mode.
	Mode core.RMode
}

// Stats is a point-in-time snapshot of one session. Vertices counts
// every labeled vertex, including those recovered by Restore; Batches
// counts only the batches ingested since the session was opened or
// restored in this process.
type Stats struct {
	// Name is the session's registry name.
	Name string `json:"name"`
	// Class is the grammar's recursion class.
	Class string `json:"class"`
	// Skeleton is the specification-labeling scheme ("TCL" or "BFS").
	Skeleton string `json:"skeleton"`
	// Mode is the recursion-compression mode.
	Mode string `json:"mode"`
	// Vertices is the number of labeled vertices.
	Vertices int64 `json:"vertices"`
	// Batches is the number of event batches ingested.
	Batches int64 `json:"batches"`
	// LabelBits is the total size of the stored encoded labels.
	LabelBits int `json:"label_bits"`
	// SkeletonBits is the size of the shared skeleton labeling.
	SkeletonBits int `json:"skeleton_bits"`
	// Durable reports whether the session persists its events to a
	// write-ahead log (see NewDurableRegistry).
	Durable bool `json:"durable,omitempty"`
}

// Session is one live labeling session: a grammar, a streaming
// labeler, and the encoded labels issued so far.
type Session struct {
	name string
	g    *spec.Grammar
	cfg  Config

	// ingestMu enforces the single-writer discipline over the labeler.
	ingestMu sync.Mutex
	labeler  *core.ExecutionLabeler

	// storeMu guards the store's vertex map. The encoded label bytes it
	// holds are write-once, so readers only need the lock for the map
	// lookup itself.
	storeMu sync.RWMutex
	store   *store.Store

	vertices atomic.Int64 // labeled vertices, readable without locks
	batches  atomic.Int64

	// Durable state (see durable.go); all but the immutable durable
	// flag and dir are guarded by ingestMu. A nil wal on a durable
	// session means its log was closed or poisoned.
	durable    bool
	dir        string
	wal        *wal.Log
	walEvents  int64 // events appended to the log
	snapEvents int64 // events covered by the last snapshot
	snapEvery  int64
	snapBusy   bool           // a snapshot write is in flight
	snapWG     sync.WaitGroup // tracks the in-flight snapshot goroutine
	ioErr      error          // first log failure; poisons further ingest
}

// Registry is a concurrent name → session map, optionally backed by a
// data directory (NewDurableRegistry) in which case sessions survive
// restarts via Restore.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	// creating reserves names whose durable on-disk state is being
	// built outside the lock, so concurrent Create/Restore of the same
	// name collide without holding mu across disk I/O.
	creating map[string]bool
	durable  *DurableOptions // nil: memory-only
}

// NewRegistry returns an empty session registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[string]*Session), creating: make(map[string]bool)}
}

// Create opens a new session over the grammar. The name must be
// non-empty and not in use.
//
// On a durable registry (NewDurableRegistry) Create additionally must
// be given a name usable as a directory name; it persists the
// specification and labeling configuration under the data directory
// and opens the session's write-ahead log before the session becomes
// visible, so a session that Create returned is already recoverable.
func (r *Registry) Create(name string, g *spec.Grammar, cfg Config) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("service: empty session name")
	}
	if r.durable != nil {
		if err := validateSessionName(name); err != nil {
			return nil, err
		}
	}
	s := &Session{
		name:    name,
		g:       g,
		cfg:     cfg,
		labeler: core.NewExecutionLabeler(g, cfg.Skeleton, cfg.Mode),
		store:   store.New(g, cfg.Skeleton),
	}
	r.mu.Lock()
	if _, dup := r.sessions[name]; dup || r.creating[name] {
		r.mu.Unlock()
		return nil, fmt.Errorf("service: session %q already exists", name)
	}
	if r.durable == nil {
		r.sessions[name] = s
		r.mu.Unlock()
		return s, nil
	}
	// Reserve the name, then build the on-disk state outside the lock
	// so a slow disk never stalls queries on other sessions.
	r.creating[name] = true
	r.mu.Unlock()
	err := s.initDurable(r.durable)
	r.mu.Lock()
	delete(r.creating, name)
	if err == nil {
		r.sessions[name] = s
	}
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Durable reports whether the registry persists its sessions to a
// data directory (see NewDurableRegistry).
func (r *Registry) Durable() bool { return r.durable != nil }

// Get returns the named session.
func (r *Registry) Get(name string) (*Session, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sessions[name]
	return s, ok
}

// Delete removes the named session, reporting whether it existed.
// In-flight operations on the session finish normally; it simply stops
// being reachable by name. A durable session's log is closed and its
// data directory removed — deletion is permanent, the session will not
// come back on Restore, and the name is free for reuse the moment
// Delete returns. (If the removal itself fails, orphaned files may
// survive and be resurrected by a later Restore.) The teardown I/O
// runs outside the registry lock; the name stays reserved until the
// files are gone, so a racing Create cannot trip over them.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	s, ok := r.sessions[name]
	delete(r.sessions, name)
	if ok && s.durable {
		r.creating[name] = true
	}
	r.mu.Unlock()
	if ok && s.durable {
		s.closeWAL()
		os.RemoveAll(s.dir)
		r.mu.Lock()
		delete(r.creating, name)
		r.mu.Unlock()
	}
	return ok
}

// Names returns the open session names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of open sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// Name returns the session's registry name.
func (s *Session) Name() string { return s.name }

// Grammar returns the session's compiled grammar.
func (s *Session) Grammar() *spec.Grammar { return s.g }

// Append ingests a batch of execution events, in order. It returns the
// number applied; on error the batch stops at the offending event —
// its index is the returned count — and everything before it is
// ingested and queryable (event streams are append-only, so a partial
// prefix is still a valid partial execution).
//
// On a durable session each event is teed to the write-ahead log
// after it labels successfully and before it becomes queryable, and
// the log is flushed before Append returns — an acknowledged batch is
// recoverable. A log write failure permanently stops ingestion on the
// session (its in-memory state has outrun what disk can reproduce);
// queries keep working.
func (s *Session) Append(events []run.Event) (int, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.ioErr != nil {
		return 0, s.ioErr
	}
	for i := range events {
		l, err := s.labeler.Insert(events[i])
		if err != nil {
			err = fmt.Errorf("service: %w", err)
			// The applied prefix is acknowledged: make it durable, and
			// surface a failure to do so alongside the labeler error.
			if ferr := s.finishBatch(); ferr != nil {
				err = errors.Join(err, ferr)
			}
			return i, err
		}
		if err := s.logRecord(wal.RefRecord(events[i])); err != nil {
			return i, err
		}
		s.publish(events[i].V, l)
	}
	s.batches.Add(1)
	return len(events), s.finishBatch()
}

// AppendNamed ingests a batch of name-identified events (the Section
// 5.3 naming-restriction setting), with Append's partial-batch and
// durability semantics.
func (s *Session) AppendNamed(events []core.NamedEvent) (int, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.ioErr != nil {
		return 0, s.ioErr
	}
	for i := range events {
		l, err := s.labeler.InsertNamed(events[i])
		if err != nil {
			err = fmt.Errorf("service: %w", err)
			if ferr := s.finishBatch(); ferr != nil {
				err = errors.Join(err, ferr)
			}
			return i, err
		}
		if err := s.logRecord(wal.NamedRecord(events[i])); err != nil {
			return i, err
		}
		s.publish(events[i].V, l)
	}
	s.batches.Add(1)
	return len(events), s.finishBatch()
}

// publish copies a freshly issued label to the read side. Called with
// ingestMu held; encodes outside the store lock and takes the write
// lock only for the map insert, so readers are never blocked behind
// label encoding. The freshly encoded slice is handed over without a
// defensive copy — nothing else ever sees it.
func (s *Session) publish(v graph.VertexID, l label.Label) {
	enc := s.store.Encode(l)
	s.storeMu.Lock()
	err := s.store.PutEncodedOwned(v, enc)
	s.storeMu.Unlock()
	if err != nil {
		// Unreachable: the labeler already rejects duplicate vertices.
		panic(err)
	}
	s.vertices.Add(1)
}

// Reach answers v ;* w from the encoded labels alone. Both vertices
// must already be labeled; querying a vertex the session has not seen
// yet is an error (the caller cannot distinguish "not reachable" from
// "not yet executed" — the paper's partial-run semantics make that the
// caller's call to retry).
func (s *Session) Reach(v, w graph.VertexID) (bool, error) {
	s.storeMu.RLock()
	bv, okv := s.store.GetRaw(v)
	bw, okw := s.store.GetRaw(w)
	s.storeMu.RUnlock()
	if !okv {
		return false, fmt.Errorf("service: vertex %d not labeled yet", v)
	}
	if !okw {
		return false, fmt.Errorf("service: vertex %d not labeled yet", w)
	}
	// Decode and evaluate π outside the lock: the bytes are write-once.
	return s.store.ReachBytes(bv, bw)
}

// Lineage returns the labeled vertices that reach v (its provenance
// closure so far), ascending. The read lock is held only to snapshot
// the encoded-label map; the O(labeled) decode-and-π scan runs
// outside it, so a lineage query never stalls ingestion.
func (s *Session) Lineage(v graph.VertexID) ([]graph.VertexID, error) {
	s.storeMu.RLock()
	bv, ok := s.store.GetRaw(v)
	snap := s.store.Snapshot()
	s.storeMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: vertex %d not labeled yet", v)
	}
	var out []graph.VertexID
	for w, bw := range snap {
		reaches, err := s.store.ReachBytes(bw, bv)
		if err != nil {
			return nil, err
		}
		if reaches {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Vertices returns the number of labeled vertices, without locking.
func (s *Session) Vertices() int64 { return s.vertices.Load() }

// Stats snapshots the session.
func (s *Session) Stats() Stats {
	s.storeMu.RLock()
	bits := s.store.Bits()
	s.storeMu.RUnlock()
	return Stats{
		Name:         s.name,
		Class:        s.g.Class().String(),
		Skeleton:     s.cfg.Skeleton.String(),
		Mode:         s.cfg.Mode.String(),
		Vertices:     s.vertices.Load(),
		Batches:      s.batches.Load(),
		LabelBits:    bits,
		SkeletonBits: s.labeler.Skeleton().Bits(),
		Durable:      s.durable,
	}
}

// Builtin returns a built-in specification by name (the Section 7
// workloads), or false for unknown names.
func Builtin(name string) (*spec.Spec, bool) {
	switch name {
	case "RunningExample":
		return wfspecs.RunningExample(), true
	case "BioAID":
		return wfspecs.BioAID(), true
	case "BioAIDNonRecursive":
		return wfspecs.BioAIDNonRecursive(), true
	case "LowerBound":
		return wfspecs.Fig6(), true
	case "Path":
		return wfspecs.Fig12(), true
	}
	return nil, false
}

// BuiltinNames lists the built-in specification names, sorted.
func BuiltinNames() []string {
	return []string{"BioAID", "BioAIDNonRecursive", "LowerBound", "Path", "RunningExample"}
}
