// Package service hosts long-lived, concurrent provenance-labeling
// sessions: the piece a provenance-aware workflow system runs as a
// daemon. Each session wraps a compiled grammar, an execution-based
// labeler and an encoded label store, ingesting execution events as
// they happen and answering "did A contribute to B?" the moment both
// vertices exist — over partial, still-running executions, which is
// the paper's whole point (labels are issued on the fly and never
// change).
//
// # Concurrency discipline
//
// The labeler is single-writer (see internal/core): a session
// serializes event ingestion under an ingest mutex. Every label the
// labeler issues is immediately copied, encoded, into the session's
// store under a short write lock; reads (reachability, lineage,
// stats) take the corresponding read lock only to fetch the encoded
// bytes and answer from those bytes outside the lock — labels are
// immutable (Section 2.4), so a completed vertex's query never blocks
// on ingest for longer than one map access. The registry itself is a
// plain RWMutex-guarded name map; sessions are independent, so
// ingestion into one session never contends with queries on another.
package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wfspecs"
)

// Config selects the labeling scheme of a session.
type Config struct {
	// Skeleton is the specification-labeling scheme (TCL or BFS).
	Skeleton skeleton.Kind
	// Mode is the recursion-compression mode.
	Mode core.RMode
}

// Stats is a point-in-time snapshot of one session.
type Stats struct {
	Name         string `json:"name"`
	Class        string `json:"class"`
	Skeleton     string `json:"skeleton"`
	Mode         string `json:"mode"`
	Vertices     int64  `json:"vertices"`
	Batches      int64  `json:"batches"`
	LabelBits    int    `json:"label_bits"`
	SkeletonBits int    `json:"skeleton_bits"`
}

// Session is one live labeling session: a grammar, a streaming
// labeler, and the encoded labels issued so far.
type Session struct {
	name string
	g    *spec.Grammar
	cfg  Config

	// ingestMu enforces the single-writer discipline over the labeler.
	ingestMu sync.Mutex
	labeler  *core.ExecutionLabeler

	// storeMu guards the store's vertex map. The encoded label bytes it
	// holds are write-once, so readers only need the lock for the map
	// lookup itself.
	storeMu sync.RWMutex
	store   *store.Store

	vertices atomic.Int64 // labeled vertices, readable without locks
	batches  atomic.Int64
}

// Registry is a concurrent name → session map.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// NewRegistry returns an empty session registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[string]*Session)}
}

// Create opens a new session over the grammar. The name must be
// non-empty and not in use.
func (r *Registry) Create(name string, g *spec.Grammar, cfg Config) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("service: empty session name")
	}
	s := &Session{
		name:    name,
		g:       g,
		cfg:     cfg,
		labeler: core.NewExecutionLabeler(g, cfg.Skeleton, cfg.Mode),
		store:   store.New(g, cfg.Skeleton),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sessions[name]; dup {
		return nil, fmt.Errorf("service: session %q already exists", name)
	}
	r.sessions[name] = s
	return s, nil
}

// Get returns the named session.
func (r *Registry) Get(name string) (*Session, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sessions[name]
	return s, ok
}

// Delete removes the named session, reporting whether it existed.
// In-flight operations on the session finish normally; it simply stops
// being reachable by name.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sessions[name]
	delete(r.sessions, name)
	return ok
}

// Names returns the open session names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of open sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// Name returns the session's registry name.
func (s *Session) Name() string { return s.name }

// Grammar returns the session's compiled grammar.
func (s *Session) Grammar() *spec.Grammar { return s.g }

// Append ingests a batch of execution events, in order. It returns the
// number applied; on error the batch stops at the offending event —
// its index is the returned count — and everything before it is
// ingested and queryable (event streams are append-only, so a partial
// prefix is still a valid partial execution).
func (s *Session) Append(events []run.Event) (int, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	for i := range events {
		l, err := s.labeler.Insert(events[i])
		if err != nil {
			return i, fmt.Errorf("service: %w", err)
		}
		s.publish(events[i].V, l)
	}
	s.batches.Add(1)
	return len(events), nil
}

// AppendNamed ingests a batch of name-identified events (the Section
// 5.3 naming-restriction setting), with Append's partial-batch
// semantics.
func (s *Session) AppendNamed(events []core.NamedEvent) (int, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	for i := range events {
		l, err := s.labeler.InsertNamed(events[i])
		if err != nil {
			return i, fmt.Errorf("service: %w", err)
		}
		s.publish(events[i].V, l)
	}
	s.batches.Add(1)
	return len(events), nil
}

// publish copies a freshly issued label to the read side. Called with
// ingestMu held; encodes outside the store lock and takes the write
// lock only for the map insert, so readers are never blocked behind
// label encoding.
func (s *Session) publish(v graph.VertexID, l label.Label) {
	enc := s.store.Encode(l)
	s.storeMu.Lock()
	err := s.store.PutEncoded(v, enc)
	s.storeMu.Unlock()
	if err != nil {
		// Unreachable: the labeler already rejects duplicate vertices.
		panic(err)
	}
	s.vertices.Add(1)
}

// Reach answers v ;* w from the encoded labels alone. Both vertices
// must already be labeled; querying a vertex the session has not seen
// yet is an error (the caller cannot distinguish "not reachable" from
// "not yet executed" — the paper's partial-run semantics make that the
// caller's call to retry).
func (s *Session) Reach(v, w graph.VertexID) (bool, error) {
	s.storeMu.RLock()
	bv, okv := s.store.GetRaw(v)
	bw, okw := s.store.GetRaw(w)
	s.storeMu.RUnlock()
	if !okv {
		return false, fmt.Errorf("service: vertex %d not labeled yet", v)
	}
	if !okw {
		return false, fmt.Errorf("service: vertex %d not labeled yet", w)
	}
	// Decode and evaluate π outside the lock: the bytes are write-once.
	return s.store.ReachBytes(bv, bw)
}

// Lineage returns the labeled vertices that reach v (its provenance
// closure so far), ascending. The read lock is held only to snapshot
// the encoded-label map; the O(labeled) decode-and-π scan runs
// outside it, so a lineage query never stalls ingestion.
func (s *Session) Lineage(v graph.VertexID) ([]graph.VertexID, error) {
	s.storeMu.RLock()
	bv, ok := s.store.GetRaw(v)
	snap := s.store.Snapshot()
	s.storeMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: vertex %d not labeled yet", v)
	}
	var out []graph.VertexID
	for w, bw := range snap {
		reaches, err := s.store.ReachBytes(bw, bv)
		if err != nil {
			return nil, err
		}
		if reaches {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Vertices returns the number of labeled vertices, without locking.
func (s *Session) Vertices() int64 { return s.vertices.Load() }

// Stats snapshots the session.
func (s *Session) Stats() Stats {
	s.storeMu.RLock()
	bits := s.store.Bits()
	s.storeMu.RUnlock()
	return Stats{
		Name:         s.name,
		Class:        s.g.Class().String(),
		Skeleton:     s.cfg.Skeleton.String(),
		Mode:         s.cfg.Mode.String(),
		Vertices:     s.vertices.Load(),
		Batches:      s.batches.Load(),
		LabelBits:    bits,
		SkeletonBits: s.labeler.Skeleton().Bits(),
	}
}

// Builtin returns a built-in specification by name (the Section 7
// workloads), or false for unknown names.
func Builtin(name string) (*spec.Spec, bool) {
	switch name {
	case "RunningExample":
		return wfspecs.RunningExample(), true
	case "BioAID":
		return wfspecs.BioAID(), true
	case "BioAIDNonRecursive":
		return wfspecs.BioAIDNonRecursive(), true
	case "LowerBound":
		return wfspecs.Fig6(), true
	case "Path":
		return wfspecs.Fig12(), true
	}
	return nil, false
}

// BuiltinNames lists the built-in specification names, sorted.
func BuiltinNames() []string {
	return []string{"BioAID", "BioAIDNonRecursive", "LowerBound", "Path", "RunningExample"}
}
