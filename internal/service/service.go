// Package service hosts long-lived, concurrent provenance-labeling
// sessions: the piece a provenance-aware workflow system runs as a
// daemon. Each session wraps a compiled grammar, an execution-based
// labeler and an encoded label store, ingesting execution events as
// they happen and answering "did A contribute to B?" the moment both
// vertices exist — over partial, still-running executions, which is
// the paper's whole point (labels are issued on the fly and never
// change).
//
// # Concurrency discipline
//
// The labeler is single-writer (see internal/core): a session
// serializes event ingestion under an ingest mutex, and ingest runs as
// a pipeline — label the batch, encode each label, tee each event to
// the write-ahead log, stage the encoded labels into the sharded store
// grouped by shard, and publish once per batch. The store (see
// internal/store) owns its own synchronization: published labels live
// in per-shard immutable views behind atomic pointers, so the query
// path (Reach, Lineage, Stats) acquires no mutex at all — labels are
// immutable (Section 2.4), and a published view is never mutated. On a
// durable registry, batch durability is acknowledged through a
// cross-session group committer: one flush/fsync per log is amortized
// over every batch that queued while the previous flush was on the
// disk. The registry itself is a plain RWMutex-guarded name map;
// sessions are independent, so ingestion into one session never
// contends with queries on another.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"wfreach/internal/api"
	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/integrity"
	"wfreach/internal/label"
	"wfreach/internal/obs"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wal"
	"wfreach/internal/wfspecs"
)

// Config selects the labeling scheme of a session.
type Config struct {
	// Skeleton is the specification-labeling scheme (TCL or BFS).
	Skeleton skeleton.Kind
	// Mode is the recursion-compression mode.
	Mode core.RMode
	// Shards is the session store's shard count (rounded up to a power
	// of two). Zero uses the registry default, or the store default if
	// the registry has none.
	Shards int
	// ID is the session's stable identity, surfaced on stats. Names
	// are reusable (delete + recreate), identities are not — which is
	// how a replica tells "the session I was tailing" from "a new
	// session that took the same name". Empty: a random identity is
	// generated at Create. A replica passes the primary session's
	// identity through so the copy shares it.
	ID string
}

// ShardStat mirrors store.ShardStat on the stats API: one shard's
// published vertex count and view publish epoch.
type ShardStat = store.ShardStat

// Stats is a point-in-time snapshot of one session. Vertices counts
// every labeled vertex, including those recovered by Restore; Batches
// counts only the batches ingested since the session was opened or
// restored in this process. The wire shape is owned by internal/api
// (SessionStats).
type Stats = api.SessionStats

// Session is one live labeling session: a grammar, a streaming
// labeler, and the encoded labels issued so far.
type Session struct {
	name string
	g    *spec.Grammar
	cfg  Config

	// ingestMu enforces the single-writer discipline over the labeler.
	ingestMu sync.Mutex
	labeler  *core.ExecutionLabeler

	// store holds the encoded labels and owns its own synchronization:
	// writes are staged under per-shard mutexes and published per
	// batch; reads are lock-free against immutable shard views.
	store *store.Store

	vertices atomic.Int64 // published vertices, readable without locks
	batches  atomic.Int64

	// Durable state (see durable.go); all but the immutable durable
	// flag, dir and committer are guarded by ingestMu. A nil wal on a
	// durable session means its log was closed or poisoned.
	durable bool
	dir     string
	wal     *wal.Log
	walPath string // the log file, for the deferred labeler replay
	// needLabelerReplay marks a session restored from an arena snapshot
	// with nothing to replay: its store serves the mapped labels, but
	// the labeler has no execution state yet. The first ingest rebuilds
	// it from the log (ensureLabelerLocked) — queries never need it.
	// Guarded by ingestMu.
	needLabelerReplay bool
	committer         *wal.Committer // registry-wide group committer; nil on memory-only restore
	walEvents         int64          // events appended to the log
	snapEvents        int64          // events covered by the last snapshot
	snapEvery         int64
	snapBusy          bool           // a snapshot write is in flight
	snapWG            sync.WaitGroup // tracks the in-flight snapshot goroutine
	ioErr             error          // first log failure; poisons further ingest

	// Integrity anchors of the last WFSNAP03 snapshot (guarded by
	// ingestMu): the Merkle root over its label extents and the WAL
	// chain head at its watermark. snapIntegrity is false until the
	// session writes (or restores from) an integrity-stamped snapshot.
	snapRoot      integrity.Head
	snapChain     integrity.Head
	snapIntegrity bool

	// sealed, when non-empty, is the base URL of the node this session
	// moved to (see Seal): ingest is permanently rejected with
	// CodeReadOnly pointing there, while queries and WAL tails keep
	// serving the local copy. Guarded by ingestMu.
	sealed string

	// metrics is the node's instrument set; mEvents/mBytes/mEpoch are
	// the session's own series, resolved once at bindMetrics so the
	// ingest path touches cached atomics only.
	metrics *nodeMetrics
	mEvents *obs.Counter
	mBytes  *obs.Counter
	mEpoch  *obs.Gauge
}

// Registry is a concurrent name → session map, optionally backed by a
// data directory (NewDurableRegistry) in which case sessions survive
// restarts via Restore.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	// creating reserves names whose durable on-disk state is being
	// built outside the lock, so concurrent Create/Restore of the same
	// name collide without holding mu across disk I/O.
	creating map[string]bool
	durable  *DurableOptions // nil: memory-only
	// committer is the cross-session WAL group committer (durable
	// registries only).
	committer *wal.Committer
	// defaultShards is the store shard count for sessions whose Config
	// leaves Shards zero; zero means the store default.
	defaultShards atomic.Int64
	// followerPrimary, when non-nil, marks the registry a read-only
	// follower replica of the primary at that base URL: the HTTP
	// surface rejects writes with CodeReadOnly pointing there, while
	// the replica subsystem keeps applying the primary's WAL through
	// the internal ingest path. Promote clears it.
	followerPrimary atomic.Pointer[string]
	// repl are the replication hooks a follower installs (see
	// SetReplicationHooks); nil hooks get primary-role defaults.
	repl atomic.Pointer[ReplicationHooks]
	// cluster are the hooks a cluster controller installs (see
	// SetClusterHooks); nil means the server is not clustered and the
	// /v1/cluster surface answers CodeNotClustered.
	cluster atomic.Pointer[ClusterHooks]
	// metrics is the node's instrument set (see metrics.go), built once
	// here — registration is constructor-path only.
	metrics *nodeMetrics
}

// ReplicationHooks lets the replica subsystem answer replication
// queries the registry cannot answer alone: a follower's per-session
// tail progress and the promote transition.
type ReplicationHooks struct {
	// Status builds the replication status response.
	Status func() api.ReplicationStatus
	// Promote flips the follower to writable after a final catch-up.
	Promote func(ctx context.Context) error
}

// ClusterHooks lets the cluster subsystem (internal/cluster) gate the
// HTTP surface by session placement and serve the /v1/cluster control
// plane. The registry stays placement-ignorant: the controller owns
// the map, the registry just consults it.
type ClusterHooks struct {
	// Route decides whether this node serves a request for the session:
	// nil to serve it, or a typed rejection (CodeWrongNode when the
	// node has no copy, CodeReadOnly when a moved session left one)
	// carrying the owner's URL in the detail. write marks mutating
	// requests; reads against a local copy of a moved session are
	// served (stale, like a follower's).
	Route func(session string, write bool) error
	// Map snapshots the cluster map.
	Map func() api.ClusterMap
	// Health builds the cluster health response.
	Health func() api.ClusterHealth
	// Move runs (or forwards) a session move.
	Move func(ctx context.Context, req api.MoveRequest) (api.MoveResponse, error)
	// Release runs the owner-side move handoff.
	Release func(ctx context.Context, req api.ReleaseRequest) (api.ReleaseResponse, error)
	// Forget drops the session's placement override after a delete, so
	// a recreated session places by hash again.
	Forget func(session string)
}

// NewRegistry returns an empty session registry.
func NewRegistry() *Registry {
	return &Registry{
		sessions: make(map[string]*Session),
		creating: make(map[string]bool),
		metrics:  newNodeMetrics(obs.NewRegistry()),
	}
}

// SetDefaultShards sets the store shard count used by sessions whose
// Config leaves Shards zero. Zero restores the store default; the
// count applies to sessions created or restored afterwards.
func (r *Registry) SetDefaultShards(n int) {
	if n < 0 {
		n = 0
	}
	r.defaultShards.Store(int64(n))
}

// shardsFor resolves the effective shard count for a session config.
func (r *Registry) shardsFor(cfg Config) int {
	if cfg.Shards > 0 {
		return cfg.Shards
	}
	return int(r.defaultShards.Load())
}

// Create opens a new session over the grammar. The name must be
// non-empty and not in use.
//
// On a durable registry (NewDurableRegistry) Create additionally must
// be given a name usable as a directory name; it persists the
// specification and labeling configuration under the data directory
// and opens the session's write-ahead log before the session becomes
// visible, so a session that Create returned is already recoverable.
func (r *Registry) Create(name string, g *spec.Grammar, cfg Config) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("service: empty session name")
	}
	if r.durable != nil {
		if err := validateSessionName(name); err != nil {
			return nil, err
		}
	}
	if cfg.ID == "" {
		cfg.ID = newSessionID()
	}
	s := &Session{
		name:    name,
		g:       g,
		cfg:     cfg,
		labeler: core.NewExecutionLabeler(g, cfg.Skeleton, cfg.Mode),
		store:   store.NewSharded(g, cfg.Skeleton, r.shardsFor(cfg)),
	}
	s.bindMetrics(r.metrics)
	r.mu.Lock()
	if _, dup := r.sessions[name]; dup || r.creating[name] {
		r.mu.Unlock()
		return nil, fmt.Errorf("service: session %q already exists", name)
	}
	if r.durable == nil {
		r.sessions[name] = s
		r.metrics.sessions.Set(int64(len(r.sessions)))
		r.mu.Unlock()
		return s, nil
	}
	// Reserve the name, then build the on-disk state outside the lock
	// so a slow disk never stalls queries on other sessions.
	r.creating[name] = true
	r.mu.Unlock()
	err := s.initDurable(r.durable, r.committer)
	r.mu.Lock()
	delete(r.creating, name)
	if err == nil {
		r.sessions[name] = s
	}
	r.metrics.sessions.Set(int64(len(r.sessions)))
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Durable reports whether the registry persists its sessions to a
// data directory (see NewDurableRegistry).
func (r *Registry) Durable() bool { return r.durable != nil }

// SetFollower marks the registry a read-only follower of the primary
// at the given base URL. The HTTP surface then rejects create, delete
// and ingest requests with CodeReadOnly carrying the primary's
// address; queries and WAL tails keep working. The replica subsystem
// itself writes through the internal Session methods, which stay
// open — read-only is a wire-surface contract, not a session lock.
func (r *Registry) SetFollower(primary string) { r.followerPrimary.Store(&primary) }

// Promote clears follower mode: the registry becomes writable again.
// It does not stop the tailing replica — replica.Follower.Promote
// does both, in the right order.
func (r *Registry) Promote() { r.followerPrimary.Store(nil) }

// FollowerPrimary returns the primary's base URL and true when the
// registry is a read-only follower.
func (r *Registry) FollowerPrimary() (string, bool) {
	if p := r.followerPrimary.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// SetReplicationHooks installs the replica subsystem's status and
// promote callbacks (see ReplicationHooks).
func (r *Registry) SetReplicationHooks(h ReplicationHooks) { r.repl.Store(&h) }

// SetClusterHooks installs the cluster controller's routing and
// control-plane callbacks (see ClusterHooks).
func (r *Registry) SetClusterHooks(h ClusterHooks) { r.cluster.Store(&h) }

// Cluster returns the installed cluster hooks, or nil when the server
// is not clustered.
func (r *Registry) Cluster() *ClusterHooks { return r.cluster.Load() }

// ReplicationStatus reports the server's replication state. A
// follower's installed hook answers with its tail progress; the
// default is the primary role with every session's committed WAL
// sequence — what a follower needs to discover sessions and what a
// load generator needs to compute replica lag.
func (r *Registry) ReplicationStatus() api.ReplicationStatus {
	if h := r.repl.Load(); h != nil && h.Status != nil {
		return h.Status()
	}
	st := api.ReplicationStatus{Role: api.RolePrimary, Sessions: []api.SessionReplication{}}
	if p, ok := r.FollowerPrimary(); ok {
		// Follower mode without hooks (no running replica): still honest
		// about the role.
		st.Role, st.Primary = api.RoleFollower, p
	}
	for _, name := range r.Names() {
		if s, ok := r.Get(name); ok {
			st.Sessions = append(st.Sessions, api.SessionReplication{
				Name: name, WALSeq: s.WALSeq(), Durable: s.durable,
			})
		}
	}
	return st
}

// PromoteFollower runs the promote transition: the installed hook
// (final catch-up, stop tailing, flip writable) when the replica
// subsystem provided one, otherwise just the registry flip. It is
// idempotent: on a server that is already writable — never a
// follower, or promoted earlier — it is a no-op, so failover tooling
// can re-POST promote until it gets an answer without fearing the
// retry.
func (r *Registry) PromoteFollower(ctx context.Context) error {
	if _, ok := r.FollowerPrimary(); !ok {
		return nil // already writable: promote is idempotent
	}
	if h := r.repl.Load(); h != nil && h.Promote != nil {
		return h.Promote(ctx)
	}
	r.Promote()
	return nil
}

// Get returns the named session.
func (r *Registry) Get(name string) (*Session, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sessions[name]
	return s, ok
}

// Delete removes the named session, reporting whether it existed.
// In-flight operations on the session finish normally; it simply stops
// being reachable by name. A durable session's log is closed and its
// data directory removed — deletion is permanent, the session will not
// come back on Restore, and the name is free for reuse the moment
// Delete returns. (If the removal itself fails, orphaned files may
// survive and be resurrected by a later Restore.) The teardown I/O
// runs outside the registry lock; the name stays reserved until the
// files are gone, so a racing Create cannot trip over them.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	s, ok := r.sessions[name]
	delete(r.sessions, name)
	if ok && s.durable {
		r.creating[name] = true
	}
	r.metrics.sessions.Set(int64(len(r.sessions)))
	r.mu.Unlock()
	if ok {
		r.metrics.forgetSession(name)
		if n := int64(s.store.ArenaCount()); n > 0 {
			r.metrics.arenaMaps.Add(-1)
			r.metrics.arenaVerts.Add(-n)
		}
	}
	if ok && s.durable {
		s.closeWAL(false) // the directory is about to be removed; no final snapshot
		os.RemoveAll(s.dir)
		r.mu.Lock()
		delete(r.creating, name)
		r.mu.Unlock()
	}
	return ok
}

// Names returns the open session names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// Len returns the number of open sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// newSessionID returns a fresh random session identity.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Name returns the session's registry name.
func (s *Session) Name() string { return s.name }

// ID returns the session's stable identity (see Config.ID).
func (s *Session) ID() string { return s.cfg.ID }

// Grammar returns the session's compiled grammar.
func (s *Session) Grammar() *spec.Grammar { return s.g }

// Append ingests a batch of execution events, in order. It returns the
// number applied; on error the batch stops at the offending event —
// its index is the returned count — and everything before it is
// ingested and queryable (event streams are append-only, so a partial
// prefix is still a valid partial execution).
//
// Ingest is pipelined: the batch is labeled and encoded under the
// ingest lock, teed event by event to the write-ahead log, staged into
// the store grouped by shard, and published — made visible to the
// lock-free query path — once, at the end of the batch. On a durable
// session the applied prefix is then committed (flushed, and fsynced
// as configured) before Append returns, through the registry's group
// committer so concurrent batches share one flush — an acknowledged
// batch is recoverable. A log write failure permanently stops
// ingestion on the session (its in-memory state has outrun what disk
// can reproduce); queries keep working.
func (s *Session) Append(events []run.Event) (int, error) {
	s.ingestMu.Lock()
	if err := s.ingestBlockedLocked(); err != nil {
		s.ingestMu.Unlock()
		return 0, err
	}
	staged := make([]store.Entry, 0, len(events))
	applied := len(events)
	var err error
	for i := range events {
		l, lerr := s.labeler.Insert(events[i])
		if lerr != nil {
			applied, err = i, fmt.Errorf("service: %w", lerr)
			break
		}
		if werr := s.logRecord(wal.RefRecord(events[i])); werr != nil {
			// The log is poisoned and the batch unacknowledged; the
			// logged prefix still becomes queryable.
			s.publishStaged(staged)
			s.ingestMu.Unlock()
			return i, werr
		}
		staged = append(staged, store.Entry{V: events[i].V, Enc: s.store.Encode(l)})
	}
	return s.finishLocked(applied, staged, err)
}

// AppendNamed ingests a batch of name-identified events (the Section
// 5.3 naming-restriction setting), with Append's pipeline,
// partial-batch and durability semantics.
func (s *Session) AppendNamed(events []core.NamedEvent) (int, error) {
	s.ingestMu.Lock()
	if err := s.ingestBlockedLocked(); err != nil {
		s.ingestMu.Unlock()
		return 0, err
	}
	staged := make([]store.Entry, 0, len(events))
	applied := len(events)
	var err error
	for i := range events {
		l, lerr := s.labeler.InsertNamed(events[i])
		if lerr != nil {
			applied, err = i, fmt.Errorf("service: %w", lerr)
			break
		}
		if werr := s.logRecord(wal.NamedRecord(events[i])); werr != nil {
			s.publishStaged(staged)
			s.ingestMu.Unlock()
			return i, werr
		}
		staged = append(staged, store.Entry{V: events[i].V, Enc: s.store.Encode(l)})
	}
	return s.finishLocked(applied, staged, err)
}

// AppendRecords ingests a batch of WAL-form records — the two event
// forms may be mixed freely — with Append's pipeline, partial-batch
// and durability semantics. When frames is non-nil it must hold one
// pre-encoded, CRC-verified wire frame per record (see internal/api:
// the binary ingest frame is byte-identical to the WAL frame); a
// durable session then tees each accepted frame to its log as-is,
// skipping the re-encode the JSON route pays. With frames nil the
// records are framed here.
func (s *Session) AppendRecords(recs []wal.Record, frames [][]byte) (int, error) {
	if frames != nil && len(frames) != len(recs) {
		return 0, fmt.Errorf("service: %d frames for %d records", len(frames), len(recs))
	}
	s.ingestMu.Lock()
	if err := s.ingestBlockedLocked(); err != nil {
		s.ingestMu.Unlock()
		return 0, err
	}
	staged := make([]store.Entry, 0, len(recs))
	applied := len(recs)
	var err error
	for i := range recs {
		var (
			v    graph.VertexID
			l    label.Label
			lerr error
		)
		if recs[i].Named {
			v = recs[i].NamedEv.V
			l, lerr = s.labeler.InsertNamed(recs[i].NamedEv)
		} else {
			v = recs[i].Ref.V
			l, lerr = s.labeler.Insert(recs[i].Ref)
		}
		if lerr != nil {
			applied, err = i, fmt.Errorf("service: %w", lerr)
			break
		}
		var werr error
		if frames != nil {
			werr = s.logFrame(frames[i])
		} else {
			werr = s.logRecord(recs[i])
		}
		if werr != nil {
			s.publishStaged(staged)
			s.ingestMu.Unlock()
			return i, werr
		}
		staged = append(staged, store.Entry{V: v, Enc: s.store.Encode(l)})
	}
	return s.finishLocked(applied, staged, err)
}

// ingestBlockedLocked reports why ingest cannot proceed: a poisoned
// log, or a seal left by a completed move. It also settles the
// deferred labeler replay an arena restore left behind, so by the time
// any batch reaches the labeler the labeler holds the full restored
// execution state. Called with ingestMu held.
func (s *Session) ingestBlockedLocked() error {
	if s.ioErr != nil {
		return s.ioErr
	}
	if s.sealed != "" {
		return api.Errorf(api.CodeReadOnly, "session %q moved to another node", s.name).
			WithDetail("%s", s.sealed)
	}
	return s.ensureLabelerLocked()
}

// errLabelerCaughtUp aborts the deferred replay scan once the labeler
// has consumed exactly the records the restored store covers.
var errLabelerCaughtUp = errors.New("service: labeler caught up")

// ensureLabelerLocked rebuilds the labeler state an arena restore
// deferred: the first walEvents records of the log are replayed
// through the labeler only — no encoding, no store writes, the store
// already serves those labels from the mapping. One-shot: after a
// successful rebuild the flag clears and every later batch pays
// nothing. A rebuild failure poisons ingest (the store holds labels
// the labeler cannot account for); queries keep working. Called with
// ingestMu held.
func (s *Session) ensureLabelerLocked() error {
	if !s.needLabelerReplay {
		return nil
	}
	target := s.walEvents
	n := int64(0)
	_, _, err := wal.Scan(s.walPath, func(i int, rec wal.Record) error {
		if n >= target {
			return errLabelerCaughtUp
		}
		var ierr error
		if rec.Named {
			_, ierr = s.labeler.InsertNamed(rec.NamedEv)
		} else {
			_, ierr = s.labeler.Insert(rec.Ref)
		}
		if ierr != nil {
			return fmt.Errorf("service: session %q: deferred replay at record %d: %w", s.name, i, ierr)
		}
		n++
		return nil
	})
	if errors.Is(err, errLabelerCaughtUp) {
		err = nil
	}
	if err == nil && n < target {
		err = fmt.Errorf("service: session %q: log holds %d records, restored state covers %d", s.name, n, target)
	}
	if err != nil {
		s.ioErr = fmt.Errorf("service: session %q: %w: %v", s.name, ErrDurability, err)
		return s.ioErr
	}
	s.needLabelerReplay = false
	return nil
}

// Seal permanently stops ingest into the session and returns the
// sequence of the last event it ever appended to its log — the final
// handoff point of a session move. From the moment Seal returns, every
// ingest attempt is rejected with CodeReadOnly naming the new owner's
// base URL, so in-flight clients re-route with the one-hop redirect
// they already use for followers; queries and WAL tails keep serving
// the local copy. Taking ingestMu closes the race with in-flight
// batches: a batch that acquired the lock first is covered by the
// returned sequence, one that acquires it after is rejected.
func (s *Session) Seal(newOwnerURL string) int64 {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	s.sealed = newOwnerURL
	if s.wal != nil {
		return s.wal.AppendSeq()
	}
	// Memory-only: every applied event labels one vertex, so the vertex
	// count is the stream position.
	return s.vertices.Load()
}

// Unseal reopens ingest into a session Seal closed — the move-back
// path: a node re-adopting a retained copy of a session it once
// released must accept the tailer's replay again (and, once the map
// flips back to it, client writes). The cluster layer keeps external
// writes routed away until the drain completes, so unsealing early is
// safe.
func (s *Session) Unseal() {
	s.ingestMu.Lock()
	s.sealed = ""
	s.ingestMu.Unlock()
}

// publishStaged appends the batch's encoded labels to the store
// shard-grouped and publishes them — the single point where a batch
// becomes visible to the lock-free query path. Called with ingestMu
// held, so under the ingest lock the published store always holds
// exactly the applied event prefix.
func (s *Session) publishStaged(staged []store.Entry) {
	if len(staged) == 0 {
		return
	}
	if err := s.store.AppendOwned(staged); err != nil {
		// Unreachable: the labeler already rejects duplicate vertices.
		panic(err)
	}
	s.store.Publish()
	s.vertices.Add(int64(len(staged)))
	if s.mEvents != nil {
		s.mEvents.Add(int64(len(staged)))
		s.mEpoch.Set(s.store.Epoch())
	}
}

// finishLocked publishes the applied prefix, releases the ingest lock,
// and acknowledges durability for everything logged so far (both the
// success and the partial-batch path ack the applied prefix). Called
// with ingestMu held; returns with it released.
func (s *Session) finishLocked(applied int, staged []store.Entry, err error) (int, error) {
	s.publishStaged(staged)
	if err == nil {
		s.batches.Add(1)
	}
	log := s.wal
	var seq int64
	if log != nil {
		seq = log.AppendSeq()
	}
	s.ingestMu.Unlock()
	if log != nil {
		if cerr := s.commitWAL(log, seq); cerr != nil {
			if err == nil {
				return applied, cerr
			}
			return applied, errors.Join(err, cerr)
		}
		s.maybeSnapshot()
	}
	return applied, err
}

// Reach answers v ;* w from the encoded labels alone, without taking
// any lock. Both vertices must already be labeled; querying a vertex
// the session has not seen yet is an error (the caller cannot
// distinguish "not reachable" from "not yet executed" — the paper's
// partial-run semantics make that the caller's call to retry).
func (s *Session) Reach(v, w graph.VertexID) (bool, error) {
	bv, okv := s.store.GetRaw(v)
	bw, okw := s.store.GetRaw(w)
	if !okv {
		return false, api.Errorf(api.CodeVertexNotLabeled, "vertex %d not labeled yet", v)
	}
	if !okw {
		return false, api.Errorf(api.CodeVertexNotLabeled, "vertex %d not labeled yet", w)
	}
	return s.store.ReachBytes(bv, bw)
}

// ReachBatch answers many reachability pairs in one call, one answer
// per pair in request order. Pair-level failures (an unlabeled
// vertex) are reported inline on the answer — one unanswerable pair
// never invalidates the batch, which is what lets a client amortize
// a roundtrip over dozens of questions. Like Reach, the whole batch
// runs lock-free against the published shard views.
func (s *Session) ReachBatch(pairs []api.ReachPair) []api.ReachAnswer {
	out := make([]api.ReachAnswer, len(pairs))
	for i, p := range pairs {
		out[i] = api.ReachAnswer{From: p.From, To: p.To}
		ok, err := s.Reach(graph.VertexID(p.From), graph.VertexID(p.To))
		if err != nil {
			ae := api.AsError(err, api.CodeInternal)
			out[i].Code, out[i].Error = ae.Code, ae.Message
			continue
		}
		out[i].Reachable = ok
	}
	return out
}

// Lineage returns the labeled vertices that reach v (its provenance
// closure so far), ascending. The whole scan — decode the target once,
// decode-and-π every published label — runs against the store's
// immutable shard views, so a lineage query never takes a lock and
// never stalls ingestion.
func (s *Session) Lineage(v graph.VertexID) ([]graph.VertexID, error) {
	out, err := s.store.Lineage(v)
	if err != nil {
		return nil, api.Errorf(api.CodeVertexNotLabeled, "vertex %d not labeled yet", v)
	}
	return out, nil
}

// LineagePage returns up to limit ancestors of v with vertex id
// strictly greater than after (pass graph.None to start), ascending,
// plus whether more remain. Ancestor ids are the pagination cursor:
// labels are write-once, so an ancestor reported on one page stays
// correct forever, and a scan resumed at the cursor only ever misses
// ancestors published after that page was served — re-running the
// scan picks them up. limit must be positive. Note that every page
// pays the full closure scan (reachability lives in the labels; there
// is no ancestor index to seek into): pagination bounds response
// sizes, not server work, so callers wanting the whole closure should
// use large pages.
func (s *Session) LineagePage(v graph.VertexID, after graph.VertexID, limit int) (page []graph.VertexID, more bool, err error) {
	if limit <= 0 {
		return nil, false, api.Errorf(api.CodeBadRequest, "lineage page limit must be positive, got %d", limit)
	}
	all, err := s.Lineage(v)
	if err != nil {
		return nil, false, err
	}
	// all is ascending; the page starts past the cursor.
	i, _ := slices.BinarySearch(all, after+1)
	rest := all[i:]
	if len(rest) > limit {
		return rest[:limit], true, nil
	}
	return rest, false, nil
}

// Vertices returns the number of labeled vertices, without locking.
func (s *Session) Vertices() int64 { return s.vertices.Load() }

// Stats snapshots the session without taking any lock.
func (s *Session) Stats() Stats {
	return Stats{
		Name:          s.name,
		ID:            s.cfg.ID,
		Class:         s.g.Class().String(),
		Skeleton:      s.cfg.Skeleton.String(),
		Mode:          s.cfg.Mode.String(),
		Vertices:      s.vertices.Load(),
		ArenaVertices: int64(s.store.ArenaCount()),
		Batches:       s.batches.Load(),
		LabelBits:     s.store.Bits(),
		SkeletonBits:  s.labeler.Skeleton().Bits(),
		PublishEpoch:  s.store.Epoch(),
		Shards:        s.store.ShardStats(),
		Durable:       s.durable,
	}
}

// Builtin returns a built-in specification by name (the Section 7
// workloads), or false for unknown names.
func Builtin(name string) (*spec.Spec, bool) {
	switch name {
	case "Agent":
		return wfspecs.Agent(), true
	case "RunningExample":
		return wfspecs.RunningExample(), true
	case "BioAID":
		return wfspecs.BioAID(), true
	case "BioAIDNonRecursive":
		return wfspecs.BioAIDNonRecursive(), true
	case "LowerBound":
		return wfspecs.Fig6(), true
	case "Path":
		return wfspecs.Fig12(), true
	}
	return nil, false
}

// BuiltinNames lists the built-in specification names, sorted.
func BuiltinNames() []string {
	return []string{"Agent", "BioAID", "BioAIDNonRecursive", "LowerBound", "Path", "RunningExample"}
}
