package service

// DisableChain turns off the session's WAL hash chain. Test-and-bench
// only: the chained/unchained pair of ingest benchmarks uses it to
// price tamper evidence on the hot path.
func DisableChain(s *Session) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.wal != nil {
		s.wal.DisableChain()
	}
}
