package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"wfreach/internal/gen"
)

// parseProm is a strict in-test reader of the Prometheus text format:
// families must be announced by HELP and TYPE before their samples,
// and every sample line must end in a parseable float.
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	announced := make(map[string]bool)
	for ln, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			announced[fields[0]] = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			cut := strings.LastIndexByte(line, ' ')
			if cut <= 0 {
				t.Fatalf("line %d: sample without value: %q", ln+1, line)
			}
			v, err := strconv.ParseFloat(line[cut+1:], 64)
			if err != nil {
				t.Fatalf("line %d: bad value: %q: %v", ln+1, line, err)
			}
			base := line[:cut]
			if i := strings.IndexByte(base, '{'); i >= 0 {
				base = base[:i]
			}
			base = strings.TrimSuffix(strings.TrimSuffix(base, "_sum"), "_count")
			if !announced[base] {
				t.Fatalf("line %d: sample %q before its TYPE line", ln+1, line)
			}
			out[line[:cut]] = v
		}
	}
	return out
}

// TestMetricsEndpointUnderConcurrentIngest scrapes /v1/metrics in a
// tight loop while a writer streams events into a session: every
// scrape must be well-framed, ingest counters must be monotonic, and
// ingest must keep making progress between scrapes (a scrape holds no
// lock an event append waits on). Run under -race in CI.
func TestMetricsEndpointUnderConcurrentIngest(t *testing.T) {
	srv := newTestServer(t)
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions",
		CreateRequest{Name: "m", Builtin: "RunningExample"}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	g := compileBuiltin(t, "RunningExample")
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]WireEvent, len(events))
	for i, ev := range events {
		wire[i] = ToWire(ev)
	}

	// Single writer (sessions are single-writer); errors come back on
	// the channel because t.Fatal must not fire off the test goroutine.
	writerDone := make(chan error, 1)
	go func() {
		const batch = 64
		for lo := 0; lo < len(wire); lo += batch {
			hi := min(lo+batch, len(wire))
			b, err := json.Marshal(EventsRequest{Events: wire[lo:hi]})
			if err != nil {
				writerDone <- err
				return
			}
			resp, err := http.Post(srv.URL+"/v1/sessions/m/events", "application/json", bytes.NewReader(b))
			if err != nil {
				writerDone <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	scrapeOnce := func() map[string]float64 {
		resp, err := http.Get(srv.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("scrape content type %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return parseProm(t, string(raw))
	}

	const key = `wf_ingest_events_total{session="m"}`
	var last float64
	scrapes := 0
	for done := false; !done; {
		select {
		case err := <-writerDone:
			if err != nil {
				t.Fatalf("writer: %v", err)
			}
			done = true
		default:
			got := scrapeOnce()
			if got[key] < last {
				t.Fatalf("ingest counter went backwards: %g after %g", got[key], last)
			}
			last = got[key]
			scrapes++
		}
	}

	final := scrapeOnce()
	if final[key] != float64(len(wire)) {
		t.Fatalf("server counted %g ingested events, sent %d", final[key], len(wire))
	}
	if scrapes == 0 {
		t.Fatal("never scraped concurrently with ingest")
	}
	// The families the dashboards and CI drills key on must exist on
	// every node from the first scrape, whatever the topology.
	for _, name := range []string{
		"wf_sessions",
		"wf_wal_appends_total",
		"wf_wal_commit_seconds_count",
		"wf_snapshot_writes_total",
		"wf_replica_lag_events",
		"wf_cluster_moves_total",
		"wf_cluster_rejections_total",
		"wf_chain_verify_frames_total",
	} {
		found := false
		for k := range final {
			if k == name || strings.HasPrefix(k, name+"{") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("scrape missing family %s", name)
		}
	}
	if final["wf_sessions"] != 1 {
		t.Fatalf("wf_sessions = %g, want 1", final["wf_sessions"])
	}
}
