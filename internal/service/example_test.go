package service_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/service"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// ExampleRegistry_Create shows durable session creation: on a registry
// opened with NewDurableRegistry, Create lays down the session's
// specification, metadata and an empty write-ahead log before
// returning, so the session is recoverable from its first event on.
func ExampleRegistry_Create() {
	dir, err := os.MkdirTemp("", "wfserve-data")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: dir, Fsync: false})
	if err != nil {
		panic(err)
	}
	defer reg.Close()

	sp, _ := service.Builtin("RunningExample")
	g := spec.MustCompile(sp)
	s, err := reg.Create("run1", g, service.Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		panic(err)
	}
	fmt.Println("durable:", s.Stats().Durable)

	entries, _ := os.ReadDir(filepath.Join(dir, "run1"))
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	fmt.Println("on disk:", names)
	// Output:
	// durable: true
	// on disk: [events.wal session.json spec.xml]
}

// ExampleRegistry_Restore runs the crash drill end to end: ingest half
// an execution into a durable session, abandon the registry without
// shutdown (the WAL is flushed at every acknowledged batch), restore
// the data directory into a fresh registry, and keep using the session
// — the recovered labels answer exactly as before.
func ExampleRegistry_Restore() {
	dir, err := os.MkdirTemp("", "wfserve-data")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	sp, _ := service.Builtin("RunningExample")
	g := spec.MustCompile(sp)
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 200, Seed: 1})
	if err != nil {
		panic(err)
	}

	reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: dir, Fsync: false})
	if err != nil {
		panic(err)
	}
	s, err := reg.Create("run1", g, service.Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		panic(err)
	}
	if _, err := s.Append(events[:len(events)/2]); err != nil {
		panic(err)
	}
	// The process "crashes" here: no Close, no snapshot — just the log.

	reg2, err := service.NewDurableRegistry(service.DurableOptions{Dir: dir, Fsync: false})
	if err != nil {
		panic(err)
	}
	defer reg2.Close()
	restored, err := reg2.Restore(dir)
	if err != nil {
		panic(err)
	}
	fmt.Println("restored:", restored)

	s2, _ := reg2.Get("run1")
	fmt.Println("vertices recovered:", s2.Vertices())
	reachable, err := s2.Reach(events[0].V, events[len(events)/2-1].V)
	if err != nil {
		panic(err)
	}
	fmt.Println("source reaches last recovered vertex:", reachable)
	// Output:
	// restored: [run1]
	// vertices recovered: 100
	// source reaches last recovered vertex: true
}
