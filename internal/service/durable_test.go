package service

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

func durableReg(t *testing.T, dir string, opts DurableOptions) *Registry {
	t.Helper()
	opts.Dir = dir
	reg, err := NewDurableRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func genEvents(t *testing.T, g *spec.Grammar, size int, seed int64) ([]run.Event, *run.Run) {
	t.Helper()
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return events, r
}

func appendAll(t *testing.T, s *Session, events []run.Event, batch int) {
	t.Helper()
	for lo := 0; lo < len(events); lo += batch {
		hi := min(lo+batch, len(events))
		if n, err := s.Append(events[lo:hi]); err != nil {
			t.Fatalf("append [%d,%d): applied %d: %v", lo, hi, n, err)
		}
	}
}

// checkOracle verifies every pair over the first n events of the
// stream against BFS ground truth on the fully generated run (labels
// never change, so the partial answers must equal the final ones).
func checkOracle(t *testing.T, s *Session, events []run.Event, r *run.Run, n int) {
	t.Helper()
	if got := s.Vertices(); got != int64(n) {
		t.Fatalf("session has %d vertices, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v, w := events[i].V, events[j].V
			got, err := s.Reach(v, w)
			if err != nil {
				t.Fatalf("reach(%d,%d): %v", v, w, err)
			}
			if want := r.Reaches(v, w); got != want {
				t.Fatalf("reach(%d,%d)=%v, want %v", v, w, got, want)
			}
		}
	}
}

// TestDurableRestoreMatchesOracle ingests a run into a durable
// session, drops the registry without a clean shutdown (the crash
// case: the WAL is flushed per batch, nothing else is saved), restores
// into a fresh registry and checks every reachability answer against
// the BFS oracle. It then continues ingesting the rest of the stream
// on the restored session and checks again — recovery must leave the
// labeler in a state indistinguishable from an uninterrupted run.
func TestDurableRestoreMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, r := genEvents(t, g, 300, 7)
	cut := len(events) / 2

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 64})
	s, err := reg.Create("crashy", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events[:cut], 37)
	// No reg.Close(): simulate the process dying after the last ack.

	reg2 := durableReg(t, dir, DurableOptions{SnapshotEvery: 64})
	restored, err := reg2.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "crashy" {
		t.Fatalf("restored %v", restored)
	}
	s2, ok := reg2.Get("crashy")
	if !ok {
		t.Fatal("restored session not registered")
	}
	if !s2.Stats().Durable {
		t.Fatal("restored session not durable")
	}
	checkOracle(t, s2, events, r, cut)

	// The restored session keeps ingesting where the log ended.
	appendAll(t, s2, events[cut:], 37)
	checkOracle(t, s2, events, r, len(events))
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}

	// And a third process can restore the completed run.
	reg3 := durableReg(t, dir, DurableOptions{})
	if _, err := reg3.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s3, _ := reg3.Get("crashy")
	checkOracle(t, s3, events, r, len(events))
}

// TestDurableNamedEvents round-trips the name-identified event form
// through the WAL.
func TestDurableNamedEvents(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, r := genEvents(t, g, 150, 3)

	reg := durableReg(t, dir, DurableOptions{})
	s, err := reg.Create("named", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	named := make([]core.NamedEvent, len(events))
	for i, ev := range events {
		named[i] = toNamed(r, ev)
	}
	for lo := 0; lo < len(named); lo += 16 {
		hi := min(lo+16, len(named))
		if _, err := s.AppendNamed(named[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	reg.Close()

	reg2 := durableReg(t, dir, DurableOptions{})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("named")
	checkOracle(t, s2, events, r, len(events))
}

// storeBytes snapshots a session's encoded labels for comparison.
func storeBytes(s *Session) map[int32][]byte {
	out := make(map[int32][]byte)
	for v, enc := range s.store.Snapshot() {
		out[int32(v)] = enc
	}
	return out
}

// TestSnapshotTailEqualsFullReplay restores the same data directory
// twice — once with the snapshot present (snapshot + WAL tail) and
// once with it deleted (full WAL replay) — and requires byte-identical
// stores: the snapshot path must never change what recovery produces,
// and the persisted bytes must equal what re-encoding produces.
func TestSnapshotTailEqualsFullReplay(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, _ := genEvents(t, g, 400, 11)

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 100})
	s, err := reg.Create("snap", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 64)
	reg.Close()
	if _, err := os.Stat(filepath.Join(dir, "snap", snapFile)); err != nil {
		t.Fatalf("no snapshot was written: %v", err)
	}

	withSnap := durableReg(t, t.TempDir(), DurableOptions{})
	if _, err := withSnap.Restore(dir); err != nil {
		t.Fatal(err)
	}
	a, _ := withSnap.Get("snap")

	if err := os.Remove(filepath.Join(dir, "snap", snapFile)); err != nil {
		t.Fatal(err)
	}
	fullReplay := durableReg(t, t.TempDir(), DurableOptions{})
	if _, err := fullReplay.Restore(dir); err != nil {
		t.Fatal(err)
	}
	b, _ := fullReplay.Get("snap")

	ba, bb := storeBytes(a), storeBytes(b)
	if len(ba) != len(bb) || len(ba) != len(events) {
		t.Fatalf("store sizes differ: snapshot=%d full=%d events=%d", len(ba), len(bb), len(events))
	}
	for v, enc := range ba {
		if !bytes.Equal(enc, bb[v]) {
			t.Fatalf("vertex %d: snapshot bytes %v != replay bytes %v", v, enc, bb[v])
		}
	}
}

// TestCorruptWALTailRecoversPrefix damages the log tail in several
// ways and checks recovery cleanly keeps the intact prefix, answers
// its queries correctly, and accepts new events afterwards.
func TestCorruptWALTailRecoversPrefix(t *testing.T) {
	g := compileBuiltin(t, "RunningExample")
	events, r := genEvents(t, g, 200, 5)

	build := func(t *testing.T) string {
		dir := t.TempDir()
		reg := durableReg(t, dir, DurableOptions{SnapshotEvery: -1})
		s, err := reg.Create("x", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, s, events, 50)
		reg.Close()
		return dir
	}

	damage := map[string]func(t *testing.T, path string){
		"torn tail": func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			os.WriteFile(path, raw[:len(raw)-7], 0o644)
		},
		"flipped bit": func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			raw[len(raw)-20] ^= 0x40
			os.WriteFile(path, raw, 0o644)
		},
	}
	for name, hurt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := build(t)
			hurt(t, filepath.Join(dir, "x", walFile))

			reg := durableReg(t, dir, DurableOptions{SnapshotEvery: -1})
			if _, err := reg.Restore(dir); err != nil {
				t.Fatal(err)
			}
			s, _ := reg.Get("x")
			n := int(s.Vertices())
			if n <= 0 || n >= len(events) {
				t.Fatalf("recovered %d events, want a proper nonempty prefix of %d", n, len(events))
			}
			checkOracle(t, s, events, r, n)

			// The truncated log accepts the rest of the stream again.
			appendAll(t, s, events[n:], 50)
			checkOracle(t, s, events, r, len(events))
			reg.Close()
		})
	}
}

// TestSnapshotAheadOfLogIsDiscarded models an OS crash with Fsync off:
// the snapshot survived but logged events did not. The snapshot claims
// more events than the WAL holds and must be ignored.
func TestSnapshotAheadOfLogIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, r := genEvents(t, g, 300, 13)

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 50})
	s, err := reg.Create("x", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 50)
	reg.Close()

	// Rewind the WAL to before the last snapshot watermark.
	walPath := filepath.Join(dir, "x", walFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)/4], 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := durableReg(t, dir, DurableOptions{})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("x")
	n := int(s2.Vertices())
	if n <= 0 || n >= len(events)/2 {
		t.Fatalf("recovered %d events from a quarter-length log of %d", n, len(events))
	}
	checkOracle(t, s2, events, r, n)
	reg2.Close()
}

// TestDurableConcurrentIngestQuerySnapshot exercises the durable write
// path under -race: one writer streams batches (snapshotting often)
// while readers hammer reach and lineage queries and stats.
func TestDurableConcurrentIngestQuerySnapshot(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, r := genEvents(t, g, 500, 21)

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 32})
	s, err := reg.Create("hot", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				n := s.Vertices()
				if n < 2 {
					continue
				}
				v := events[rng.Int63n(n)].V
				w := events[rng.Int63n(n)].V
				got, err := s.Reach(v, w)
				if err != nil {
					t.Errorf("reach(%d,%d): %v", v, w, err)
					return
				}
				if want := r.Reaches(v, w); got != want {
					t.Errorf("reach(%d,%d)=%v, want %v", v, w, got, want)
					return
				}
				s.Stats()
			}
		}(int64(i))
	}
	appendAll(t, s, events, 25)
	close(done)
	wg.Wait()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := durableReg(t, dir, DurableOptions{})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("hot")
	checkOracle(t, s2, events, r, len(events))
}

// TestDurableCreateValidation covers the filesystem-facing rules
// durable mode adds to Create.
func TestDurableCreateValidation(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	reg := durableReg(t, dir, DurableOptions{})
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}

	for _, bad := range []string{"a/b", `a\b`, "..", ".", "a/../b"} {
		if _, err := reg.Create(bad, g, cfg); err == nil {
			t.Errorf("name %q accepted on a durable registry", bad)
		}
	}
	if _, err := reg.Create("ok", g, cfg); err != nil {
		t.Fatal(err)
	}
	// Leftover data (not an open session) also blocks creation.
	reg.Delete("ok")
	if err := os.MkdirAll(filepath.Join(dir, "stale"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stale", metaFile), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("stale", g, cfg); err == nil {
		t.Error("Create over leftover session data succeeded")
	}
}

// TestDurableDeleteRemovesData checks Delete tears down the on-disk
// state so the name is immediately reusable and gone after Restore.
func TestDurableDeleteRemovesData(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, _ := genEvents(t, g, 80, 2)
	reg := durableReg(t, dir, DurableOptions{})
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	s, err := reg.Create("tmp", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 80)
	if !reg.Delete("tmp") {
		t.Fatal("Delete(tmp) = false")
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp")); !os.IsNotExist(err) {
		t.Fatalf("session directory survived delete: %v", err)
	}
	if _, err := reg.Create("tmp", g, cfg); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
	reg.Close()

	reg2 := durableReg(t, dir, DurableOptions{})
	restored, err := reg2.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "tmp" {
		t.Fatalf("restored %v, want only the recreated empty session", restored)
	}
	s2, _ := reg2.Get("tmp")
	if s2.Vertices() != 0 {
		t.Fatalf("deleted session's events came back: %d vertices", s2.Vertices())
	}
}

// TestDurableShardsRoundTrip checks a session's configured shard
// count survives restart: session.json records it, and Restore
// rebuilds the store with it rather than the registry default.
func TestDurableShardsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, _ := genEvents(t, g, 100, 4)

	reg := durableReg(t, dir, DurableOptions{})
	s, err := reg.Create("tuned", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 40)
	reg.Close()

	reg2 := durableReg(t, dir, DurableOptions{})
	reg2.SetDefaultShards(2) // must NOT win over the persisted count
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("tuned")
	if got := len(s2.Stats().Shards); got != 64 {
		t.Fatalf("restored session has %d shards, want the persisted 64", got)
	}
}

// TestDurableDeleteRacesIngestAndQueries deletes a durable session
// while a writer streams batches into it and readers query it (run
// with -race). Delete closes the WAL, so the writer's ingest is
// allowed to start failing with ErrDurability at any point after the
// delete — but must never fail before it, never crash, and the
// already-published prefix must stay queryable. The data directory
// must be gone when Delete returns and the name immediately reusable.
func TestDurableDeleteRacesIngestAndQueries(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, r := genEvents(t, g, 1500, 37)

	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 64})
	s, err := reg.Create("doomed", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}

	const batch = 32
	watermark := new(atomic.Int64)
	deleteAsked := new(atomic.Bool)
	deleted := make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: streams until done or the delete poisons ingest
		defer wg.Done()
		defer close(done)
		for lo := 0; lo < len(events); lo += batch {
			hi := min(lo+batch, len(events))
			n, err := s.Append(events[lo:hi])
			if err != nil {
				if !deleteAsked.Load() {
					t.Errorf("append failed before the delete: %v", err)
				} else if !errors.Is(err, ErrDurability) {
					t.Errorf("append after delete failed with %v, want ErrDurability", err)
				}
				watermark.Add(int64(n))
				return
			}
			watermark.Store(int64(hi))
		}
	}()

	for ri := 0; ri < 3; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 300; q++ {
				wm := watermark.Load()
				if wm < 2 {
					q--
					continue
				}
				v := events[rng.Int63n(wm)].V
				w := events[rng.Int63n(wm)].V
				got, err := s.Reach(v, w)
				if err != nil {
					t.Errorf("reach(%d,%d): %v", v, w, err)
					return
				}
				if want := r.Graph.Reaches(v, w); got != want {
					t.Errorf("reach(%d,%d)=%v, want %v", v, w, got, want)
					return
				}
			}
		}(int64(ri))
	}

	wg.Add(1)
	go func() { // deleter: fires mid-stream
		defer wg.Done()
		defer close(deleted)
		for watermark.Load() < 5*batch {
			select {
			case <-done:
				return
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
		deleteAsked.Store(true)
		if !reg.Delete("doomed") {
			t.Error("Delete(doomed) = false")
		}
	}()

	<-deleted
	// The on-disk state is gone and the name reusable the moment Delete
	// returns, even while the detached session object may still be
	// ingesting or failing over to ErrDurability.
	if _, err := os.Stat(filepath.Join(dir, "doomed")); !os.IsNotExist(err) {
		t.Errorf("session directory survived delete: %v", err)
	}
	if _, err := reg.Create("doomed", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}); err != nil {
		t.Fatalf("recreate during in-flight ingest: %v", err)
	}
	<-done
	wg.Wait()

	// The deleted session is not resurrected by Restore; only the
	// recreated (empty) one comes back.
	reg.Close()
	reg2 := durableReg(t, dir, DurableOptions{})
	restored, err := reg2.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "doomed" {
		t.Fatalf("restored %v, want only the recreated session", restored)
	}
	s2, _ := reg2.Get("doomed")
	if s2.Vertices() != 0 {
		t.Fatalf("deleted session's events came back: %d vertices", s2.Vertices())
	}
}

// TestMemoryRegistryRestoreIsReadOnly restores a data directory into a
// memory-only registry and checks no file is modified even when the
// WAL has a corrupt tail.
func TestMemoryRegistryRestoreIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, r := genEvents(t, g, 120, 9)
	reg := durableReg(t, dir, DurableOptions{})
	s, err := reg.Create("ro", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 40)
	reg.Close()

	walPath := filepath.Join(dir, "ro", walFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{}, raw[:len(raw)-5]...)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	mem := NewRegistry()
	if _, err := mem.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := mem.Get("ro")
	if s2.Stats().Durable {
		t.Fatal("memory-restored session claims durability")
	}
	n := int(s2.Vertices())
	checkOracle(t, s2, events, r, n)

	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, torn) {
		t.Fatal("memory-only restore modified the WAL")
	}
}
