package service

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wfreach/internal/api"
	"wfreach/internal/gen"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
	"wfreach/internal/wfxml"
)

// newDurableTestServer builds a durable registry over a temp dir and
// serves it, returning both.
func newDurableTestServer(t testing.TB) (*Registry, string, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	reg, err := NewDurableRegistry(DurableOptions{Dir: dir, Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = reg.Close() })
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return reg, dir, srv
}

// ingestGenerated creates a durable session and ingests a generated
// run, returning the events.
func ingestGenerated(t testing.TB, reg *Registry, name string, size int, seed int64) int {
	t.Helper()
	g := spec.MustCompile(wfspecs.RunningExample())
	s, err := reg.Create(name, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(events); err != nil {
		t.Fatal(err)
	}
	return len(events)
}

// TestHTTPWALTail checks the tail endpoint ships the session's WAL
// byte-identically: the concatenated shipped frames equal the on-disk
// log, sequences are contiguous, and ?from= resumes mid-log.
func TestHTTPWALTail(t *testing.T) {
	reg, dir, srv := newDurableTestServer(t)
	n := ingestGenerated(t, reg, "tail", 200, 7)

	resp, err := http.Get(srv.URL + "/v1/sessions/tail/wal?wait=false")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != api.ContentTypeWAL {
		t.Fatalf("tail: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	tr := api.NewTailReader(resp.Body)
	var shipped []byte
	var last int64
	for {
		e, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != last+1 {
			t.Fatalf("sequence jumped %d -> %d", last, e.Seq)
		}
		last = e.Seq
		shipped = append(shipped, e.Frame...)
	}
	if last != int64(n) {
		t.Fatalf("shipped %d records, ingested %d", last, n)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "tail", "events.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if string(shipped) != string(onDisk) {
		t.Fatalf("shipped frames (%d bytes) are not the WAL's bytes (%d bytes)", len(shipped), len(onDisk))
	}

	// Resume mid-log.
	resp2, err := http.Get(srv.URL + "/v1/sessions/tail/wal?wait=false&from=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tr2 := api.NewTailReader(resp2.Body)
	e, err := tr2.Next()
	if err != nil || e.Seq != 5 {
		t.Fatalf("from=5 first entry seq %d, err %v", e.Seq, err)
	}
}

// TestHTTPWALTailErrors covers the tail endpoint's typed failures.
func TestHTTPWALTailErrors(t *testing.T) {
	// Memory sessions cannot be tailed.
	mem := httptest.NewServer(NewHandler(NewRegistry()))
	defer mem.Close()
	if code, raw := doJSON(t, "POST", mem.URL+"/v1/sessions",
		CreateRequest{Name: "m", Builtin: "RunningExample"}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	resp, err := http.Get(mem.URL + "/v1/sessions/m/wal")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), string(api.CodeNotDurable)) {
		t.Fatalf("memory tail: %d %s", resp.StatusCode, raw)
	}

	reg, _, srv := newDurableTestServer(t)
	ingestGenerated(t, reg, "s", 50, 1)
	for _, bad := range []string{"?from=0", "?from=x", "?wait=maybe"} {
		resp, err := http.Get(srv.URL + "/v1/sessions/s/wal" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tail%s: %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err = http.Get(srv.URL + "/v1/sessions/nosuch/wal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tail of unknown session: %d", resp.StatusCode)
	}
}

// TestHTTPFollowerReadOnly checks follower mode rejects every write
// with a structured read_only error naming the primary, while reads
// and tails keep working.
func TestHTTPFollowerReadOnly(t *testing.T) {
	reg, _, srv := newDurableTestServer(t)
	ingestGenerated(t, reg, "ro", 100, 3)
	const primary = "http://primary.example:8080"
	reg.SetFollower(primary)

	// Writes: create, ingest, delete.
	code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "x", Builtin: "RunningExample"}, nil)
	if code != http.StatusMisdirectedRequest || !strings.Contains(raw, string(api.CodeReadOnly)) || !strings.Contains(raw, primary) {
		t.Fatalf("follower create: %d %s", code, raw)
	}
	code, raw = doJSON(t, "POST", srv.URL+"/v1/sessions/ro/events", api.EventsRequest{}, nil)
	if code != http.StatusMisdirectedRequest || !strings.Contains(raw, primary) {
		t.Fatalf("follower ingest: %d %s", code, raw)
	}
	code, raw = doJSON(t, "DELETE", srv.URL+"/v1/sessions/ro", nil, nil)
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("follower delete: %d %s", code, raw)
	}
	if _, ok := reg.Get("ro"); !ok {
		t.Fatal("read-only delete actually deleted the session")
	}

	// Reads still serve.
	var st Stats
	if code, raw := doJSON(t, "GET", srv.URL+"/v1/sessions/ro", nil, &st); code != http.StatusOK || st.Vertices == 0 {
		t.Fatalf("follower stats: %d %s", code, raw)
	}
	resp, err := http.Get(srv.URL + "/v1/sessions/ro/wal?wait=false")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower tail (chained replication): %d", resp.StatusCode)
	}

	// Promote clears the gate.
	reg.Promote()
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/sessions", CreateRequest{Name: "x", Builtin: "RunningExample"}, nil); code != http.StatusCreated {
		t.Fatalf("post-promote create: %d %s", code, raw)
	}
}

// TestHTTPReplicationStatusAndPromote covers the default (primary)
// status shape and the promote endpoint's not-a-follower conflict.
func TestHTTPReplicationStatusAndPromote(t *testing.T) {
	reg, _, srv := newDurableTestServer(t)
	n := ingestGenerated(t, reg, "st", 120, 5)

	var status api.ReplicationStatus
	if code, raw := doJSON(t, "GET", srv.URL+"/v1/replication/status", nil, &status); code != http.StatusOK {
		t.Fatalf("status: %d %s", code, raw)
	}
	if status.Role != api.RolePrimary || len(status.Sessions) != 1 {
		t.Fatalf("status = %+v", status)
	}
	if s := status.Sessions[0]; s.Name != "st" || s.WALSeq != int64(n) || !s.Durable {
		t.Fatalf("session status = %+v, want WALSeq %d", s, n)
	}

	// Promote is idempotent: on a server that is already writable it
	// changes nothing and answers the current status.
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/replication/promote", nil, &status); code != http.StatusOK ||
		status.Role != api.RolePrimary {
		t.Fatalf("promote a primary: %d %s", code, raw)
	}

	// Follower without hooks: status is honest about the role, promote
	// flips the registry.
	reg.SetFollower("http://p.example")
	if code, _ := doJSON(t, "GET", srv.URL+"/v1/replication/status", nil, &status); code != http.StatusOK {
		t.Fatal("follower status")
	}
	if status.Role != api.RoleFollower || status.Primary != "http://p.example" {
		t.Fatalf("follower status = %+v", status)
	}
	if code, raw := doJSON(t, "POST", srv.URL+"/v1/replication/promote", nil, &status); code != http.StatusOK || status.Role != api.RolePrimary {
		t.Fatalf("promote: %d %s", code, raw)
	}
}

// TestHTTPSessionSpec checks the spec endpoint round-trips the
// session's specification.
func TestHTTPSessionSpec(t *testing.T) {
	reg, _, srv := newDurableTestServer(t)
	ingestGenerated(t, reg, "sp", 30, 2)
	resp, err := http.Get(srv.URL + "/v1/sessions/sp/spec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != api.ContentTypeXML {
		t.Fatalf("spec: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	sp, err := wfxml.DecodeSpec(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Compile(sp); err != nil {
		t.Fatalf("served spec does not compile: %v", err)
	}
}

// TestHTTPPromoteIdempotent checks POST /v1/replication/promote is
// safe to re-POST: a server that is already writable (never a
// follower, or promoted by an earlier call) answers 200 with its
// current status instead of failing the retry — exactly what blind
// failover tooling needs.
func TestHTTPPromoteIdempotent(t *testing.T) {
	// A registry marked follower with no replica hooks: promote flips
	// it writable; promoting again (and again) stays 200/primary.
	reg := NewRegistry()
	reg.SetFollower("http://dead-primary:9999")
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	for i := 0; i < 3; i++ {
		var st api.ReplicationStatus
		if code, raw := doJSON(t, "POST", srv.URL+"/v1/replication/promote", nil, &st); code != http.StatusOK {
			t.Fatalf("promote #%d: %d %s", i+1, code, raw)
		} else if st.Role != api.RolePrimary {
			t.Fatalf("promote #%d: role %q, want primary", i+1, st.Role)
		}
	}
	if _, ok := reg.FollowerPrimary(); ok {
		t.Fatal("registry still in follower mode after promote")
	}

	// A plain primary that was never a follower: promote is a no-op,
	// not an error.
	plain := httptest.NewServer(NewHandler(NewRegistry()))
	defer plain.Close()
	var st api.ReplicationStatus
	if code, raw := doJSON(t, "POST", plain.URL+"/v1/replication/promote", nil, &st); code != http.StatusOK || st.Role != api.RolePrimary {
		t.Fatalf("promote on plain primary: %d %s (role %q)", code, raw, st.Role)
	}
}
