package service

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func compileBuiltin(t testing.TB, name string) *spec.Grammar {
	t.Helper()
	s, ok := Builtin(name)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	g, err := spec.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func toNamed(r *run.Run, ev run.Event) core.NamedEvent {
	return core.NamedEvent{V: ev.V, Name: r.NameOf(ev.V), Preds: ev.Preds}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	g := compileBuiltin(t, "BioAID")
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}

	if _, err := reg.Create("", g, cfg); err == nil {
		t.Fatal("empty name accepted")
	}
	s, err := reg.Create("a", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("a", g, cfg); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := reg.Create("b", g, cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names() = %v", got)
	}
	if got, ok := reg.Get("a"); !ok || got != s {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if !reg.Delete("a") || reg.Delete("a") {
		t.Fatal("Delete semantics wrong")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len() = %d", reg.Len())
	}
}

func TestSessionIngestAndQuery(t *testing.T) {
	g := compileBuiltin(t, "BioAID")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 600, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	s, err := reg.Create("run1", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}

	// Querying before any ingest is an error, not a false.
	if _, err := s.Reach(events[0].V, events[1].V); err == nil {
		t.Fatal("query on empty session succeeded")
	}

	n, err := s.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) || s.Vertices() != int64(len(events)) {
		t.Fatalf("applied %d of %d, vertices=%d", n, len(events), s.Vertices())
	}

	// Every pair agrees with ground truth on a sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := events[rng.Intn(len(events))].V
		w := events[rng.Intn(len(events))].V
		got, err := s.Reach(v, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Graph.Reaches(v, w); got != want {
			t.Fatalf("Reach(%d,%d) = %v, oracle %v", v, w, got, want)
		}
	}

	st := s.Stats()
	if st.Vertices != int64(len(events)) || st.Batches != 1 || st.LabelBits == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Class != "linear-recursive" || st.Skeleton != "TCL" {
		t.Fatalf("stats = %+v", st)
	}

	// Lineage of the sink contains the source.
	last := events[len(events)-1].V
	anc, err := s.Lineage(last)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range anc {
		if v == events[0].V {
			found = true
		}
		if !r.Graph.Reaches(v, last) {
			t.Fatalf("lineage vertex %d does not reach %d", v, last)
		}
	}
	if !found {
		t.Fatal("source missing from sink lineage")
	}
}

func TestSessionPartialBatch(t *testing.T) {
	g := compileBuiltin(t, "BioAID")
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	s, _ := reg.Create("p", g, Config{})

	// Corrupt the stream mid-batch: an unknown predecessor.
	bad := make([]run.Event, len(events))
	copy(bad, events)
	k := len(bad) / 2
	bad[k].Preds = []graph.VertexID{9999}
	n, err := s.Append(bad)
	if err == nil {
		t.Fatal("corrupt batch accepted")
	}
	if n != k {
		t.Fatalf("applied %d, want %d", n, k)
	}
	// The valid prefix is ingested and queryable.
	if s.Vertices() != int64(k) {
		t.Fatalf("vertices = %d, want %d", s.Vertices(), k)
	}
	if _, err := s.Reach(events[0].V, events[k-1].V); err != nil {
		t.Fatal(err)
	}
	// The rest of the original stream still applies cleanly.
	if _, err := s.Append(events[k:]); err != nil {
		t.Fatal(err)
	}
	if s.Vertices() != int64(len(events)) {
		t.Fatalf("vertices = %d, want %d", s.Vertices(), len(events))
	}
}

func TestSessionNamedIngest(t *testing.T) {
	// The running example satisfies the naming restrictions.
	g := compileBuiltin(t, "RunningExample")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	named := make([]core.NamedEvent, len(events))
	for i, ev := range events {
		named[i] = core.NamedEvent{V: ev.V, Name: r.NameOf(ev.V), Preds: ev.Preds}
	}
	reg := NewRegistry()
	s, _ := reg.Create("n", g, Config{})
	if _, err := s.AppendNamed(named); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		v := events[rng.Intn(len(events))].V
		w := events[rng.Intn(len(events))].V
		got, err := s.Reach(v, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Graph.Reaches(v, w); got != want {
			t.Fatalf("Reach(%d,%d) = %v, oracle %v", v, w, got, want)
		}
	}
}

// TestConcurrentIngestQuery is the concurrency contract test: one
// writer goroutine per session streams events in batches while many
// readers issue reachability queries over the completed prefix,
// asserting every answer matches the BFS ground-truth oracle. Because
// events arrive in topological order, all ancestors of an inserted
// vertex are already inserted, so prefix reachability equals
// final-graph reachability. Run with -race.
func TestConcurrentIngestQuery(t *testing.T) {
	const (
		sessions = 3
		readers  = 4
		batch    = 64
	)
	g := compileBuiltin(t, "BioAID")

	reg := NewRegistry()
	var wg sync.WaitGroup
	queries := new(atomic.Int64)
	for si := 0; si < sessions; si++ {
		events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 2000, Seed: int64(100 + si)})
		if err != nil {
			t.Fatal(err)
		}
		s, err := reg.Create(string(rune('a'+si)), g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
		if err != nil {
			t.Fatal(err)
		}
		watermark := new(atomic.Int64) // events ingested so far
		done := make(chan struct{})

		wg.Add(1)
		go func() { // single writer for this session
			defer wg.Done()
			defer close(done)
			for i := 0; i < len(events); i += batch {
				end := min(i+batch, len(events))
				if _, err := s.Append(events[i:end]); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				watermark.Store(int64(end))
			}
		}()

		for ri := 0; ri < readers; ri++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				// A fixed quota keeps readers querying after ingest
				// completes (the full prefix is still a valid prefix), so
				// the test verifies answers whether or not it wins the
				// race against the writer.
				for q := 0; q < 250; q++ {
					wm := watermark.Load()
					if wm < 2 {
						q--
						continue
					}
					v := events[rng.Int63n(wm)].V
					w := events[rng.Int63n(wm)].V
					got, err := s.Reach(v, w)
					if err != nil {
						t.Errorf("reach(%d,%d): %v", v, w, err)
						return
					}
					if want := r.Graph.Reaches(v, w); got != want {
						t.Errorf("reach(%d,%d) = %v, oracle %v", v, w, got, want)
						return
					}
					queries.Add(1)
				}
			}(int64(si*readers + ri))
		}
	}
	wg.Wait()
	if queries.Load() == 0 {
		t.Fatal("no concurrent queries executed")
	}
	t.Logf("%d concurrent queries verified against the oracle", queries.Load())
}

func TestBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok || s == nil {
			t.Fatalf("builtin %q missing", name)
		}
		if _, err := spec.Compile(s); err != nil {
			t.Fatalf("builtin %q does not compile: %v", name, err)
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Fatal("unknown builtin resolved")
	}
	// Builtins mirror wfspecs.
	if Builtin2, _ := Builtin("BioAID"); Builtin2.String() != wfspecs.BioAID().String() {
		t.Fatal("BioAID builtin diverges from wfspecs")
	}
}
