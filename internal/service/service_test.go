package service

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func compileBuiltin(t testing.TB, name string) *spec.Grammar {
	t.Helper()
	s, ok := Builtin(name)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	g, err := spec.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func toNamed(r *run.Run, ev run.Event) core.NamedEvent {
	return core.NamedEvent{V: ev.V, Name: r.NameOf(ev.V), Preds: ev.Preds}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	g := compileBuiltin(t, "BioAID")
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}

	if _, err := reg.Create("", g, cfg); err == nil {
		t.Fatal("empty name accepted")
	}
	s, err := reg.Create("a", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("a", g, cfg); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := reg.Create("b", g, cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names() = %v", got)
	}
	if got, ok := reg.Get("a"); !ok || got != s {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if !reg.Delete("a") || reg.Delete("a") {
		t.Fatal("Delete semantics wrong")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len() = %d", reg.Len())
	}
}

func TestSessionIngestAndQuery(t *testing.T) {
	g := compileBuiltin(t, "BioAID")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 600, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	s, err := reg.Create("run1", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}

	// Querying before any ingest is an error, not a false.
	if _, err := s.Reach(events[0].V, events[1].V); err == nil {
		t.Fatal("query on empty session succeeded")
	}

	n, err := s.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) || s.Vertices() != int64(len(events)) {
		t.Fatalf("applied %d of %d, vertices=%d", n, len(events), s.Vertices())
	}

	// Every pair agrees with ground truth on a sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := events[rng.Intn(len(events))].V
		w := events[rng.Intn(len(events))].V
		got, err := s.Reach(v, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Graph.Reaches(v, w); got != want {
			t.Fatalf("Reach(%d,%d) = %v, oracle %v", v, w, got, want)
		}
	}

	st := s.Stats()
	if st.Vertices != int64(len(events)) || st.Batches != 1 || st.LabelBits == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Class != "linear-recursive" || st.Skeleton != "TCL" {
		t.Fatalf("stats = %+v", st)
	}

	// Lineage of the sink contains the source.
	last := events[len(events)-1].V
	anc, err := s.Lineage(last)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range anc {
		if v == events[0].V {
			found = true
		}
		if !r.Graph.Reaches(v, last) {
			t.Fatalf("lineage vertex %d does not reach %d", v, last)
		}
	}
	if !found {
		t.Fatal("source missing from sink lineage")
	}
}

func TestSessionPartialBatch(t *testing.T) {
	g := compileBuiltin(t, "BioAID")
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	s, _ := reg.Create("p", g, Config{})

	// Corrupt the stream mid-batch: an unknown predecessor.
	bad := make([]run.Event, len(events))
	copy(bad, events)
	k := len(bad) / 2
	bad[k].Preds = []graph.VertexID{9999}
	n, err := s.Append(bad)
	if err == nil {
		t.Fatal("corrupt batch accepted")
	}
	if n != k {
		t.Fatalf("applied %d, want %d", n, k)
	}
	// The valid prefix is ingested and queryable.
	if s.Vertices() != int64(k) {
		t.Fatalf("vertices = %d, want %d", s.Vertices(), k)
	}
	if _, err := s.Reach(events[0].V, events[k-1].V); err != nil {
		t.Fatal(err)
	}
	// The rest of the original stream still applies cleanly.
	if _, err := s.Append(events[k:]); err != nil {
		t.Fatal(err)
	}
	if s.Vertices() != int64(len(events)) {
		t.Fatalf("vertices = %d, want %d", s.Vertices(), len(events))
	}
}

func TestSessionNamedIngest(t *testing.T) {
	// The running example satisfies the naming restrictions.
	g := compileBuiltin(t, "RunningExample")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	named := make([]core.NamedEvent, len(events))
	for i, ev := range events {
		named[i] = core.NamedEvent{V: ev.V, Name: r.NameOf(ev.V), Preds: ev.Preds}
	}
	reg := NewRegistry()
	s, _ := reg.Create("n", g, Config{})
	if _, err := s.AppendNamed(named); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		v := events[rng.Intn(len(events))].V
		w := events[rng.Intn(len(events))].V
		got, err := s.Reach(v, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Graph.Reaches(v, w); got != want {
			t.Fatalf("Reach(%d,%d) = %v, oracle %v", v, w, got, want)
		}
	}
}

// TestConcurrentIngestQuery is the concurrency contract test: one
// writer goroutine per session streams events in batches while many
// readers issue reachability queries over the completed prefix,
// asserting every answer matches the BFS ground-truth oracle. Because
// events arrive in topological order, all ancestors of an inserted
// vertex are already inserted, so prefix reachability equals
// final-graph reachability. Run with -race.
func TestConcurrentIngestQuery(t *testing.T) {
	const (
		sessions = 3
		readers  = 4
		batch    = 64
	)
	g := compileBuiltin(t, "BioAID")

	reg := NewRegistry()
	var wg sync.WaitGroup
	queries := new(atomic.Int64)
	for si := 0; si < sessions; si++ {
		events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 2000, Seed: int64(100 + si)})
		if err != nil {
			t.Fatal(err)
		}
		s, err := reg.Create(string(rune('a'+si)), g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
		if err != nil {
			t.Fatal(err)
		}
		watermark := new(atomic.Int64) // events ingested so far
		done := make(chan struct{})

		wg.Add(1)
		go func() { // single writer for this session
			defer wg.Done()
			defer close(done)
			for i := 0; i < len(events); i += batch {
				end := min(i+batch, len(events))
				if _, err := s.Append(events[i:end]); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				watermark.Store(int64(end))
			}
		}()

		for ri := 0; ri < readers; ri++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				// A fixed quota keeps readers querying after ingest
				// completes (the full prefix is still a valid prefix), so
				// the test verifies answers whether or not it wins the
				// race against the writer.
				for q := 0; q < 250; q++ {
					wm := watermark.Load()
					if wm < 2 {
						q--
						continue
					}
					v := events[rng.Int63n(wm)].V
					w := events[rng.Int63n(wm)].V
					got, err := s.Reach(v, w)
					if err != nil {
						t.Errorf("reach(%d,%d): %v", v, w, err)
						return
					}
					if want := r.Graph.Reaches(v, w); got != want {
						t.Errorf("reach(%d,%d) = %v, oracle %v", v, w, got, want)
						return
					}
					queries.Add(1)
				}
			}(int64(si*readers + ri))
		}
	}
	wg.Wait()
	if queries.Load() == 0 {
		t.Fatal("no concurrent queries executed")
	}
	t.Logf("%d concurrent queries verified against the oracle", queries.Load())
}

// TestStatsShards checks the per-shard stats surface: the configured
// shard count is honored, shard counts sum to the vertex total, and
// the publish epoch tracks batches.
func TestStatsShards(t *testing.T) {
	g := compileBuiltin(t, "BioAID")
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 400, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	s, err := reg.Create("sh", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 100
	for lo := 0; lo < len(events); lo += batch {
		hi := min(lo+batch, len(events))
		if _, err := s.Append(events[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("stats report %d shards, want 4", len(st.Shards))
	}
	sum := 0
	for _, sh := range st.Shards {
		sum += sh.Vertices
	}
	if int64(sum) != st.Vertices || st.Vertices != int64(len(events)) {
		t.Fatalf("shard counts sum to %d, vertices %d, events %d", sum, st.Vertices, len(events))
	}
	if want := int64((len(events) + batch - 1) / batch); st.PublishEpoch != want {
		t.Fatalf("publish epoch %d, want %d (one per batch)", st.PublishEpoch, want)
	}

	// The registry default applies when the config leaves Shards zero.
	reg.SetDefaultShards(2)
	s2, err := reg.Create("sh2", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Stats().Shards); got != 2 {
		t.Fatalf("default shard count not applied: %d shards", got)
	}
}

// TestDeleteRacesIngestAndQueries deletes a session while a writer is
// streaming batches into it and readers are querying it (run with
// -race). In-flight operations must finish normally — the session just
// stops being reachable by name — and the name must be reusable
// immediately.
func TestDeleteRacesIngestAndQueries(t *testing.T) {
	g := compileBuiltin(t, "BioAID")
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 1500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	s, err := reg.Create("doomed", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}

	const batch = 32
	watermark := new(atomic.Int64)
	deleted := make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: keeps appending straight through the delete
		defer wg.Done()
		defer close(done)
		for lo := 0; lo < len(events); lo += batch {
			hi := min(lo+batch, len(events))
			if _, err := s.Append(events[lo:hi]); err != nil {
				t.Errorf("append after delete must still work (memory session): %v", err)
				return
			}
			watermark.Store(int64(hi))
		}
	}()

	for ri := 0; ri < 3; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 300; q++ {
				wm := watermark.Load()
				if wm < 2 {
					q--
					continue
				}
				v := events[rng.Int63n(wm)].V
				w := events[rng.Int63n(wm)].V
				got, err := s.Reach(v, w)
				if err != nil {
					t.Errorf("reach(%d,%d): %v", v, w, err)
					return
				}
				if want := r.Graph.Reaches(v, w); got != want {
					t.Errorf("reach(%d,%d)=%v, want %v", v, w, got, want)
					return
				}
			}
		}(int64(ri))
	}

	wg.Add(1)
	go func() { // deleter: fires mid-stream
		defer wg.Done()
		defer close(deleted)
		for watermark.Load() < 5*batch {
			select {
			case <-done:
				return // the writer died early; the test already failed
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
		if !reg.Delete("doomed") {
			t.Error("Delete(doomed) = false")
		}
	}()

	<-deleted
	// The name is free for reuse the moment Delete returns, while the
	// old session object is still ingesting.
	if _, err := reg.Create("doomed", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}); err != nil {
		t.Fatalf("recreate during in-flight ingest: %v", err)
	}
	<-done
	wg.Wait()
	if s.Vertices() != int64(len(events)) {
		t.Fatalf("detached session lost events: %d of %d", s.Vertices(), len(events))
	}
}

func TestBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok || s == nil {
			t.Fatalf("builtin %q missing", name)
		}
		if _, err := spec.Compile(s); err != nil {
			t.Fatalf("builtin %q does not compile: %v", name, err)
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Fatal("unknown builtin resolved")
	}
	// Builtins mirror wfspecs.
	if Builtin2, _ := Builtin("BioAID"); Builtin2.String() != wfspecs.BioAID().String() {
		t.Fatal("BioAID builtin diverges from wfspecs")
	}
}
