package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"wfreach/internal/api"
	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wal"
	"wfreach/internal/wfxml"
)

// The HTTP surface, one resource per session. Wire types, error codes
// and the binary ingest frame all live in internal/api — this file
// only maps them onto sessions. The versioned routes:
//
//	POST   /v1/sessions                   create (JSON body, or raw spec XML)
//	GET    /v1/sessions                   list sessions with stats
//	GET    /v1/sessions/{name}            stats
//	GET    /v1/sessions/{name}/stats      stats
//	DELETE /v1/sessions/{name}            delete
//	POST   /v1/sessions/{name}/events     ingest: JSON batch, or binary frame stream
//	POST   /v1/sessions/{name}/reach      batch reachability
//	GET    /v1/sessions/{name}/reach      ?from=V&to=W (deprecated: one pair per roundtrip)
//	GET    /v1/sessions/{name}/lineage    ?of=V&cursor=&limit= (paginated)
//	GET    /v1/sessions/{name}/spec       the session's specification XML
//	GET    /v1/sessions/{name}/integrity  tamper-evidence anchors (chain head, Merkle root)
//	GET    /v1/sessions/{name}/wal        ?from=S&wait= — tail the WAL (replication)
//	GET    /v1/replication/status         replication role and per-session progress
//	POST   /v1/replication/promote        follower → writable primary
//	GET    /v1/metrics                    Prometheus text exposition (internal/obs)
//	GET    /v1/cluster/map                the cluster placement map (cluster mode)
//	GET    /v1/cluster/health             node role, WAL seqs, peer probes
//	POST   /v1/cluster/move               move a session to another node
//	POST   /v1/cluster/release            owner-side move handoff (internal)
//
// The same paths without the /v1 prefix (replication endpoints
// excepted) are served as deprecated legacy adapters over the
// identical handlers (docs/API.md carries the migration table). A
// known path hit with the wrong method is a 405 with an Allow header;
// an unknown path is a structured 404.
//
// On a follower (Registry.SetFollower) the write routes — create,
// delete, ingest — answer CodeReadOnly with the primary's base URL in
// the error detail; everything else, including WAL tails (chained
// replication), keeps working.
//
// In cluster mode (Registry.SetClusterHooks) every session route is
// additionally gated by placement: a session this node does not own is
// rejected with CodeWrongNode (no local copy) or CodeReadOnly (a moved
// session's retained copy — writes only) carrying the owner's base URL
// in the error detail. Without cluster hooks the /v1/cluster routes
// answer CodeNotClustered.
//
// Create accepts either a JSON body (CreateRequest: a built-in spec
// name or an inline spec XML string) or a raw XML specification with
// Content-Type application/xml and the session options in query
// parameters (?name=...&skeleton=TCL&rmode=designated&shards=16).

// Aliases for the wire types this handler serves, so existing callers
// of the service package keep compiling; the definitions live in
// internal/api.
type (
	// WireEvent is the JSON form of one execution event.
	WireEvent = api.Event
	// CreateRequest is the JSON body of POST /v1/sessions.
	CreateRequest = api.CreateSessionRequest
	// EventsRequest is the JSON body of POST /v1/sessions/{name}/events.
	EventsRequest = api.EventsRequest
	// EventsResponse reports how far an ingest batch got.
	EventsResponse = api.EventsResponse
	// ReachResponse answers one reachability query.
	ReachResponse = api.ReachAnswer
	// LineageResponse lists (one page of) the provenance closure of a
	// vertex.
	LineageResponse = api.LineageResponse
	// ListResponse lists sessions.
	ListResponse = api.ListSessionsResponse
)

// ToWire converts a run event to its wire form.
func ToWire(ev run.Event) WireEvent { return api.FromRun(ev) }

// ToWireNamed converts a named event to its wire form.
func ToWireNamed(ev core.NamedEvent) WireEvent { return api.FromNamed(ev) }

// NewHandler returns the HTTP handler serving the registry.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	// rejectFollower guards a write route: on a follower every write is
	// misdirected, and the structured rejection names the primary so
	// the client can redirect (the SDK does so automatically).
	rejectFollower := func(w http.ResponseWriter) bool {
		primary, ok := reg.FollowerPrimary()
		if !ok {
			return false
		}
		writeError(w, api.Errorf(api.CodeReadOnly, "server is a read-only follower; send writes to the primary").
			WithDetail("%s", primary))
		return true
	}
	routes := []struct {
		path    string
		legacy  bool // also serve the unversioned path (deprecated)
		methods map[string]http.HandlerFunc
	}{
		{"/sessions", true, map[string]http.HandlerFunc{
			http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
				if rejectFollower(w) {
					return
				}
				handleCreate(reg, w, r)
			},
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) { handleList(reg, w) },
		}},
		{"/sessions/{name}", true, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					writeJSON(w, http.StatusOK, s.Stats())
				}
			},
			http.MethodDelete: func(w http.ResponseWriter, r *http.Request) {
				if rejectFollower(w) {
					return
				}
				name := r.PathValue("name")
				if clusterReject(reg, w, name, true) {
					return
				}
				if !reg.Delete(name) {
					writeError(w, api.Errorf(api.CodeSessionNotFound, "no session %q", name))
					return
				}
				if h := reg.Cluster(); h != nil && h.Forget != nil {
					// The name is free again; a recreate places by hash.
					h.Forget(name)
				}
				w.WriteHeader(http.StatusNoContent)
			},
		}},
		{"/sessions/{name}/stats", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					writeJSON(w, http.StatusOK, s.Stats())
				}
			},
		}},
		{"/sessions/{name}/integrity", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					st, err := s.Integrity()
					if err != nil {
						writeError(w, err)
						return
					}
					writeJSON(w, http.StatusOK, st)
				}
			},
		}},
		{"/sessions/{name}/spec", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					handleSpec(s, w)
				}
			},
		}},
		{"/sessions/{name}/wal", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					handleWALTail(s, w, r)
				}
			},
		}},
		{"/metrics", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				reg.Obs().ServeHTTP(w, r)
			},
		}},
		{"/replication/status", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				writeJSON(w, http.StatusOK, reg.ReplicationStatus())
			},
		}},
		{"/replication/promote", false, map[string]http.HandlerFunc{
			http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
				if err := reg.PromoteFollower(r.Context()); err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, reg.ReplicationStatus())
			},
		}},
		{"/cluster/map", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if h := clusterHooks(reg, w); h != nil {
					writeJSON(w, http.StatusOK, h.Map())
				}
			},
		}},
		{"/cluster/health", false, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if h := clusterHooks(reg, w); h != nil {
					writeJSON(w, http.StatusOK, h.Health())
				}
			},
		}},
		{"/cluster/move", false, map[string]http.HandlerFunc{
			http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
				h := clusterHooks(reg, w)
				if h == nil {
					return
				}
				var req api.MoveRequest
				if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
					writeError(w, api.Errorf(api.CodeBadJSON, "bad JSON body: %v", err))
					return
				}
				resp, err := h.Move(r.Context(), req)
				if err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, resp)
			},
		}},
		{"/cluster/release", false, map[string]http.HandlerFunc{
			http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
				h := clusterHooks(reg, w)
				if h == nil {
					return
				}
				var req api.ReleaseRequest
				if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
					writeError(w, api.Errorf(api.CodeBadJSON, "bad JSON body: %v", err))
					return
				}
				resp, err := h.Release(r.Context(), req)
				if err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, http.StatusOK, resp)
			},
		}},
		{"/sessions/{name}/events", true, map[string]http.HandlerFunc{
			http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
				if rejectFollower(w) {
					return
				}
				if clusterReject(reg, w, r.PathValue("name"), true) {
					return
				}
				if s := lookup(reg, w, r); s != nil {
					// Wire-byte accounting at request grain: the body size is
					// what the client actually shipped, JSON or binary.
					if r.ContentLength > 0 {
						s.AddIngestBytes(r.ContentLength)
					}
					handleEvents(s, w, r)
				}
			},
		}},
		{"/sessions/{name}/reach", true, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					handleReach(s, w, r)
				}
			},
			http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					handleReachBatch(s, w, r)
				}
			},
		}},
		{"/sessions/{name}/lineage", true, map[string]http.HandlerFunc{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				if s := lookup(reg, w, r); s != nil {
					handleLineage(s, w, r)
				}
			},
		}},
	}
	for _, rt := range routes {
		h := methodDispatch(rt.methods)
		mux.HandleFunc("/v1"+rt.path, h)
		if rt.legacy {
			// Deprecated: the unversioned PR-1 surface, kept as a thin
			// adapter over the same handlers. New clients use /v1.
			mux.HandleFunc(rt.path, h)
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, api.Errorf(api.CodeNotFound, "no route %s", r.URL.Path))
	})
	return mux
}

// methodDispatch serves one path: the matching method's handler, or a
// structured 405 naming the allowed methods. HEAD rides on GET —
// net/http discards the body it writes.
func methodDispatch(methods map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(methods)+1)
	for m := range methods {
		allowed = append(allowed, m)
	}
	if _, ok := methods[http.MethodGet]; ok {
		allowed = append(allowed, http.MethodHead)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		m := r.Method
		if m == http.MethodHead {
			m = http.MethodGet
		}
		if h, ok := methods[m]; ok {
			h(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		writeError(w, api.Errorf(api.CodeMethodNotAllowed, "method %s not allowed", r.Method).
			WithDetail("allow %s", allow))
	}
}

// clusterHooks returns the installed cluster hooks, answering
// CodeNotClustered when there are none.
func clusterHooks(reg *Registry, w http.ResponseWriter) *ClusterHooks {
	h := reg.Cluster()
	if h == nil {
		writeError(w, api.Errorf(api.CodeNotClustered, "server is not running in cluster mode"))
	}
	return h
}

// clusterReject gates a session route by cluster placement, reporting
// whether a routing rejection was written. Not clustered: no gate.
func clusterReject(reg *Registry, w http.ResponseWriter, session string, write bool) bool {
	h := reg.Cluster()
	if h == nil || h.Route == nil {
		return false
	}
	if err := h.Route(session, write); err != nil {
		writeError(w, err)
		return true
	}
	return false
}

func lookup(reg *Registry, w http.ResponseWriter, r *http.Request) *Session {
	name := r.PathValue("name")
	s, ok := reg.Get(name)
	if !ok {
		// An absent session owned by another node is a routing miss, not
		// a 404 — the rejection names the owner.
		if clusterReject(reg, w, name, false) {
			return nil
		}
		writeError(w, api.Errorf(api.CodeSessionNotFound, "no session %q", name))
		return nil
	}
	return s
}

func handleList(reg *Registry, w http.ResponseWriter) {
	resp := api.ListSessionsResponse{Sessions: []Stats{}}
	for _, name := range reg.Names() {
		if s, ok := reg.Get(name); ok {
			resp.Sessions = append(resp.Sessions, s.Stats())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleCreate(reg *Registry, w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/xml") || strings.HasPrefix(ct, "text/xml") {
		// Raw XML upload: the body is the specification, options travel
		// in query parameters.
		s, err := wfxml.DecodeSpec(r.Body)
		if err != nil {
			writeError(w, api.Errorf(api.CodeBadSpec, "%v", err))
			return
		}
		q := r.URL.Query()
		shards := 0
		if qs := q.Get("shards"); qs != "" {
			n, err := strconv.Atoi(qs)
			if err != nil || n < 0 {
				writeError(w, api.Errorf(api.CodeBadRequest, "shards wants a non-negative integer, got %q", qs))
				return
			}
			shards = n
		}
		createSession(reg, w, q.Get("name"), s, q.Get("skeleton"), q.Get("rmode"), shards)
		return
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, api.Errorf(api.CodeBadJSON, "bad JSON body: %v", err))
		return
	}
	var sp *spec.Spec
	switch {
	case req.Builtin != "" && req.SpecXML != "":
		writeError(w, api.Errorf(api.CodeBadRequest, "builtin and spec_xml are mutually exclusive"))
		return
	case req.Builtin != "":
		var ok bool
		if sp, ok = Builtin(req.Builtin); !ok {
			writeError(w, api.Errorf(api.CodeUnknownBuiltin, "unknown builtin %q", req.Builtin).
				WithDetail("have %s", strings.Join(BuiltinNames(), ", ")))
			return
		}
	case req.SpecXML != "":
		var err error
		if sp, err = wfxml.DecodeSpec(strings.NewReader(req.SpecXML)); err != nil {
			writeError(w, api.Errorf(api.CodeBadSpec, "%v", err))
			return
		}
	default:
		writeError(w, api.Errorf(api.CodeBadRequest, "one of builtin or spec_xml is required"))
		return
	}
	createSession(reg, w, req.Name, sp, req.Skeleton, req.RMode, req.Shards)
}

func createSession(reg *Registry, w http.ResponseWriter, name string, sp *spec.Spec, skelName, modeName string, shards int) {
	if name == "" {
		writeError(w, api.Errorf(api.CodeBadRequest, "session name is required"))
		return
	}
	if shards < 0 {
		writeError(w, api.Errorf(api.CodeBadRequest, "shards must be non-negative, got %d", shards))
		return
	}
	if reg.Durable() {
		// Report unusable names as a client error; Create would reject
		// them anyway, but with a conflict status.
		if err := validateSessionName(name); err != nil {
			writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
	}
	if clusterReject(reg, w, name, true) {
		return
	}
	cfg, err := ParseConfig(skelName, modeName)
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	cfg.Shards = shards
	g, err := spec.Compile(sp)
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadSpec, "%v", err))
		return
	}
	s, err := reg.Create(name, g, cfg)
	if err != nil {
		// Name collisions (including leftover on-disk data) are the
		// client's problem; a registry that cannot persist is not —
		// toAPIError maps ErrDurability to a 5xx.
		if !errors.Is(err, ErrDurability) {
			err = api.Errorf(api.CodeSessionExists, "%v", err)
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.Stats())
}

func ParseConfig(skelName, modeName string) (Config, error) {
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	switch skelName {
	case "", "TCL":
	case "BFS":
		cfg.Skeleton = skeleton.BFS
	default:
		return cfg, fmt.Errorf("unknown skeleton %q (want TCL or BFS)", skelName)
	}
	switch modeName {
	case "", "designated", "designated-R":
	case "none", "no-R":
		cfg.Mode = core.RModeNone
	default:
		return cfg, fmt.Errorf("unknown rmode %q (want designated or none)", modeName)
	}
	return cfg, nil
}

func handleEvents(s *Session, w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), api.ContentTypeFrame) {
		handleEventsBinary(s, w, r)
		return
	}
	var req api.EventsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, api.Errorf(api.CodeBadJSON, "bad JSON body: %v", err))
		return
	}
	recs := make([]wal.Record, len(req.Events))
	for i, ev := range req.Events {
		rec, err := ev.Record()
		if err != nil {
			writeError(w, api.Errorf(api.CodeBadEvent, "event %d: %s", i, api.AsError(err, api.CodeBadEvent).Message))
			return
		}
		recs[i] = rec
	}
	applied, err := s.AppendRecords(recs, nil)
	if err != nil {
		writeIngestError(w, err, applied)
		return
	}
	writeJSON(w, http.StatusOK, api.EventsResponse{Applied: applied, Vertices: s.Vertices()})
}

// handleEventsBinary ingests a ContentTypeFrame body: a concatenation
// of binary event frames (internal/api), applied in order in chunks.
// On a durable session each accepted frame is teed to the write-ahead
// log byte-for-byte — the frame formats are identical, so nothing is
// re-encoded. Like the JSON route, a failure mid-stream leaves the
// applied prefix ingested and reports it.
func handleEventsBinary(s *Session, w http.ResponseWriter, r *http.Request) {
	const chunkSize = 512
	fr := api.NewFrameReader(r.Body)
	recs := make([]wal.Record, 0, chunkSize)
	// Frames are only kept (copied out of the reader's reused buffer)
	// when there is a log to tee them to; a memory session ingests the
	// records alone, copy-free.
	var frames [][]byte
	if s.durable {
		frames = make([][]byte, 0, chunkSize)
	}
	applied := 0
	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		n, err := s.AppendRecords(recs, frames)
		applied += n
		recs = recs[:0]
		if frames != nil {
			frames = frames[:0]
		}
		return err
	}
	for {
		rec, frame, err := fr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// The decoded prefix is a valid partial execution: apply it,
			// then report the damage with the applied count.
			if ferr := flush(); ferr != nil {
				writeIngestError(w, ferr, applied)
				return
			}
			writeErrorApplied(w, api.AsError(err, api.CodeBadFrame), applied)
			return
		}
		recs = append(recs, rec)
		if frames != nil {
			frames = append(frames, append([]byte(nil), frame...))
		}
		if len(recs) >= chunkSize {
			if err := flush(); err != nil {
				writeIngestError(w, err, applied)
				return
			}
		}
	}
	if err := flush(); err != nil {
		writeIngestError(w, err, applied)
		return
	}
	writeJSON(w, http.StatusOK, api.EventsResponse{Applied: applied, Vertices: s.Vertices()})
}

// writeIngestError reports an AppendRecords failure: a poisoned
// durable session is the server's fault, anything else is the event
// at the failing index (== applied, counted over the whole request).
func writeIngestError(w http.ResponseWriter, err error, applied int) {
	if errors.Is(err, ErrDurability) {
		writeErrorApplied(w, err, applied)
		return
	}
	writeErrorApplied(w, api.Errorf(api.CodeBadEvent, "event %d: %v", applied, err), applied)
}

// handleSpec serves the session's specification as XML — what a
// follower needs (together with the stats' labeling configuration) to
// rebuild the session locally before replaying its WAL.
func handleSpec(s *Session, w http.ResponseWriter) {
	w.Header().Set("Content-Type", api.ContentTypeXML)
	_ = wfxml.EncodeSpec(w, s.Grammar().Spec())
}

// handleWALTail streams the session's committed WAL as tail entries
// (sequence number + raw frame; see internal/api). ?from= selects the
// first sequence wanted (default 1); ?wait=false returns the
// committed history and ends, while the default live-tails: the
// response stays open and new entries flow as batches commit, until
// the client disconnects or the log closes. Stream errors after the
// 200 can only be reported by cutting the stream short — the follower
// treats any truncation as a reconnect signal, so nothing is lost.
func handleWALTail(s *Session, w http.ResponseWriter, r *http.Request) {
	from := int64(1)
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n <= 0 {
			writeError(w, api.Errorf(api.CodeBadRequest, "from wants a positive sequence, got %q", q))
			return
		}
		from = n
	}
	wait := true
	if q := r.URL.Query().Get("wait"); q != "" {
		b, err := strconv.ParseBool(q)
		if err != nil {
			writeError(w, api.Errorf(api.CodeBadRequest, "wait wants a boolean, got %q", q))
			return
		}
		wait = b
	}
	tailer, err := s.NewWALTailer(from)
	if err != nil {
		writeError(w, err)
		return
	}
	defer tailer.Close()

	w.Header().Set("Content-Type", api.ContentTypeWAL)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriterSize(w, 64<<10)
	var entry []byte
	for {
		seq, frame, err := tailer.Next(r.Context(), wait)
		if err != nil {
			// io.EOF: caught up (wait=false) or log closed; anything else
			// (context canceled, corruption) also just ends the stream.
			_ = bw.Flush()
			return
		}
		entry = api.AppendTailEntry(entry[:0], seq, frame)
		if _, err := bw.Write(entry); err != nil {
			return // client went away
		}
		if !tailer.Pending() {
			// About to block (or finish): push what we have to the wire so
			// the follower applies it now instead of when the buffer fills.
			if err := bw.Flush(); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func handleReach(s *Session, w http.ResponseWriter, r *http.Request) {
	from, err1 := parseVertex(r.URL.Query().Get("from"))
	to, err2 := parseVertex(r.URL.Query().Get("to"))
	if err1 != nil || err2 != nil {
		writeError(w, api.Errorf(api.CodeBadVertex, "reach wants numeric from and to query params"))
		return
	}
	ok, err := s.Reach(from, to)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ReachAnswer{From: int32(from), To: int32(to), Reachable: ok})
}

func handleReachBatch(s *Session, w http.ResponseWriter, r *http.Request) {
	var req api.BatchReachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, api.Errorf(api.CodeBadJSON, "bad JSON body: %v", err))
		return
	}
	if len(req.Pairs) > api.MaxReachPairs {
		writeError(w, api.Errorf(api.CodeBadRequest, "batch of %d pairs exceeds the %d-pair cap", len(req.Pairs), api.MaxReachPairs))
		return
	}
	writeJSON(w, http.StatusOK, api.BatchReachResponse{Results: s.ReachBatch(req.Pairs)})
}

func handleLineage(s *Session, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	of, perr := parseVertex(q.Get("of"))
	if perr != nil {
		writeError(w, api.Errorf(api.CodeBadVertex, "lineage wants a numeric of query param"))
		return
	}
	cursor, limitStr := q.Get("cursor"), q.Get("limit")
	if cursor == "" && limitStr == "" {
		// Deprecated: the unpaginated full closure in one response.
		anc, err := s.Lineage(of)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, lineageResponse(of, anc, false))
		return
	}
	limit := api.DefaultLineageLimit
	if limitStr != "" {
		n, err := strconv.Atoi(limitStr)
		if err != nil || n <= 0 {
			writeError(w, api.Errorf(api.CodeBadRequest, "limit wants a positive integer, got %q", limitStr))
			return
		}
		limit = min(n, api.MaxLineageLimit)
	}
	after := graph.None
	if cursor != "" {
		v, perr := parseVertex(cursor)
		if perr != nil {
			writeError(w, perr.WithDetail("cursor must be a vertex id from next_cursor"))
			return
		}
		after = v
	}
	page, more, err := s.LineagePage(of, after, limit)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lineageResponse(of, page, more))
}

func lineageResponse(of graph.VertexID, anc []graph.VertexID, more bool) api.LineageResponse {
	resp := api.LineageResponse{Of: int32(of), Ancestors: make([]int32, 0, len(anc))}
	for _, v := range anc {
		resp.Ancestors = append(resp.Ancestors, int32(v))
	}
	if more && len(anc) > 0 {
		resp.NextCursor = strconv.Itoa(int(anc[len(anc)-1]))
	}
	return resp
}

func parseVertex(s string) (graph.VertexID, *api.Error) {
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return graph.None, api.Errorf(api.CodeBadVertex, "vertex id %q is not an integer", s)
	}
	if n < 0 {
		return graph.None, api.Errorf(api.CodeBadVertex, "negative vertex id %d", n)
	}
	return graph.VertexID(n), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// toAPIError maps any handler error onto the structured model: typed
// errors pass through, a poisoned durable session is
// CodeSessionPoisoned, anything else is the client's bad request.
func toAPIError(err error) *api.Error {
	if errors.Is(err, ErrDurability) {
		return &api.Error{Code: api.CodeSessionPoisoned, Message: err.Error()}
	}
	return api.AsError(err, api.CodeBadRequest)
}

func writeError(w http.ResponseWriter, err error) {
	ae := toAPIError(err)
	writeJSON(w, ae.Code.HTTPStatus(), api.ErrorResponse{Err: ae})
}

func writeErrorApplied(w http.ResponseWriter, err error, applied int) {
	ae := toAPIError(err)
	writeJSON(w, ae.Code.HTTPStatus(), api.ErrorResponse{Err: ae, Applied: applied})
}
