package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfxml"
)

// The HTTP API, one resource per session:
//
//	POST   /v1/sessions                   create (JSON body, or raw spec XML)
//	GET    /v1/sessions                   list sessions with stats
//	GET    /v1/sessions/{name}            stats
//	DELETE /v1/sessions/{name}            delete
//	POST   /v1/sessions/{name}/events     ingest an event batch
//	GET    /v1/sessions/{name}/reach      ?from=V&to=W
//	GET    /v1/sessions/{name}/lineage    ?of=V
//
// Create accepts either a JSON body (CreateRequest: a built-in spec
// name or an inline spec XML string) or a raw XML specification with
// Content-Type application/xml and the session options in query
// parameters (?name=...&skeleton=TCL&rmode=designated&shards=16).

// WireEvent is the JSON form of one execution event. Exactly one of
// (Graph, Vertex) or Name identifies the executed specification
// vertex: the ref form is run.Event, the name form core.NamedEvent.
type WireEvent struct {
	// V is the new run vertex being executed.
	V int32 `json:"v"`
	// Graph and Vertex name the specification vertex (ref form).
	Graph  *int32 `json:"graph,omitempty"`
	Vertex *int32 `json:"vertex,omitempty"`
	// Name is the executed module's name (name form).
	Name string `json:"name,omitempty"`
	// Preds are V's immediate predecessors in the run.
	Preds []int32 `json:"preds"`
}

// ToWire converts a run event to its wire form.
func ToWire(ev run.Event) WireEvent {
	g, v := int32(ev.Ref.Graph), int32(ev.Ref.V)
	w := WireEvent{V: int32(ev.V), Graph: &g, Vertex: &v}
	for _, p := range ev.Preds {
		w.Preds = append(w.Preds, int32(p))
	}
	return w
}

// ToWireNamed converts a named event to its wire form.
func ToWireNamed(ev core.NamedEvent) WireEvent {
	w := WireEvent{V: int32(ev.V), Name: ev.Name}
	for _, p := range ev.Preds {
		w.Preds = append(w.Preds, int32(p))
	}
	return w
}

func (w WireEvent) preds() []graph.VertexID {
	out := make([]graph.VertexID, len(w.Preds))
	for i, p := range w.Preds {
		out[i] = graph.VertexID(p)
	}
	return out
}

// CreateRequest is the JSON body of POST /v1/sessions.
type CreateRequest struct {
	// Name is the new session's registry name.
	Name string `json:"name"`
	// Builtin names a built-in specification (BuiltinNames), SpecXML
	// carries a full specification inline; exactly one must be set.
	Builtin string `json:"builtin,omitempty"`
	SpecXML string `json:"spec_xml,omitempty"`
	// Skeleton is "TCL" (default) or "BFS"; RMode is "designated"
	// (default) or "none".
	Skeleton string `json:"skeleton,omitempty"`
	RMode    string `json:"rmode,omitempty"`
	// Shards is the session store's shard count; zero picks the
	// server's default.
	Shards int `json:"shards,omitempty"`
}

// EventsRequest is the JSON body of POST /v1/sessions/{name}/events.
type EventsRequest struct {
	Events []WireEvent `json:"events"`
}

// EventsResponse reports how far a batch got.
type EventsResponse struct {
	// Applied is the number of events ingested from this batch.
	Applied int `json:"applied"`
	// Vertices is the session's labeled-vertex total afterwards.
	Vertices int64 `json:"vertices"`
}

// ReachResponse answers one reachability query.
type ReachResponse struct {
	// From and To echo the queried vertices.
	From int32 `json:"from"`
	To   int32 `json:"to"`
	// Reachable reports whether From reaches To (reflexive).
	Reachable bool `json:"reachable"`
}

// LineageResponse lists the provenance closure of a vertex.
type LineageResponse struct {
	// Of echoes the queried vertex.
	Of int32 `json:"of"`
	// Ancestors are the labeled vertices that reach Of, ascending.
	Ancestors []int32 `json:"ancestors"`
}

// ListResponse lists sessions.
type ListResponse struct {
	// Sessions holds one Stats snapshot per open session, sorted by
	// name.
	Sessions []Stats `json:"sessions"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Applied is set on partial event batches.
	Applied int `json:"applied,omitempty"`
}

// NewHandler returns the HTTP handler serving the registry.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(reg, w, r)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		resp := ListResponse{Sessions: []Stats{}}
		for _, name := range reg.Names() {
			if s, ok := reg.Get(name); ok {
				resp.Sessions = append(resp.Sessions, s.Stats())
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		if s := lookup(reg, w, r); s != nil {
			writeJSON(w, http.StatusOK, s.Stats())
		}
	})
	mux.HandleFunc("DELETE /v1/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		if !reg.Delete(r.PathValue("name")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("name")))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/sessions/{name}/events", func(w http.ResponseWriter, r *http.Request) {
		if s := lookup(reg, w, r); s != nil {
			handleEvents(s, w, r)
		}
	})
	mux.HandleFunc("GET /v1/sessions/{name}/reach", func(w http.ResponseWriter, r *http.Request) {
		if s := lookup(reg, w, r); s != nil {
			handleReach(s, w, r)
		}
	})
	mux.HandleFunc("GET /v1/sessions/{name}/lineage", func(w http.ResponseWriter, r *http.Request) {
		if s := lookup(reg, w, r); s != nil {
			handleLineage(s, w, r)
		}
	})
	return mux
}

func lookup(reg *Registry, w http.ResponseWriter, r *http.Request) *Session {
	s, ok := reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("name")))
		return nil
	}
	return s
}

func handleCreate(reg *Registry, w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/xml") || strings.HasPrefix(ct, "text/xml") {
		// Raw XML upload: the body is the specification, options travel
		// in query parameters.
		s, err := wfxml.DecodeSpec(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		q := r.URL.Query()
		shards := 0
		if qs := q.Get("shards"); qs != "" {
			n, err := strconv.Atoi(qs)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("shards wants a non-negative integer, got %q", qs))
				return
			}
			shards = n
		}
		createSession(reg, w, q.Get("name"), s, q.Get("skeleton"), q.Get("rmode"), shards)
		return
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	var sp *spec.Spec
	switch {
	case req.Builtin != "" && req.SpecXML != "":
		writeError(w, http.StatusBadRequest, fmt.Errorf("builtin and spec_xml are mutually exclusive"))
		return
	case req.Builtin != "":
		var ok bool
		if sp, ok = Builtin(req.Builtin); !ok {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown builtin %q (have %s)", req.Builtin, strings.Join(BuiltinNames(), ", ")))
			return
		}
	case req.SpecXML != "":
		var err error
		if sp, err = wfxml.DecodeSpec(strings.NewReader(req.SpecXML)); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("one of builtin or spec_xml is required"))
		return
	}
	createSession(reg, w, req.Name, sp, req.Skeleton, req.RMode, req.Shards)
}

func createSession(reg *Registry, w http.ResponseWriter, name string, sp *spec.Spec, skelName, modeName string, shards int) {
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("session name is required"))
		return
	}
	if shards < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shards must be non-negative, got %d", shards))
		return
	}
	if reg.Durable() {
		// Report unusable names as a client error; Create would reject
		// them anyway, but with a conflict status.
		if err := validateSessionName(name); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	cfg, err := parseConfig(skelName, modeName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg.Shards = shards
	g, err := spec.Compile(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s, err := reg.Create(name, g, cfg)
	if err != nil {
		// Name collisions (including leftover on-disk data) are the
		// client's problem; a registry that cannot persist is not.
		status := http.StatusConflict
		if errors.Is(err, ErrDurability) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.Stats())
}

func parseConfig(skelName, modeName string) (Config, error) {
	cfg := Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated}
	switch skelName {
	case "", "TCL":
	case "BFS":
		cfg.Skeleton = skeleton.BFS
	default:
		return cfg, fmt.Errorf("unknown skeleton %q (want TCL or BFS)", skelName)
	}
	switch modeName {
	case "", "designated", "designated-R":
	case "none", "no-R":
		cfg.Mode = core.RModeNone
	default:
		return cfg, fmt.Errorf("unknown rmode %q (want designated or none)", modeName)
	}
	return cfg, nil
}

func handleEvents(s *Session, w http.ResponseWriter, r *http.Request) {
	var req EventsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	// Events are split into maximal same-form sub-batches in order; each
	// flush remembers the request index of its first event so errors
	// name the position in the submitted batch, not the sub-batch.
	applied := 0
	flushRef := func(base int, evs []run.Event) error {
		n, err := s.Append(evs)
		applied += n
		if err != nil {
			return fmt.Errorf("event %d: %w", base+n, err)
		}
		return nil
	}
	flushNamed := func(base int, evs []core.NamedEvent) error {
		n, err := s.AppendNamed(evs)
		applied += n
		if err != nil {
			return fmt.Errorf("event %d: %w", base+n, err)
		}
		return nil
	}
	var refs []run.Event
	var named []core.NamedEvent
	refBase, namedBase := 0, 0
	var err error
	for i, ev := range req.Events {
		switch {
		case ev.Name != "" && (ev.Graph != nil || ev.Vertex != nil):
			err = fmt.Errorf("event %d: name and graph/vertex are mutually exclusive", i)
		case ev.Name != "":
			if len(refs) > 0 {
				err = flushRef(refBase, refs)
				refs = nil
			}
			if len(named) == 0 {
				namedBase = i
			}
			named = append(named, core.NamedEvent{V: graph.VertexID(ev.V), Name: ev.Name, Preds: ev.preds()})
		case ev.Graph != nil && ev.Vertex != nil:
			if len(named) > 0 {
				err = flushNamed(namedBase, named)
				named = nil
			}
			if len(refs) == 0 {
				refBase = i
			}
			refs = append(refs, run.Event{
				V:     graph.VertexID(ev.V),
				Ref:   spec.VertexRef{Graph: spec.GraphID(*ev.Graph), V: graph.VertexID(*ev.Vertex)},
				Preds: ev.preds(),
			})
		default:
			err = fmt.Errorf("event %d: needs either name or graph+vertex", i)
		}
		if err != nil {
			break
		}
	}
	if err == nil && len(refs) > 0 {
		err = flushRef(refBase, refs)
	}
	if err == nil && len(named) > 0 {
		err = flushNamed(namedBase, named)
	}
	if err != nil {
		// Invalid events are the client's fault; a session that cannot
		// write its log is the server's.
		status := http.StatusBadRequest
		if errors.Is(err, ErrDurability) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error(), Applied: applied})
		return
	}
	writeJSON(w, http.StatusOK, EventsResponse{Applied: applied, Vertices: s.Vertices()})
}

func handleReach(s *Session, w http.ResponseWriter, r *http.Request) {
	from, err1 := parseVertex(r.URL.Query().Get("from"))
	to, err2 := parseVertex(r.URL.Query().Get("to"))
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reach wants numeric from and to query params"))
		return
	}
	ok, err := s.Reach(from, to)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ReachResponse{From: int32(from), To: int32(to), Reachable: ok})
}

func handleLineage(s *Session, w http.ResponseWriter, r *http.Request) {
	of, err := parseVertex(r.URL.Query().Get("of"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("lineage wants a numeric of query param"))
		return
	}
	anc, err := s.Lineage(of)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp := LineageResponse{Of: int32(of), Ancestors: []int32{}}
	for _, v := range anc {
		resp.Ancestors = append(resp.Ancestors, int32(v))
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseVertex(s string) (graph.VertexID, error) {
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return graph.None, err
	}
	if n < 0 {
		return graph.None, fmt.Errorf("negative vertex id %d", n)
	}
	return graph.VertexID(n), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
