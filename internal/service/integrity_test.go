package service

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wfreach/internal/api"
	"wfreach/internal/arena"
	"wfreach/internal/core"
	"wfreach/internal/integrity"
	"wfreach/internal/integrity/audit"
	"wfreach/internal/skeleton"
	"wfreach/internal/wal"
)

// tamperWALRecord flips one payload byte of the idx-th (0-based)
// record in the WAL at path and recomputes the frame CRC, producing a
// rewrite that every structural check accepts and only the hash chain
// can catch.
func tamperWALRecord(t *testing.T, path string, idx int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(0)
	for i := 0; i < idx; i++ {
		off += int64(wal.FrameHeaderSize) + int64(binary.LittleEndian.Uint32(raw[off:]))
	}
	plen := binary.LittleEndian.Uint32(raw[off:])
	payload := raw[off+wal.FrameHeaderSize : off+wal.FrameHeaderSize+int64(plen)]
	payload[len(payload)-1] ^= 0x01
	binary.LittleEndian.PutUint32(raw[off+4:], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildDurableSession ingests size events into session name under dir
// and returns the registry (still open) and the session.
func buildDurableSession(t *testing.T, dir, name string, size int, opts DurableOptions) (*Registry, *Session) {
	t.Helper()
	g := compileBuiltin(t, "BioAID")
	events, _ := genEvents(t, g, size, 5)
	reg := durableReg(t, dir, opts)
	s, err := reg.Create(name, g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 64)
	return reg, s
}

// TestIntegrityLiveEndpoint: the live chain head the endpoint reports
// is exactly the hash of the committed WAL bytes on disk.
func TestIntegrityLiveEndpoint(t *testing.T) {
	dir := t.TempDir()
	reg, s := buildDurableSession(t, dir, "live", 200, DurableOptions{SnapshotEvery: -1})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/sessions/live/integrity")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /integrity = %d", resp.StatusCode)
	}
	var st api.SessionIntegrity
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Session != "live" || st.WALSeq != s.WALSeq() {
		t.Fatalf("integrity = %+v, wal seq %d", st, s.WALSeq())
	}
	head, n, _, err := wal.ChainScan(filepath.Join(dir, "live", walFile), 0, integrity.Head{})
	if err != nil || n != st.WALSeq {
		t.Fatalf("file scan: n=%d err=%v", n, err)
	}
	if st.ChainHead != head.String() {
		t.Fatalf("endpoint chain %s, file chain %s", st.ChainHead, head)
	}
	if st.MerkleRoot != "" || st.SnapshotWatermark != 0 {
		t.Fatalf("no snapshot was taken, yet %+v", st)
	}
}

// TestIntegrityUnavailableOnMemorySession: a session without a WAL
// answers with the typed not_durable error, not a 500.
func TestIntegrityUnavailableOnMemorySession(t *testing.T) {
	reg := NewRegistry()
	g := compileBuiltin(t, "RunningExample")
	if _, err := reg.Create("mem", g, Config{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/sessions/mem/integrity")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 400 || envelope.Err == nil || envelope.Err.Code != api.CodeNotDurable {
		t.Fatalf("status %d, envelope %+v", resp.StatusCode, envelope.Err)
	}
}

// TestIntegritySnapshotAnchorsAfterRestore: a graceful shutdown leaves
// an integrity-stamped snapshot, and the restored session reports its
// Merkle root, watermark and the matching chain head.
func TestIntegritySnapshotAnchorsAfterRestore(t *testing.T) {
	dir := t.TempDir()
	reg, s := buildDurableSession(t, dir, "anchor", 300, DurableOptions{SnapshotEvery: 1 << 20})
	n := s.WALSeq()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := arena.Open(filepath.Join(dir, "anchor", snapFile))
	if err != nil {
		t.Fatal(err)
	}
	root, anchor, stamped := a.Integrity()
	a.Close()
	if !stamped {
		t.Fatal("graceful close did not stamp the snapshot")
	}

	reg2 := durableReg(t, dir, DurableOptions{SnapshotEvery: 1 << 20})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	s2, _ := reg2.Get("anchor")
	st, err := s2.Integrity()
	if err != nil {
		t.Fatal(err)
	}
	if st.WALSeq != n || st.SnapshotWatermark != n {
		t.Fatalf("seq/watermark = %d/%d, want %d", st.WALSeq, st.SnapshotWatermark, n)
	}
	if st.MerkleRoot != root.String() {
		t.Fatalf("merkle %s, snapshot has %s", st.MerkleRoot, root)
	}
	// The snapshot covers the whole log, so the live head is the anchor.
	if st.ChainHead != anchor.String() {
		t.Fatalf("chain %s, anchor %s", st.ChainHead, anchor)
	}

	// And the offline auditor agrees end to end.
	rep := audit.VerifySession(filepath.Join(dir, "anchor"), st.ChainHead)
	if rep.Status != audit.StatusVerified || rep.WALRecords != n || rep.TailRecords != 0 {
		t.Fatalf("audit = %+v", rep)
	}
}

// TestTornTailChainReseed: a crash tears the last WAL frame; restore
// drops the torn bytes and must re-seed the chain at exactly the
// surviving prefix, so the reopened log continues a chain that still
// matches the file from genesis.
func TestTornTailChainReseed(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "BioAID")
	events, _ := genEvents(t, g, 300, 5)
	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: 64})
	s, err := reg.Create("torn", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events[:200], 37)
	s.snapWG.Wait() // let a mid-stream snapshot land
	s.ingestMu.Lock()
	s.snapEvery = -1
	s.ingestMu.Unlock()
	appendAll(t, s, events[200:], 37)
	// Crash: no Close. Tear the tail mid-frame.
	walPath := filepath.Join(dir, "torn", walFile)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	reg2 := durableReg(t, dir, DurableOptions{SnapshotEvery: -1})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	s2, _ := reg2.Get("torn")
	survived := s2.WALSeq()
	if survived != int64(len(events))-1 {
		t.Fatalf("restored %d events, want %d (one torn off)", survived, len(events)-1)
	}
	st, err := s2.Integrity()
	if err != nil {
		t.Fatal(err)
	}
	head, n, _, err := wal.ChainScan(walPath, 0, integrity.Head{})
	if err != nil || n != survived {
		t.Fatalf("file scan n=%d err=%v", n, err)
	}
	if st.ChainHead != head.String() {
		t.Fatalf("re-seeded chain %s, file chain %s", st.ChainHead, head)
	}

	// The continuation is seamless: new appends extend the same chain.
	appendAll(t, s2, events[len(events)-1:], 1)
	st2, err := s2.Integrity()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}
	full, n2, _, err := wal.ChainScan(walPath, 0, integrity.Head{})
	if err != nil || n2 != int64(len(events)) {
		t.Fatalf("final scan n=%d err=%v", n2, err)
	}
	if st2.ChainHead != full.String() {
		t.Fatalf("post-append chain %s, file says %s", st2.ChainHead, full)
	}
}

// TestTamperDrillRestoreRejectsRewrittenWAL is the restore leg of the
// tamper drill: one byte flipped in a committed record below the
// snapshot watermark, CRC fixed, and the session must refuse to boot.
func TestTamperDrillRestoreRejectsRewrittenWAL(t *testing.T) {
	dir := t.TempDir()
	reg, _ := buildDurableSession(t, dir, "drill", 300, DurableOptions{SnapshotEvery: 1 << 20})
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	tamperWALRecord(t, filepath.Join(dir, "drill", walFile), 17)

	reg2 := durableReg(t, dir, DurableOptions{})
	_, err := reg2.Restore(dir)
	if err == nil {
		t.Fatal("restore booted clean from a rewritten WAL record")
	}
	if !strings.Contains(err.Error(), "integrity") || !strings.Contains(err.Error(), "below the watermark") {
		t.Fatalf("restore error does not name the violation: %v", err)
	}
}

// TestTamperDrillAuditCatchesBelowWatermarkRewrite is the wfverify leg:
// the flip sits in history a restore's replay would skip entirely
// (below the arena watermark), and the auditor must still catch it.
func TestTamperDrillAuditCatchesBelowWatermarkRewrite(t *testing.T) {
	dir := t.TempDir()
	reg, _ := buildDurableSession(t, dir, "drill", 300, DurableOptions{SnapshotEvery: 1 << 20})
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "drill")

	if rep := audit.VerifySession(sdir, ""); rep.Status != audit.StatusVerified {
		t.Fatalf("pristine audit = %+v", rep)
	}
	tamperWALRecord(t, filepath.Join(sdir, walFile), 3)
	rep := audit.VerifySession(sdir, "")
	if rep.Status != audit.StatusViolation {
		t.Fatalf("audit missed the rewrite: %+v", rep)
	}
	if !strings.Contains(rep.Err, "below the watermark") {
		t.Fatalf("violation does not say where: %s", rep.Err)
	}
}

// TestTamperDrillArenaExtent is the snapshot leg: one byte flipped in
// an arena label extent with both CRCs patched. The auditor and the
// restore must each refuse it via the Merkle root.
func TestTamperDrillArenaExtent(t *testing.T) {
	dir := t.TempDir()
	reg, _ := buildDurableSession(t, dir, "drill", 300, DurableOptions{SnapshotEvery: 1 << 20})
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "drill")
	snapPath := filepath.Join(sdir, snapFile)

	// Flip a label byte; patch the label CRC and the index CRC so every
	// structural check passes.
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	count := int(binary.LittleEndian.Uint64(raw[24:32]))
	const hdr, entry = 112, 16
	labelOff := hdr + count*entry
	raw[labelOff+7] ^= 0x10
	binary.LittleEndian.PutUint32(raw[40:44], crc32.ChecksumIEEE(raw[labelOff:]))
	idx := crc32.NewIEEE()
	idx.Write(raw[8 : hdr-4])
	idx.Write(raw[hdr:labelOff])
	binary.LittleEndian.PutUint32(raw[hdr-4:hdr], idx.Sum32())
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if rep := audit.VerifySession(sdir, ""); rep.Status != audit.StatusViolation {
		t.Fatalf("audit accepted a rewritten label extent: %+v", rep)
	}
	reg2 := durableReg(t, dir, DurableOptions{})
	if _, err := reg2.Restore(dir); err == nil {
		t.Fatal("restore booted clean from a rewritten label extent")
	} else if !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("restore error does not name integrity: %v", err)
	}
}

// TestIntegrityUnavailableOnLegacySnapshot: pre-integrity data (a v1
// snapshot) restores fine, reports anchors for the chain the restore
// re-seeded, and the auditor says "unavailable", not "violation".
func TestIntegrityUnavailableOnLegacySnapshot(t *testing.T) {
	dir := t.TempDir()
	g := compileBuiltin(t, "RunningExample")
	events, _ := genEvents(t, g, 200, 3)
	reg := durableReg(t, dir, DurableOptions{SnapshotEvery: -1})
	s, err := reg.Create("old", g, Config{Skeleton: skeleton.TCL, Mode: core.RModeDesignated})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, events, 64)
	n := s.walEvents
	labels := s.store.Snapshot()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	// Overwrite the snapshot with the legacy v1 format.
	if err := wal.WriteSnapshot(filepath.Join(dir, "old", snapFile), wal.Snapshot{Events: n, Labels: labels}); err != nil {
		t.Fatal(err)
	}

	rep := audit.VerifySession(filepath.Join(dir, "old"), "")
	if rep.Status != audit.StatusUnavailable || rep.WALRecords != n {
		t.Fatalf("audit of v1 data = %+v", rep)
	}

	reg2 := durableReg(t, dir, DurableOptions{SnapshotEvery: -1})
	if _, err := reg2.Restore(dir); err != nil {
		t.Fatalf("v1 data failed to restore: %v", err)
	}
	defer reg2.Close()
	s2, _ := reg2.Get("old")
	st, err := s2.Integrity()
	if err != nil {
		t.Fatalf("restored v1 session has no chain: %v", err)
	}
	if st.MerkleRoot != "" || st.SnapshotWatermark != 0 {
		t.Fatalf("v1 restore claims snapshot anchors: %+v", st)
	}
	if st.ChainHead != rep.ChainHead || st.WALSeq != n {
		t.Fatalf("re-seeded chain %s at %d, audit computed %s over %d", st.ChainHead, st.WALSeq, rep.ChainHead, rep.WALRecords)
	}
}
