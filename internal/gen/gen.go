// Package gen generates random workflow runs from a grammar, as the
// paper's evaluation does for its synthetic workloads: "we simulate
// the execution by repeating loops, forks and recursion a random
// number of times" (Section 7.1), with run sizes steered toward a
// target vertex count (1K to 32K in the paper's sweeps).
//
// Generation applies derivation steps to a run.Run in FIFO order over
// the open composite vertices, choosing implementations and repetition
// counts under a size budget: while the estimated final size is below
// the target, expansive choices (recursive implementations, extra loop
// and fork copies) are allowed; once the budget is spent, every choice
// is the cheapest terminating one, so generation always terminates.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
)

// Options steers generation.
type Options struct {
	// TargetSize is the desired number of vertices of the final run.
	// The result lands near it (generation stops expanding once the
	// estimate reaches it). Values below the grammar's minimum run
	// size yield the minimal run.
	TargetSize int
	// Seed drives all random choices; equal seeds give equal runs.
	Seed int64
	// MaxCopies caps the repetitions of one loop or fork expansion
	// (0 means no cap beyond the size budget).
	MaxCopies int
	// Spread dampens how much of the remaining budget a single loop or
	// fork expansion may consume; 0 defaults to 4 (about a quarter).
	Spread int
	// ExpandBias is the probability of preferring a non-minimal
	// implementation (continuing recursion, picking a larger
	// alternative) while the size budget allows it; 0 defaults to 0.85.
	ExpandBias float64
	// DepthFirst expands the most recently created composite first
	// (LIFO), producing derivations of maximal recursion depth — the
	// adversarial shape behind the Ω(n) lower bounds (Theorem 1). The
	// default FIFO order keeps sibling expansions aligned with
	// execution order.
	DepthFirst bool
}

// Generate derives a random run of roughly opts.TargetSize vertices.
func Generate(g *spec.Grammar, opts Options) (*run.Run, error) {
	if opts.TargetSize <= 0 {
		opts.TargetSize = g.MinRunSize()
	}
	if opts.Spread <= 0 {
		opts.Spread = 4
	}
	if opts.ExpandBias <= 0 {
		opts.ExpandBias = 0.85
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	r := run.New(g)
	s := g.Spec()

	// implCost of h: atoms plus the minimal expansion of each composite.
	implCost := func(id spec.GraphID) int {
		gg := s.Graph(id).G
		c := 0
		for v := 0; v < gg.NumVertices(); v++ {
			n := gg.Name(graph.VertexID(v))
			if s.Kind(n).Composite() {
				c += g.MinExpansion(n)
			} else {
				c++
			}
		}
		return c
	}

	// estTotal = live atoms + Σ minExpand over open composites.
	estTotal := func() int {
		t := r.Size() - len(r.Open())
		for _, u := range r.Open() {
			t += g.MinExpansion(r.NameOf(u))
		}
		return t
	}

	maxSteps := opts.TargetSize*4 + 4096
	for steps := 0; !r.Complete(); steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("gen: exceeded %d steps (target %d)", maxSteps, opts.TargetSize)
		}
		u := r.Open()[0] // FIFO keeps sibling expansions in vertex order
		if opts.DepthFirst {
			u = r.Open()[len(r.Open())-1]
		}
		name := r.NameOf(u)
		impls := s.Implementations(name)
		minE := g.MinExpansion(name)
		room := opts.TargetSize - estTotal()

		// Choose an implementation: any whose extra cost over the
		// minimum fits the remaining room; the cheapest otherwise.
		// While the budget allows, prefer non-minimal choices (this is
		// what sustains recursion depth and implementation variety).
		cheapest, cheapestCost := impls[0], math.MaxInt32
		for _, id := range impls {
			if c := implCost(id); c < cheapestCost {
				cheapest, cheapestCost = id, c
			}
		}
		var affordable, expansive []spec.GraphID
		for _, id := range impls {
			c := implCost(id)
			if c-minE <= room {
				affordable = append(affordable, id)
				if c > cheapestCost {
					expansive = append(expansive, id)
				}
			}
		}
		impl := cheapest
		switch {
		case len(expansive) > 0 && rng.Float64() < opts.ExpandBias:
			impl = expansive[rng.Intn(len(expansive))]
		case len(affordable) > 0:
			impl = affordable[rng.Intn(len(affordable))]
		}

		copies := 1
		kind := s.Kind(name)
		if kind == spec.Loop || kind == spec.Fork {
			c := implCost(impl)
			extra := (room - (c - minE)) / (c * opts.Spread / 2)
			if extra > 0 {
				copies += rng.Intn(extra + 1)
			}
			if opts.MaxCopies > 0 && copies > opts.MaxCopies {
				copies = opts.MaxCopies
			}
		}
		if _, err := r.Apply(u, impl, copies); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// GenerateEvents derives a random run and converts it into its
// execution event stream — the input a streaming labeler or load
// generator replays. The insertion order is a random topological order
// drawn from the same seed, so equal options give equal streams. The
// run is returned alongside the events as the ground-truth oracle
// (run.Reaches) for verifying label answers.
func GenerateEvents(g *spec.Grammar, opts Options) ([]run.Event, *run.Run, error) {
	r, err := Generate(g, opts)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5DEECE66D))
	evs, err := r.Execution(rng)
	if err != nil {
		return nil, nil, err
	}
	return evs, r, nil
}

// MustGenerate is Generate panicking on error (for tests and benches).
func MustGenerate(g *spec.Grammar, opts Options) *run.Run {
	r, err := Generate(g, opts)
	if err != nil {
		panic(err)
	}
	return r
}
