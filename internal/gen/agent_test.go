package gen

import (
	"math/rand"
	"reflect"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func TestAgentGrammarIsLinearRecursive(t *testing.T) {
	g, err := spec.Compile(wfspecs.Agent())
	if err != nil {
		t.Fatal(err)
	}
	if g.Class() != spec.ClassLinear {
		t.Fatalf("agent grammar class = %v, want linear: labels must stay compact under deep delegation", g.Class())
	}
}

// agentShapes is the option sweep the property tests run over: small
// and large, shallow and deep, calm and bursty.
func agentShapes() []AgentOptions {
	return []AgentOptions{
		{Seed: 1},
		{Seed: 2, TargetSize: 200, MaxDepth: 2},
		{Seed: 3, TargetSize: 3000, MaxDepth: 16, DelegateBias: 0.95},
		{Seed: 4, TargetSize: 1500, MaxFanout: 12, BurstBias: 0.9, RetryBias: 0.7, MaxRetries: 5},
		{Seed: 5, TargetSize: 60, MaxDepth: 1},
		{Seed: 6, TargetSize: 800, MaxDepth: 4, MaxFanout: 2},
	}
}

// TestAgentTraceIsValidExecution asserts the structural invariants of
// every generated trace: each event appears once, every predecessor of
// an event was inserted by an earlier event (executions insert
// vertices after their dependencies), and the event count matches the
// oracle run's size.
func TestAgentTraceIsValidExecution(t *testing.T) {
	for _, opts := range agentShapes() {
		tr, err := GenerateAgentTrace(opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(tr.Events) != tr.Run.Size() {
			t.Fatalf("opts %+v: %d events for a %d-vertex run", opts, len(tr.Events), tr.Run.Size())
		}
		seen := make(map[graph.VertexID]bool, len(tr.Events))
		for i, ev := range tr.Events {
			if seen[ev.V] {
				t.Fatalf("opts %+v: vertex %d inserted twice", opts, ev.V)
			}
			for _, p := range ev.Preds {
				if !seen[p] {
					t.Fatalf("opts %+v: event %d inserts %d before its predecessor %d", opts, i, ev.V, p)
				}
			}
			seen[ev.V] = true
		}
	}
}

// TestAgentTraceRespectsShapeBounds asserts the advertised shape
// control: delegation depth never exceeds MaxDepth, and the recorded
// depth is attainable (≥ 1).
func TestAgentTraceRespectsShapeBounds(t *testing.T) {
	for _, opts := range agentShapes() {
		tr, err := GenerateAgentTrace(opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		want := opts.MaxDepth
		if want == 0 {
			want = 8 // the documented default
		}
		if tr.Depth < 1 || tr.Depth > want {
			t.Fatalf("opts %+v: depth %d outside [1, %d]", opts, tr.Depth, want)
		}
		if tr.Turns < 1 {
			t.Fatalf("opts %+v: %d turns", opts, tr.Turns)
		}
		if tr.ToolCalls < 0 || tr.Bursts < 0 || tr.Retries < 0 {
			t.Fatalf("opts %+v: negative shape counters %+v", opts, tr)
		}
		// The Turns loop makes the target size reachable: traces must
		// land in its neighborhood, not degenerate to a handful of
		// vertices (they may stop short when the depth bound caps
		// growth, but never by an order of magnitude).
		target := opts.TargetSize
		if target == 0 {
			target = 1000
		}
		if size := len(tr.Events); size < target/8 || size > target*2+64 {
			t.Fatalf("opts %+v: trace size %d nowhere near target %d", opts, size, target)
		}
	}
}

// TestAgentTraceDeterministic asserts equal options give equal traces
// — the property -resume verification and the soak oracle pool lean
// on.
func TestAgentTraceDeterministic(t *testing.T) {
	opts := AgentOptions{Seed: 11, TargetSize: 900, MaxDepth: 6, BurstBias: 0.8}
	a, err := GenerateAgentTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAgentTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same options generated different event streams")
	}
	if a.Depth != b.Depth || a.ToolCalls != b.ToolCalls || a.Retries != b.Retries {
		t.Fatalf("same options, different shapes: %+v vs %+v", a, b)
	}
}

// TestAgentTraceLabelsMatchOracle replays each generated execution
// through a fresh execution labeler and checks sampled reachability
// answers against BFS ground truth on the run — the end-to-end
// property the whole load harness rests on.
func TestAgentTraceLabelsMatchOracle(t *testing.T) {
	g, err := spec.Compile(wfspecs.Agent())
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range agentShapes() {
		tr, err := GenerateAgentTrace(opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		d, err := core.LabelExecution(g, tr.Events, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			t.Fatalf("opts %+v: label replay: %v", opts, err)
		}
		rng := rand.New(rand.NewSource(opts.Seed * 7919))
		n := int64(len(tr.Events))
		for q := 0; q < 500; q++ {
			v := tr.Events[rng.Int63n(n)].V
			w := tr.Events[rng.Int63n(n)].V
			if got, want := d.Reach(v, w), tr.Run.Reaches(v, w); got != want {
				t.Fatalf("opts %+v: labels say reach(%d,%d)=%v, BFS oracle says %v", opts, v, w, got, want)
			}
		}
	}
}

// TestAgentTraceBurstsActuallyHappen pins the generator's adversarial
// value: with bursty options the trace must contain real fan-out and
// retries, not degenerate chains.
func TestAgentTraceBurstsActuallyHappen(t *testing.T) {
	tr, err := GenerateAgentTrace(AgentOptions{
		Seed: 21, TargetSize: 2000, MaxFanout: 8, BurstBias: 0.9, RetryBias: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Bursts == 0 || tr.Retries == 0 || tr.ToolCalls < 10 {
		t.Fatalf("bursty options produced a tame trace: %+v", tr)
	}
	if tr.Depth < 2 {
		t.Fatalf("trace never delegated (depth %d)", tr.Depth)
	}
}
