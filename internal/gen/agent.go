package gen

import (
	"fmt"
	"math/rand"

	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// AgentOptions steers GenerateAgentTrace. The zero value of every
// field selects a sensible default, so AgentOptions{Seed: n} is a
// valid adversarial workload.
type AgentOptions struct {
	// TargetSize is the desired number of vertices of the final run;
	// generation stops expanding once the estimate reaches it. Zero
	// selects 1000.
	TargetSize int
	// Seed drives all random choices; equal options give equal traces.
	Seed int64
	// MaxDepth bounds the delegation depth (Agent nesting): an agent
	// at MaxDepth always answers directly instead of delegating. Zero
	// selects 8.
	MaxDepth int
	// MaxFanout caps the parallel tool calls of one burst. Zero
	// selects 6.
	MaxFanout int
	// BurstBias is the probability a tool-call fan-out is a burst
	// (2..MaxFanout parallel calls) instead of a single call. Zero
	// selects 0.4.
	BurstBias float64
	// RetryBias is the probability one tool call is retried
	// (2..MaxRetries sequential attempts). Zero selects 0.25.
	RetryBias float64
	// MaxRetries caps the attempts of one retried call. Zero
	// selects 3.
	MaxRetries int
	// DelegateBias is the probability a working agent below MaxDepth
	// delegates to a sub-agent, sustaining the recursion. Zero
	// selects 0.85.
	DelegateBias float64
}

func (o *AgentOptions) fill() {
	if o.TargetSize <= 0 {
		o.TargetSize = 1000
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MaxFanout <= 0 {
		o.MaxFanout = 6
	}
	if o.BurstBias <= 0 {
		o.BurstBias = 0.4
	}
	if o.RetryBias <= 0 {
		o.RetryBias = 0.25
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.DelegateBias <= 0 {
		o.DelegateBias = 0.85
	}
}

// AgentTrace is one generated LLM-agent workflow execution: the event
// stream a load generator replays, the run as ground-truth oracle, and
// the shape the random choices produced.
type AgentTrace struct {
	// Events is the execution in a random topological order (bursts
	// interleave, like concurrent tool calls landing in any order).
	Events []run.Event
	// Run is the completed run, the BFS ground truth for the events.
	Run *run.Run
	// Turns is the conversation length: how many prompt → agent →
	// reply turns the session holds.
	Turns int
	// Depth is the deepest delegation reached (1 = no turn's agent
	// ever delegated); always ≤ MaxDepth.
	Depth int
	// ToolCalls counts the tool-call vertices across all bursts,
	// Bursts the fan-outs wider than one call, and Retries the extra
	// attempts beyond the first across all calls.
	ToolCalls int
	Bursts    int
	Retries   int
}

// GenerateAgentTrace derives a random run of the LLM-agent grammar
// (wfspecs.Agent) under explicit shape control — recursion depth
// bound, bursty parallel tool fan-out, sequential retries — and
// converts it into its execution event stream. It is the adversarial
// workload generator behind the load matrix's "agent" dimension:
// Generate steers only toward a size, whereas agentic traces need
// their depth and burstiness pinned to be reproducible stress shapes.
//
// Generation expands the deepest open composite first (delegation
// chains complete before the next sibling burst starts, like a real
// agent descending into a sub-task), always terminates (the depth
// bound forces direct answers at MaxDepth, and once the size estimate
// reaches TargetSize every choice is the cheapest terminating one),
// and is deterministic in the options.
func GenerateAgentTrace(opts AgentOptions) (*AgentTrace, error) {
	opts.fill()
	g, err := spec.Compile(wfspecs.Agent())
	if err != nil {
		return nil, fmt.Errorf("gen: compile agent grammar: %w", err)
	}
	s := g.Spec()

	// Resolve the implementation graphs by shape: the Agent and Sub
	// implementations with a composite vertex are "work" and
	// "delegate"; the others answer directly / skip.
	hasComposite := func(id spec.GraphID) bool {
		gg := s.Graph(id).G
		for v := 0; v < gg.NumVertices(); v++ {
			if s.Kind(gg.Name(graph.VertexID(v))).Composite() {
				return true
			}
		}
		return false
	}
	pick := func(name string, composite bool) spec.GraphID {
		for _, id := range s.Implementations(name) {
			if hasComposite(id) == composite {
				return id
			}
		}
		panic("gen: agent grammar lost an implementation of " + name)
	}
	var (
		hTurn = s.Implementations("Turns")[0]
		hAct  = pick("Agent", false)
		hPlan = pick("Agent", true)
		hCall = s.Implementations("Calls")[0]
		hTool = s.Implementations("Tool")[0]
		hSub  = pick("Sub", true)
		hSkip = pick("Sub", false)
	)

	rng := rand.New(rand.NewSource(opts.Seed))
	r := run.New(g)
	tr := &AgentTrace{}

	// depth[v] is the delegation depth of an open composite vertex:
	// the number of Agents on the path from the root to v, inclusive
	// (the Turns loop itself sits above the first agent, at 0).
	depth := map[graph.VertexID]int{}
	for _, u := range r.Open() {
		depth[u] = 0
	}

	// estTotal = live atoms + Σ minimal expansion over open composites;
	// room is what the size budget still allows beyond that floor.
	estTotal := func() int {
		t := r.Size() - len(r.Open())
		for _, u := range r.Open() {
			t += g.MinExpansion(r.NameOf(u))
		}
		return t
	}
	implCost := func(id spec.GraphID) int {
		gg := s.Graph(id).G
		c := 0
		for v := 0; v < gg.NumVertices(); v++ {
			n := gg.Name(graph.VertexID(v))
			if s.Kind(n).Composite() {
				c += g.MinExpansion(n)
			} else {
				c++
			}
		}
		return c
	}

	maxSteps := opts.TargetSize*4 + 4096
	for steps := 0; !r.Complete(); steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("gen: agent trace exceeded %d steps (target %d)", maxSteps, opts.TargetSize)
		}
		u := r.Open()[len(r.Open())-1] // deepest-first: finish the sub-task before the next burst
		d := depth[u]
		name := r.NameOf(u)
		room := opts.TargetSize - estTotal()

		impl, copies := hAct, 1
		switch name {
		case "Turns":
			// The conversation length: spend about a quarter of the
			// size budget on minimal turns and leave the rest for
			// delegation depth and tool bursts to fill, so the final
			// size lands near the target whatever the biases do.
			impl = hTurn
			if base := room / (implCost(hTurn) * 4); base > 0 {
				copies += base/2 + rng.Intn(base/2+1)
			}
			tr.Turns = copies
		case "Agent":
			impl = hAct
			if room >= implCost(hPlan)-g.MinExpansion("Agent") && rng.Float64() < opts.DelegateBias {
				impl = hPlan
			}
		case "Sub":
			impl = hSkip
			if d < opts.MaxDepth &&
				room >= implCost(hSub)-g.MinExpansion("Sub") &&
				rng.Float64() < opts.DelegateBias {
				impl = hSub
			}
		case "Calls":
			impl = hCall
			if rng.Float64() < opts.BurstBias {
				copies += rng.Intn(opts.MaxFanout)
			}
		case "Tool":
			impl = hTool
			if rng.Float64() < opts.RetryBias {
				copies += rng.Intn(opts.MaxRetries)
			}
		default:
			return nil, fmt.Errorf("gen: unexpected open composite %q", name)
		}
		if copies > 1 {
			// A wider burst (or longer retry chain) must fit the room
			// beyond the single-copy floor already accounted for.
			if maxExtra := room / implCost(impl); copies-1 > maxExtra {
				copies = 1 + max(maxExtra, 0)
			}
		}

		st, err := r.Apply(u, impl, copies)
		if err != nil {
			return nil, err
		}
		delete(depth, u)
		for c := 0; c < copies; c++ {
			for v, id := range st.IDs[c] {
				childName := s.Graph(impl).G.Name(graph.VertexID(v))
				if !s.Kind(childName).Composite() {
					continue
				}
				depth[id] = d
				if childName == "Agent" {
					depth[id] = d + 1
					if depth[id] > tr.Depth {
						tr.Depth = depth[id]
					}
				}
				if childName == "Tool" {
					tr.ToolCalls++
				}
			}
		}
		switch {
		case name == "Calls" && copies > 1:
			tr.Bursts++
		case name == "Tool" && copies > 1:
			tr.Retries += copies - 1
		}
	}
	if tr.Depth == 0 {
		tr.Depth = 1 // the root agent answered directly
	}

	evs, err := r.Execution(rand.New(rand.NewSource(opts.Seed ^ 0x5DEECE66D)))
	if err != nil {
		return nil, err
	}
	tr.Events, tr.Run = evs, r
	return tr, nil
}
