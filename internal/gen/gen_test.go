package gen_test

import (
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func TestTargetSizeAccuracy(t *testing.T) {
	for _, s := range []*spec.Spec{wfspecs.RunningExample(), wfspecs.BioAID()} {
		g := spec.MustCompile(s)
		for _, target := range []int{100, 1000, 8000} {
			r := gen.MustGenerate(g, gen.Options{TargetSize: target, Seed: 1})
			size := r.Size()
			if size < target/2 || size > target*2 {
				t.Errorf("%s target %d: got %d (off by more than 2x)", s, target, size)
			}
			if !r.Complete() {
				t.Fatal("generated run incomplete")
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	a := gen.MustGenerate(g, gen.Options{TargetSize: 500, Seed: 77})
	b := gen.MustGenerate(g, gen.Options{TargetSize: 500, Seed: 77})
	if a.Graph.String() != b.Graph.String() {
		t.Fatal("same seed produced different runs")
	}
	c := gen.MustGenerate(g, gen.Options{TargetSize: 500, Seed: 78})
	if a.Graph.String() == c.Graph.String() {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestMinimalRunWhenTargetTiny(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 1, Seed: 0})
	if r.Size() != g.MinRunSize() {
		t.Fatalf("size %d, want minimal %d", r.Size(), g.MinRunSize())
	}
	// Zero target defaults to minimal too.
	r0 := gen.MustGenerate(g, gen.Options{Seed: 0})
	if r0.Size() != g.MinRunSize() {
		t.Fatalf("default size %d, want %d", r0.Size(), g.MinRunSize())
	}
}

func TestRunsAreValidDAGRuns(t *testing.T) {
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 2000, Seed: 5})
	// All-atomic (complete), two-terminal-ish: single source & sink.
	if len(r.Open()) != 0 {
		t.Fatal("open composites remain")
	}
	if len(r.Graph.Sources()) != 1 || len(r.Graph.Sinks()) != 1 {
		t.Fatalf("sources/sinks = %d/%d", len(r.Graph.Sources()), len(r.Graph.Sinks()))
	}
	for _, v := range r.Graph.LiveVertices() {
		if g.Spec().Kind(r.NameOf(v)).Composite() {
			t.Fatalf("composite vertex %s survives in the run", r.NameOf(v))
		}
	}
}

func TestExercisesLoopsForksRecursion(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 2000, Seed: 9})
	loops, forks, recursions := 0, 0, 0
	for _, st := range r.Steps {
		name := g.Spec().Graph(st.Impl).Owner
		switch g.Spec().Kind(name) {
		case spec.Loop:
			if st.Copies > 1 {
				loops++
			}
		case spec.Fork:
			if st.Copies > 1 {
				forks++
			}
		}
		// Recursion: expanding A with its recursive implementation h3.
		if name == "A" && st.Impl == g.Spec().Implementations("A")[0] {
			recursions++
		}
	}
	if loops == 0 || forks == 0 || recursions == 0 {
		t.Fatalf("workload too tame: loops=%d forks=%d recursions=%d", loops, forks, recursions)
	}
}

func TestMaxCopiesCap(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 5000, Seed: 3, MaxCopies: 4})
	for _, st := range r.Steps {
		if st.Copies > 4 {
			t.Fatalf("step with %d copies exceeds cap", st.Copies)
		}
	}
}

func TestFIFOKeepsSiblingOrder(t *testing.T) {
	// The generator expands open composites FIFO, so a run's steps
	// targeting vertices of one instance appear in spec-vertex order —
	// the property that aligns derivation-based and execution-based
	// label indexes.
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 300, Seed: 8})
	seen := make(map[graph.VertexID]int)
	for i, st := range r.Steps {
		seen[st.Target] = i
	}
	for i, st := range r.Steps {
		for _, row := range st.IDs {
			prev := -1
			for _, v := range row {
				if j, ok := seen[v]; ok {
					if j < i {
						t.Fatalf("child expanded before its parent step")
					}
					if j < prev {
						t.Fatalf("sibling composites expanded out of order")
					}
					prev = j
				}
			}
		}
	}
}

func TestNonlinearGrammarGeneration(t *testing.T) {
	g := spec.MustCompile(wfspecs.Fig6())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 500, Seed: 2})
	if r.Size() < 100 {
		t.Fatalf("Fig6 run too small: %d", r.Size())
	}
	if !r.Complete() {
		t.Fatal("incomplete")
	}
}

// TestDepthFirstMakesDeepDerivations: LIFO expansion yields recursion
// depth proportional to run size on the Figure 6 grammar (Theorem 1's
// adversarial shape), far beyond what balanced FIFO derivations reach.
func TestDepthFirstMakesDeepDerivations(t *testing.T) {
	g := spec.MustCompile(wfspecs.Fig6())
	deep := gen.MustGenerate(g, gen.Options{TargetSize: 400, Seed: 3, DepthFirst: true})
	flat := gen.MustGenerate(g, gen.Options{TargetSize: 400, Seed: 3})
	if deep.Size() < 100 || flat.Size() < 100 {
		t.Fatalf("runs too small: %d / %d", deep.Size(), flat.Size())
	}
	dDeep, err := core.LabelRun(deep, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	dFlat, err := core.LabelRun(flat, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	if dDeep.Tree().Depth() < 2*dFlat.Tree().Depth() {
		t.Fatalf("depth-first tree depth %d should dwarf FIFO depth %d",
			dDeep.Tree().Depth(), dFlat.Tree().Depth())
	}
}

func TestGenerateEvents(t *testing.T) {
	g := spec.MustCompile(wfspecs.BioAID())
	evs, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != r.Size() {
		t.Fatalf("%d events for a %d-vertex run", len(evs), r.Size())
	}
	// Equal options give equal streams.
	evs2, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if evs[i].V != evs2[i].V {
			t.Fatalf("streams diverge at %d: %d vs %d", i, evs[i].V, evs2[i].V)
		}
	}
	// The stream is a valid execution: replaying it through the
	// execution labeler succeeds and agrees with ground truth.
	e, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		v, w := evs[i%len(evs)].V, evs[(i*17)%len(evs)].V
		if got, want := e.Reach(v, w), r.Graph.Reaches(v, w); got != want {
			t.Fatalf("reach(%d,%d)=%v, want %v", v, w, got, want)
		}
	}
}
