// Package wfxml persists workflow specifications, runs and derivations
// as XML, matching the evaluation setup of Section 7.1 ("All data are
// stored in XML files"). The formats are self-describing and
// round-trip exactly through encoding/xml.
package wfxml

import (
	"encoding/xml"
	"fmt"
	"io"

	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
)

// xmlSpec is the on-disk form of a specification.
type xmlSpec struct {
	XMLName xml.Name   `xml:"specification"`
	Modules []xmlName  `xml:"module"`
	Graphs  []xmlGraph `xml:"graph"`
}

type xmlName struct {
	Name string `xml:"name,attr"`
	Kind string `xml:"kind,attr"`
}

type xmlGraph struct {
	Label    string      `xml:"label,attr"`
	Owner    string      `xml:"owner,attr,omitempty"`
	Vertices []xmlVertex `xml:"vertex"`
	Edges    []xmlEdge   `xml:"edge"`
}

type xmlVertex struct {
	ID   int    `xml:"id,attr"`
	Name string `xml:"name,attr"`
}

type xmlEdge struct {
	From int `xml:"from,attr"`
	To   int `xml:"to,attr"`
}

// EncodeSpec writes a specification as XML.
func EncodeSpec(w io.Writer, s *spec.Spec) error {
	var x xmlSpec
	for _, name := range s.Names() {
		k := s.Kind(name)
		if k.Composite() {
			x.Modules = append(x.Modules, xmlName{Name: name, Kind: k.String()})
		}
	}
	for _, ng := range s.Graphs() {
		xg := xmlGraph{Label: ng.Label, Owner: ng.Owner}
		g := ng.G
		for v := 0; v < g.NumVertices(); v++ {
			xg.Vertices = append(xg.Vertices, xmlVertex{ID: v, Name: g.Name(graph.VertexID(v))})
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, to := range g.Out(graph.VertexID(v)) {
				xg.Edges = append(xg.Edges, xmlEdge{From: v, To: int(to)})
			}
		}
		x.Graphs = append(x.Graphs, xg)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("wfxml: %w", err)
	}
	return enc.Flush()
}

// DecodeSpec reads a specification from XML and validates it.
func DecodeSpec(r io.Reader) (*spec.Spec, error) {
	var x xmlSpec
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("wfxml: %w", err)
	}
	b := spec.NewBuilder()
	for _, m := range x.Modules {
		switch m.Kind {
		case "plain":
			b.Composite(m.Name)
		case "loop":
			b.Loop(m.Name)
		case "fork":
			b.Fork(m.Name)
		case "atomic":
			b.Atomic(m.Name)
		default:
			return nil, fmt.Errorf("wfxml: unknown module kind %q", m.Kind)
		}
	}
	for i, xg := range x.Graphs {
		g := graph.New()
		for j, v := range xg.Vertices {
			if v.ID != j {
				return nil, fmt.Errorf("wfxml: graph %s has non-dense vertex ids", xg.Label)
			}
			g.AddVertex(v.Name)
		}
		for _, e := range xg.Edges {
			if err := g.AddEdge(graph.VertexID(e.From), graph.VertexID(e.To)); err != nil {
				return nil, fmt.Errorf("wfxml: graph %s: %w", xg.Label, err)
			}
		}
		if i == 0 {
			if xg.Owner != "" {
				return nil, fmt.Errorf("wfxml: first graph %s must be the start graph", xg.Label)
			}
			b.Start(xg.Label, g)
		} else {
			b.Implement(xg.Owner, xg.Label, g)
		}
	}
	return b.Build()
}

// xmlRun is the on-disk form of a completed run: its vertices (with
// their specification mapping) and edges, plus the derivation that
// produced it.
type xmlRun struct {
	XMLName  xml.Name    `xml:"run"`
	Vertices []xmlRunV   `xml:"vertex"`
	Edges    []xmlEdge   `xml:"edge"`
	Steps    []xmlStep   `xml:"step"`
	StartIDs []xmlRef    `xml:"start>ref"`
	Tomb     []xmlVertex `xml:"tombstone"`
}

type xmlRunV struct {
	ID    int `xml:"id,attr"`
	Graph int `xml:"graph,attr"`
	Spec  int `xml:"spec,attr"`
}

type xmlRef struct {
	ID int `xml:"id,attr"`
}

type xmlStep struct {
	Target int          `xml:"target,attr"`
	Impl   int          `xml:"impl,attr"`
	Copies int          `xml:"copies,attr"`
	IDs    []xmlCopyRow `xml:"copy"`
}

type xmlCopyRow struct {
	IDs []int `xml:"v"`
}

// EncodeRun writes a run (graph, spec mapping and derivation) as XML.
func EncodeRun(w io.Writer, r *run.Run) error {
	var x xmlRun
	for v := 0; v < r.Graph.NumVertices(); v++ {
		vid := graph.VertexID(v)
		ref := r.SpecOf[v]
		if r.Graph.IsTombstone(vid) {
			x.Tomb = append(x.Tomb, xmlVertex{ID: v})
			continue
		}
		x.Vertices = append(x.Vertices, xmlRunV{ID: v, Graph: int(ref.Graph), Spec: int(ref.V)})
	}
	for v := 0; v < r.Graph.NumVertices(); v++ {
		for _, to := range r.Graph.Out(graph.VertexID(v)) {
			x.Edges = append(x.Edges, xmlEdge{From: v, To: int(to)})
		}
	}
	for _, id := range r.StartIDs {
		x.StartIDs = append(x.StartIDs, xmlRef{ID: int(id)})
	}
	for _, st := range r.Steps {
		xs := xmlStep{Target: int(st.Target), Impl: int(st.Impl), Copies: st.Copies}
		for _, row := range st.IDs {
			xr := xmlCopyRow{}
			for _, id := range row {
				xr.IDs = append(xr.IDs, int(id))
			}
			xs.IDs = append(xs.IDs, xr)
		}
		x.Steps = append(x.Steps, xs)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("wfxml: %w", err)
	}
	return enc.Flush()
}

// DecodeRun reads a run for the given grammar by replaying its
// recorded derivation, then verifies the replay matches the stored
// graph.
func DecodeRun(rd io.Reader, g *spec.Grammar) (*run.Run, error) {
	var x xmlRun
	if err := xml.NewDecoder(rd).Decode(&x); err != nil {
		return nil, fmt.Errorf("wfxml: %w", err)
	}
	r := run.New(g)
	for _, xs := range x.Steps {
		st, err := r.Apply(graph.VertexID(xs.Target), spec.GraphID(xs.Impl), xs.Copies)
		if err != nil {
			return nil, fmt.Errorf("wfxml: replaying derivation: %w", err)
		}
		// The replay must reproduce the recorded ids (run ids are
		// deterministic given the step sequence).
		if len(st.IDs) != len(xs.IDs) {
			return nil, fmt.Errorf("wfxml: step shape mismatch on replay")
		}
		for c := range st.IDs {
			if len(st.IDs[c]) != len(xs.IDs[c].IDs) {
				return nil, fmt.Errorf("wfxml: copy shape mismatch on replay")
			}
			for j := range st.IDs[c] {
				if int(st.IDs[c][j]) != xs.IDs[c].IDs[j] {
					return nil, fmt.Errorf("wfxml: vertex ids diverged on replay")
				}
			}
		}
	}
	// Cross-check vertex count and edges.
	liveWant := len(x.Vertices)
	if r.Graph.LiveCount() != liveWant {
		return nil, fmt.Errorf("wfxml: replay has %d vertices, file has %d", r.Graph.LiveCount(), liveWant)
	}
	for _, e := range x.Edges {
		if !r.Graph.HasEdge(graph.VertexID(e.From), graph.VertexID(e.To)) {
			return nil, fmt.Errorf("wfxml: replay misses edge %d->%d", e.From, e.To)
		}
	}
	if r.Graph.NumEdges() != len(x.Edges) {
		return nil, fmt.Errorf("wfxml: replay has %d edges, file has %d", r.Graph.NumEdges(), len(x.Edges))
	}
	return r, nil
}
