package wfxml_test

import (
	"bytes"
	"strings"
	"testing"

	"wfreach/internal/gen"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
	"wfreach/internal/wfxml"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []*spec.Spec{
		wfspecs.RunningExample(),
		wfspecs.BioAID(),
		wfspecs.BioAIDNonRecursive(),
		wfspecs.Fig6(),
		wfspecs.Fig12(),
	} {
		var buf bytes.Buffer
		if err := wfxml.EncodeSpec(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := wfxml.DecodeSpec(&buf)
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, buf.String())
		}
		if got.String() != s.String() {
			t.Fatalf("spec round trip mismatch:\n in: %s\nout: %s", s, got)
		}
		// Graph-by-graph structural equality.
		a, b := s.Graphs(), got.Graphs()
		if len(a) != len(b) {
			t.Fatal("graph count mismatch")
		}
		for i := range a {
			if a[i].G.String() != b[i].G.String() || a[i].Label != b[i].Label || a[i].Owner != b[i].Owner {
				t.Fatalf("graph %d mismatch", i)
			}
		}
	}
}

func TestSpecXMLShape(t *testing.T) {
	var buf bytes.Buffer
	if err := wfxml.EncodeSpec(&buf, wfspecs.RunningExample()); err != nil {
		t.Fatal(err)
	}
	x := buf.String()
	for _, want := range []string{"<specification>", `kind="loop"`, `kind="fork"`, `label="g0"`, `owner="A"`} {
		if !strings.Contains(x, want) {
			t.Fatalf("XML missing %q:\n%s", want, x)
		}
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":     "not xml at all",
		"unknownKind": `<specification><module name="A" kind="weird"/><graph label="g0"><vertex id="0" name="s"/><vertex id="1" name="t"/><edge from="0" to="1"/></graph></specification>`,
		"nonDense":    `<specification><graph label="g0"><vertex id="5" name="s"/></graph></specification>`,
		"cycle":       `<specification><graph label="g0"><vertex id="0" name="s"/><vertex id="1" name="t"/><edge from="0" to="1"/><edge from="1" to="0"/></graph></specification>`,
		"ownerFirst":  `<specification><graph label="g0" owner="A"><vertex id="0" name="s"/><vertex id="1" name="t"/><edge from="0" to="1"/></graph></specification>`,
	}
	for name, in := range cases {
		if _, err := wfxml.DecodeSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
}

func TestRunRoundTrip(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 300, Seed: 6})
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := wfxml.DecodeRun(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.String() != r.Graph.String() {
		t.Fatal("run graph round trip mismatch")
	}
	if len(got.Steps) != len(r.Steps) {
		t.Fatal("derivation length mismatch")
	}
	for v := 0; v < r.Graph.NumVertices(); v++ {
		if got.SpecOf[v] != r.SpecOf[v] {
			t.Fatalf("spec mapping mismatch at %d", v)
		}
	}
}

func TestDecodeRunWrongGrammar(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 100, Seed: 2})
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r); err != nil {
		t.Fatal(err)
	}
	other := spec.MustCompile(wfspecs.Fig12())
	if _, err := wfxml.DecodeRun(&buf, other); err == nil {
		t.Fatal("decoding a run against the wrong grammar must fail")
	}
}

func TestDecodeRunGarbage(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	if _, err := wfxml.DecodeRun(strings.NewReader("nope"), g); err == nil {
		t.Fatal("garbage accepted")
	}
}
