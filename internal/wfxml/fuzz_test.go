package wfxml_test

import (
	"bytes"
	"strings"
	"testing"

	"wfreach/internal/wfspecs"
	"wfreach/internal/wfxml"
)

// FuzzDecodeSpec: arbitrary bytes must never panic the specification
// decoder; anything that decodes must be a valid spec that re-encodes.
func FuzzDecodeSpec(f *testing.F) {
	var buf bytes.Buffer
	if err := wfxml.EncodeSpec(&buf, wfspecs.RunningExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	buf.Reset()
	if err := wfxml.EncodeSpec(&buf, wfspecs.Fig6()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("<specification></specification>")
	f.Add("not xml")
	f.Add(`<specification><graph label="g0"><vertex id="0" name="s"/></graph></specification>`)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := wfxml.DecodeSpec(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := wfxml.EncodeSpec(&out, s); err != nil {
			t.Fatalf("decoded spec failed to re-encode: %v", err)
		}
		s2, err := wfxml.DecodeSpec(&out)
		if err != nil {
			t.Fatalf("re-encoded spec failed to decode: %v", err)
		}
		if s2.String() != s.String() {
			t.Fatalf("round trip drift:\n in: %s\nout: %s", s, s2)
		}
	})
}
