package obs

import (
	"math/bits"
	"sync"
	"time"
)

// histBuckets: 16 exact buckets under 16ns, then 16 linear sub-buckets
// per power of two up to ~2^62ns. Quantile error is bounded by one
// sub-bucket (≈6%) — plenty for SLO gating — at a fixed 8KB per
// histogram, so soak runs can record millions of samples without
// growing.
const histBuckets = 16 * 60

// Hist is a fixed-size log-linear latency histogram, safe for
// concurrent Add. It began life in the load harness and moved here so
// the server's in-process metrics and the harness's client-side
// measurements share one definition of a latency distribution.
type Hist struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	n      int64
	max    int64
	sum    int64
}

func bucketOf(ns int64) int {
	if ns < 16 {
		if ns < 0 {
			ns = 0
		}
		return int(ns)
	}
	e := bits.Len64(uint64(ns)) - 1        // 2^e ≤ ns < 2^(e+1), e ≥ 4
	sub := int((ns >> (uint(e) - 4)) & 15) // next 4 bits below the top one
	idx := 16*(e-3) + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMax is the largest value the bucket holds — quantiles report
// it, erring high (never flattering a latency gate).
func bucketMax(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	e := idx/16 + 3
	sub := int64(idx % 16)
	lo := (16 + sub) << (uint(e) - 4)
	return lo + (1 << (uint(e) - 4)) - 1
}

// Add records one duration.
func (h *Hist) Add(d time.Duration) {
	ns := d.Nanoseconds()
	idx := bucketOf(ns)
	h.mu.Lock()
	h.counts[idx]++
	h.n++
	if ns > h.max {
		h.max = ns
	}
	if ns > 0 {
		h.sum += ns
	}
	h.mu.Unlock()
}

// N is the sample count.
func (h *Hist) N() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum is the total of all recorded durations in nanoseconds (negative
// samples — clock weirdness — count as zero).
func (h *Hist) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the p-quantile (p in [0,1]) as a duration, rounded
// up to its bucket's upper bound; the exact recorded maximum at p=1.
// Zero samples yield zero.
func (h *Hist) Quantile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if p >= 1 {
		return time.Duration(h.max)
	}
	if p < 0 {
		p = 0
	}
	rank := int64(p*float64(h.n-1)) + 1
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if ns := bucketMax(i); ns < h.max {
				return time.Duration(ns)
			}
			return time.Duration(h.max)
		}
	}
	return time.Duration(h.max)
}
