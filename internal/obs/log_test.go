package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRouteOf(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/sessions/demo/events":  "/v1/sessions/:name/events",
		"/v1/sessions/demo":         "/v1/sessions/:name",
		"/v1/sessions":              "/v1/sessions",
		"/v1/metrics":               "/v1/metrics",
		"/v1/cluster/health":        "/v1/cluster/health",
		"/sessions/x/reach":         "/sessions/:name/reach",
		"/healthz":                  "/healthz",
		"/v1/sessions/a.b-c/events": "/v1/sessions/:name/events",
	} {
		if got := RouteOf(path); got != want {
			t.Errorf("RouteOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestLoggerLogfmt(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.Info("server started", "mode", "durable", "addr", "127.0.0.1:0", "note", "two words")
	line := b.String()
	for _, want := range []string{"level=info", `msg="server started"`, "mode=durable", `note="two words"`, "ts="} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// A nil logger must be safe to call.
	var nilLogger *Logger
	nilLogger.Warn("ignored", "k", "v")
}

func TestAccessLogMiddleware(t *testing.T) {
	var b strings.Builder
	reg := NewRegistry()
	h := AccessLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/slow") {
			time.Sleep(5 * time.Millisecond)
		}
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte("ok"))
	}), NewLogger(&b), AccessLogOptions{Slow: time.Millisecond, Metrics: reg})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions/demo/events", nil))
	if rec.Header().Get("X-Request-Id") == "" {
		t.Fatal("no request id on the response")
	}
	line := b.String()
	for _, want := range []string{"route=/v1/sessions/:name/events", "status=202", "bytes=2", "method=GET", "id="} {
		if !strings.Contains(line, want) {
			t.Errorf("access line %q missing %q", line, want)
		}
	}

	// An inbound X-Request-Id is honored, and a slow request warns.
	b.Reset()
	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/demo/slow", nil)
	req.Header.Set("X-Request-Id", "caller-id-1")
	h.ServeHTTP(rec, req)
	if rec.Header().Get("X-Request-Id") != "caller-id-1" {
		t.Fatalf("request id not echoed: %q", rec.Header().Get("X-Request-Id"))
	}
	if !strings.Contains(b.String(), `msg="slow request"`) || !strings.Contains(b.String(), "level=warn") {
		t.Fatalf("no slow-request warn line in %q", b.String())
	}

	vals := reg.Values()
	if vals[`wf_http_requests_total{route="/v1/sessions/:name/events"}`] != 1 {
		t.Fatalf("request counter wrong: %v", vals)
	}
	if vals["wf_http_request_seconds_count"] != 2 {
		t.Fatalf("latency histogram counted %g requests, want 2", vals["wf_http_request_seconds_count"])
	}
}
