package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// registration method names on *Registry, paired with the "wf_" name
// literal every real registration passes first.
var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "FloatGauge": true,
	"Histogram": true, "CounterVec": true, "GaugeVec": true,
}

// constructorPath reports whether a function is an acceptable
// registration site: a constructor (New*/new*), package init, or a
// metrics-struct builder (new…Metrics by convention).
func constructorPath(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") ||
		strings.HasPrefix(name, "new")
}

// TestMetricsRegisterInConstructors walks the module and asserts that
// every obs instrument registration — a call like
// reg.Counter("wf_…", …) — sits inside a constructor path, never in a
// request or apply hot path. Registration takes the registry lock;
// hot paths must only touch the returned atomics.
func TestMetricsRegisterInConstructors(t *testing.T) {
	root := "../.."
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || path == filepath.Join(root, "internal", "obs") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body == nil {
				continue
			}
			var funcName string
			var body ast.Node = decl
			if ok {
				funcName = fn.Name.Name
				body = fn.Body
			} else {
				funcName = "init" // package-level var initializers run at init
			}
			ast.Inspect(body, func(n ast.Node) bool {
				// A function literal is its enclosing function's path: a
				// goroutine or handler closure inside New* is NOT a
				// constructor path unless the literal is called immediately.
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registrationMethods[sel.Sel.Name] || len(call.Args) < 2 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, `"wf_`) {
					return true
				}
				if !constructorPath(funcName) {
					violations = append(violations,
						fset.Position(call.Pos()).String()+": "+funcName+" registers "+lit.Value)
				}
				return true
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("registration outside a constructor path: %s", v)
	}
}
