package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseExposition is a deliberately strict in-test Prometheus
// text-format reader: every sample line must parse as name{labels}
// value, every family must be announced by HELP and TYPE lines first,
// and a family may be announced at most once.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	announced := make(map[string]bool) // family → seen TYPE
	var current string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			current = parts[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if parts[0] != current {
				t.Fatalf("line %d: TYPE %s without preceding HELP", ln+1, parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "summary":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[1])
			}
			if announced[parts[0]] {
				t.Fatalf("line %d: family %s announced twice", ln+1, parts[0])
			}
			announced[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			t.Fatalf("line %d: sample without value: %q", ln+1, line)
		}
		key := line[:cut]
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(base, "_sum"), "_count")
		if !announced[base] {
			t.Fatalf("line %d: sample %s before its TYPE line", ln+1, key)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, key)
		}
		samples[key] = v
	}
	return samples
}

func scrape(t *testing.T, r *Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	r.WriteText(&b)
	return parseExposition(t, b.String())
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_ops_total", "Ops.").Add(7)
	r.Gauge("t_live", "Live things.").Set(3)
	r.FloatGauge("t_lag_seconds", "Lag.").Set(1.5)
	h := r.Histogram("t_wait_seconds", "Waits.")
	h.Observe(2 * time.Second)
	h.Observe(4 * time.Second)
	v := r.CounterVec("t_moves_total", "Moves.", "phase")
	v.With("started").Inc()
	v.With("completed").Add(2)

	got := scrape(t, r)
	want := map[string]float64{
		"t_ops_total":                      7,
		"t_live":                           3,
		"t_lag_seconds":                    1.5,
		"t_wait_seconds_count":             2,
		"t_wait_seconds_sum":               6,
		`t_moves_total{phase="started"}`:   1,
		`t_moves_total{phase="completed"}`: 2,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %g, want %g", k, got[k], w)
		}
	}
	// Quantiles are exposed in seconds and sit inside the observed range.
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		key := fmt.Sprintf(`t_wait_seconds{quantile="%s"}`, q)
		if v, ok := got[key]; !ok || v < 1 || v > 5 {
			t.Errorf("%s = %g (ok=%v), want within [1,5]", key, v, ok)
		}
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_x_total", "X.")
	b := r.Counter("t_x_total", "X.")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter does not share state")
	}
	// Same family via a second CounterVec handle shares series too.
	v1 := r.CounterVec("t_y_total", "Y.", "kind")
	v2 := r.CounterVec("t_y_total", "Y.", "kind")
	v1.With("k").Add(3)
	if v2.With("k").Value() != 3 {
		t.Fatal("vec re-registration does not share series")
	}
	// Conflicting kind or label key is a programming error: panic.
	for _, f := range []func(){
		func() { r.Gauge("t_x_total", "X.") },
		func() { r.CounterVec("t_y_total", "Y.", "other") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("conflicting re-registration did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSeriesOverflowFoldsIntoOther(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_s_total", "S.", "session")
	for i := 0; i < MaxSeriesPerFamily+10; i++ {
		v.With(fmt.Sprintf("s%d", i)).Inc()
	}
	got := scrape(t, r)
	series := 0
	for k := range got {
		if strings.HasPrefix(k, "t_s_total{") {
			series++
		}
	}
	if series != MaxSeriesPerFamily+1 {
		t.Fatalf("exposed %d series, want cap %d + overflow", series, MaxSeriesPerFamily)
	}
	if got[`t_s_total{session="other"}`] != 10 {
		t.Fatalf("overflow absorbed %g increments, want 10", got[`t_s_total{session="other"}`])
	}
	// Forget frees a slot; the overflow series itself is never dropped.
	v.Forget("s0")
	v.Forget(OverflowLabel)
	got = scrape(t, r)
	if _, ok := got[`t_s_total{session="s0"}`]; ok {
		t.Fatal("forgotten series still exposed")
	}
	if got[`t_s_total{session="other"}`] != 10 {
		t.Fatal("overflow series was dropped")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("t_e_total", "E.", "name").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WriteText(&b)
	want := `t_e_total{name="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition %q missing %q", b.String(), want)
	}
}

func TestValuesMatchesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_a_total", "A.").Add(5)
	r.GaugeVec("t_g", "G.", "s").With("x").Set(2)
	r.Histogram("t_h_seconds", "H.").Observe(time.Second)
	vals := r.Values()
	for k, want := range map[string]float64{
		"t_a_total":         5,
		`t_g{s="x"}`:        2,
		"t_h_seconds_count": 1,
		"t_h_seconds_sum":   1,
	} {
		if vals[k] != want {
			t.Errorf("Values()[%s] = %g, want %g", k, vals[k], want)
		}
	}
}

// TestConcurrentScrapeAndWrite hammers one registry from writer
// goroutines while scraping continuously — the race detector is the
// assertion, plus counters must be monotonic across scrapes.
func TestConcurrentScrapeAndWrite(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_w_total", "W.")
	v := r.CounterVec("t_l_total", "L.", "s")
	h := r.Histogram("t_d_seconds", "D.")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				c.Inc()
				v.With(fmt.Sprintf("s%d", i%40)).Inc() // crosses the overflow cap
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	var last float64
	for i := 0; i < 50; i++ {
		got := scrape(t, r)
		if got["t_w_total"] < last {
			t.Fatalf("counter went backwards: %g after %g", got["t_w_total"], last)
		}
		last = got["t_w_total"]
	}
	close(stop)
	wg.Wait()
	if final := scrape(t, r)["t_w_total"]; final < 4 || final < last {
		t.Fatalf("final count %g (last mid-run %g): writers never ran", final, last)
	}
}
