// Package obs is the in-process observability plane: a dependency-free
// metrics registry (atomic counters, gauges, and the log-linear
// latency histogram shared with the load harness), a Prometheus
// text-format exposition handler, and structured request logging as
// net/http middleware.
//
// The package imports nothing from the rest of the module, so every
// plane — service, WAL, arena snapshots, replication, cluster,
// integrity — can hold instruments without an import cycle. Instrument
// registration is constructor-path only: a package builds its metrics
// struct once, in New*/init, and hot paths touch only the returned
// atomics (CI enforces this — see TestMetricsRegisterInConstructors).
//
// Cardinality rules: the only label the registry hands out is a single
// key per family, and labeled families cap their distinct values at
// MaxSeriesPerFamily — the overflow collapses into the "other" series.
// Per-session series are therefore bounded, and nothing is ever
// labeled per vertex or per request.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSeriesPerFamily caps the distinct label values one labeled family
// will expose. The value that would exceed the cap — and every value
// after it — is folded into the OverflowLabel series, so a node with
// ten thousand sessions still serves a bounded scrape.
const MaxSeriesPerFamily = 32

// OverflowLabel is the label value that absorbs series beyond
// MaxSeriesPerFamily.
const OverflowLabel = "other"

// Counter is a monotonically increasing value. The zero value is
// usable but unregistered; get one from Registry.Counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored — counters never
// go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float value (seconds of lag, ratios).
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *FloatGauge) Set(f float64) { g.bits.Store(math.Float64bits(f)) }

// Value reads the gauge.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a registered latency distribution, exposed in the
// Prometheus text format as a summary: quantiles 0.5/0.9/0.99 plus
// _sum and _count, all in seconds.
type Histogram struct{ Hist }

// Observe records one duration (an alias for Add, matching the usual
// metrics vocabulary).
func (h *Histogram) Observe(d time.Duration) { h.Add(d) }

const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindSummary = "summary"
)

// series is one exposable time series: a name, an optional single
// label pair, and exactly one live instrument.
type series struct {
	labelValue string
	counter    *Counter
	gauge      *Gauge
	fgauge     *FloatGauge
	hist       *Histogram
}

// family is one metric name: its metadata and its series.
type family struct {
	name, help, kind string
	labelKey         string // "" for unlabeled families

	mu     sync.Mutex
	order  []string // label values in first-seen order ("" for unlabeled)
	series map[string]*series
}

// Registry holds the instruments of one node. A Registry is safe for
// concurrent use; registration is idempotent (the same name returns
// the same instrument), so constructors may re-register freely.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor registers (or finds) the named family. Conflicting
// re-registration — same name, different kind or label key — panics:
// it is a programming error caught at constructor time, never under
// request load.
func (r *Registry) familyFor(name, help, kind, labelKey string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.labelKey != labelKey {
			panic(fmt.Sprintf("obs: %s re-registered as %s/%q, was %s/%q", name, kind, labelKey, f.kind, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labelKey: labelKey, series: make(map[string]*series)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// seriesFor finds or creates the series for one label value, folding
// overflow beyond MaxSeriesPerFamily into OverflowLabel.
func (f *family) seriesFor(labelValue string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labelValue]; ok {
		return s
	}
	if f.labelKey != "" && len(f.series) >= MaxSeriesPerFamily {
		if s, ok := f.series[OverflowLabel]; ok {
			return s
		}
		labelValue = OverflowLabel
	}
	s := &series{labelValue: labelValue}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		// Float-valued gauges share the gauge kind on the wire but carry
		// a distinct instrument, flagged by the \x00 label-key sentinel.
		if strings.HasPrefix(f.labelKey, "\x00") {
			s.fgauge = &FloatGauge{}
		} else {
			s.gauge = &Gauge{}
		}
	case kindSummary:
		s.hist = &Histogram{}
	}
	f.series[labelValue] = s
	f.order = append(f.order, labelValue)
	return s
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.familyFor(name, help, kindCounter, "").seriesFor("").counter
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.familyFor(name, help, kindGauge, "").seriesFor("").gauge
}

// FloatGauge registers (or finds) an unlabeled float gauge. It shares
// the gauge kind on the wire.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.familyFor(name, help, kindGauge, "\x00float").seriesFor("").fgauge
}

// Histogram registers (or finds) an unlabeled latency histogram. Name
// it *_seconds: the exposition divides nanoseconds down to seconds.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.familyFor(name, help, kindSummary, "").seriesFor("").hist
}

// CounterVec is a counter family with one label key.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a counter family labeled by key.
func (r *Registry) CounterVec(name, help, key string) *CounterVec {
	return &CounterVec{f: r.familyFor(name, help, kindCounter, key)}
}

// With returns the counter for one label value, creating it under the
// family's series cap.
func (v *CounterVec) With(value string) *Counter { return v.f.seriesFor(value).counter }

// GaugeVec is a gauge family with one label key.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a gauge family labeled by key.
func (r *Registry) GaugeVec(name, help, key string) *GaugeVec {
	return &GaugeVec{f: r.familyFor(name, help, kindGauge, key)}
}

// With returns the gauge for one label value.
func (v *GaugeVec) With(value string) *Gauge { return v.f.seriesFor(value).gauge }

// Forget drops the series for one label value from the family — the
// bookend of a deleted session. The overflow series is never dropped.
func (v *GaugeVec) Forget(value string) { v.f.forget(value) }

// Forget drops the series for one label value from the family.
func (v *CounterVec) Forget(value string) { v.f.forget(value) }

func (f *family) forget(value string) {
	if value == OverflowLabel {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[value]; !ok {
		return
	}
	delete(f.series, value)
	for i, v := range f.order {
		if v == value {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func (f *family) labelPrefix(extra string) func(labelValue string) string {
	return func(labelValue string) string {
		var parts []string
		if f.labelKey != "" && f.labelKey[0] != '\x00' {
			parts = append(parts, fmt.Sprintf("%s=\"%s\"", f.labelKey, escapeLabel(labelValue)))
		}
		if extra != "" {
			parts = append(parts, extra)
		}
		if len(parts) == 0 {
			return ""
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
}

// writeFamily renders one family in the Prometheus text format.
func (f *family) write(w io.Writer) {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	ss := make([]*series, 0, len(order))
	for _, lv := range order {
		ss = append(ss, f.series[lv])
	}
	f.mu.Unlock()
	if len(ss) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range ss {
		labels := f.labelPrefix("")
		switch {
		case s.counter != nil:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels(s.labelValue), s.counter.Value())
		case s.gauge != nil:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels(s.labelValue), s.gauge.Value())
		case s.fgauge != nil:
			fmt.Fprintf(w, "%s%s %g\n", f.name, labels(s.labelValue), s.fgauge.Value())
		case s.hist != nil:
			for _, q := range []float64{0.5, 0.9, 0.99} {
				ql := f.labelPrefix(fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q)))
				fmt.Fprintf(w, "%s%s %g\n", f.name, ql(s.labelValue), float64(s.hist.Quantile(q))/1e9)
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", f.name, labels(s.labelValue), float64(s.hist.Sum())/1e9)
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels(s.labelValue), s.hist.N())
		}
	}
}

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// series in first-seen order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	for _, n := range order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// ServeHTTP serves the exposition — mount the registry itself under
// GET /v1/metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w)
}

// Values flattens the registry into series name → value: counters and
// gauges under their name (plus `{key="value"}` when labeled),
// histograms as name_count and name_sum (seconds). The map is a
// point-in-time copy — the scrape-delta form the harness and the typed
// health snapshot read.
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		for _, lv := range f.order {
			s := f.series[lv]
			key := f.name
			if f.labelKey != "" && f.labelKey[0] != '\x00' {
				key = fmt.Sprintf("%s{%s=\"%s\"}", f.name, f.labelKey, escapeLabel(lv))
			}
			switch {
			case s.counter != nil:
				out[key] = float64(s.counter.Value())
			case s.gauge != nil:
				out[key] = float64(s.gauge.Value())
			case s.fgauge != nil:
				out[key] = s.fgauge.Value()
			case s.hist != nil:
				out[key+"_count"] = float64(s.hist.N())
				out[key+"_sum"] = float64(s.hist.Sum()) / 1e9
			}
		}
		f.mu.Unlock()
	}
	return out
}

// Names returns the registered family names, sorted — what a
// completeness check (CI's mid-drill curl) asserts against.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
