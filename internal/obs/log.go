package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Logger writes structured logfmt lines (ts=… level=… msg=… k=v …),
// one event per line, safe for concurrent use. A nil *Logger discards
// everything, so call sites never guard.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a logger writing to w; a nil w discards.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		w = io.Discard
	}
	return &Logger{w: w}
}

// needsQuote reports whether a logfmt value must be quoted.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	return strings.ContainsAny(s, " \t\n\"=")
}

func formatValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case time.Duration:
		s = t.String()
	case error:
		s = t.Error()
	default:
		s = fmt.Sprintf("%v", v)
	}
	if needsQuote(s) {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// log writes one line: ts, level, msg, then the key/value pairs in
// order. An odd trailing key gets the value "?!".
func (l *Logger) log(level, msg string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ts=%s level=%s msg=%s", time.Now().UTC().Format(time.RFC3339Nano), level, formatValue(msg))
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprintf("%v", kv[i])
		val := any("?!")
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		fmt.Fprintf(&b, " %s=%s", key, formatValue(val))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// Info logs one structured line at level info.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv...) }

// Warn logs one structured line at level warn.
func (l *Logger) Warn(msg string, kv ...any) { l.log("warn", msg, kv...) }

// Error logs one structured line at level error.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv...) }

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer — the WAL tail endpoint streams.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.status == 0 {
			w.status = http.StatusOK
		}
		f.Flush()
	}
}

// RouteOf collapses a request path to its bounded route pattern —
// session names are replaced by :name so the route label's cardinality
// is the size of the API surface, not the session population.
func RouteOf(path string) string {
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	// /v1/sessions/{name}[/verb] and the legacy /sessions/{name}[/verb].
	i := 0
	if len(segs) > 0 && segs[0] == "v1" {
		i = 1
	}
	if len(segs) > i+1 && segs[i] == "sessions" && segs[i+1] != "" {
		segs[i+1] = ":name"
	}
	return "/" + strings.Join(segs, "/")
}

// newRequestID returns a 12-hex-digit random request id.
func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-norand"
	}
	return hex.EncodeToString(b[:])
}

// AccessLogOptions configures the request-logging middleware.
type AccessLogOptions struct {
	// Slow is the threshold above which a request additionally logs a
	// level=warn slow-query line; zero disables slow marking.
	Slow time.Duration
	// Metrics, when set, records wf_http_requests_total{route} and
	// wf_http_request_seconds into the registry.
	Metrics *Registry
}

// AccessLog wraps a handler with structured request logging: one line
// per request with request id, method, route, status, bytes and
// duration, plus a slow-query line above the threshold. The request id
// honors an inbound X-Request-Id and is echoed on the response.
func AccessLog(next http.Handler, l *Logger, opts AccessLogOptions) http.Handler {
	var reqs *CounterVec
	var lat *Histogram
	if opts.Metrics != nil {
		reqs = opts.Metrics.CounterVec("wf_http_requests_total", "HTTP requests served, by route.", "route")
		lat = opts.Metrics.Histogram("wf_http_request_seconds", "HTTP request latency.")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := RouteOf(r.URL.Path)
		if reqs != nil {
			reqs.With(route).Inc()
			lat.Observe(dur)
		}
		l.Info("request", "id", id, "method", r.Method, "route", route,
			"path", r.URL.Path, "status", sw.status, "bytes", sw.bytes, "dur", dur)
		if opts.Slow > 0 && dur >= opts.Slow {
			l.Warn("slow request", "id", id, "method", r.Method, "route", route,
				"status", sw.status, "dur", dur, "threshold", opts.Slow)
		}
	})
}
