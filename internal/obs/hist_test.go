package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistBucketsAreMonotone(t *testing.T) {
	// Every nanosecond value maps into a bucket whose range contains
	// it, and bucket indexes never decrease as values grow.
	prev := -1
	for _, ns := range []int64{0, 1, 15, 16, 17, 31, 32, 63, 64, 1000, 4095, 4096,
		1e6, 1e9, 1e12, 1 << 40, 1 << 55, 1<<62 - 1} {
		idx := bucketOf(ns)
		if idx < prev {
			t.Fatalf("bucket index regressed at %d: %d < %d", ns, idx, prev)
		}
		if hi := bucketMax(idx); ns > hi {
			t.Fatalf("value %d above its bucket's max %d (bucket %d)", ns, hi, idx)
		}
		prev = idx
	}
}

func TestHistQuantilesBoundError(t *testing.T) {
	// Against a sorted reference, histogram quantiles must err high by
	// at most one sub-bucket (1/16) and never err low below the exact
	// sample quantile.
	rng := rand.New(rand.NewSource(42))
	var h Hist
	samples := make([]int64, 20000)
	for i := range samples {
		ns := int64(1) << (4 + rng.Intn(24))
		ns += rng.Int63n(ns)
		samples[i] = ns
		h.Add(time.Duration(ns))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
		exact := samples[int(p*float64(len(samples)-1))]
		got := h.Quantile(p).Nanoseconds()
		if got < exact {
			t.Fatalf("q%.2f = %d below the exact %d — a flattering histogram", p, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/16)+1 {
			t.Fatalf("q%.2f = %d more than a sub-bucket above the exact %d", p, got, exact)
		}
	}
	if h.N() != int64(len(samples)) {
		t.Fatalf("N = %d, want %d", h.N(), len(samples))
	}
}

func TestHistEmptyAndExtremes(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram has a nonzero quantile")
	}
	h.Add(0)
	h.Add(time.Duration(1<<62 - 1))
	h.Add(-time.Second) // clock weirdness must not panic or corrupt
	if got := h.Quantile(1); got != time.Duration(1<<62-1) {
		t.Fatalf("max quantile %d", got)
	}
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
}
