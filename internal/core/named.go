package core

import (
	"fmt"

	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// NamedEvent is an execution event identified by module name alone —
// the Section 5.3 setting where the workflow system does not log
// specification-vertex ids and the labeler resolves events "by
// checking module names". It requires the specification to satisfy the
// two naming restrictions (Spec.NameResolvable): distinct names within
// each graph, and globally unique terminal-dummy names.
type NamedEvent struct {
	V     graph.VertexID
	Name  string
	Preds []graph.VertexID
}

// InsertNamed labels one newly executed vertex identified by module
// name. Terminal dummies resolve directly (their names are globally
// unique and identify both the graph and whether a new instance
// starts); interior modules resolve within the candidate instance
// located through the predecessors, where names are unique.
func (e *ExecutionLabeler) InsertNamed(ev NamedEvent) (label.Label, error) {
	if !e.namedChecked {
		if err := e.g.Spec().NameResolvable(); err != nil {
			return label.Label{}, fmt.Errorf("core: name-based insertion unavailable: %w", err)
		}
		e.namedChecked = true
	}
	// Terminal dummy: the name pins down the graph and vertex; sources
	// open instances, sinks close them — both via the ref-based path.
	if ref, _, ok := e.g.Spec().TerminalByName(ev.Name); ok {
		return e.Insert(run.Event{V: ev.V, Ref: ref, Preds: ev.Preds})
	}
	// Interior module: find the open instance whose graph has this
	// name unmaterialized with matching predecessors (condition 1
	// makes the name unique within the instance's graph).
	for _, x := range e.candidates(ev.Preds) {
		sv, err := e.g.Spec().ResolveName(x.Graph, ev.Name)
		if err != nil || x.RunOf[sv] != graph.None {
			continue
		}
		if exp, ok := e.expectedPreds(x, sv); ok && sameIDSet(exp, ev.Preds) {
			return e.bind(x, sv, ev.V), nil
		}
	}
	return label.Label{}, fmt.Errorf("core: no instance accepts module %q (vertex %d)", ev.Name, ev.V)
}

// LabelNamedExecution drives a full name-identified execution through
// a fresh labeler, returning it.
func LabelNamedExecution(g *spec.Grammar, events []NamedEvent, kind skeleton.Kind, mode RMode) (*ExecutionLabeler, error) {
	e := NewExecutionLabeler(g, kind, mode)
	for i := range events {
		if _, err := e.InsertNamed(events[i]); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return e, nil
}
