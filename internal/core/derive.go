package core

import (
	"fmt"

	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/parsetree"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// DerivationLabeler is the derivation-based dynamic labeling scheme of
// Section 5.2: it consumes derivation steps g_{i-1}[u/h] ⇒ g_i, grows
// the explicit parse tree per Algorithm 2, and labels every vertex of
// each inserted subgraph per Algorithm 3, before the next step arrives
// and without ever revising a label.
type DerivationLabeler struct {
	base
}

// NewDerivationLabeler builds a labeler for the grammar using the
// given skeleton scheme and recursion-compression mode.
func NewDerivationLabeler(g *spec.Grammar, kind skeleton.Kind, mode RMode) *DerivationLabeler {
	return &DerivationLabeler{base: newBase(g, kind, mode)}
}

// Start labels the start graph g0: startIDs[v] is the run vertex
// standing for spec vertex v of g0 (run.New assigns 0..n-1). It must
// be called exactly once, before any Apply.
func (d *DerivationLabeler) Start(startIDs []graph.VertexID) error {
	if d.root != nil {
		return fmt.Errorf("core: Start called twice")
	}
	g0 := d.g.Spec().Graph(spec.StartGraph).G
	if len(startIDs) != g0.NumVertices() {
		return fmt.Errorf("core: Start got %d ids for %d vertices", len(startIDs), g0.NumVertices())
	}
	root := d.startRoot()
	for v := range startIDs {
		d.bind(root, graph.VertexID(v), startIDs[v])
	}
	return nil
}

// Apply processes one derivation step (Algorithm 2 plus the labeling
// of Algorithm 3). The step must come from the same run builder that
// drives the ground-truth graph, so its IDs are authoritative.
func (d *DerivationLabeler) Apply(st *run.Step) error {
	if d.root == nil {
		return fmt.Errorf("core: Apply before Start")
	}
	info, ok := d.ctx[st.Target]
	if !ok {
		return fmt.Errorf("core: unknown replacement target %d", st.Target)
	}
	y, sv := info.node, info.sv
	if y.RunOf[sv] != st.Target {
		return fmt.Errorf("core: target %d is not an open composite", st.Target)
	}
	if y.Groups[sv] != nil {
		return fmt.Errorf("core: composite %d already expanded", st.Target)
	}
	ng := d.g.Spec().Graph(st.Impl)
	name := d.graphOf(y).Name(sv)
	if ng.Owner != name {
		return fmt.Errorf("core: graph %s does not implement %s", ng.Label, name)
	}
	kind := d.g.Spec().Kind(name)
	if st.Copies < 1 || len(st.IDs) != st.Copies {
		return fmt.Errorf("core: malformed step (%d copies, %d id rows)", st.Copies, len(st.IDs))
	}
	if st.Copies > 1 && kind != spec.Loop && kind != spec.Fork {
		return fmt.Errorf("core: %d copies for plain module %s", st.Copies, name)
	}

	uLabel := d.MustLabel(st.Target)
	isRecursive := d.designatedOf(y.Graph) == sv && sv != graph.None

	switch {
	case isRecursive:
		// Algorithm 2, lines 26-29: the expansion extends the recursion
		// chain as the next child of the enclosing R node.
		rx := y.Parent
		if rx == nil || rx.Kind != label.R {
			return fmt.Errorf("core: recursive vertex outside an R chain")
		}
		x := rx.AddInstance(st.Impl, ng.G.NumVertices(), rx.NextIndex())
		x.Prefix = rx.Prefix
		x.SlotParent, x.SlotVertex = y, sv
		y.Groups[sv] = x
		d.populate(x, st.IDs[0])

	case kind == spec.Loop || kind == spec.Fork:
		// Algorithm 2, lines 6-13: one special L/F node whose children
		// are the copies. A single-copy execution still gets its group
		// node, so the tree shape does not depend on knowing the copy
		// count in advance (which the execution-based variant cannot).
		t := label.L
		if kind == spec.Fork {
			t = label.F
		}
		gx := y.AddSpecial(t, parsetree.SlotIndex(sv))
		gx.Prefix = uLabel.Append(specialEntry(gx))
		y.Groups[sv] = gx
		for c := 0; c < st.Copies; c++ {
			x := gx.AddInstance(st.Impl, ng.G.NumVertices(), gx.NextIndex())
			x.Prefix = gx.Prefix
			x.SlotParent, x.SlotVertex = y, sv
			d.populate(x, st.IDs[c])
		}

	case d.designatedOf(st.Impl) != graph.None:
		// Algorithm 2, lines 15-18: the implementation opens a linear
		// recursion, so wrap it in a fresh R node.
		rx := y.AddSpecial(label.R, parsetree.SlotIndex(sv))
		rx.Prefix = uLabel.Append(specialEntry(rx))
		y.Groups[sv] = rx
		x := rx.AddInstance(st.Impl, ng.G.NumVertices(), rx.NextIndex())
		x.Prefix = rx.Prefix
		x.SlotParent, x.SlotVertex = y, sv
		d.populate(x, st.IDs[0])

	default:
		// Algorithm 2, line 20: a plain replacement.
		x := y.AddInstance(st.Impl, ng.G.NumVertices(), parsetree.SlotIndex(sv))
		x.Prefix = uLabel
		x.SlotParent, x.SlotVertex = y, sv
		y.Groups[sv] = x
		d.populate(x, st.IDs[0])
	}

	// The composite vertex's label is kept: Remark 1 — replacements
	// preserve reachability among existing vertices, so labels issued
	// for intermediate graphs stay valid and queryable.
	return nil
}

// populate materializes and labels every vertex of a fresh instance.
func (d *DerivationLabeler) populate(x *parsetree.Node, ids []graph.VertexID) {
	gg := d.graphOf(x)
	for v := 0; v < gg.NumVertices(); v++ {
		d.bind(x, graph.VertexID(v), ids[v])
	}
}

// LabelRun is a convenience driver: it generates labels for an entire
// prebuilt derivation (Start plus every recorded step), returning the
// labeler. Useful for tests and benchmarks that already hold a
// completed run.
func LabelRun(r *run.Run, kind skeleton.Kind, mode RMode) (*DerivationLabeler, error) {
	d := NewDerivationLabeler(r.Grammar, kind, mode)
	if err := d.Start(r.StartIDs); err != nil {
		return nil, err
	}
	for i := range r.Steps {
		if err := d.Apply(&r.Steps[i]); err != nil {
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
	}
	return d, nil
}
