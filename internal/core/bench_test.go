package core_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/label"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func benchSetup(b *testing.B, size int) (*spec.Grammar, *run.Run, []run.Event) {
	b.Helper()
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: size, Seed: 7})
	evs, err := r.Execution(nil)
	if err != nil {
		b.Fatal(err)
	}
	return g, r, evs
}

// BenchmarkPi measures the query predicate on prefetched labels: the
// paper's constant-time claim at the nanosecond scale.
func BenchmarkPi(b *testing.B) {
	_, r, _ := benchSetup(b, 8192)
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		b.Fatal(err)
	}
	live := r.Graph.LiveVertices()
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]label.Label, 4096)
	for i := range pairs {
		pairs[i] = [2]label.Label{
			d.MustLabel(live[rng.Intn(len(live))]),
			d.MustLabel(live[rng.Intn(len(live))]),
		}
	}
	skel := d.Skeleton()
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sink = sink != core.Pi(skel, p[0], p[1])
	}
	_ = sink
}

// BenchmarkDerivationLabeling measures end-to-end derivation-based
// labeling throughput (per run vertex).
func BenchmarkDerivationLabeling(b *testing.B) {
	_, r, _ := benchSetup(b, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(r.Size()), "ns/vertex")
}

// BenchmarkExecutionInsert measures per-insertion cost of the
// execution-based labeler (the paper's O(1)-per-insertion claim).
func BenchmarkExecutionInsert(b *testing.B) {
	g, _, evs := benchSetup(b, 8192)
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		if _, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated); err != nil {
			b.Fatal(err)
		}
		events += len(evs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/insert")
}
