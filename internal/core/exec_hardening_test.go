package core_test

import (
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// TestInsertDuplicateVertexErrors: replaying an event must be an
// error, not a panic (labels are immutable).
func TestInsertDuplicateVertexErrors(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 60, Seed: 1})
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewExecutionLabeler(g, skeleton.TCL, core.RModeDesignated)
	if _, err := e.Insert(evs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(evs[0]); err == nil {
		t.Fatal("duplicate insertion accepted")
	}
}

// TestInsertOutOfOrderErrors: an event whose predecessors have not
// been inserted yet (a non-topological stream) is rejected cleanly.
func TestInsertOutOfOrderErrors(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 60, Seed: 2})
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewExecutionLabeler(g, skeleton.TCL, core.RModeDesignated)
	if _, err := e.Insert(evs[0]); err != nil {
		t.Fatal(err)
	}
	// Skip ahead: evs[5]'s predecessors are missing.
	if _, err := e.Insert(evs[5]); err == nil {
		t.Fatal("out-of-order insertion accepted")
	}
	// The labeler remains usable afterwards.
	for _, ev := range evs[1:] {
		if _, err := e.Insert(ev); err != nil {
			t.Fatalf("recovery failed at %d: %v", ev.V, err)
		}
	}
}

// TestInsertForeignEventErrors: an event from a different grammar's
// run cannot attach anywhere.
func TestInsertForeignEventErrors(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 60, Seed: 3})
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewExecutionLabeler(g, skeleton.TCL, core.RModeDesignated)
	if _, err := e.Insert(evs[0]); err != nil {
		t.Fatal(err)
	}
	// A vertex claiming to be h5's interior with the root as its
	// predecessor: no instance of h5 is open.
	h5 := g.Spec().Implementations("B")[0]
	bogus := run.Event{V: 9999, Ref: spec.VertexRef{Graph: h5, V: 1}, Preds: evs[0].Preds}
	if _, err := e.Insert(bogus); err == nil {
		t.Fatal("foreign event accepted")
	}
}

// TestLabelNamedExecutionErrorPropagation: the driver surfaces event
// indexes in errors.
func TestLabelNamedExecutionErrorPropagation(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	bad := []core.NamedEvent{{V: 0, Name: "t0"}} // sink before source
	if _, err := core.LabelNamedExecution(g, bad, skeleton.TCL, core.RModeDesignated); err == nil {
		t.Fatal("execution starting at the sink accepted")
	}
}
