package core_test

import (
	"wfreach/internal/label"
	"wfreach/internal/spec"
)

func labelCodec(g *spec.Grammar) *label.Codec { return label.NewCodec(g) }

func labelOf(entries ...label.Entry) label.Label {
	l := label.Label{}
	for _, e := range entries {
		l = l.Append(e)
	}
	return l
}
