package core_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// paperDerivation reproduces the derivation of Figure 5 on the running
// example: L expands to two series copies of h1; the first copy's F
// expands to two parallel copies of h2; the first h2's A recurses
// through h3 → h6 → h4; remaining composites finish minimally.
func paperDerivation(t *testing.T) (*run.Run, *core.DerivationLabeler) {
	t.Helper()
	g := spec.MustCompile(wfspecs.RunningExample())
	s := g.Spec()
	impl := func(name string, i int) spec.GraphID { return s.Implementations(name)[i] }
	r := run.New(g)
	d := core.NewDerivationLabeler(g, skeleton.TCL, core.RModeDesignated)
	if err := d.Start(r.StartIDs); err != nil {
		t.Fatal(err)
	}
	apply := func(u graph.VertexID, id spec.GraphID, copies int) *run.Step {
		st, err := r.Apply(u, id, copies)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Apply(st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	// u1 = the L vertex of g0.
	stL := apply(r.StartIDs[1], impl("L", 0), 2)
	// First copy's F → P(h2, h2); second copy's F → single h2.
	stF1 := apply(stL.IDs[0][1], impl("F", 0), 2)
	apply(stL.IDs[1][1], impl("F", 0), 1)
	// First h2 copy's A → h3 (recursion opens).
	stA := apply(stF1.IDs[0][1], impl("A", 0), 1)
	// h3's B → h5; h3's C → h6; h6's A → h4 (recursion closes).
	apply(stA.IDs[0][1], impl("B", 0), 1)
	stC := apply(stA.IDs[0][2], impl("C", 0), 1)
	apply(stC.IDs[0][1], impl("A", 1), 1)
	// Remaining open composites: second h2 copy's A, second loop copy's
	// F's A — close them with h4.
	for !r.Complete() {
		u := r.Open()[0]
		apply(u, impl(r.NameOf(u), 1), 1)
	}
	return r, d
}

func TestPaperDerivationShape(t *testing.T) {
	r, d := paperDerivation(t)
	// Figure 3 numbers 18 of the run's vertices and elides the second
	// fork copy's interior ("we show only the detailed execution for
	// one copy of h2"); the fully expanded run has 24 atomic vertices
	// under this derivation.
	if got := r.Size(); got != 24 {
		t.Fatalf("run size = %d, want 24", got)
	}
	// Explicit parse tree of Figure 9: the deepest path is root → L →
	// h1-copy → F → h2-copy → R → h3-member → B-expansion: 8 levels.
	tree := d.Tree()
	if got := tree.Depth(); got != 8 {
		t.Fatalf("tree depth = %d levels, want 8", got)
	}
	// Lemma 4.1: depth as edge count ≤ 2|Σ\Δ| = 10.
	if tree.Depth()-1 > 10 {
		t.Fatal("Lemma 4.1 depth bound violated")
	}
}

// findByName returns run vertices with the given module name in id
// order.
func findByName(r *run.Run, name string) []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < r.Graph.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if !r.Graph.IsTombstone(vid) && r.NameOf(vid) == name {
			out = append(out, vid)
		}
	}
	return out
}

// TestExample11Queries checks the four query cases the paper walks
// through (Examples 11 and 13) on the Figure 3 run:
// v5 ; v16 (L case), v5 vs v13 (F case), v5 ; v8 (R case),
// v5 ; v11 (N case).
func TestExample11Queries(t *testing.T) {
	r, d := paperDerivation(t)
	v5 := findByName(r, "s5")[0]  // source of h5 (B's expansion)
	v8 := findByName(r, "s4")[0]  // source of the inner h4 (recursion)
	v16 := findByName(r, "s1")[1] // source of the second loop copy
	v11 := findByName(r, "t3")[0] // sink of h3
	// v13: a vertex of the second (parallel) h2 copy: its s2.
	v13 := findByName(r, "s2")[1]

	cases := []struct {
		name string
		a, b graph.VertexID
		want bool
	}{
		{"L-case v5;v16", v5, v16, true},
		{"L-case v16;v5", v16, v5, false},
		{"F-case v5;v13", v5, v13, false},
		{"F-case v13;v5", v13, v5, false},
		{"R-case v5;v8", v5, v8, true},
		{"R-case v8;v5", v8, v5, false},
		{"N-case v5;v11", v5, v11, true},
		{"N-case v11;v5", v11, v5, false},
	}
	for _, c := range cases {
		if got := d.Reach(c.a, c.b); got != c.want {
			t.Errorf("%s: π = %v, want %v", c.name, got, c.want)
		}
		// Ground truth agrees.
		if truth := r.Graph.Reaches(c.a, c.b); truth != c.want {
			t.Errorf("%s: ground truth %v disagrees with the paper", c.name, truth)
		}
	}
}

// TestExample12LabelStructure checks φ_g(v5)'s entry structure from
// Example 12: eight entries with types N,L,N,F,N,R,N,N; the h3-level
// entry carries rec flags (true, false) because B reaches C but not
// vice versa; the final entry points at s5 of h5.
func TestExample12LabelStructure(t *testing.T) {
	r, d := paperDerivation(t)
	s := r.Grammar.Spec()
	v5 := findByName(r, "s5")[0]
	l := d.MustLabel(v5)
	wantTypes := []string{"N", "L", "N", "F", "N", "R", "N", "N"}
	if l.Len() != len(wantTypes) {
		t.Fatalf("φ(v5) has %d entries, want %d: %s", l.Len(), len(wantTypes), l)
	}
	for i, w := range wantTypes {
		if l.Entries[i].Type.String() != w {
			t.Fatalf("entry %d type %s, want %s (%s)", i, l.Entries[i].Type, w, l)
		}
	}
	// Loop and fork copies are the first of their groups.
	if l.Entries[2].Index != 1 || l.Entries[4].Index != 1 || l.Entries[6].Index != 1 {
		t.Fatalf("copy indexes wrong: %s", l)
	}
	// Entry(x6, u4): origin is the B vertex of h3 with rec1 = B;C = true,
	// rec2 = C;B = false.
	e6 := l.Entries[6]
	h3 := s.Implementations("A")[0]
	if e6.Skl.Graph != h3 || s.Graph(h3).G.Name(e6.Skl.V) != "B" {
		t.Fatalf("entry 6 origin wrong: %s", l)
	}
	if !e6.HasRec || !e6.Rec1 || e6.Rec2 {
		t.Fatalf("entry 6 rec flags = (%v,%v,%v), want (true,true,false)", e6.HasRec, e6.Rec1, e6.Rec2)
	}
	// Final entry: s5 of h5, no rec flags.
	e7 := l.Entries[7]
	h5 := s.Implementations("B")[0]
	if e7.Skl.Graph != h5 || s.Graph(h5).G.Name(e7.Skl.V) != "s5" || e7.HasRec {
		t.Fatalf("entry 7 wrong: %s", l)
	}
	// φ(v16) = three entries: root, L node, copy-2 member.
	v16 := findByName(r, "s1")[1]
	l16 := d.MustLabel(v16)
	if l16.Len() != 3 || l16.Entries[1].Type.String() != "L" || l16.Entries[2].Index != 2 {
		t.Fatalf("φ(v16) = %s", l16)
	}
}

// verifyAllPairs checks π against BFS ground truth for every ordered
// pair of live vertices.
func verifyAllPairs(t *testing.T, r *run.Run, reach func(v, w graph.VertexID) bool, tag string) {
	t.Helper()
	live := r.Graph.LiveVertices()
	for _, v := range live {
		for _, w := range live {
			want := r.Graph.Reaches(v, w)
			if got := reach(v, w); got != want {
				t.Fatalf("%s: π(%d→%d) = %v, truth %v (names %s→%s)",
					tag, v, w, got, want, r.NameOf(v), r.NameOf(w))
			}
		}
	}
}

func TestPaperDerivationAllPairs(t *testing.T) {
	r, d := paperDerivation(t)
	verifyAllPairs(t, r, d.Reach, "running-example")
}

// testSpecs is the grammar zoo for property tests.
func testSpecs() map[string]*spec.Grammar {
	return map[string]*spec.Grammar{
		"running":       spec.MustCompile(wfspecs.RunningExample()),
		"bioaid":        spec.MustCompile(wfspecs.BioAID()),
		"bioaid-nonrec": spec.MustCompile(wfspecs.BioAIDNonRecursive()),
		"fig12":         spec.MustCompile(wfspecs.Fig12()),
		"synthetic": spec.MustCompile(wfspecs.Synthetic(
			wfspecs.SyntheticParams{SubSize: 8, Depth: 5, RecModules: 1, Seed: 5})),
	}
}

func TestDerivationAllPairsAcrossGrammars(t *testing.T) {
	for name, g := range testSpecs() {
		for seed := int64(0); seed < 4; seed++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: 120, Seed: seed})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatalf("%s/seed%d: %v", name, seed, err)
			}
			verifyAllPairs(t, r, d.Reach, name)
		}
	}
}

func TestDerivationWithBFSSkeleton(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 150, Seed: 7})
	d, err := core.LabelRun(r, skeleton.BFS, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	verifyAllPairs(t, r, d.Reach, "bfs-skeleton")
}

func TestExecutionMatchesDerivationLabels(t *testing.T) {
	for name, g := range testSpecs() {
		for seed := int64(0); seed < 3; seed++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: 100, Seed: seed})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatal(err)
			}
			evs, err := r.Execution(nil)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.LabelExecution(r.Grammar, evs, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatalf("%s/seed%d: %v", name, seed, err)
			}
			for _, v := range r.Graph.LiveVertices() {
				dl := d.MustLabel(v)
				el, ok := e.Label(v)
				if !ok {
					t.Fatalf("%s: execution labeler missed vertex %d", name, v)
				}
				if !dl.Equal(el) {
					t.Fatalf("%s/seed%d: labels differ for %d (%s):\n deriv: %s\n  exec: %s",
						name, seed, v, r.NameOf(v), dl, el)
				}
			}
		}
	}
}

func TestExecutionRandomOrderCorrect(t *testing.T) {
	for name, g := range testSpecs() {
		for seed := int64(0); seed < 3; seed++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: 90, Seed: seed})
			rng := rand.New(rand.NewSource(seed * 31))
			evs, err := r.Execution(rng)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.LabelExecution(r.Grammar, evs, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatalf("%s/seed%d: %v", name, seed, err)
			}
			verifyAllPairs(t, r, e.Reach, name+"-random-exec")
		}
	}
}

// TestIntermediateGraphValidity checks the dynamic guarantee of
// Definition 9: after every derivation step, the labels issued so far
// answer reachability correctly on the intermediate graph — including
// for composite vertices that will later be replaced (Remark 1).
func TestIntermediateGraphValidity(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := run.New(g)
	d := core.NewDerivationLabeler(g, skeleton.TCL, core.RModeDesignated)
	if err := d.Start(r.StartIDs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	check := func() {
		live := r.Graph.LiveVertices()
		for k := 0; k < 200; k++ {
			v := live[rng.Intn(len(live))]
			w := live[rng.Intn(len(live))]
			want := r.Graph.Reaches(v, w)
			if got := d.Reach(v, w); got != want {
				t.Fatalf("intermediate graph: π(%d→%d)=%v, truth %v", v, w, got, want)
			}
		}
	}
	check()
	for !r.Complete() {
		u := r.Open()[rng.Intn(len(r.Open()))]
		impls := g.Spec().Implementations(r.NameOf(u))
		impl := impls[rng.Intn(len(impls))]
		copies := 1
		if k := g.Spec().Kind(r.NameOf(u)); (k == spec.Loop || k == spec.Fork) && r.Size() < 80 {
			copies = 1 + rng.Intn(3)
		}
		st, err := r.Apply(u, impl, copies)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Apply(st); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

// TestExecutionIntermediateValidity does the same for the
// execution-based labeler: after every insertion, all labeled pairs
// answer correctly on the inserted-so-far subgraph.
func TestExecutionIntermediateValidity(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 60, Seed: 3})
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewExecutionLabeler(g, skeleton.TCL, core.RModeDesignated)
	var inserted []graph.VertexID
	rng := rand.New(rand.NewSource(5))
	for _, ev := range evs {
		if _, err := e.Insert(ev); err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, ev.V)
		for k := 0; k < 30; k++ {
			v := inserted[rng.Intn(len(inserted))]
			w := inserted[rng.Intn(len(inserted))]
			// Ground truth on the final graph equals truth on the
			// prefix graph for already-inserted vertices (insertions
			// preserve reachability).
			want := r.Graph.Reaches(v, w)
			if got := e.Reach(v, w); got != want {
				t.Fatalf("after inserting %d: π(%d→%d)=%v, want %v", ev.V, v, w, got, want)
			}
		}
	}
}

// TestLabelImmutability: labels captured right after assignment equal
// the labels at the end of the run.
func TestLabelImmutability(t *testing.T) {
	g := spec.MustCompile(wfspecs.BioAID())
	r := run.New(g)
	d := core.NewDerivationLabeler(g, skeleton.TCL, core.RModeDesignated)
	if err := d.Start(r.StartIDs); err != nil {
		t.Fatal(err)
	}
	early := make(map[graph.VertexID]string)
	snap := func(ids []graph.VertexID) {
		for _, v := range ids {
			early[v] = d.MustLabel(v).String()
		}
	}
	snap(r.StartIDs)
	rng := rand.New(rand.NewSource(17))
	for !r.Complete() {
		u := r.Open()[0]
		impls := g.Spec().Implementations(r.NameOf(u))
		st, err := r.Apply(u, impls[rng.Intn(len(impls))], 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Apply(st); err != nil {
			t.Fatal(err)
		}
		for _, row := range st.IDs {
			snap(row)
		}
	}
	for v, want := range early {
		if got := d.MustLabel(v).String(); got != want {
			t.Fatalf("label of %d changed from %s to %s", v, want, got)
		}
	}
}

func TestNonlinearFig6BothModes(t *testing.T) {
	g := spec.MustCompile(wfspecs.Fig6())
	for _, mode := range []core.RMode{core.RModeDesignated, core.RModeNone} {
		for seed := int64(0); seed < 5; seed++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: 80, Seed: seed})
			d, err := core.LabelRun(r, skeleton.TCL, mode)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			verifyAllPairs(t, r, d.Reach, "fig6-"+mode.String())
			// Execution-based too.
			evs, _ := r.Execution(nil)
			e, err := core.LabelExecution(g, evs, skeleton.TCL, mode)
			if err != nil {
				t.Fatalf("fig6 exec mode %v: %v", mode, err)
			}
			verifyAllPairs(t, r, e.Reach, "fig6-exec-"+mode.String())
		}
	}
}

func TestNonlinearSyntheticBothModes(t *testing.T) {
	g := spec.MustCompile(wfspecs.Synthetic(
		wfspecs.SyntheticParams{SubSize: 7, Depth: 4, RecModules: 2, Seed: 11}))
	for _, mode := range []core.RMode{core.RModeDesignated, core.RModeNone} {
		r := gen.MustGenerate(g, gen.Options{TargetSize: 150, Seed: 2})
		d, err := core.LabelRun(r, skeleton.TCL, mode)
		if err != nil {
			t.Fatal(err)
		}
		verifyAllPairs(t, r, d.Reach, "nonlinear-"+mode.String())
	}
}

func TestRModeNoneOnLinearGrammar(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 120, Seed: 13})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeNone)
	if err != nil {
		t.Fatal(err)
	}
	verifyAllPairs(t, r, d.Reach, "linear-noR")
}

// TestLemma41DepthBound: for linear recursive grammars the explicit
// parse tree depth (edge count) is at most 2|Σ\Δ|, independent of run
// size.
func TestLemma41DepthBound(t *testing.T) {
	for name, g := range testSpecs() {
		if !g.IsLinearRecursive() {
			continue
		}
		composites := len(g.Spec().CompositeNames())
		for _, size := range []int{50, 400, 2000} {
			r := gen.MustGenerate(g, gen.Options{TargetSize: size, Seed: int64(size)})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatal(err)
			}
			depth := d.Tree().Depth() - 1 // edges
			if depth > 2*composites {
				t.Fatalf("%s size %d: depth %d > 2|Σ\\Δ| = %d", name, size, depth, 2*composites)
			}
		}
	}
}

// TestTheorem3LengthBound: every label has at most d_t entries and at
// most d_t·(log θ_t + log n_G + c) bits under the canonical encoding.
func TestTheorem3LengthBound(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 3000, Seed: 21})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	tree := d.Tree()
	dt := tree.Depth()
	theta := tree.MaxFanout()
	logTheta := 1
	for 1<<logTheta < theta {
		logTheta++
	}
	cod := labelCodec(g)
	bound := dt * (logTheta + g.PointerBits() + 10)
	for _, v := range r.Graph.LiveVertices() {
		l := d.MustLabel(v)
		if l.Len() > dt {
			t.Fatalf("label has %d entries, tree depth %d", l.Len(), dt)
		}
		if bits := cod.BitLen(l); bits > bound {
			t.Fatalf("label %d bits exceeds Theorem 3 bound %d", bits, bound)
		}
	}
}

func TestDerivationLabelerErrors(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := run.New(g)
	d := core.NewDerivationLabeler(g, skeleton.TCL, core.RModeDesignated)
	h1 := g.Spec().Implementations("L")[0]
	st, _ := r.Apply(r.StartIDs[1], h1, 1)
	if err := d.Apply(st); err == nil {
		t.Fatal("Apply before Start accepted")
	}
	// Fresh pair for the remaining error cases.
	r2 := run.New(g)
	d2 := core.NewDerivationLabeler(g, skeleton.TCL, core.RModeDesignated)
	if err := d2.Start(r2.StartIDs); err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(r2.StartIDs); err == nil {
		t.Fatal("double Start accepted")
	}
	st2, _ := r2.Apply(r2.StartIDs[1], h1, 2)
	if err := d2.Apply(st2); err != nil {
		t.Fatal(err)
	}
	if err := d2.Apply(st2); err == nil {
		t.Fatal("double Apply accepted")
	}
	bogus := *st2
	bogus.Target = 999
	if err := d2.Apply(&bogus); err == nil {
		t.Fatal("unknown target accepted")
	}
	short := *st2
	short.Copies = 3
	if err := d2.Apply(&short); err == nil {
		t.Fatal("mismatched id rows accepted")
	}
}

func TestExecutionLabelerErrors(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	e := core.NewExecutionLabeler(g, skeleton.TCL, core.RModeDesignated)
	// Must start with g0's source.
	bad := run.Event{V: 0, Ref: spec.VertexRef{Graph: 1, V: 0}}
	if _, err := e.Insert(bad); err == nil {
		t.Fatal("execution starting off g0 accepted")
	}
	ok := run.Event{V: 0, Ref: spec.VertexRef{Graph: 0, V: 0}}
	if _, err := e.Insert(ok); err != nil {
		t.Fatal(err)
	}
	// A second parentless vertex is invalid.
	if _, err := e.Insert(run.Event{V: 1, Ref: spec.VertexRef{Graph: 0, V: 2}}); err == nil {
		t.Fatal("parentless non-source accepted")
	}
	// Unknown graph/vertex refs.
	if _, err := e.Insert(run.Event{V: 2, Ref: spec.VertexRef{Graph: 99, V: 0}, Preds: []graph.VertexID{0}}); err == nil {
		t.Fatal("unknown graph accepted")
	}
	if _, err := e.Insert(run.Event{V: 2, Ref: spec.VertexRef{Graph: 0, V: 99}, Preds: []graph.VertexID{0}}); err == nil {
		t.Fatal("unknown vertex accepted")
	}
	// An event whose predecessors match nothing.
	if _, err := e.Insert(run.Event{V: 3, Ref: spec.VertexRef{Graph: 2, V: 0}, Preds: []graph.VertexID{0}}); err == nil {
		t.Fatal("unattachable source accepted")
	}
}

func TestPiPanicsOnEmptyLabel(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	sch := skeleton.New(skeleton.TCL, g)
	defer func() {
		if recover() == nil {
			t.Fatal("π on empty label must panic")
		}
	}()
	core.Pi(sch, labelOf(), labelOf())
}

func TestLabelAccessors(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 40, Seed: 1})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Label(9999); ok {
		t.Fatal("label for unknown vertex")
	}
	if d.LabelCount() == 0 || d.Grammar() != g || d.Skeleton() == nil {
		t.Fatal("accessors broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLabel of unknown vertex must panic")
		}
	}()
	d.MustLabel(9999)
}

func TestRModeString(t *testing.T) {
	if core.RModeDesignated.String() != "designated-R" || core.RModeNone.String() != "no-R" {
		t.Fatal("RMode strings wrong")
	}
}
