package core

import (
	"wfreach/internal/label"
	"wfreach/internal/skeleton"
)

// Pi is the binary predicate of Algorithm 4: given the reachability
// labels of two run vertices v and v′, it reports v ;* v′ using only
// the labels and the skeleton scheme. It runs in O(d_t) time — O(1)
// for a fixed grammar (Theorem 3, part 3).
//
// The two labels share a prefix of entries describing their common
// ancestors in the explicit parse tree (indexes uniquely identify tree
// paths). Let i be the last position where the index paths agree: the
// node at i is the least common ancestor of the two contexts, and its
// type dispatches Lemma 4.2's four cases:
//
//	L: v reaches v′ iff v's loop copy precedes v′'s;
//	F: distinct fork copies never reach each other;
//	R: the recursion flags of the shallower chain member decide;
//	N: the skeleton labels of the two origins decide.
func Pi(skel *skeleton.Scheme, lv, lw label.Label) bool {
	ev, ew := lv.Entries, lw.Entries
	if len(ev) == 0 || len(ew) == 0 {
		panic("core: π on an empty label")
	}
	// Find i: indexes at i agree, indexes at i+1 differ (out-of-range
	// counts as a mismatch against any real index, and as agreement
	// against another out-of-range — the equal-path case).
	i := 0
	for {
		ia, okA := indexAt(ev, i+1)
		ib, okB := indexAt(ew, i+1)
		if okA != okB || (okA && okB && ia != ib) {
			break // paths diverge after position i
		}
		if !okA && !okB {
			break // identical index paths: i is the last position
		}
		i++
	}

	switch ev[i].Type {
	case label.L:
		// Both labels continue below the L node (run vertices never
		// live on special nodes), in distinct copies.
		return ev[i+1].Index < ew[i+1].Index
	case label.F:
		return false
	case label.R:
		// Lemma 4.2, R case: everything in a later chain member is
		// derived from the designated recursive vertex w of any earlier
		// member; rec1/rec2 pre-encode origin-vs-w reachability.
		if ev[i+1].Index < ew[i+1].Index {
			if !ev[i+1].HasRec {
				panic("core: earlier recursion-chain member lacks flags")
			}
			return ev[i+1].Rec1
		}
		if !ew[i+1].HasRec {
			panic("core: earlier recursion-chain member lacks flags")
		}
		return ew[i+1].Rec2
	default: // label.N
		// The LCA is an instance; both entries carry the origins'
		// skeleton pointers into the same specification graph.
		return skel.Pi(ev[i].Skl, ew[i].Skl)
	}
}

func indexAt(entries []label.Entry, i int) (int32, bool) {
	if i >= len(entries) {
		return -1, false
	}
	return entries[i].Index, true
}
