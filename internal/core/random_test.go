package core_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// TestRandomLinearGrammarsProperty is the correctness hammer: across
// many randomly generated well-formed linear-recursive grammars and
// random runs, π must agree with BFS ground truth for all pairs, the
// execution labeler must reproduce the derivation labels, and both
// skeleton schemes must agree.
func TestRandomLinearGrammarsProperty(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		p := wfspecs.RandomParams{
			Plain:        int(seed % 4),
			Loops:        int(seed % 3),
			Forks:        int((seed + 1) % 3),
			RecursionLen: int(seed % 4), // 0..3: none, self, pair, triple
			MaxGraphSize: 5 + int(seed%5),
			Seed:         seed * 1013,
		}
		s := wfspecs.RandomSpec(p)
		g, err := spec.Compile(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.IsLinearRecursive() {
			t.Fatalf("seed %d: RandomSpec produced a %v grammar", seed, g.Class())
		}
		r := gen.MustGenerate(g, gen.Options{TargetSize: 90, Seed: seed})
		d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dBFS, err := core.LabelRun(r, skeleton.BFS, core.RModeDesignated)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		evs, err := r.Execution(nil)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			t.Fatalf("seed %d (execution): %v", seed, err)
		}
		live := r.Graph.LiveVertices()
		for _, v := range live {
			el, ok := e.Label(v)
			if !ok || !el.Equal(d.MustLabel(v)) {
				t.Fatalf("seed %d: execution label differs for %d", seed, v)
			}
			for _, w := range live {
				want := r.Graph.Reaches(v, w)
				if d.Reach(v, w) != want {
					t.Fatalf("seed %d: TCL π(%d,%d) != truth %v", seed, v, w, want)
				}
				if dBFS.Reach(v, w) != want {
					t.Fatalf("seed %d: BFS π(%d,%d) != truth %v", seed, v, w, want)
				}
			}
		}
	}
}

// TestRandomNonlinearGrammarsProperty exercises the Section 6
// adaptation on random nonlinear grammars, in both compression modes,
// with depth-first and breadth-first derivations.
func TestRandomNonlinearGrammarsProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := wfspecs.RandomParams{
			Plain:        int(seed % 3),
			Loops:        int(seed % 2),
			Forks:        int(seed % 2),
			RecursionLen: 1 + int(seed%3),
			NonlinearRec: true,
			MaxGraphSize: 6,
			Seed:         seed * 509,
		}
		s := wfspecs.RandomSpec(p)
		g, err := spec.Compile(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.IsLinearRecursive() {
			t.Fatalf("seed %d: expected nonlinear grammar", seed)
		}
		for _, mode := range []core.RMode{core.RModeDesignated, core.RModeNone} {
			for _, deep := range []bool{false, true} {
				r := gen.MustGenerate(g, gen.Options{TargetSize: 70, Seed: seed, DepthFirst: deep})
				d, err := core.LabelRun(r, skeleton.TCL, mode)
				if err != nil {
					t.Fatalf("seed %d mode %v: %v", seed, mode, err)
				}
				live := r.Graph.LiveVertices()
				for _, v := range live {
					for _, w := range live {
						if d.Reach(v, w) != r.Graph.Reaches(v, w) {
							t.Fatalf("seed %d mode %v deep=%v: π(%d,%d) wrong", seed, mode, deep, v, w)
						}
					}
				}
			}
		}
	}
}

// TestRandomGrammarsRandomExecutionOrders stresses the execution
// labeler's inference under arbitrary topological insertion orders.
func TestRandomGrammarsRandomExecutionOrders(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := wfspecs.RandomSpec(wfspecs.RandomParams{
			Plain: 2, Loops: 1, Forks: 1, RecursionLen: 2,
			MaxGraphSize: 6, Seed: seed * 37,
		})
		g := spec.MustCompile(s)
		r := gen.MustGenerate(g, gen.Options{TargetSize: 80, Seed: seed})
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(trial)))
			evs, err := r.Execution(rng)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			live := r.Graph.LiveVertices()
			for k := 0; k < 600; k++ {
				v := live[rng.Intn(len(live))]
				w := live[rng.Intn(len(live))]
				if e.Reach(v, w) != r.Graph.Reaches(v, w) {
					t.Fatalf("seed %d trial %d: π(%d,%d) wrong", seed, trial, v, w)
				}
			}
		}
	}
}

// TestNamedEventResolution: the Section 5.3 name-based variant
// reproduces the ref-based labels exactly on name-resolvable specs.
func TestNamedEventResolution(t *testing.T) {
	for _, s := range []*spec.Spec{wfspecs.RunningExample(), wfspecs.BioAID()} {
		g := spec.MustCompile(s)
		for seed := int64(0); seed < 3; seed++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: 120, Seed: seed})
			evs, err := r.Execution(nil)
			if err != nil {
				t.Fatal(err)
			}
			named := make([]core.NamedEvent, len(evs))
			for i, ev := range evs {
				named[i] = core.NamedEvent{V: ev.V, Name: r.NameOf(ev.V), Preds: ev.Preds}
			}
			e, err := core.LabelNamedExecution(g, named, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range r.Graph.LiveVertices() {
				el, ok := e.Label(v)
				if !ok || !el.Equal(d.MustLabel(v)) {
					t.Fatalf("named labels differ for %d (%s)", v, r.NameOf(v))
				}
			}
		}
	}
}

// TestNamedEventRejectsUnresolvableSpec: Figure 6 repeats names, so
// name-based insertion must refuse it.
func TestNamedEventRejectsUnresolvableSpec(t *testing.T) {
	g := spec.MustCompile(wfspecs.Fig6())
	e := core.NewExecutionLabeler(g, skeleton.TCL, core.RModeDesignated)
	_, err := e.InsertNamed(core.NamedEvent{V: 0, Name: "s0"})
	if err == nil {
		t.Fatal("unresolvable spec accepted")
	}
}

// TestNamedEventUnknownName: a bogus module name cannot be resolved.
func TestNamedEventUnknownName(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	e := core.NewExecutionLabeler(g, skeleton.TCL, core.RModeDesignated)
	if _, err := e.InsertNamed(core.NamedEvent{V: 0, Name: "s0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertNamed(core.NamedEvent{V: 1, Name: "zzz", Preds: []graph.VertexID{0}}); err == nil {
		t.Fatal("unknown module name accepted")
	}
}
