// Package core implements DRL, the paper's dynamic reachability
// labeling scheme for workflow runs: the derivation-based labeler
// (Algorithms 2 and 3), the execution-based labeler (Section 5.3), and
// the query predicate π (Algorithm 4). For linear recursive grammars
// labels are O(log n) bits, labeling a run takes linear total time,
// and queries take constant time (Theorem 3). Nonlinear recursive
// grammars are supported through the Section 6 adaptation, at the cost
// of linear-size labels in the worst case (Theorem 1).
//
// # Thread safety
//
// Labelers are single-writer: Insert, InsertNamed, Start and Apply mutate
// the parse tree and must be called from one goroutine (or externally
// serialized). Everything a labeler hands out is safe to share across
// goroutines once returned: labels are immutable (Section 2.4 — a
// vertex is labeled exactly once, at insertion, and the label never
// changes), and the skeleton.Scheme plus the grammar are read-only
// after construction, so Pi may be evaluated concurrently on
// previously issued labels while new vertices are still being
// inserted. Accessors that read labeler-internal maps (Label,
// MustLabel, Reach, LabelCount) race with concurrent Insert calls and
// need the same serialization; concurrent services should instead copy
// each label into their own read-side store as Insert returns it —
// that is the discipline internal/service implements.
package core

import (
	"fmt"

	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/parsetree"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// RMode selects how recursive vertices are compressed (Section 6).
type RMode uint8

const (
	// RModeDesignated compresses at most one recursive vertex per
	// production into R-node chains: the full Section 5 scheme on
	// linear grammars, and the optimized Section 6 adaptation on
	// nonlinear ones.
	RModeDesignated RMode = iota
	// RModeNone builds the simplified explicit parse tree with no R
	// nodes, treating every vertex non-recursively (the first
	// adaptation described in Section 6).
	RModeNone
)

func (m RMode) String() string {
	if m == RModeNone {
		return "no-R"
	}
	return "designated-R"
}

// base holds the state shared by the derivation-based and
// execution-based labelers: the explicit parse tree, the issued
// labels, and the bookkeeping from run vertices to tree instances.
type base struct {
	g    *spec.Grammar
	skel *skeleton.Scheme
	mode RMode

	root   *parsetree.Node
	labels map[graph.VertexID]label.Label
	// ctx maps a run vertex to its context instance and spec vertex
	// (Definition 11: the instance whose annotated graph contains it).
	ctx map[graph.VertexID]memberRef
}

type memberRef struct {
	node *parsetree.Node
	sv   graph.VertexID
}

func newBase(g *spec.Grammar, kind skeleton.Kind, mode RMode) base {
	return base{
		g:      g,
		skel:   skeleton.New(kind, g),
		mode:   mode,
		labels: make(map[graph.VertexID]label.Label),
		ctx:    make(map[graph.VertexID]memberRef),
	}
}

// designatedOf returns the R-compressed recursive vertex of a graph
// under the current mode.
func (b *base) designatedOf(id spec.GraphID) graph.VertexID {
	if b.mode == RModeNone {
		return graph.None
	}
	return b.g.Designated(id)
}

// memberEntry builds the Algorithm 1 entry for spec vertex sv of
// instance x: the node's index and type, the skeleton pointer of the
// origin, and — when x's graph has a designated recursive vertex w,
// which happens exactly when x is a recursion-chain member — the two
// recursion flags rec1 = π_G(sv, w) and rec2 = π_G(w, sv).
func (b *base) memberEntry(x *parsetree.Node, sv graph.VertexID) label.Entry {
	e := label.Entry{Index: x.Index, Type: label.N, Skl: spec.VertexRef{Graph: x.Graph, V: sv}}
	if w := b.designatedOf(x.Graph); w != graph.None {
		e.HasRec = true
		e.Rec1 = b.skel.Pi(spec.VertexRef{Graph: x.Graph, V: sv}, spec.VertexRef{Graph: x.Graph, V: w})
		e.Rec2 = b.skel.Pi(spec.VertexRef{Graph: x.Graph, V: w}, spec.VertexRef{Graph: x.Graph, V: sv})
	}
	return e
}

// specialEntry builds the entry of a special node (skl and flags null).
func specialEntry(x *parsetree.Node) label.Entry {
	return label.Entry{Index: x.Index, Type: x.Kind, Skl: spec.NoRef}
}

// bind materializes spec vertex sv of instance x as run vertex v and
// issues its final reachability label. Labels are immutable: binding
// an already-labeled vertex panics (it would be a labeler bug).
func (b *base) bind(x *parsetree.Node, sv, v graph.VertexID) label.Label {
	if x.RunOf[sv] != graph.None {
		panic(fmt.Sprintf("core: spec vertex %d of instance already materialized", sv))
	}
	if _, dup := b.labels[v]; dup {
		panic(fmt.Sprintf("core: run vertex %d labeled twice", v))
	}
	x.RunOf[sv] = v
	l := x.Prefix.Append(b.memberEntry(x, sv))
	b.labels[v] = l
	b.ctx[v] = memberRef{x, sv}
	return l
}

// Label returns the reachability label of a run vertex.
func (b *base) Label(v graph.VertexID) (label.Label, bool) {
	l, ok := b.labels[v]
	return l, ok
}

// MustLabel returns the label of v, panicking if v was never labeled.
func (b *base) MustLabel(v graph.VertexID) label.Label {
	l, ok := b.labels[v]
	if !ok {
		panic(fmt.Sprintf("core: vertex %d has no label", v))
	}
	return l
}

// Reach answers v ;* w from the stored labels (π of Algorithm 4).
func (b *base) Reach(v, w graph.VertexID) bool {
	return Pi(b.skel, b.MustLabel(v), b.MustLabel(w))
}

// Pi evaluates π on two labels using this labeler's skeleton scheme.
func (b *base) Pi(l1, l2 label.Label) bool { return Pi(b.skel, l1, l2) }

// Tree returns the explicit parse tree (nil before the first update).
func (b *base) Tree() *parsetree.Node { return b.root }

// Skeleton returns the skeleton scheme used by this labeler.
func (b *base) Skeleton() *skeleton.Scheme { return b.skel }

// Grammar returns the grammar being labeled.
func (b *base) Grammar() *spec.Grammar { return b.g }

// LabelCount returns the number of labels issued so far.
func (b *base) LabelCount() int { return len(b.labels) }

// graphOf returns the specification graph of an instance node.
func (b *base) graphOf(x *parsetree.Node) *graph.Graph {
	return b.g.Spec().Graph(x.Graph).G
}

// startRoot creates the root instance annotated with g0.
func (b *base) startRoot() *parsetree.Node {
	g0 := b.g.Spec().Graph(spec.StartGraph).G
	b.root = parsetree.NewRoot(spec.StartGraph, g0.NumVertices())
	return b.root
}
