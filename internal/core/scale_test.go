package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/label"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// TestLargeRunSampledCorrectness labels a paper-scale (32K) run and
// verifies sampled pairs against ground truth, for both labelers.
func TestLargeRunSampledCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 32 * 1024, Seed: 99})
	if r.Size() < 16*1024 {
		t.Fatalf("run too small: %d", r.Size())
	}
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	live := r.Graph.LiveVertices()
	rng := rand.New(rand.NewSource(100))
	for k := 0; k < 20000; k++ {
		v := live[rng.Intn(len(live))]
		w := live[rng.Intn(len(live))]
		want := r.Graph.Reaches(v, w)
		if d.Reach(v, w) != want {
			t.Fatalf("derivation π(%d,%d) != %v at 32K", v, w, want)
		}
		if e.Reach(v, w) != want {
			t.Fatalf("execution π(%d,%d) != %v at 32K", v, w, want)
		}
	}
	// Theorem 3 at scale: logarithmic labels even for a 32K run.
	cod := label.NewCodec(g)
	for _, v := range live {
		if bits := cod.BitLen(d.MustLabel(v)); bits > 80 {
			t.Fatalf("label of %d bits on a linear grammar at 32K", bits)
		}
	}
}

// TestConcurrentQueries: labels are immutable once issued, so queries
// on a completed labeler may run from many goroutines (validated under
// -race).
func TestConcurrentQueries(t *testing.T) {
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 2000, Seed: 55})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	live := r.Graph.LiveVertices()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 2000; k++ {
				v := live[rng.Intn(len(live))]
				u := live[rng.Intn(len(live))]
				if d.Reach(v, u) != r.Graph.Reaches(v, u) {
					select {
					case errs <- "concurrent query diverged":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}
