package core

import (
	"fmt"
	"sort"

	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/parsetree"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// ExecutionLabeler is the execution-based dynamic labeling scheme of
// Section 5.3: it receives one vertex insertion at a time — a run
// vertex, its predecessors, and the specification vertex it executes
// (the execution-log mapping) — infers the underlying derivation on
// the fly, and issues the same labels the derivation-based scheme
// would, in O(1) per insertion for a fixed grammar.
//
// Inference works as the paper sketches: an insertion of a graph's
// source dummy opens a new instance (a fresh slot expansion, the next
// copy of a loop or fork, or the next member of a recursion chain),
// located by matching the insertion's predecessor set against the
// expected predecessor set of every candidate slot along the
// slot-parent chains of the predecessors' contexts; any other
// insertion binds to the unique open instance that has its spec vertex
// unmaterialized with matching predecessors.
//
// An ExecutionLabeler is not safe for concurrent use; see the package
// comment for the single-writer contract and what may be shared.
type ExecutionLabeler struct {
	base
	// namedChecked caches the NameResolvable validation for
	// InsertNamed.
	namedChecked bool
}

// NewExecutionLabeler builds an execution-based labeler.
func NewExecutionLabeler(g *spec.Grammar, kind skeleton.Kind, mode RMode) *ExecutionLabeler {
	return &ExecutionLabeler{base: newBase(g, kind, mode)}
}

// Insert labels one newly executed vertex. Insertions must arrive in a
// topological order of the (eventual) run graph, as executions do
// (Definition 8). It returns the vertex's final label.
func (e *ExecutionLabeler) Insert(ev run.Event) (label.Label, error) {
	gid, sv := ev.Ref.Graph, ev.Ref.V
	if gid < 0 || int(gid) >= len(e.g.Spec().Graphs()) {
		return label.Label{}, fmt.Errorf("core: event names unknown graph %d", gid)
	}
	gg := e.g.Spec().Graph(gid).G
	if !gg.Valid(sv) {
		return label.Label{}, fmt.Errorf("core: event names unknown vertex %d of graph %d", sv, gid)
	}
	if _, dup := e.labels[ev.V]; dup {
		return label.Label{}, fmt.Errorf("core: run vertex %d inserted twice", ev.V)
	}
	for _, p := range ev.Preds {
		if _, ok := e.ctx[p]; !ok {
			return label.Label{}, fmt.Errorf("core: predecessor %d of vertex %d not yet inserted", p, ev.V)
		}
	}

	// Bootstrap: the very first insertion must be g0's source.
	if e.root == nil {
		if gid != spec.StartGraph || sv != gg.Source() || len(ev.Preds) != 0 {
			return label.Label{}, fmt.Errorf("core: execution must start with the source of g0")
		}
		root := e.startRoot()
		root.Prefix = label.Label{}
		return e.bind(root, sv, ev.V), nil
	}
	if len(ev.Preds) == 0 {
		return label.Label{}, fmt.Errorf("core: only the source of g0 has no predecessors")
	}

	if gid != spec.StartGraph && sv == gg.Source() {
		return e.insertSource(ev)
	}
	return e.insertMember(ev)
}

// insertMember binds a non-source vertex to its existing instance: the
// first instance along the predecessors' slot-parent chains whose
// graph matches, whose spec vertex is unmaterialized, and whose
// expected predecessors equal the event's.
func (e *ExecutionLabeler) insertMember(ev run.Event) (label.Label, error) {
	gid, sv := ev.Ref.Graph, ev.Ref.V
	for _, x := range e.candidates(ev.Preds) {
		if x.Graph != gid || x.RunOf[sv] != graph.None {
			continue
		}
		if exp, ok := e.expectedPreds(x, sv); ok && sameIDSet(exp, ev.Preds) {
			return e.bind(x, sv, ev.V), nil
		}
	}
	return label.Label{}, fmt.Errorf("core: no instance accepts vertex %d (g%d:%d)", ev.V, gid, sv)
}

// insertSource opens a new instance of graph gid for a source-dummy
// insertion, attaching it to the slot whose expected predecessors
// match. Continuations of existing loop and fork groups are preferred
// over fresh expansions, and deeper instances over shallower ones.
func (e *ExecutionLabeler) insertSource(ev run.Event) (label.Label, error) {
	gid := ev.Ref.Graph
	ng := e.g.Spec().Graph(gid)
	implKind := e.g.Spec().Kind(ng.Owner)

	for _, y := range e.candidates(ev.Preds) {
		// Continuations of this instance's open loop/fork groups.
		for _, cu := range e.compositeSlots(y) {
			gx := y.Groups[cu]
			if gx == nil || gx.Kind == label.R || !gx.IsSpecial() {
				continue
			}
			if len(gx.Children) == 0 || gx.Children[0].Graph != gid {
				continue
			}
			var expected []graph.VertexID
			if gx.Kind == label.L {
				// The next series copy is fed by the last copy's sink.
				last := gx.Children[len(gx.Children)-1]
				snk := last.RunOf[e.graphOf(last).Sink()]
				if snk == graph.None {
					continue
				}
				expected = []graph.VertexID{snk}
			} else {
				// Parallel copies all share the slot's own predecessors.
				exp, ok := e.expectedPreds(y, cu)
				if !ok {
					continue
				}
				expected = exp
			}
			if sameIDSet(expected, ev.Preds) {
				x := gx.AddInstance(gid, ng.G.NumVertices(), gx.NextIndex())
				x.Prefix = gx.Prefix
				x.SlotParent, x.SlotVertex = y, cu
				return e.bind(x, ng.G.Source(), ev.V), nil
			}
		}
		// Fresh expansions of this instance's unexpanded slots (which
		// include the designated recursive vertex, whose expansion
		// extends the enclosing R chain).
		for _, cu := range e.compositeSlots(y) {
			if y.Groups[cu] != nil {
				continue
			}
			if !e.implements(gid, e.graphOf(y).Name(cu)) {
				continue
			}
			exp, ok := e.expectedPreds(y, cu)
			if !ok || !sameIDSet(exp, ev.Preds) {
				continue
			}
			x, err := e.expandSlot(y, cu, gid, ng.G.NumVertices(), implKind)
			if err != nil {
				return label.Label{}, err
			}
			return e.bind(x, ng.G.Source(), ev.V), nil
		}
	}
	return label.Label{}, fmt.Errorf("core: no slot accepts source of g%d (vertex %d)", gid, ev.V)
}

// expandSlot creates the tree structure for the first copy of slot cu
// of instance y, mirroring Algorithm 2's four cases.
func (e *ExecutionLabeler) expandSlot(y *parsetree.Node, cu graph.VertexID, gid spec.GraphID, vertices int, kind spec.Kind) (*parsetree.Node, error) {
	uLabel := y.Prefix.Append(e.memberEntry(y, cu)) // φ_g(u), recomputed
	if u := y.RunOf[cu]; u != graph.None {
		uLabel = e.MustLabel(u)
	}

	if e.designatedOf(y.Graph) == cu {
		// Recursion-chain continuation: next child of the enclosing R.
		rx := y.Parent
		if rx == nil || rx.Kind != label.R {
			return nil, fmt.Errorf("core: recursive vertex outside an R chain")
		}
		x := rx.AddInstance(gid, vertices, rx.NextIndex())
		x.Prefix = rx.Prefix
		x.SlotParent, x.SlotVertex = y, cu
		y.Groups[cu] = x
		return x, nil
	}
	switch {
	case kind == spec.Loop || kind == spec.Fork:
		t := label.L
		if kind == spec.Fork {
			t = label.F
		}
		gx := y.AddSpecial(t, parsetree.SlotIndex(cu))
		gx.Prefix = uLabel.Append(specialEntry(gx))
		y.Groups[cu] = gx
		x := gx.AddInstance(gid, vertices, gx.NextIndex())
		x.Prefix = gx.Prefix
		x.SlotParent, x.SlotVertex = y, cu
		return x, nil
	case e.designatedOf(gid) != graph.None:
		rx := y.AddSpecial(label.R, parsetree.SlotIndex(cu))
		rx.Prefix = uLabel.Append(specialEntry(rx))
		y.Groups[cu] = rx
		x := rx.AddInstance(gid, vertices, rx.NextIndex())
		x.Prefix = rx.Prefix
		x.SlotParent, x.SlotVertex = y, cu
		return x, nil
	default:
		x := y.AddInstance(gid, vertices, parsetree.SlotIndex(cu))
		x.Prefix = uLabel
		x.SlotParent, x.SlotVertex = y, cu
		y.Groups[cu] = x
		return x, nil
	}
}

// candidates returns the instances to try for an event, walking the
// slot-parent chain bottom-up from each predecessor's context, without
// duplicates.
func (e *ExecutionLabeler) candidates(preds []graph.VertexID) []*parsetree.Node {
	var out []*parsetree.Node
	seen := make(map[*parsetree.Node]bool)
	for _, p := range preds {
		ref, ok := e.ctx[p]
		if !ok {
			continue
		}
		for x := ref.node; x != nil; x = x.SlotParent {
			if seen[x] {
				break // the rest of the chain was already visited
			}
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// compositeSlots lists the composite vertices of an instance's graph,
// including the designated recursive vertex, in vertex order.
func (e *ExecutionLabeler) compositeSlots(y *parsetree.Node) []graph.VertexID {
	gg := e.graphOf(y)
	var out []graph.VertexID
	for v := 0; v < gg.NumVertices(); v++ {
		if e.g.Spec().Kind(gg.Name(graph.VertexID(v))).Composite() {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// implements reports whether graph gid implements the composite name.
func (e *ExecutionLabeler) implements(gid spec.GraphID, name string) bool {
	for _, id := range e.g.Spec().Implementations(name) {
		if id == gid {
			return true
		}
	}
	return false
}

// expectedPreds computes the run vertices that feed spec vertex sv of
// instance y: materialized atomic predecessors directly, and for each
// composite predecessor the sink(s) of its completed expansion — the
// last copy's sink for a loop, every copy's sink for a fork, the first
// chain member's sink for a recursion (nested members replace vertices
// inside it), and the single instance's sink otherwise. ok is false
// while some needed piece is not yet materialized.
func (e *ExecutionLabeler) expectedPreds(y *parsetree.Node, sv graph.VertexID) ([]graph.VertexID, bool) {
	gg := e.graphOf(y)
	var out []graph.VertexID
	for _, p := range gg.In(sv) {
		if !e.g.Spec().Kind(gg.Name(p)).Composite() {
			r := y.RunOf[p]
			if r == graph.None {
				return nil, false
			}
			out = append(out, r)
			continue
		}
		gx := y.Groups[p]
		if gx == nil {
			return nil, false
		}
		sinks, ok := e.expansionSinks(gx)
		if !ok {
			return nil, false
		}
		out = append(out, sinks...)
	}
	return out, true
}

// expansionSinks returns the run sinks of a slot expansion.
func (e *ExecutionLabeler) expansionSinks(gx *parsetree.Node) ([]graph.VertexID, bool) {
	sinkOf := func(x *parsetree.Node) (graph.VertexID, bool) {
		s := x.RunOf[e.graphOf(x).Sink()]
		return s, s != graph.None
	}
	switch gx.Kind {
	case label.N:
		// Plain instance, or the first member of an R chain reached via
		// Groups (chain members nest inside it, so its sink is the
		// expansion's sink either way).
		s, ok := sinkOf(gx)
		if !ok {
			return nil, false
		}
		return []graph.VertexID{s}, true
	case label.L:
		if len(gx.Children) == 0 {
			return nil, false
		}
		s, ok := sinkOf(gx.Children[len(gx.Children)-1])
		if !ok {
			return nil, false
		}
		return []graph.VertexID{s}, true
	case label.F:
		var out []graph.VertexID
		for _, c := range gx.Children {
			s, ok := sinkOf(c)
			if !ok {
				return nil, false
			}
			out = append(out, s)
		}
		return out, true
	default: // label.R
		if len(gx.Children) == 0 {
			return nil, false
		}
		s, ok := sinkOf(gx.Children[0])
		if !ok {
			return nil, false
		}
		return []graph.VertexID{s}, true
	}
}

func sameIDSet(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]graph.VertexID(nil), a...)
	bs := append([]graph.VertexID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// LabelExecution drives a full execution through a fresh labeler,
// returning it. Convenience for tests and benchmarks.
func LabelExecution(g *spec.Grammar, events []run.Event, kind skeleton.Kind, mode RMode) (*ExecutionLabeler, error) {
	e := NewExecutionLabeler(g, kind, mode)
	for i := range events {
		if _, err := e.Insert(events[i]); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return e, nil
}
