package core_test

import (
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/parsetree"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// lemma42Oracle is an independent implementation of the query logic:
// instead of comparing label entries (Algorithm 4), it walks the
// explicit parse tree directly and applies Lemma 4.2's four cases
// using the grammar's reachability closures. Differential-testing Pi
// against it validates the label arithmetic end to end.
type lemma42Oracle struct {
	g *spec.Grammar
	d *core.DerivationLabeler
	// ctx per run vertex: recovered from the tree.
	ctx map[graph.VertexID]oracleRef
}

type oracleRef struct {
	node *parsetree.Node
	sv   graph.VertexID
}

func newOracle(g *spec.Grammar, d *core.DerivationLabeler) *lemma42Oracle {
	o := &lemma42Oracle{g: g, d: d, ctx: make(map[graph.VertexID]oracleRef)}
	d.Tree().Walk(func(n *parsetree.Node) {
		if n.IsSpecial() {
			return
		}
		for sv, v := range n.RunOf {
			if v != graph.None {
				o.ctx[v] = oracleRef{n, graph.VertexID(sv)}
			}
		}
	})
	return o
}

// pathToRoot returns the tree nodes from the root down to x.
func pathToRoot(x *parsetree.Node) []*parsetree.Node {
	var up []*parsetree.Node
	for n := x; n != nil; n = n.Parent {
		up = append(up, n)
	}
	for i, j := 0, len(up)-1; i < j; i, j = i+1, j-1 {
		up[i], up[j] = up[j], up[i]
	}
	return up
}

// origin returns the origin of v (context x, spec vertex sv) with
// respect to ancestor instance a: the vertex of a's graph from which v
// derives (Definition 12), found via the slot-parent chain.
func (o *lemma42Oracle) origin(x *parsetree.Node, sv graph.VertexID, a *parsetree.Node) graph.VertexID {
	if x == a {
		return sv
	}
	for n := x; n != nil; n = n.SlotParent {
		if n.SlotParent == a {
			return n.SlotVertex
		}
	}
	panic("oracle: origin not found")
}

// reach applies Lemma 4.2.
func (o *lemma42Oracle) reach(v, w graph.VertexID) bool {
	if v == w {
		return true
	}
	rv, rw := o.ctx[v], o.ctx[w]
	pv, pw := pathToRoot(rv.node), pathToRoot(rw.node)
	// LCA: last common node of the two root paths.
	k := 0
	for k < len(pv) && k < len(pw) && pv[k] == pw[k] {
		k++
	}
	lca := pv[k-1]
	switch lca.Kind {
	case label.L:
		return pv[k].Index < pw[k].Index
	case label.F:
		return false
	case label.R:
		// y = the earlier chain member; the other side's origin wrt y
		// is y's designated recursive vertex.
		y, yw := pv[k], pw[k]
		if y.Index < yw.Index {
			u := o.origin(rv.node, rv.sv, y)
			wRec := o.g.Designated(y.Graph)
			return o.g.Closure(y.Graph).Reaches(u, wRec)
		}
		u := o.origin(rw.node, rw.sv, yw)
		wRec := o.g.Designated(yw.Graph)
		return o.g.Closure(yw.Graph).Reaches(wRec, u)
	default:
		// Non-special LCA (possibly one context is the other's
		// ancestor): compare origins in the LCA's graph.
		u := o.origin(rv.node, rv.sv, lca)
		u2 := o.origin(rw.node, rw.sv, lca)
		return o.g.Closure(lca.Graph).Reaches(u, u2)
	}
}

// TestPiAgainstLemma42Oracle differentially tests Algorithm 4 against
// the tree-walking oracle on a diverse set of runs.
func TestPiAgainstLemma42Oracle(t *testing.T) {
	grammars := []*spec.Grammar{
		spec.MustCompile(wfspecs.RunningExample()),
		spec.MustCompile(wfspecs.BioAID()),
		spec.MustCompile(wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 9, Depth: 5, RecModules: 1, Seed: 2})),
	}
	for gi, g := range grammars {
		for seed := int64(0); seed < 3; seed++ {
			r := gen.MustGenerate(g, gen.Options{TargetSize: 150, Seed: seed})
			d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
			if err != nil {
				t.Fatal(err)
			}
			o := newOracle(g, d)
			live := r.Graph.LiveVertices()
			for _, v := range live {
				for _, w := range live {
					got := d.Reach(v, w)
					want := o.reach(v, w)
					if got != want {
						t.Fatalf("grammar %d seed %d: Pi(%d,%d)=%v, oracle=%v",
							gi, seed, v, w, got, want)
					}
				}
			}
		}
	}
}

// TestOracleAgainstGroundTruth sanity-checks the oracle itself.
func TestOracleAgainstGroundTruth(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 120, Seed: 9})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(g, d)
	live := r.Graph.LiveVertices()
	for _, v := range live {
		for _, w := range live {
			if o.reach(v, w) != r.Graph.Reaches(v, w) {
				t.Fatalf("oracle(%d,%d) diverges from BFS", v, w)
			}
		}
	}
}

var _ = run.Event{} // keep the run import for the shared helpers
