package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// TestQuickPiMatchesGroundTruth: testing/quick drives randomized
// (grammar, run, vertex pair) triples through π.
func TestQuickPiMatchesGroundTruth(t *testing.T) {
	grammars := []*spec.Grammar{
		spec.MustCompile(wfspecs.RunningExample()),
		spec.MustCompile(wfspecs.BioAID()),
		spec.MustCompile(wfspecs.Fig12()),
	}
	type labeled struct {
		r *run.Run
		d *core.DerivationLabeler
	}
	cache := map[int64]labeled{}
	get := func(seed int64) labeled {
		if l, ok := cache[seed]; ok {
			return l
		}
		g := grammars[int(seed%int64(len(grammars)))]
		r := gen.MustGenerate(g, gen.Options{TargetSize: 70 + int(seed%200), Seed: seed})
		d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			t.Fatal(err)
		}
		l := labeled{r, d}
		cache[seed] = l
		return l
	}
	f := func(seed int64, a, b uint16) bool {
		if seed < 0 {
			seed = -seed
		}
		seed %= 17 // bounded distinct workloads, many pairs each
		l := get(seed)
		live := l.r.Graph.LiveVertices()
		v := live[int(a)%len(live)]
		w := live[int(b)%len(live)]
		return l.d.Reach(v, w) == l.r.Graph.Reaches(v, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLabelPrefixSharing: the entry list of any vertex deeper in
// the tree extends a prefix shared with its instance siblings — the
// invariant Algorithm 3's append-only construction relies on.
func TestQuickLabelPrefixSharing(t *testing.T) {
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 300, Seed: 8})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	live := r.Graph.LiveVertices()
	f := func(a, b uint16) bool {
		v := live[int(a)%len(live)]
		w := live[int(b)%len(live)]
		lv, lw := d.MustLabel(v), d.MustLabel(w)
		// Find the index divergence; all entries before it must be
		// fully identical (same tree nodes ⇒ same type and, for
		// special nodes, same everything).
		n := lv.Len()
		if lw.Len() < n {
			n = lw.Len()
		}
		for i := 0; i < n; i++ {
			if lv.Entries[i].Index != lw.Entries[i].Index {
				return true // diverged; nothing more to check
			}
			if lv.Entries[i].Type != lw.Entries[i].Type {
				return false // same path position, different node type: broken
			}
			if i < n-1 && lv.Entries[i].Type.String() != "N" {
				if lv.Entries[i] != lw.Entries[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestLoopOfLoops exercises doubly nested repetition: a loop whose
// body contains another loop, plus a fork of forks.
func TestLoopOfLoops(t *testing.T) {
	s := spec.NewBuilder().
		Loop("LO", "LI").Fork("FO", "FI").
		Start("g0", spec.G([]string{"s0", "LO", "FO", "t0"},
			[2]string{"s0", "LO"}, [2]string{"LO", "FO"}, [2]string{"FO", "t0"})).
		Implement("LO", "h1", spec.G([]string{"s1", "LI", "t1"},
			[2]string{"s1", "LI"}, [2]string{"LI", "t1"})).
		Implement("LI", "h2", spec.G([]string{"s2", "w2", "t2"},
			[2]string{"s2", "w2"}, [2]string{"w2", "t2"})).
		Implement("FO", "h3", spec.G([]string{"s3", "FI", "t3"},
			[2]string{"s3", "FI"}, [2]string{"FI", "t3"})).
		Implement("FI", "h4", spec.G([]string{"s4", "w4", "t4"},
			[2]string{"s4", "w4"}, [2]string{"w4", "t4"})).
		MustBuild()
	g := spec.MustCompile(s)
	if g.Class() != spec.ClassNonRecursive {
		t.Fatalf("class = %v", g.Class())
	}
	for seed := int64(0); seed < 6; seed++ {
		r := gen.MustGenerate(g, gen.Options{TargetSize: 250, Seed: seed})
		d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			t.Fatal(err)
		}
		verifyAllPairs(t, r, d.Reach, "loop-of-loops")
		// Execution-based as well.
		evs, err := r.Execution(nil)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.LabelExecution(g, evs, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range r.Graph.LiveVertices() {
			el, ok := e.Label(v)
			if !ok || !el.Equal(d.MustLabel(v)) {
				t.Fatalf("seed %d: labels diverge at %d", seed, v)
			}
		}
	}
}

// TestMinimalTwoVertexImplementations: the smallest legal graphs
// (source→sink dummies only) work through every layer.
func TestMinimalTwoVertexImplementations(t *testing.T) {
	s := spec.NewBuilder().
		Loop("L").
		Start("g0", spec.G([]string{"s0", "L", "t0"},
			[2]string{"s0", "L"}, [2]string{"L", "t0"})).
		Implement("L", "h1", spec.G([]string{"s1", "t1"}, [2]string{"s1", "t1"})).
		MustBuild()
	g := spec.MustCompile(s)
	r := gen.MustGenerate(g, gen.Options{TargetSize: 200, Seed: 3})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	verifyAllPairs(t, r, d.Reach, "two-vertex-impl")
}

// TestTreeDump smoke-tests the Figure 9 style dump.
func TestTreeDump(t *testing.T) {
	_, d := paperDerivation(t)
	out := d.Tree().DumpString(d.Grammar().Spec())
	for _, want := range []string{"N g0", "L #2", "F #2", "R #3", "N h5"} {
		if !contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
