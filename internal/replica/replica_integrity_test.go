package replica

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wfreach/internal/service"
	"wfreach/internal/spec"
	"wfreach/internal/wal"
)

// TestFollowerChainVerification: a clean follower not only catches up
// but cryptographically verifies what it applied — every session's
// verified sequence must reach the applied sequence.
func TestFollowerChainVerification(t *testing.T) {
	p := newEnv(t)
	defer p.close()
	ws := makeWorkloads(t, 400)
	for _, w := range ws {
		if _, err := p.reg.Create(w.name, w.g, w.cfg); err != nil {
			t.Fatal(err)
		}
	}
	ingest(t, p.reg, ws, func(int) int { return 0 }, func(n int) int { return n })

	f := newEnv(t)
	defer f.close()
	fo := New(p.srv.URL, f.reg, fastOptions())
	fo.Start()
	defer fo.Close()
	waitCaughtUp(t, p.reg, f.reg, ws)

	deadline := time.Now().Add(10 * time.Second)
	for {
		lag := ""
		for _, w := range ws {
			fo.mu.Lock()
			ss := fo.sessions[w.name]
			fo.mu.Unlock()
			if ss == nil {
				lag = w.name + " not adopted"
				break
			}
			ss.mu.Lock()
			ok, applied, verified, errs := ss.chainOK, ss.applied, ss.verifiedSeq, ss.lastErr
			ss.mu.Unlock()
			if !ok {
				t.Fatalf("%s: chain never seeded (%s)", w.name, errs)
			}
			if verified < applied {
				lag = fmt.Sprintf("%s verified %d of %d", w.name, verified, applied)
				break
			}
		}
		if lag == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chain verification never caught up: %s", lag)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// findLabelableTamper searches the WAL for a single-byte payload flip
// (frame CRC fixed) after which the log still decodes and replays
// cleanly — the adversarial rewrite the drill needs: invisible to
// structure, invisible to the deterministic labeler, visible only to
// the hash chain. Returns the tampered file contents.
func findLabelableTamper(t *testing.T, walPath string, g *spec.Grammar, cfg service.Config) []byte {
	t.Helper()
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for off := int64(0); off < int64(len(raw)); {
		offs = append(offs, off)
		off += int64(wal.FrameHeaderSize) + int64(binary.LittleEndian.Uint32(raw[off:]))
	}
	tmp := filepath.Join(t.TempDir(), "cand.wal")
	replays := func(cand []byte) bool {
		if err := os.WriteFile(tmp, cand, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs []wal.Record
		if _, _, err := wal.Scan(tmp, func(_ int, rec wal.Record) error {
			recs = append(recs, rec)
			return nil
		}); err != nil {
			return false
		}
		reg := service.NewRegistry()
		s, err := reg.Create("probe", g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, aerr := s.AppendRecords(recs, nil)
		return aerr == nil
	}
	// Late records are the richest hunting ground: flipping a bit of a
	// vertex id there lands on a fresh id with no later references.
	for idx := len(offs) - 1; idx >= 0 && idx >= len(offs)-60; idx-- {
		off := offs[idx]
		plen := int(binary.LittleEndian.Uint32(raw[off:]))
		for pos := 1; pos < plen; pos++ {
			for _, x := range []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40} {
				cand := bytes.Clone(raw)
				payload := cand[off+wal.FrameHeaderSize : off+wal.FrameHeaderSize+int64(plen)]
				payload[pos] ^= x
				binary.LittleEndian.PutUint32(cand[off+4:], crc32.ChecksumIEEE(payload))
				if replays(cand) {
					return cand
				}
			}
		}
	}
	t.Fatal("no labelable single-byte tamper found (the drill needs one)")
	return nil
}

// TestTamperDrillFollowerHardStop is the follower leg of the tamper
// drill: rewrite one committed record in the primary's on-disk WAL
// (CRC fixed, still decodable, still labelable) while the primary is
// running — its in-memory chain head still commits to the original
// bytes. A fresh follower replays the tampered history cleanly,
// catches up, compares chain heads, and must stop hard instead of
// serving it.
func TestTamperDrillFollowerHardStop(t *testing.T) {
	p := newEnv(t)
	defer p.close()
	ws := makeWorkloads(t, 300)[:1]
	w := ws[0]
	if _, err := p.reg.Create(w.name, w.g, w.cfg); err != nil {
		t.Fatal(err)
	}
	ingest(t, p.reg, ws, func(int) int { return 0 }, func(n int) int { return n })

	// Tamper the primary's log on disk. The running primary's chain
	// head lives in memory and still answers for the original bytes;
	// the tail stream serves the rewritten ones.
	walPath := filepath.Join(p.dir, w.name, "events.wal")
	orig, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := findLabelableTamper(t, walPath, w.g, w.cfg)
	if bytes.Equal(orig, tampered) {
		t.Fatal("tamper search returned the original bytes")
	}
	if err := os.WriteFile(walPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	f := newEnv(t)
	defer f.close()
	fo := New(p.srv.URL, f.reg, fastOptions())
	fo.Start()
	defer fo.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		fo.mu.Lock()
		ss := fo.sessions[w.name]
		fo.mu.Unlock()
		if ss != nil {
			ss.mu.Lock()
			stopped, lastErr := ss.stopped, ss.lastErr
			ss.mu.Unlock()
			if stopped {
				if !strings.Contains(lastErr, "chain mismatch") || !strings.Contains(lastErr, "seq") {
					t.Fatalf("follower stopped for the wrong reason: %s", lastErr)
				}
				// Hard stop, not a reconnect: the error names the sequence
				// and the loop must not keep retrying into the same forgery.
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("follower served a rewritten history without objecting")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
