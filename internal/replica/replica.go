// Package replica is the follower half of WAL-shipping replication: a
// read replica that discovers the sessions of a primary wfserve,
// tails each session's write-ahead log over HTTP, and replays the
// shipped frames into local read-only sessions that answer the full
// query surface.
//
// The design leans entirely on the frame-identity chain the wire
// contract guarantees (ingest frame ≡ WAL record ≡ shipped frame):
// labels are write-once and labeling is deterministic, so replaying
// the primary's event log through a fresh labeler reissues the exact
// same labels — a follower is nothing more than crash recovery
// running continuously against a remote log. Shipped frames are
// applied through the same ingest path a restore uses and, on a
// durable follower, teed to the follower's own WAL verbatim; the
// follower's log is therefore a byte-identical prefix of the
// primary's, a follower restart resumes from its own recovered
// sequence, and Promote needs nothing but a final catch-up attempt
// before flipping the registry writable — the promoted server's WAL
// already is a valid continuation of everything it acknowledged.
//
// Because a durable follower persists through the same registry as a
// primary, it also snapshots in the arena format (WFSNAP02) and a
// follower restart recovers through the same arena path: labels for
// the snapshotted prefix are mapped zero-copy and only the WAL tail
// past the snapshot's byte watermark is replayed, so rejoining after
// a restart costs an mmap plus the tail — not a full re-label of the
// session.
package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"wfreach/client"
	"wfreach/internal/api"
	"wfreach/internal/integrity"
	"wfreach/internal/obs"
	"wfreach/internal/service"
	"wfreach/internal/spec"
	"wfreach/internal/wal"
	"wfreach/internal/wfxml"
)

// Options configures a Follower.
type Options struct {
	// PollInterval is how often the primary's session list is polled
	// for sessions to start (or stop) tailing. Zero selects 2s.
	PollInterval time.Duration
	// ReconnectBackoff is the initial delay before re-dialing a
	// dropped tail stream, doubled per consecutive failure up to
	// MaxBackoff. Zero selects 250ms.
	ReconnectBackoff time.Duration
	// MaxBackoff caps the reconnect delay. Zero selects 5s.
	MaxBackoff time.Duration
	// BatchSize caps how many shipped events are applied (and
	// committed) per ingest call. Zero selects 256.
	BatchSize int
	// Logf, when set, receives human-readable progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 250 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
}

// sessionState is one tailed session's progress.
type sessionState struct {
	// primaryID is the identity of the primary session this replica
	// tails, pinned at adoption. A different identity under the same
	// name later means the session was deleted and recreated — its
	// stream must not be spliced onto the old one.
	primaryID string

	mu      sync.Mutex
	applied int64 // last applied primary sequence
	lastErr string
	stopped bool // session vanished/replaced on the primary, or apply failed fatally

	// Incremental chain verification: the follower folds every frame
	// it applies into its own hash chain (the shipped frame is
	// byte-identical to the primary's WAL record, so an untampered
	// history yields the primary's exact head) and, whenever it is
	// caught up, cross-checks its head against the primary's
	// /integrity endpoint at the same sequence. A mismatch means the
	// bytes the primary served are not the bytes it committed —
	// its on-disk log was rewritten under it — and is a hard stop,
	// not a reconnect.
	chainSeq    int64          // frames folded into chainHead
	chainHead   integrity.Head // chain over the applied prefix
	chainOK     bool           // chain is seeded (adopt found a clean resume point)
	verifiedSeq int64          // highest sequence cross-checked against the primary
	noVerify    bool           // primary cannot answer /integrity; skip cross-checks

	// behindSince is when a discovery poll first saw this session lag
	// the primary; zero while caught up. It feeds the lag-seconds gauge.
	behindSince time.Time
}

// Follower replicates a primary into the given registry and flips the
// registry read-only for the duration. Create one with New, start the
// replication loops with Start, and end them with either Promote
// (become a writable primary) or Close (plain shutdown).
type Follower struct {
	primary string
	reg     *service.Registry
	opts    Options
	c       *client.Client

	// Lag and verification instruments, re-registered against the
	// registry's obs families (registration is idempotent — these share
	// atomics with the families the service pre-creates, so the scrape
	// carries them whether or not a follower ever ran).
	lagEvents   *obs.Gauge
	lagSeconds  *obs.FloatGauge
	chainFrames *obs.Counter

	mu       sync.Mutex
	sessions map[string]*sessionState
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	started  bool
	promoted bool
}

// New builds a follower of the primary at the given base URL,
// replicating into reg (typically a freshly restored durable registry
// so replication survives follower restarts; a memory registry works
// too but re-tails from scratch after one). The registry is marked a
// read-only follower and its replication status/promote hooks are
// wired; nothing is tailed until Start.
func New(primary string, reg *service.Registry, opts Options) *Follower {
	opts.fill()
	f := &Follower{
		primary: primary,
		reg:     reg,
		opts:    opts,
		// The follower's own reads of the primary must not silently
		// redirect anywhere, and retries are handled by the reconnect
		// loop.
		c:        client.New(primary, client.WithRetry(0, 0), client.WithoutWriteRedirect()),
		sessions: make(map[string]*sessionState),
	}
	o := reg.Obs()
	f.lagEvents = o.Gauge("wf_replica_lag_events", "Worst follower tail lag across sessions, in events.")
	f.lagSeconds = o.FloatGauge("wf_replica_lag_seconds", "Approximate follower tail lag, in seconds.")
	f.chainFrames = o.Counter("wf_chain_verify_frames_total", "WAL frames hashed during chain verification.")
	reg.SetFollower(primary)
	reg.SetReplicationHooks(service.ReplicationHooks{Status: f.Status, Promote: f.Promote})
	return f
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// Start launches the discovery and tail loops in the background.
func (f *Follower) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.discoverLoop(ctx)
	}()
}

// stop ends every background loop and waits them out.
func (f *Follower) stop() {
	f.mu.Lock()
	cancel := f.cancel
	f.cancel = nil
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	f.wg.Wait()
}

// Close stops replicating without promoting. The registry stays a
// read-only follower (a restarted follower process picks up where
// this one left off).
func (f *Follower) Close() { f.stop() }

// Promote ends replication and flips the registry writable: stop the
// tail loops, attempt one final non-waiting catch-up per session —
// draining whatever the primary can still serve; a dead primary just
// fails the dial and the follower keeps everything it already
// applied — then clear follower mode. After Promote the server
// ingests writes and its WAL continues exactly where replication
// stopped. Promoting twice is a no-op: the second call returns
// immediately without re-running catch-up or touching the hooks the
// first promote uninstalled.
func (f *Follower) Promote(ctx context.Context) error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		// Idempotent: the first promote already ran catch-up and
		// uninstalled the hooks; a re-POST must not do either twice.
		return nil
	}
	f.promoted = true
	f.mu.Unlock()

	f.stop()
	for name, st := range f.snapshotSessions() {
		if st.stopped {
			continue
		}
		if err := f.catchUpOnce(ctx, name, st); err != nil {
			f.logf("replica: final catch-up of %q: %v (promoting with what we have)", name, err)
		}
	}
	f.reg.Promote()
	// Uninstall the hooks: from here on the registry's default status —
	// live WAL sequences, post-promote sessions included — is the
	// truth, not this follower's frozen promote-time view. A primary
	// has no tail lag by definition.
	f.reg.SetReplicationHooks(service.ReplicationHooks{})
	f.lagEvents.Set(0)
	f.lagSeconds.Set(0)
	f.logf("replica: promoted; now writable")
	return nil
}

// snapshotSessions copies the tracked session map.
func (f *Follower) snapshotSessions() map[string]*sessionState {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]*sessionState, len(f.sessions))
	for k, v := range f.sessions {
		out[k] = v
	}
	return out
}

// Status reports the follower's replication state: its own applied
// sequence per session (== the committed sequence of the follower's
// own WAL when durable), plus any sticky tail error.
func (f *Follower) Status() api.ReplicationStatus {
	st := api.ReplicationStatus{Role: api.RoleFollower, Primary: f.primary, Sessions: []api.SessionReplication{}}
	f.mu.Lock()
	promoted := f.promoted
	names := make([]string, 0, len(f.sessions))
	for name := range f.sessions {
		names = append(names, name)
	}
	f.mu.Unlock()
	if promoted {
		st.Role, st.Primary = api.RolePrimary, ""
	}
	sort.Strings(names)
	for _, name := range names {
		f.mu.Lock()
		ss := f.sessions[name]
		f.mu.Unlock()
		ss.mu.Lock()
		rep := api.SessionReplication{Name: name, WALSeq: ss.applied, Error: ss.lastErr}
		ss.mu.Unlock()
		if s, ok := f.reg.Get(name); ok {
			rep.Durable = s.Stats().Durable
		}
		st.Sessions = append(st.Sessions, rep)
	}
	return st
}

// discoverLoop polls the primary's session list, adopting new
// sessions and spawning one tail loop per session.
func (f *Follower) discoverLoop(ctx context.Context) {
	ticker := time.NewTicker(f.opts.PollInterval)
	defer ticker.Stop()
	for {
		if err := f.discoverOnce(ctx); err != nil && ctx.Err() == nil {
			f.logf("replica: discover: %v", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// discoverOnce syncs the tracked session set with the primary's.
func (f *Follower) discoverOnce(ctx context.Context) error {
	stats, err := f.c.Sessions(ctx)
	if err != nil {
		return err
	}
	onPrimary := make(map[string]bool, len(stats))
	for _, st := range stats {
		onPrimary[st.Name] = true
		f.mu.Lock()
		ss, known := f.sessions[st.Name]
		f.mu.Unlock()
		if known {
			// A known name whose identity changed was deleted and
			// recreated on the primary — whatever state the tail loop is
			// in, the verdict is "replaced", permanently.
			if st.ID != "" && ss.primaryID != "" && st.ID != ss.primaryID {
				ss.mu.Lock()
				if !strings.Contains(ss.lastErr, "replaced on the primary") {
					ss.stopped = true
					ss.lastErr = fmt.Sprintf("session %q was replaced on the primary (identity %s, was %s); delete the local copy to re-replicate", st.Name, st.ID, ss.primaryID)
					f.logf("replica: %s", ss.lastErr)
				}
				ss.mu.Unlock()
			}
			continue
		}
		if err := f.adopt(ctx, st); err != nil {
			f.logf("replica: adopt %q: %v", st.Name, err)
		}
	}
	// A session dropped on the primary stops being tailed but keeps
	// serving reads here — deleting replicated data is the operator's
	// call, not the replication loop's.
	for name, ss := range f.snapshotSessions() {
		if onPrimary[name] {
			continue
		}
		ss.mu.Lock()
		if !ss.stopped {
			ss.stopped = true
			ss.lastErr = "session no longer on primary"
			f.logf("replica: %q vanished from primary; keeping local data, tail stopped", name)
		}
		ss.mu.Unlock()
	}
	f.observeLag(stats, time.Now())
	return nil
}

// observeLag refreshes the lag gauges from one discovery pass: the
// worst per-session distance behind the primary in events (the
// primary's vertex count is its event count — every event labels one
// vertex), and how long the worst session has been behind. The gauges
// are poll-grained: lag shorter than one PollInterval may never show.
func (f *Follower) observeLag(stats []client.SessionStats, now time.Time) {
	var worstEvents int64
	var worstSeconds float64
	for _, pst := range stats {
		f.mu.Lock()
		ss := f.sessions[pst.Name]
		f.mu.Unlock()
		if ss == nil {
			continue
		}
		ss.mu.Lock()
		lag := pst.Vertices - ss.applied
		if ss.stopped || lag <= 0 {
			ss.behindSince = time.Time{}
			lag = 0
		} else if ss.behindSince.IsZero() {
			ss.behindSince = now
		}
		behind := ss.behindSince
		ss.mu.Unlock()
		if lag > worstEvents {
			worstEvents = lag
		}
		if !behind.IsZero() {
			if sec := now.Sub(behind).Seconds(); sec > worstSeconds {
				worstSeconds = sec
			}
		}
	}
	f.lagEvents.Set(worstEvents)
	f.lagSeconds.Set(worstSeconds)
}

// adopt creates (or re-binds, after a follower restart) the local
// session for one primary session and starts its tail loop.
func (f *Follower) adopt(ctx context.Context, pst client.SessionStats) error {
	s, ok := f.reg.Get(pst.Name)
	if !ok {
		raw, err := f.c.SessionSpec(ctx, pst.Name)
		if err != nil {
			return fmt.Errorf("fetch spec: %w", err)
		}
		sp, err := wfxml.DecodeSpec(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("decode spec: %w", err)
		}
		g, err := spec.Compile(sp)
		if err != nil {
			return fmt.Errorf("compile spec: %w", err)
		}
		cfg, err := service.ParseConfig(pst.Skeleton, pst.Mode)
		if err != nil {
			return fmt.Errorf("labeling config: %w", err)
		}
		cfg.Shards = len(pst.Shards)
		// The copy shares the primary session's identity, so a follower
		// restart can re-verify it is still tailing the same session.
		cfg.ID = pst.ID
		if s, err = f.reg.Create(pst.Name, g, cfg); err != nil {
			return err
		}
	} else if lid := s.ID(); lid != "" && pst.ID != "" && lid != pst.ID {
		// The local data belongs to a session that was deleted and
		// recreated on the primary under the same name. Splicing the new
		// stream onto the old state would silently diverge; keep the
		// local data, refuse to tail, and say so in the status.
		ss := &sessionState{primaryID: pst.ID, applied: s.Vertices(), stopped: true,
			lastErr: fmt.Sprintf("session %q was replaced on the primary (identity %s, local copy has %s); delete the local copy to re-replicate", pst.Name, pst.ID, lid)}
		f.mu.Lock()
		if _, dup := f.sessions[pst.Name]; !dup {
			f.sessions[pst.Name] = ss
			f.logf("replica: %s", ss.lastErr)
		}
		f.mu.Unlock()
		return nil
	}
	// Resume point: every applied event labels exactly one vertex, so
	// the local vertex count is the last applied primary sequence —
	// for a durable follower it equals the recovered WAL sequence.
	ss := &sessionState{primaryID: pst.ID, applied: s.Vertices()}
	// Seed the verification chain. A fresh session starts at genesis;
	// a durable follower restart resumes from the chain head its own
	// restore recomputed (and verified) over its local WAL, which is a
	// byte-identical prefix of the primary's. If the local chain state
	// does not line up with the resume sequence there is no sound seed
	// and verification stays off rather than raising false alarms.
	if ss.applied == 0 {
		ss.chainOK = true
	} else if seq, head, ok := s.ChainState(); ok && seq == ss.applied {
		ss.chainSeq, ss.chainHead, ss.chainOK = seq, head, true
	}
	f.mu.Lock()
	if _, dup := f.sessions[pst.Name]; dup {
		f.mu.Unlock()
		return nil
	}
	f.sessions[pst.Name] = ss
	f.mu.Unlock()
	f.logf("replica: tailing %q from seq %d", pst.Name, ss.applied+1)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.tailLoop(ctx, pst.Name, ss)
	}()
	return nil
}

// tailLoop keeps one session's tail stream alive: dial, apply until
// the stream drops, back off, redial from the last applied sequence.
// Every redial after a failure re-verifies the primary session's
// identity first: a dropped stream is exactly the window in which the
// session can have been deleted and recreated under its name.
func (f *Follower) tailLoop(ctx context.Context, name string, ss *sessionState) {
	backoff := f.opts.ReconnectBackoff
	verify := false // adopt just verified; re-check only after failures
	for {
		ss.mu.Lock()
		stopped := ss.stopped
		ss.mu.Unlock()
		if stopped || ctx.Err() != nil {
			return
		}
		if verify && ss.primaryID != "" {
			if pst, err := f.c.Session(ctx, name); err == nil && pst.ID != "" && pst.ID != ss.primaryID {
				ss.mu.Lock()
				ss.stopped = true
				ss.lastErr = fmt.Sprintf("session %q was replaced on the primary (identity %s, was %s); delete the local copy to re-replicate", name, pst.ID, ss.primaryID)
				f.logf("replica: %s", ss.lastErr)
				ss.mu.Unlock()
				return
			}
		}
		err := f.tailOnce(ctx, name, ss, true)
		verify = true
		switch {
		case ctx.Err() != nil:
			return
		case err == nil:
			// The primary ended the stream cleanly (log closed, e.g. its
			// graceful shutdown); redial after the usual backoff.
			backoff = f.opts.ReconnectBackoff
		default:
			ss.setErr(err)
			var ae *client.Error
			if errors.As(err, &ae) && ae.Code == client.CodeNotDurable {
				// The session has no WAL on the primary (memory-only, or
				// its log failed) and never will: redialing cannot succeed.
				ss.mu.Lock()
				ss.stopped = true
				ss.mu.Unlock()
				f.logf("replica: %q is not tailable on the primary (%v); tail stopped", name, err)
				return
			}
			// Otherwise — dropped stream, unreachable primary, damage
			// mid-stream — redial from the last applied sequence. A
			// session deleted on the primary keeps failing here until
			// discovery marks it stopped.
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > f.opts.MaxBackoff {
			backoff = f.opts.MaxBackoff
		}
	}
}

// catchUpOnce drains the primary's currently committed history
// without waiting — the promote-time final pull.
func (f *Follower) catchUpOnce(ctx context.Context, name string, ss *sessionState) error {
	return f.tailOnce(ctx, name, ss, false)
}

// tailOnce runs one tail stream until it ends, applying entries in
// batches. Entries are batched greedily: the first read blocks, then
// the batch grows while more bytes are already buffered, so a burst
// arriving after a primary commit is applied in one ingest call (one
// local WAL commit) instead of 256 tiny ones.
func (f *Follower) tailOnce(ctx context.Context, name string, ss *sessionState, wait bool) error {
	s, ok := f.reg.Get(name)
	if !ok {
		return fmt.Errorf("local session %q lost", name)
	}
	ss.mu.Lock()
	from := ss.applied + 1
	ss.mu.Unlock()
	tail, err := f.c.TailWAL(ctx, name, from, wait)
	if err != nil {
		return err
	}
	defer tail.Close()

	recs := make([]wal.Record, 0, f.opts.BatchSize)
	frames := make([][]byte, 0, f.opts.BatchSize)
	var frameBuf []byte
	var lastSeq int64
	chainer := integrity.NewChainer()
	apply := func() error {
		if len(recs) == 0 {
			return nil
		}
		n, err := s.AppendRecords(recs, frames)
		if err != nil {
			// Labeling is deterministic, so a rejected replayed event
			// means divergence (or a poisoned local WAL) — stop this
			// session rather than corrupt it. The applied prefix is still
			// recorded: it is real, logged data.
			ss.mu.Lock()
			ss.applied += int64(n)
			ss.stopped = true
			ss.chainOK = false // the chain no longer tracks what was applied
			ss.mu.Unlock()
			return fmt.Errorf("apply at seq %d: %w", lastSeq-int64(len(recs)-n-1), err)
		}
		ss.mu.Lock()
		ss.applied = lastSeq
		ss.lastErr = ""
		if ss.chainOK {
			for _, fr := range frames {
				ss.chainHead = chainer.Extend(ss.chainHead, fr)
			}
			ss.chainSeq = lastSeq
			f.chainFrames.Add(int64(len(frames)))
		}
		ss.mu.Unlock()
		recs, frames, frameBuf = recs[:0], frames[:0], frameBuf[:0]
		return nil
	}
	for {
		entry, err := tail.Next()
		if errors.Is(err, io.EOF) {
			if err := apply(); err != nil {
				return err
			}
			return f.verifyChain(ctx, name, ss)
		}
		if err != nil {
			// Apply what we have; the damage point is retried after
			// reconnect.
			if aerr := apply(); aerr != nil {
				return aerr
			}
			return err
		}
		ss.mu.Lock()
		expect := ss.applied + int64(len(recs)) + 1
		ss.mu.Unlock()
		if entry.Seq != expect {
			if aerr := apply(); aerr != nil {
				return aerr
			}
			return fmt.Errorf("tail of %q jumped to seq %d, want %d", name, entry.Seq, expect)
		}
		// The entry's frame is reused by the next read; stash a copy in
		// one grow-only batch buffer.
		start := len(frameBuf)
		frameBuf = append(frameBuf, entry.Frame...)
		recs = append(recs, entry.Record)
		frames = append(frames, frameBuf[start:len(frameBuf):len(frameBuf)])
		lastSeq = entry.Seq
		if len(recs) >= f.opts.BatchSize || !tail.Buffered() {
			if err := apply(); err != nil {
				return err
			}
			// A drained stream is the moment the follower can be exactly
			// as far as the primary — the only point where the two chain
			// heads are comparable at the same sequence.
			if !tail.Buffered() {
				if err := f.verifyChain(ctx, name, ss); err != nil {
					return err
				}
			}
		}
	}
}

// verifyChain cross-checks the follower's chain head against the
// primary's at the same sequence. It is a no-op while the follower is
// mid-stream (the sequences won't line up), when there is nothing new
// to verify, or when the primary cannot answer. A head mismatch at an
// equal sequence is proof the shipped bytes differ from the bytes the
// primary committed; the session is hard-stopped — reconnecting would
// re-apply the same tampered history.
func (f *Follower) verifyChain(ctx context.Context, name string, ss *sessionState) error {
	ss.mu.Lock()
	ok, seq, head := ss.chainOK, ss.chainSeq, ss.chainHead
	skip := ss.noVerify || !ok || seq <= ss.verifiedSeq
	ss.mu.Unlock()
	if skip {
		return nil
	}
	st, err := f.c.Integrity(ctx, name)
	if err != nil {
		var ae *client.Error
		if errors.As(err, &ae) && ae.Code == client.CodeNotDurable {
			// The primary has no chain to compare against (its WAL
			// failed after we started tailing); verification is
			// permanently unavailable for this session, replication
			// itself is unaffected.
			ss.mu.Lock()
			ss.noVerify = true
			ss.mu.Unlock()
			f.logf("replica: %q: primary reports no integrity state; chain verification off", name)
			return nil
		}
		// Transient fetch failure: the applied data is fine, verify on
		// the next caught-up moment instead of tearing the stream down.
		return nil
	}
	if st.WALSeq != seq {
		// The primary committed more (or answered from before our last
		// batch); heads at different sequences are incomparable.
		return nil
	}
	if have := head.String(); st.ChainHead != have {
		ss.mu.Lock()
		ss.stopped = true
		ss.mu.Unlock()
		return fmt.Errorf("integrity: chain mismatch at seq %d of %q: follower computed %s from the shipped frames, primary reports %s — the primary's log was rewritten; tail stopped", seq, name, have, st.ChainHead)
	}
	ss.mu.Lock()
	ss.verifiedSeq = seq
	ss.mu.Unlock()
	return nil
}

func (ss *sessionState) setErr(err error) {
	ss.mu.Lock()
	ss.lastErr = err.Error()
	ss.mu.Unlock()
}
