package replica

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/service"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// fastOptions keeps the replication loops snappy for tests.
func fastOptions() Options {
	return Options{
		PollInterval:     25 * time.Millisecond,
		ReconnectBackoff: 10 * time.Millisecond,
		MaxBackoff:       100 * time.Millisecond,
	}
}

// env is one server side (registry + HTTP) of a replication pair.
type env struct {
	dir string
	reg *service.Registry
	srv *httptest.Server
}

func newEnv(t testing.TB) *env {
	t.Helper()
	dir := t.TempDir()
	return openEnv(t, dir)
}

func openEnv(t testing.TB, dir string) *env {
	t.Helper()
	reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: dir, Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Restore(dir); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(reg))
	return &env{dir: dir, reg: reg, srv: srv}
}

func (e *env) close() {
	e.srv.Close()
	_ = e.reg.Close()
}

// workload is one session's spec, config and generated ground truth.
type workload struct {
	name   string
	g      *spec.Grammar
	cfg    service.Config
	events []run.Event
	oracle *run.Run
}

func makeWorkloads(t testing.TB, size int) []*workload {
	t.Helper()
	out := []*workload{
		{name: "w-default", g: spec.MustCompile(wfspecs.RunningExample()), cfg: service.Config{}},
		{name: "w-bfs", g: spec.MustCompile(wfspecs.BioAID()), cfg: service.Config{Skeleton: skeleton.BFS, Shards: 4}},
		{name: "w-nor", g: spec.MustCompile(wfspecs.Fig12()), cfg: service.Config{Mode: core.RModeNone}},
	}
	for i, w := range out {
		events, r, err := gen.GenerateEvents(w.g, gen.Options{TargetSize: size, Seed: int64(11 + i)})
		if err != nil {
			t.Fatal(err)
		}
		w.events, w.oracle = events, r
	}
	return out
}

// waitCaughtUp polls until every workload's follower session has
// applied the primary's committed sequence.
func waitCaughtUp(t testing.TB, primary, follower *service.Registry, ws []*workload) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		behind := ""
		for _, w := range ws {
			ps, ok := primary.Get(w.name)
			if !ok {
				t.Fatalf("primary lost session %q", w.name)
			}
			fs, fok := follower.Get(w.name)
			if !fok || fs.WALSeq() < ps.WALSeq() {
				have := int64(-1)
				if fok {
					have = fs.WALSeq()
				}
				behind = fmt.Sprintf("%s at %d/%d", w.name, have, ps.WALSeq())
				break
			}
		}
		if behind == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %s", behind)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertEquivalent verifies the follower answers Stats, Reach and
// Lineage identically to the primary for the workload, and that its
// WAL is byte-identical to the primary's.
func assertEquivalent(t testing.TB, p, f *env, ws []*workload) {
	t.Helper()
	for _, w := range ws {
		ps, _ := p.reg.Get(w.name)
		fs, ok := f.reg.Get(w.name)
		if !ok {
			t.Fatalf("follower has no session %q", w.name)
		}
		pst, fst := ps.Stats(), fs.Stats()
		if fst.Vertices != pst.Vertices || fst.LabelBits != pst.LabelBits ||
			fst.SkeletonBits != pst.SkeletonBits || fst.Class != pst.Class ||
			fst.Skeleton != pst.Skeleton || fst.Mode != pst.Mode || len(fst.Shards) != len(pst.Shards) {
			t.Fatalf("%s: stats diverge\nprimary:  %+v\nfollower: %+v", w.name, pst, fst)
		}
		if pst.ID == "" || fst.ID != pst.ID {
			t.Fatalf("%s: identity not shared: primary %q, follower %q", w.name, pst.ID, fst.ID)
		}

		// Reachability over a dense sample of labeled vertices, against
		// both the primary and the BFS oracle.
		n := int(pst.Vertices)
		sample := make([]graph.VertexID, 0, 48)
		for i := 0; i < n && len(sample) < 48; i += 1 + n/48 {
			sample = append(sample, w.events[i].V)
		}
		for _, v := range sample {
			for _, u := range sample {
				pr, perr := ps.Reach(v, u)
				fr, ferr := fs.Reach(v, u)
				if (perr == nil) != (ferr == nil) || pr != fr {
					t.Fatalf("%s: reach(%d,%d): primary %v/%v follower %v/%v", w.name, v, u, pr, perr, fr, ferr)
				}
				if perr == nil && pr != w.oracle.Reaches(v, u) {
					t.Fatalf("%s: reach(%d,%d)=%v disagrees with the oracle", w.name, v, u, pr)
				}
			}
			pl, perr := ps.Lineage(v)
			fl, ferr := fs.Lineage(v)
			if (perr == nil) != (ferr == nil) || len(pl) != len(fl) {
				t.Fatalf("%s: lineage(%d) sizes %d/%d", w.name, v, len(pl), len(fl))
			}
			for i := range pl {
				if pl[i] != fl[i] {
					t.Fatalf("%s: lineage(%d)[%d] = %d vs %d", w.name, v, i, pl[i], fl[i])
				}
			}
		}

		// Byte identity: the follower's WAL is exactly the primary's.
		praw, err := os.ReadFile(filepath.Join(p.dir, w.name, "events.wal"))
		if err != nil {
			t.Fatal(err)
		}
		fraw, err := os.ReadFile(filepath.Join(f.dir, w.name, "events.wal"))
		if err != nil {
			t.Fatal(err)
		}
		if string(praw) != string(fraw) {
			t.Fatalf("%s: follower WAL (%d bytes) is not byte-identical to the primary's (%d bytes)", w.name, len(fraw), len(praw))
		}
	}
}

// ingest streams a slice of each workload's events into the primary
// concurrently, in small batches, while the follower tails.
func ingest(t testing.TB, reg *service.Registry, ws []*workload, lo, hi func(int) int) {
	t.Helper()
	errs := make(chan error, len(ws))
	for _, w := range ws {
		go func(w *workload) {
			s, ok := reg.Get(w.name)
			if !ok {
				errs <- fmt.Errorf("no session %q", w.name)
				return
			}
			events := w.events[lo(len(w.events)):hi(len(w.events))]
			const batch = 32
			for i := 0; i < len(events); i += batch {
				j := min(i+batch, len(events))
				if _, err := s.Append(events[i:j]); err != nil {
					errs <- fmt.Errorf("%s: %w", w.name, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for range ws {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFollowerEquivalence is the core replica guarantee: a follower
// tailing a live primary converges to answering every query
// identically, across sessions with different specs, skeletons,
// recursion modes and shard counts — and its WAL is a byte-identical
// copy. It also restarts the follower mid-stream and checks it
// resumes from its own recovered sequence.
func TestFollowerEquivalence(t *testing.T) {
	p := newEnv(t)
	defer p.close()
	ws := makeWorkloads(t, 500)
	for _, w := range ws {
		if _, err := p.reg.Create(w.name, w.g, w.cfg); err != nil {
			t.Fatal(err)
		}
	}

	fdir := t.TempDir()
	f := openEnv(t, fdir)
	fol := New(p.srv.URL, f.reg, fastOptions())
	fol.Start()

	// Phase 1: first 60% of every stream, ingested while the follower
	// tails live.
	ingest(t, p.reg, ws, func(int) int { return 0 }, func(n int) int { return n * 6 / 10 })
	waitCaughtUp(t, p.reg, f.reg, ws)
	assertEquivalent(t, p, f, ws)

	st := fol.Status()
	if st.Role != "follower" || st.Primary != p.srv.URL || len(st.Sessions) != len(ws) {
		t.Fatalf("follower status = %+v", st)
	}

	// Mid-stream follower restart: stop everything, reopen the same
	// data directory, and keep going — the new follower must resume
	// from its recovered WAL sequence, not from zero.
	fol.Close()
	f.close()
	f = openEnv(t, fdir)
	for _, w := range ws {
		s, ok := f.reg.Get(w.name)
		if !ok || s.WALSeq() == 0 {
			t.Fatalf("restarted follower did not recover %q (seq %d)", w.name, s.WALSeq())
		}
	}
	fol = New(p.srv.URL, f.reg, fastOptions())
	fol.Start()
	defer fol.Close()
	defer f.close()

	// Phase 2: the rest of every stream.
	ingest(t, p.reg, ws, func(n int) int { return n * 6 / 10 }, func(n int) int { return n })
	waitCaughtUp(t, p.reg, f.reg, ws)
	assertEquivalent(t, p, f, ws)

	if _, ok := f.reg.FollowerPrimary(); !ok {
		t.Fatal("follower registry not marked read-only")
	}
}

// TestFollowerPromote kills the primary abruptly mid-stream, promotes
// the follower, ingests the remainder of the stream into it, and then
// proves the promoted server's WAL is a valid continuation by
// restoring it from scratch.
func TestFollowerPromote(t *testing.T) {
	p := newEnv(t)
	ws := makeWorkloads(t, 400)[:1]
	w := ws[0]
	if _, err := p.reg.Create(w.name, w.g, w.cfg); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	f := openEnv(t, fdir)
	defer f.close()
	fol := New(p.srv.URL, f.reg, fastOptions())
	fol.Start()

	half := len(w.events) / 2
	ingest(t, p.reg, ws, func(int) int { return 0 }, func(int) int { return half })
	waitCaughtUp(t, p.reg, f.reg, ws)

	// SIGKILL stand-in: the primary's HTTP goes away without any
	// graceful close of its registry.
	p.srv.CloseClientConnections()
	p.srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fol.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, ok := f.reg.FollowerPrimary(); ok {
		t.Fatal("promoted registry still read-only")
	}
	if st := fol.Status(); st.Role != "primary" {
		t.Fatalf("post-promote status role = %q", st.Role)
	}
	// Idempotent: a second promote is a no-op, not an error, and must
	// not disturb the already-writable server.
	if err := fol.Promote(ctx); err != nil {
		t.Fatalf("second promote: %v", err)
	}
	if _, ok := f.reg.FollowerPrimary(); ok {
		t.Fatal("second promote flipped the registry back to follower")
	}

	// Continued ingest straight into the promoted server.
	fs, _ := f.reg.Get(w.name)
	if got := fs.WALSeq(); got != int64(half) {
		t.Fatalf("promoted session at seq %d, want %d", got, half)
	}
	if _, err := fs.Append(w.events[half:]); err != nil {
		t.Fatalf("ingest after promote: %v", err)
	}
	for i := 0; i < len(w.events); i += 7 {
		v, u := w.events[i].V, w.events[(i*13)%len(w.events)].V
		got, err := fs.Reach(v, u)
		if err != nil || got != w.oracle.Reaches(v, u) {
			t.Fatalf("promoted reach(%d,%d) = %v/%v, oracle %v", v, u, got, err, w.oracle.Reaches(v, u))
		}
	}

	// The promoted WAL must restore cleanly: replication prefix plus
	// post-promote writes form one continuous, valid log.
	f.close()
	r := openEnv(t, fdir)
	defer r.close()
	rs, ok := r.reg.Get(w.name)
	if !ok {
		t.Fatal("restore after promote lost the session")
	}
	if rs.Vertices() != int64(len(w.events)) {
		t.Fatalf("restore after promote: %d vertices, want %d", rs.Vertices(), len(w.events))
	}
	if got := rs.WALSeq(); got != int64(len(w.events)) {
		t.Fatalf("restore after promote: WAL seq %d, want %d", got, len(w.events))
	}
	for i := 0; i < len(w.events); i += 11 {
		v, u := w.events[i].V, w.events[(i*7)%len(w.events)].V
		got, err := rs.Reach(v, u)
		if err != nil || got != w.oracle.Reaches(v, u) {
			t.Fatalf("restored reach(%d,%d) = %v/%v", v, u, got, err)
		}
	}

	_ = p.reg.Close()
}

// TestFollowerSessionVanished: a session deleted on the primary stops
// being tailed but keeps serving reads on the follower.
func TestFollowerSessionVanished(t *testing.T) {
	p := newEnv(t)
	defer p.close()
	ws := makeWorkloads(t, 200)[:1]
	w := ws[0]
	if _, err := p.reg.Create(w.name, w.g, w.cfg); err != nil {
		t.Fatal(err)
	}
	ingest(t, p.reg, ws, func(int) int { return 0 }, func(n int) int { return n })

	f := openEnv(t, t.TempDir())
	defer f.close()
	fol := New(p.srv.URL, f.reg, fastOptions())
	fol.Start()
	defer fol.Close()
	waitCaughtUp(t, p.reg, f.reg, ws)

	p.reg.Delete(w.name)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := fol.Status()
		if len(st.Sessions) == 1 && st.Sessions[0].Error != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("vanished session never reported: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fs, ok := f.reg.Get(w.name)
	if !ok {
		t.Fatal("follower dropped the session's local data")
	}
	if _, err := fs.Reach(w.events[0].V, w.events[len(w.events)-1].V); err != nil {
		t.Fatalf("reads after primary delete: %v", err)
	}
}

// TestFollowerDetectsRecreatedSession: a session deleted and
// recreated on the primary under the same name must never have its
// new stream spliced onto the follower's old state — the identity
// mismatch stops the tail and the old data keeps serving.
func TestFollowerDetectsRecreatedSession(t *testing.T) {
	p := newEnv(t)
	defer p.close()
	ws := makeWorkloads(t, 200)[:1]
	w := ws[0]
	if _, err := p.reg.Create(w.name, w.g, w.cfg); err != nil {
		t.Fatal(err)
	}
	ingest(t, p.reg, ws, func(int) int { return 0 }, func(n int) int { return n })

	f := openEnv(t, t.TempDir())
	defer f.close()
	fol := New(p.srv.URL, f.reg, fastOptions())
	fol.Start()
	defer fol.Close()
	waitCaughtUp(t, p.reg, f.reg, ws)
	oldVertices, _ := f.reg.Get(w.name)
	n := oldVertices.Vertices()

	// Replace the session on the primary: same name, fresh identity,
	// and a different event stream.
	p.reg.Delete(w.name)
	s2, err := p.reg.Create(w.name, w.g, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	events2, _, err := gen.GenerateEvents(w.g, gen.Options{TargetSize: 300, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Append(events2); err != nil {
		t.Fatal(err)
	}

	// The follower must refuse the new stream, not splice it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := fol.Status()
		if len(st.Sessions) == 1 && strings.Contains(st.Sessions[0].Error, "replaced on the primary") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replacement never detected: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fs, ok := f.reg.Get(w.name)
	if !ok {
		t.Fatal("follower dropped the old session data")
	}
	if fs.Vertices() != n {
		t.Fatalf("follower state moved after replacement: %d vertices, had %d", fs.Vertices(), n)
	}
}
