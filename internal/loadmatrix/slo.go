package loadmatrix

import (
	"fmt"
	"math"
)

// Metrics is what one scenario (or soak) measured, in the report's
// stable units.
type Metrics struct {
	ElapsedSec   float64 `json:"elapsed_sec"`
	IngestEvents int64   `json:"ingest_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	IngestP50US  float64 `json:"ingest_p50_us"`
	IngestP95US  float64 `json:"ingest_p95_us"`
	IngestP99US  float64 `json:"ingest_p99_us"`

	Queries        int64   `json:"queries"`
	LineageQueries int64   `json:"lineage_queries,omitempty"`
	QueryErrors    int64   `json:"query_errors"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	QueryP50US     float64 `json:"query_p50_us"`
	QueryP95US     float64 `json:"query_p95_us"`
	QueryP99US     float64 `json:"query_p99_us"`

	VerifyChecked    bool  `json:"verify_checked"`
	VerifyMismatches int64 `json:"verify_mismatches"`

	// HasReplica gates the lag SLO: lag is only meaningful on
	// topologies with a follower.
	HasReplica          bool    `json:"has_replica,omitempty"`
	ReplicaLagSamples   int     `json:"replica_lag_samples,omitempty"`
	ReplicaLagMaxEvents int64   `json:"replica_lag_max_events,omitempty"`
	CatchupSec          float64 `json:"catchup_sec,omitempty"`
}

// Violation is one failed SLO gate.
type Violation struct {
	// Metric names the gate ("p99_ingest_us", "min_events_per_sec",
	// "max_replica_lag_events", "verify_mismatches").
	Metric string `json:"metric"`
	// Value is the measurement, Limit the gate.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	// Reason is the human-readable failure.
	Reason string `json:"reason"`
}

// Evaluate applies the SLO gates to the measured metrics. A zero gate
// is skipped. A measurement exactly at its limit passes. A gated
// metric that has no samples — or comes out NaN/Inf — is a loud
// violation, never a silent pass: an SLO that measured nothing proved
// nothing. The replica-lag gate applies only when the topology has a
// follower. Verification mismatches always violate when verification
// ran, gate or no gate.
func Evaluate(slo SLO, m Metrics) []Violation {
	var out []Violation
	ceiling := func(metric string, value float64, limit float64, samples bool) {
		switch {
		case !samples:
			out = append(out, Violation{Metric: metric, Value: value, Limit: limit,
				Reason: fmt.Sprintf("%s is gated but measured no samples", metric)})
		case math.IsNaN(value) || math.IsInf(value, 0):
			out = append(out, Violation{Metric: metric, Value: value, Limit: limit,
				Reason: fmt.Sprintf("%s is %v, not a finite measurement", metric, value)})
		case value > limit:
			out = append(out, Violation{Metric: metric, Value: value, Limit: limit,
				Reason: fmt.Sprintf("%s = %.0f exceeds the limit %.0f", metric, value, limit)})
		}
	}

	if slo.P99IngestUS > 0 {
		ceiling("p99_ingest_us", m.IngestP99US, float64(slo.P99IngestUS), m.IngestEvents > 0)
	}
	if slo.P99QueryUS > 0 {
		ceiling("p99_query_us", m.QueryP99US, float64(slo.P99QueryUS), m.Queries > 0)
	}
	if slo.MinEventsPerSec > 0 {
		v := m.EventsPerSec
		switch {
		case m.IngestEvents == 0:
			out = append(out, Violation{Metric: "min_events_per_sec", Value: v, Limit: slo.MinEventsPerSec,
				Reason: "min_events_per_sec is gated but no events were ingested"})
		case math.IsNaN(v) || math.IsInf(v, 0):
			out = append(out, Violation{Metric: "min_events_per_sec", Value: v, Limit: slo.MinEventsPerSec,
				Reason: fmt.Sprintf("events_per_sec is %v, not a finite measurement", v)})
		case v < slo.MinEventsPerSec:
			out = append(out, Violation{Metric: "min_events_per_sec", Value: v, Limit: slo.MinEventsPerSec,
				Reason: fmt.Sprintf("events_per_sec = %.0f is below the floor %.0f", v, slo.MinEventsPerSec)})
		}
	}
	if slo.MaxReplicaLagEvents > 0 && m.HasReplica {
		ceiling("max_replica_lag_events", float64(m.ReplicaLagMaxEvents),
			float64(slo.MaxReplicaLagEvents), m.ReplicaLagSamples > 0)
	}
	if m.VerifyChecked && m.VerifyMismatches > 0 {
		out = append(out, Violation{Metric: "verify_mismatches", Value: float64(m.VerifyMismatches), Limit: 0,
			Reason: fmt.Sprintf("%d query answers contradicted BFS ground truth", m.VerifyMismatches)})
	}
	return out
}
