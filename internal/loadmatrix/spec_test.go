package loadmatrix

import (
	"errors"
	"strings"
	"testing"
)

// validMatrix is a fully-populated spec the error tests mutate.
const validMatrix = `{
  "name": "t",
  "defaults": {"batch": 64, "verify": true, "seed": 3},
  "workloads": [
    {"name": "bio", "kind": "grammar", "spec": "BioAID", "size": 500},
    {"name": "agent", "kind": "agent", "size": 400, "depth": 4, "fanout": 6, "retries": 2}
  ],
  "topologies": ["single", "replica"],
  "transports": ["binary", "json"],
  "sessions": [2, 4],
  "mixes": [{"name": "rw", "readers": 2, "reach_batch": 8, "lineage_every": 16}],
  "slo": {"p99_ingest_us": 500000, "min_events_per_sec": 100},
  "overrides": [
    {"topology": "replica", "slo": {"max_replica_lag_events": 100000}},
    {"workload": "agent", "sessions": 4, "slo": {"p99_ingest_us": 900000}}
  ]
}`

func TestParseValidMatrix(t *testing.T) {
	m, err := Parse([]byte(validMatrix))
	if err != nil {
		t.Fatal(err)
	}
	scenarios := m.Expand()
	if len(scenarios) != 2*2*2*2 {
		t.Fatalf("expanded %d scenarios, want 16", len(scenarios))
	}
	names := map[string]bool{}
	for _, sc := range scenarios {
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		if sc.Batch != 64 || !sc.Verify || sc.Seed != 3 {
			t.Fatalf("defaults not applied to %q: %+v", sc.Name, sc)
		}
		// Base SLO everywhere; replica override adds the lag gate only
		// on replica topologies.
		if sc.SLO.MinEventsPerSec != 100 {
			t.Fatalf("%q lost the base SLO: %+v", sc.Name, sc.SLO)
		}
		wantLag := int64(0)
		if sc.Topology == "replica" {
			wantLag = 100000
		}
		if sc.SLO.MaxReplicaLagEvents != wantLag {
			t.Fatalf("%q lag gate = %d, want %d", sc.Name, sc.SLO.MaxReplicaLagEvents, wantLag)
		}
		wantIngest := int64(500000)
		if sc.Workload.Name == "agent" && sc.Sessions == 4 {
			wantIngest = 900000
		}
		if sc.SLO.P99IngestUS != wantIngest {
			t.Fatalf("%q ingest gate = %d, want %d", sc.Name, sc.SLO.P99IngestUS, wantIngest)
		}
	}
	if !names["bio/single/binary/s2/rw"] {
		t.Fatalf("expected scenario name missing; have %v", names)
	}
}

func TestParseAppliesDefaults(t *testing.T) {
	m, err := Parse([]byte(`{
	  "workloads": [{"name": "w", "kind": "grammar", "spec": "Path"}],
	  "topologies": ["single"], "transports": ["binary"], "sessions": [1]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Defaults.Batch != 128 || m.Defaults.Seed != 1 {
		t.Fatalf("defaults %+v", m.Defaults)
	}
	if m.Workloads[0].Size != 2000 {
		t.Fatalf("workload size default %d", m.Workloads[0].Size)
	}
	if len(m.Mixes) != 1 || m.Mixes[0].Name != "default" || m.Mixes[0].ReachBatch != 8 {
		t.Fatalf("default mix %+v", m.Mixes)
	}
}

func TestParseSoakOnlyMatrix(t *testing.T) {
	m, err := Parse([]byte(`{
	  "workloads": [{"name": "agent", "kind": "agent", "size": 300}],
	  "slo": {"min_events_per_sec": 10},
	  "soak": {"workload": "agent", "sessions": 50, "duration_sec": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Expand()) != 0 {
		t.Fatal("soak-only matrix expanded scenarios")
	}
	if m.Soak.Topology != "single" || m.Soak.SampleEverySec != 5 || m.Soak.Workers != 8 || m.Soak.Readers != 2 {
		t.Fatalf("soak defaults %+v", m.Soak)
	}
}

// mutate returns validMatrix with one substring replaced.
func mutate(t *testing.T, old, new string) []byte {
	t.Helper()
	if !strings.Contains(validMatrix, old) {
		t.Fatalf("mutation target %q not in the valid matrix", old)
	}
	return []byte(strings.Replace(validMatrix, old, new, 1))
}

func TestParseRejectsMalformedCombos(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		path string // the SpecError must locate the offending field
	}{
		{"syntax", []byte(`{"name": `), "json"},
		{"unknown-field", []byte(`{"wrklds": []}`), "json"},
		{"trailing", []byte(`{"workloads":[{"name":"w","kind":"agent"}],"soak":{"workload":"w","sessions":1,"duration_sec":1}} {}`), "json"},
		{"not-object", []byte(`[1,2]`), "json"},
		{"no-workloads", []byte(`{"topologies": ["single"]}`), "workloads"},
		{"workload-unnamed", mutate(t, `"name": "bio", `, ""), "workloads[0].name"},
		{"workload-dup", mutate(t, `"name": "agent", "kind": "agent"`, `"name": "bio", "kind": "agent"`), "workloads[1].name"},
		{"kind-missing", mutate(t, `"kind": "grammar", `, ""), "workloads[0]"},
		{"kind-unknown", mutate(t, `"kind": "grammar"`, `"kind": "llm"`), "workloads[0].kind"},
		{"grammar-no-spec", mutate(t, `"spec": "BioAID", `, ""), "workloads[0].spec"},
		{"grammar-bad-spec", mutate(t, `"spec": "BioAID"`, `"spec": "NoSuch"`), "workloads[0].spec"},
		{"grammar-agent-knobs", mutate(t, `"spec": "BioAID", "size": 500`, `"spec": "BioAID", "size": 500, "depth": 3`), "workloads[0]"},
		{"agent-with-spec", mutate(t, `"kind": "agent", "size": 400`, `"kind": "agent", "spec": "BioAID", "size": 400`), "workloads[1].spec"},
		{"agent-depth-wild", mutate(t, `"depth": 4`, `"depth": 100000`), "workloads[1].depth"},
		{"size-negative", mutate(t, `"size": 500`, `"size": -1`), "workloads[0].size"},
		{"size-huge", mutate(t, `"size": 500`, `"size": 100000000`), "workloads[0].size"},
		{"topology-unknown", mutate(t, `"single"`, `"mesh"`), "topologies[0]"},
		{"topology-dup", mutate(t, `"replica"]`, `"single"]`), "topologies[1]"},
		{"transport-unknown", mutate(t, `"binary"`, `"udp"`), "transports[0]"},
		{"sessions-zero", mutate(t, `[2, 4]`, `[0]`), "sessions[0]"},
		{"sessions-dup", mutate(t, `[2, 4]`, `[2, 2]`), "sessions[1]"},
		{"mix-unnamed", mutate(t, `"name": "rw", `, ""), "mixes[0].name"},
		{"mix-readers", mutate(t, `"readers": 2`, `"readers": -1`), "mixes[0].readers"},
		{"mix-reach-batch", mutate(t, `"reach_batch": 8`, `"reach_batch": 9999`), "mixes[0].reach_batch"},
		{"slo-negative", mutate(t, `"p99_ingest_us": 500000`, `"p99_ingest_us": -5`), "slo.p99_ingest_us"},
		{"override-unknown-topology", mutate(t, `{"topology": "replica",`, `{"topology": "cluster3",`), "overrides[0].topology"},
		{"override-unknown-workload", mutate(t, `{"workload": "agent",`, `{"workload": "ghost",`), "overrides[1].workload"},
		{"override-unknown-sessions", mutate(t, `"sessions": 4,`, `"sessions": 7,`), "overrides[1].sessions"},
		{"override-empty", mutate(t, `{"topology": "replica", "slo": {"max_replica_lag_events": 100000}}`, `{"topology": "replica", "slo": {}}`), "overrides[0].slo"},
		{"no-dims-no-soak", []byte(`{"workloads": [{"name": "w", "kind": "agent"}]}`), "topologies"},
		{"partial-dims", []byte(`{"workloads": [{"name": "w", "kind": "agent"}], "topologies": ["single"]}`), "transports"},
		{"soak-unknown-workload", []byte(`{"workloads": [{"name": "w", "kind": "agent"}], "soak": {"workload": "x", "sessions": 1, "duration_sec": 1}}`), "soak.workload"},
		{"soak-no-duration", []byte(`{"workloads": [{"name": "w", "kind": "agent"}], "soak": {"workload": "w", "sessions": 1}}`), "soak.duration_sec"},
		{"soak-bad-topology", []byte(`{"workloads": [{"name": "w", "kind": "agent"}], "soak": {"workload": "w", "topology": "dual", "sessions": 1, "duration_sec": 1}}`), "soak.topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.data)
			if err == nil {
				t.Fatalf("accepted malformed spec:\n%s", tc.data)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *SpecError: %v", err, err)
			}
			if !strings.HasPrefix(se.Path, tc.path) {
				t.Fatalf("error path %q, want prefix %q (%v)", se.Path, tc.path, err)
			}
		})
	}
}
