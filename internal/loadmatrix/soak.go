package loadmatrix

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfreach/client"
	"wfreach/internal/graph"
)

// SoakSample is one point-in-time health snapshot of a soak run.
type SoakSample struct {
	AtSec        float64 `json:"at_sec"`
	IngestEvents int64   `json:"ingest_events"`
	LiveSessions int     `json:"live_sessions"`
	Goroutines   int     `json:"goroutines"`
	HeapBytes    uint64  `json:"heap_bytes"`
	RSSBytes     int64   `json:"rss_bytes"`
	LagEvents    int64   `json:"lag_events,omitempty"`
}

// SoakResult is the outcome of the long-hold run: aggregate
// throughput, the health samples over time, and the SLO verdict.
type SoakResult struct {
	Workload     string  `json:"workload"`
	Topology     string  `json:"topology"`
	Sessions     int     `json:"sessions"`
	LiveSessions int     `json:"live_sessions"`
	DurationSec  float64 `json:"duration_sec"`

	IngestEvents     int64   `json:"ingest_events"`
	EventsPerSec     float64 `json:"events_per_sec"`
	Queries          int64   `json:"queries"`
	QueryErrors      int64   `json:"query_errors"`
	VerifyMismatches int64   `json:"verify_mismatches"`

	Samples    []SoakSample `json:"samples"`
	Violations []Violation  `json:"violations,omitempty"`
	Pass       bool         `json:"pass"`
}

// soakSession is one live session: its oracle (an index into the
// generated pool) and how far ingest has acknowledged.
type soakSession struct {
	name      string
	pool      int
	cursor    int // owned by the worker currently holding the session
	watermark atomic.Int64
}

// readRSS returns the process resident set size from
// /proc/self/status, or 0 where that is unavailable.
func readRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// runSoak holds Soak.Sessions live sessions against the topology for
// the configured duration: an ingest worker pool round-robins event
// batches across them, rolling in a replacement session whenever one
// exhausts its stream (so the live count only grows), readers verify
// random sessions throughout, and a sampler records lag, RSS and
// goroutine counts. Ground truth comes from a small pool of distinct
// generated traces so generation cost stays bounded however many
// sessions the soak cycles through.
func runSoak(ctx context.Context, m *Matrix, opts RunOptions, scratch string) (*SoakResult, error) {
	cfg := m.Soak
	var w Workload
	for _, cand := range m.Workloads {
		if cand.Name == cfg.Workload {
			w = cand
		}
	}

	dir := scratch + "/soak"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t, err := launchTopology(cfg.Topology, dir)
	if err != nil {
		return nil, err
	}
	defer t.Close()

	poolSize := min(16, cfg.Sessions)
	pool, err := generateLoads(w, poolSize, m.Defaults.Seed, "pool")
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(opts.out(), "soak: %s on %s, %d sessions for %ds (%d workers, %d readers, oracle pool %d)\n",
		cfg.Workload, cfg.Topology, cfg.Sessions, cfg.DurationSec, cfg.Workers, cfg.Readers, poolSize)

	var (
		created    atomic.Int64 // names the next session
		ingested   atomic.Int64
		queried    atomic.Int64
		queryErrs  atomic.Int64
		mismatches atomic.Int64
		errMu      sync.Mutex
		firstErr   error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// sessions is append-only: rolled-in replacements join, nothing
	// leaves — every entry stays a live, queryable session.
	var sessMu sync.RWMutex
	var sessions []*soakSession

	newSession := func() (*soakSession, error) {
		id := created.Add(1) - 1
		s := &soakSession{name: fmt.Sprintf("soak-%d", id), pool: int(id) % poolSize}
		if _, err := t.write.CreateSession(ctx, client.CreateSessionRequest{
			Name: s.name, Builtin: w.builtinFor(),
		}); err != nil {
			return nil, fmt.Errorf("create %s: %w", s.name, err)
		}
		sessMu.Lock()
		sessions = append(sessions, s)
		sessMu.Unlock()
		return s, nil
	}

	// Create the initial population concurrently — thousands of
	// serial HTTP creates would eat into the measured hold time.
	work := make(chan *soakSession, cfg.Sessions+cfg.Workers)
	{
		var cwg sync.WaitGroup
		sem := make(chan struct{}, 32)
		for i := 0; i < cfg.Sessions; i++ {
			cwg.Add(1)
			sem <- struct{}{}
			go func() {
				defer cwg.Done()
				defer func() { <-sem }()
				s, err := newSession()
				if err != nil {
					setErr(err)
					return
				}
				work <- s
			}()
		}
		cwg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	stop := make(chan struct{})
	start := time.Now()
	batch := m.Defaults.Batch

	var wg sync.WaitGroup
	for wi := 0; wi < cfg.Workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var s *soakSession
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case s = <-work:
				}
				l := pool[s.pool]
				hi := min(s.cursor+batch, len(l.events))
				if err := ingestVia(ctx, "binary", t.write, s.name, l.events[s.cursor:hi]); err != nil {
					setErr(fmt.Errorf("ingest %s at %d: %w", s.name, s.cursor, err))
					return
				}
				ingested.Add(int64(hi - s.cursor))
				s.cursor = hi
				s.watermark.Store(int64(hi))
				if hi < len(l.events) {
					work <- s
					continue
				}
				// Stream exhausted: the session stays live; a fresh one
				// rolls in to keep ingest pressure up.
				ns, err := newSession()
				if err != nil {
					setErr(err)
					return
				}
				work <- ns
			}
		}()
	}

	for ri := 0; ri < cfg.Readers; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				sessMu.RLock()
				s := sessions[rng.Intn(len(sessions))]
				sessMu.RUnlock()
				wm := s.watermark.Load()
				if wm < 2 {
					time.Sleep(time.Millisecond)
					continue
				}
				l := pool[s.pool]
				pairs := make([]client.ReachPair, 8)
				for pi := range pairs {
					pairs[pi] = client.ReachPair{
						From: int32(l.events[rng.Int63n(wm)].V),
						To:   int32(l.events[rng.Int63n(wm)].V),
					}
				}
				answers, err := t.read.ReachBatch(ctx, s.name, pairs)
				if err != nil {
					queryErrs.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				for _, ans := range answers {
					if ans.Code != "" {
						queryErrs.Add(1)
						continue
					}
					queried.Add(1)
					if m.Defaults.Verify && ans.Reachable != l.oracle.Reaches(graph.VertexID(ans.From), graph.VertexID(ans.To)) {
						mismatches.Add(1)
						setErr(fmt.Errorf("soak mismatch: %s reach(%d,%d)=%v", s.name, ans.From, ans.To, ans.Reachable))
					}
				}
			}
		}(m.Defaults.Seed + int64(ri))
	}

	// The sampler: health snapshots on the configured period, plus one
	// final snapshot as the run ends.
	var ls *lagSampler
	if t.hasReplica() {
		ls = &lagSampler{primary: t.primary, follower: t.follower, names: map[string]bool{}}
	}
	var samples []SoakSample
	takeSample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sessMu.RLock()
		live := len(sessions)
		sessMu.RUnlock()
		s := SoakSample{
			AtSec:        time.Since(start).Seconds(),
			IngestEvents: ingested.Load(),
			LiveSessions: live,
			Goroutines:   runtime.NumGoroutine(),
			HeapBytes:    ms.HeapAlloc,
			RSSBytes:     readRSS(),
		}
		if ls != nil {
			if lag, ok := ls.onceAll(ctx); ok {
				s.LagEvents = lag
			}
		}
		samples = append(samples, s)
		fmt.Fprintf(opts.out(), "soak %5.0fs: %d events, %d live sessions, %d goroutines, heap %dMB, rss %dMB, lag %d\n",
			s.AtSec, s.IngestEvents, s.LiveSessions, s.Goroutines,
			s.HeapBytes/(1<<20), s.RSSBytes/(1<<20), s.LagEvents)
	}

	deadline := time.After(time.Duration(cfg.DurationSec) * time.Second)
	ticker := time.NewTicker(time.Duration(cfg.SampleEverySec) * time.Second)
hold:
	for {
		select {
		case <-ticker.C:
			takeSample()
		case <-deadline:
			break hold
		case <-ctx.Done():
			break hold
		}
	}
	ticker.Stop()
	close(stop)
	wg.Wait()
	takeSample()
	elapsed := time.Since(start)

	if firstErr != nil && mismatches.Load() == 0 {
		return nil, firstErr
	}

	sessMu.RLock()
	live := len(sessions)
	sessMu.RUnlock()
	res := &SoakResult{
		Workload: cfg.Workload, Topology: cfg.Topology,
		Sessions: cfg.Sessions, LiveSessions: live,
		DurationSec:      elapsed.Seconds(),
		IngestEvents:     ingested.Load(),
		EventsPerSec:     float64(ingested.Load()) / elapsed.Seconds(),
		Queries:          queried.Load(),
		QueryErrors:      queryErrs.Load(),
		VerifyMismatches: mismatches.Load(),
		Samples:          samples,
	}

	// The scenario SLO gates that translate to a soak: throughput
	// floor, lag ceiling (worst sample), verification.
	met := Metrics{
		ElapsedSec:       res.DurationSec,
		IngestEvents:     res.IngestEvents,
		EventsPerSec:     res.EventsPerSec,
		Queries:          res.Queries,
		QueryErrors:      res.QueryErrors,
		VerifyChecked:    m.Defaults.Verify,
		VerifyMismatches: res.VerifyMismatches,
		HasReplica:       t.hasReplica(),
	}
	for _, s := range samples {
		if s.LagEvents > met.ReplicaLagMaxEvents {
			met.ReplicaLagMaxEvents = s.LagEvents
		}
	}
	met.ReplicaLagSamples = len(samples)
	slo := m.SLO
	slo.P99IngestUS, slo.P99QueryUS = 0, 0 // per-call latency gates are scenario gates
	res.Violations = Evaluate(slo, met)
	if live < cfg.Sessions {
		res.Violations = append(res.Violations, Violation{
			Metric: "live_sessions", Value: float64(live), Limit: float64(cfg.Sessions),
			Reason: fmt.Sprintf("only %d live sessions held, wanted %d", live, cfg.Sessions),
		})
	}
	res.Pass = len(res.Violations) == 0
	return res, nil
}

// onceAll samples the worst lag across every session the primary
// reports (the soak's set grows over time, so there is no fixed name
// filter).
func (ls *lagSampler) onceAll(ctx context.Context) (int64, bool) {
	pst, err := ls.primary.ReplicationStatus(ctx)
	if err != nil {
		return 0, false
	}
	fst, err := ls.follower.ReplicationStatus(ctx)
	if err != nil {
		return 0, false
	}
	applied := make(map[string]int64, len(fst.Sessions))
	for _, s := range fst.Sessions {
		applied[s.Name] = s.WALSeq
	}
	var worst int64
	for _, s := range pst.Sessions {
		if lag := s.WALSeq - applied[s.Name]; lag > worst {
			worst = lag
		}
	}
	return worst, true
}
