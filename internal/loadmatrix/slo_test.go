package loadmatrix

import (
	"math"
	"testing"
)

// healthy is a measurement set that passes the gates it is paired
// with; cases mutate it.
func healthy() Metrics {
	return Metrics{
		ElapsedSec:   1,
		IngestEvents: 10000, EventsPerSec: 10000,
		IngestP50US: 100, IngestP95US: 300, IngestP99US: 500,
		Queries: 4000, QueriesPerSec: 4000,
		QueryP50US: 20, QueryP95US: 60, QueryP99US: 90,
		VerifyChecked: true,
		HasReplica:    true, ReplicaLagSamples: 40, ReplicaLagMaxEvents: 1200,
	}
}

func TestEvaluateTable(t *testing.T) {
	slo := SLO{P99IngestUS: 500, P99QueryUS: 90, MinEventsPerSec: 10000, MaxReplicaLagEvents: 1200}
	cases := []struct {
		name    string
		slo     SLO
		mutate  func(*Metrics)
		metrics []string // violated metrics, in order
	}{
		{"all-gates-healthy", slo, func(m *Metrics) {}, nil},
		// A measurement exactly at its limit passes — an SLO is a
		// ceiling (or floor), not an open bound. healthy() sits exactly
		// at every gate already; these pin each boundary individually.
		{"exactly-at-ingest-p99", slo, func(m *Metrics) { m.IngestP99US = 500 }, nil},
		{"one-over-ingest-p99", slo, func(m *Metrics) { m.IngestP99US = 501 }, []string{"p99_ingest_us"}},
		{"exactly-at-throughput-floor", slo, func(m *Metrics) { m.EventsPerSec = 10000 }, nil},
		{"one-under-throughput-floor", slo, func(m *Metrics) { m.EventsPerSec = 9999.5 }, []string{"min_events_per_sec"}},
		{"exactly-at-lag", slo, func(m *Metrics) { m.ReplicaLagMaxEvents = 1200 }, nil},
		{"one-over-lag", slo, func(m *Metrics) { m.ReplicaLagMaxEvents = 1201 }, []string{"max_replica_lag_events"}},
		{"one-over-query-p99", slo, func(m *Metrics) { m.QueryP99US = 90.5 }, []string{"p99_query_us"}},

		// A gated metric that measured nothing fails loudly — zero
		// samples must never read as "fast".
		{"no-ingest-samples", slo, func(m *Metrics) {
			m.IngestEvents, m.EventsPerSec, m.IngestP99US = 0, 0, 0
		}, []string{"p99_ingest_us", "min_events_per_sec"}},
		{"no-query-samples", slo, func(m *Metrics) { m.Queries, m.QueryP99US = 0, 0 }, []string{"p99_query_us"}},
		{"no-lag-samples", slo, func(m *Metrics) { m.ReplicaLagSamples, m.ReplicaLagMaxEvents = 0, 0 }, []string{"max_replica_lag_events"}},

		// NaN/Inf measurements fail loudly instead of comparing as
		// false and sliding through.
		{"nan-p99", slo, func(m *Metrics) { m.IngestP99US = math.NaN() }, []string{"p99_ingest_us"}},
		{"inf-throughput", slo, func(m *Metrics) { m.EventsPerSec = math.Inf(1) }, []string{"min_events_per_sec"}},
		{"nan-throughput", slo, func(m *Metrics) { m.EventsPerSec = math.NaN() }, []string{"min_events_per_sec"}},

		// The lag gate only applies to topologies that have a replica.
		{"lag-gate-without-replica", slo, func(m *Metrics) {
			m.HasReplica, m.ReplicaLagSamples, m.ReplicaLagMaxEvents = false, 0, 0
		}, nil},

		// Verification mismatches always violate when verification ran,
		// with or without gates.
		{"verify-mismatch", SLO{}, func(m *Metrics) { m.VerifyMismatches = 3 }, []string{"verify_mismatches"}},
		{"mismatch-without-verify", SLO{}, func(m *Metrics) {
			m.VerifyChecked, m.VerifyMismatches = false, 0
		}, nil},

		// Ungated metrics never violate, whatever they measure.
		{"ungated", SLO{}, func(m *Metrics) {
			m.IngestP99US, m.EventsPerSec, m.ReplicaLagMaxEvents = 1e12, 0.001, 1e15
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := healthy()
			tc.mutate(&m)
			vs := Evaluate(tc.slo, m)
			if len(vs) != len(tc.metrics) {
				t.Fatalf("got %d violations %+v, want metrics %v", len(vs), vs, tc.metrics)
			}
			for i, v := range vs {
				if v.Metric != tc.metrics[i] {
					t.Fatalf("violation %d is %q, want %q (%+v)", i, v.Metric, tc.metrics[i], vs)
				}
				if v.Reason == "" {
					t.Fatalf("violation %q has no reason", v.Metric)
				}
			}
		})
	}
}

// TestSLOMerge pins the override semantics: non-zero fields replace,
// zero fields inherit.
func TestSLOMerge(t *testing.T) {
	base := SLO{P99IngestUS: 100, MinEventsPerSec: 50}
	got := base.merge(SLO{P99IngestUS: 200, MaxReplicaLagEvents: 7})
	want := SLO{P99IngestUS: 200, MinEventsPerSec: 50, MaxReplicaLagEvents: 7}
	if got != want {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
}
