package loadmatrix

import (
	"context"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Matrix {
	t.Helper()
	m, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunTinyMatrix drives a small real matrix end to end on the
// single topology: both workload kinds, both transports, verification
// on, generous gates — everything must pass and the report must carry
// real measurements.
func TestRunTinyMatrix(t *testing.T) {
	m := mustParse(t, `{
	  "name": "tiny",
	  "defaults": {"batch": 64, "verify": true, "seed": 5},
	  "workloads": [
	    {"name": "bio", "kind": "grammar", "spec": "BioAID", "size": 400},
	    {"name": "agent", "kind": "agent", "size": 300, "depth": 4}
	  ],
	  "topologies": ["single"],
	  "transports": ["binary", "json"],
	  "sessions": [2],
	  "mixes": [{"name": "rw", "readers": 2, "reach_batch": 4, "lineage_every": 8}],
	  "slo": {"p99_ingest_us": 60000000, "p99_query_us": 60000000, "min_events_per_sec": 1}
	}`)
	rep, err := Run(context.Background(), m, RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 4 || rep.Passed != 4 || rep.Failed != 0 || !rep.Pass {
		t.Fatalf("report %+v", rep)
	}
	for _, sc := range rep.Scenarios {
		if sc.Metrics.IngestEvents == 0 || sc.Metrics.EventsPerSec <= 0 {
			t.Fatalf("%s measured no ingest: %+v", sc.Name, sc.Metrics)
		}
		if sc.Metrics.IngestP99US <= 0 {
			t.Fatalf("%s measured no ingest latency: %+v", sc.Name, sc.Metrics)
		}
		if !sc.Metrics.VerifyChecked || sc.Metrics.VerifyMismatches != 0 {
			t.Fatalf("%s verification: %+v", sc.Name, sc.Metrics)
		}
		if sc.Metrics.HasReplica {
			t.Fatalf("%s claims a replica on the single topology", sc.Name)
		}
		// Server-side truth must agree with the client-side count: the
		// summed per-session ingest deltas equal the events we sent.
		if sc.ServerMetrics == nil {
			t.Fatalf("%s carried no server metrics", sc.Name)
		}
		var serverIngest float64
		for k, v := range sc.ServerMetrics {
			if strings.HasPrefix(k, "wf_ingest_events_total{") {
				serverIngest += v
			}
			if strings.Contains(k, `quantile="`) {
				t.Fatalf("%s delta kept non-additive series %s", sc.Name, k)
			}
		}
		if serverIngest != float64(sc.Metrics.IngestEvents) {
			t.Fatalf("%s server counted %.0f ingested events, client %d",
				sc.Name, serverIngest, sc.Metrics.IngestEvents)
		}
		if sc.ServerMetrics["wf_http_request_seconds_count"] <= 0 {
			t.Fatalf("%s server metrics missing request timings: %v", sc.Name, sc.ServerMetrics)
		}
	}
}

// TestRunReplicaAndClusterTopologies proves the two distributed
// in-process topologies carry a scenario: the replica scenario must
// report lag samples and a catch-up, the cluster scenario must spread
// sessions and still verify.
func TestRunReplicaAndClusterTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed topologies are slower; skipped in -short")
	}
	m := mustParse(t, `{
	  "name": "dist",
	  "defaults": {"batch": 32, "verify": true, "seed": 9},
	  "workloads": [{"name": "agent", "kind": "agent", "size": 400, "depth": 4}],
	  "topologies": ["replica", "cluster3"],
	  "transports": ["binary"],
	  "sessions": [3],
	  "mixes": [{"name": "r", "readers": 1, "reach_batch": 4}],
	  "slo": {"min_events_per_sec": 1},
	  "overrides": [{"topology": "replica", "slo": {"max_replica_lag_events": 10000000}}]
	}`)
	rep, err := Run(context.Background(), m, RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 || !rep.Pass {
		t.Fatalf("report %+v", rep)
	}
	for _, sc := range rep.Scenarios {
		switch sc.Topology {
		case "replica":
			if !sc.Metrics.HasReplica || sc.Metrics.ReplicaLagSamples == 0 {
				t.Fatalf("replica scenario sampled no lag: %+v", sc.Metrics)
			}
			if sc.ServerMetrics["wf_wal_appends_total"] <= 0 {
				t.Fatalf("replica scenario has no WAL appends in server metrics: %v", sc.ServerMetrics)
			}
		case "cluster3":
			if sc.Metrics.HasReplica {
				t.Fatalf("cluster scenario claims a replica: %+v", sc.Metrics)
			}
			if sc.Metrics.IngestEvents == 0 || sc.Metrics.VerifyMismatches != 0 {
				t.Fatalf("cluster scenario: %+v", sc.Metrics)
			}
		}
	}
}

// TestRunFailingSLOAggregates pins the aggregation satellite: every
// scenario violating its gates must fail the report as a whole (the
// CLI turns Pass=false into a non-zero exit).
func TestRunFailingSLOAggregates(t *testing.T) {
	m := mustParse(t, `{
	  "name": "failing",
	  "workloads": [{"name": "bio", "kind": "grammar", "spec": "Path", "size": 200}],
	  "topologies": ["single"],
	  "transports": ["binary"],
	  "sessions": [1],
	  "mixes": [{"name": "w", "readers": 0}],
	  "slo": {"min_events_per_sec": 1000000000000}
	}`)
	rep, err := Run(context.Background(), m, RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Failed != 1 || rep.Passed != 0 {
		t.Fatalf("report %+v", rep)
	}
	v := rep.Scenarios[0].Violations
	if len(v) != 1 || v[0].Metric != "min_events_per_sec" || !strings.Contains(v[0].Reason, "below the floor") {
		t.Fatalf("violations %+v", v)
	}
}

// TestSoakMini runs a miniature soak: a few dozen live sessions held
// for two seconds with rolling replacements, health samples, and a
// verified read stream.
func TestSoakMini(t *testing.T) {
	m := mustParse(t, `{
	  "name": "soak-mini",
	  "defaults": {"batch": 32, "verify": true, "seed": 13},
	  "workloads": [{"name": "agent", "kind": "agent", "size": 250, "depth": 3}],
	  "slo": {"min_events_per_sec": 1},
	  "soak": {"workload": "agent", "sessions": 40, "duration_sec": 2, "sample_every_sec": 1, "workers": 8, "readers": 2}
	}`)
	rep, err := Run(context.Background(), m, RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Soak
	if s == nil || !s.Pass {
		t.Fatalf("soak result %+v", s)
	}
	if s.LiveSessions < 40 {
		t.Fatalf("held %d live sessions, wanted at least 40", s.LiveSessions)
	}
	if s.IngestEvents == 0 || s.EventsPerSec <= 0 {
		t.Fatalf("soak ingested nothing: %+v", s)
	}
	if len(s.Samples) < 2 {
		t.Fatalf("soak took %d samples, want at least 2", len(s.Samples))
	}
	last := s.Samples[len(s.Samples)-1]
	if last.Goroutines == 0 || last.HeapBytes == 0 {
		t.Fatalf("final sample missing runtime health: %+v", last)
	}
	if s.VerifyMismatches != 0 {
		t.Fatalf("soak verification failed: %+v", s)
	}
}
