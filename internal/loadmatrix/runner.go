package loadmatrix

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wfreach/client"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/service"
	"wfreach/internal/spec"
)

// RunOptions configures a harness run.
type RunOptions struct {
	// Out receives human-readable progress lines; nil discards them.
	Out io.Writer
	// Dir is the scratch directory for durable topologies; empty uses
	// a fresh os.MkdirTemp that the run deletes when it finishes.
	Dir string
}

func (o RunOptions) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// ScenarioResult is one cell of the report: the scenario's bound
// dimensions, what it measured, and how its SLO gates came out.
type ScenarioResult struct {
	Name      string  `json:"name"`
	Workload  string  `json:"workload"`
	Kind      string  `json:"kind"`
	Topology  string  `json:"topology"`
	Transport string  `json:"transport"`
	Sessions  int     `json:"sessions"`
	Mix       string  `json:"mix"`
	SLO       SLO     `json:"slo"`
	Metrics   Metrics `json:"metrics"`
	// ServerMetrics holds the scenario's server-side truth: the change
	// in every additive /v1/metrics series over the run, summed across
	// the topology's nodes. Quantile series (not additive) and series
	// that did not move are omitted; absent entirely on scrape failure
	// and in reports written before the field existed.
	ServerMetrics map[string]float64 `json:"server_metrics,omitempty"`
	Violations    []Violation        `json:"violations,omitempty"`
	Pass          bool               `json:"pass"`
}

// Report is the machine-readable outcome of a matrix run.
type Report struct {
	Name       string           `json:"name"`
	Scenarios  []ScenarioResult `json:"scenarios,omitempty"`
	Soak       *SoakResult      `json:"soak,omitempty"`
	Passed     int              `json:"passed"`
	Failed     int              `json:"failed"`
	Pass       bool             `json:"pass"`
	ElapsedSec float64          `json:"elapsed_sec"`
}

// Run expands the matrix and drives every scenario — sequentially, so
// scenarios do not distort each other's latencies — then the soak if
// one is declared. The returned error covers harness failures (a
// topology that would not start, a create that errored); SLO
// violations are not errors, they are the report's Pass=false.
func Run(ctx context.Context, m *Matrix, opts RunOptions) (*Report, error) {
	scratch := opts.Dir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "loadmatrix-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}

	rep := &Report{Name: m.Name, Pass: true}
	start := time.Now()
	scenarios := m.Expand()
	for i, sc := range scenarios {
		dir := fmt.Sprintf("%s/sc%d", scratch, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		fmt.Fprintf(opts.out(), "[%d/%d] %s ...\n", i+1, len(scenarios), sc.Name)
		met, srv, err := runScenario(ctx, sc, m.Defaults, dir)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		vs := Evaluate(sc.SLO, met)
		res := ScenarioResult{
			Name: sc.Name, Workload: sc.Workload.Name, Kind: sc.Workload.Kind,
			Topology: sc.Topology, Transport: sc.Transport,
			Sessions: sc.Sessions, Mix: sc.Mix.Name,
			SLO: sc.SLO, Metrics: met, ServerMetrics: srv,
			Violations: vs, Pass: len(vs) == 0,
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if res.Pass {
			rep.Passed++
			fmt.Fprintf(opts.out(), "  ok   %.0f events/sec, ingest p99 %.0fµs, query p99 %.0fµs\n",
				met.EventsPerSec, met.IngestP99US, met.QueryP99US)
		} else {
			rep.Failed++
			rep.Pass = false
			for _, v := range vs {
				fmt.Fprintf(opts.out(), "  FAIL %s\n", v.Reason)
			}
		}
	}

	if m.Soak != nil {
		sr, err := runSoak(ctx, m, opts, scratch)
		if err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
		rep.Soak = sr
		if !sr.Pass {
			rep.Pass = false
		}
	}
	rep.ElapsedSec = time.Since(start).Seconds()
	return rep, nil
}

// sessionLoad is one session's generated ground truth.
type sessionLoad struct {
	name   string
	events []run.Event
	oracle *run.Run
}

// generateLoads builds the per-session event streams and oracles for
// a workload, one distinct seed per session.
func generateLoads(w Workload, sessions int, seed int64, prefix string) ([]sessionLoad, error) {
	loads := make([]sessionLoad, sessions)
	var g *spec.Grammar
	if w.Kind == "grammar" {
		s, ok := service.Builtin(w.Spec)
		if !ok {
			return nil, fmt.Errorf("unknown builtin %q", w.Spec)
		}
		var err error
		if g, err = spec.Compile(s); err != nil {
			return nil, err
		}
	}
	for i := range loads {
		name := fmt.Sprintf("%s-%d", prefix, i)
		switch w.Kind {
		case "grammar":
			events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: w.Size, Seed: seed + int64(i)})
			if err != nil {
				return nil, err
			}
			loads[i] = sessionLoad{name: name, events: events, oracle: r}
		case "agent":
			tr, err := gen.GenerateAgentTrace(gen.AgentOptions{
				TargetSize: w.Size, Seed: seed + int64(i),
				MaxDepth: w.Depth, MaxFanout: w.Fanout, MaxRetries: w.Retries,
			})
			if err != nil {
				return nil, err
			}
			loads[i] = sessionLoad{name: name, events: tr.Events, oracle: tr.Run}
		default:
			return nil, fmt.Errorf("unknown workload kind %q", w.Kind)
		}
	}
	return loads, nil
}

// builtinFor is the session's server-side specification: agent
// workloads replay the Agent builtin.
func (w Workload) builtinFor() string {
	if w.Kind == "agent" {
		return "Agent"
	}
	return w.Spec
}

// ingestVia sends one batch over the scenario's transport.
func ingestVia(ctx context.Context, transport string, d driver, name string, events []run.Event) error {
	wire := make([]client.Event, len(events))
	for i, ev := range events {
		wire[i] = service.ToWire(ev)
	}
	var err error
	if transport == "json" {
		_, err = d.Ingest(ctx, name, wire)
	} else {
		_, err = d.IngestFrames(ctx, name, wire)
	}
	return err
}

// lagSampler polls the primary and follower replication status and
// records the worst per-session lag (committed minus applied WAL
// sequence) across the run's sessions.
type lagSampler struct {
	primary, follower *client.Client
	names             map[string]bool
	mu                sync.Mutex
	samples           []int64
}

func (ls *lagSampler) once(ctx context.Context) (int64, bool) {
	pst, err := ls.primary.ReplicationStatus(ctx)
	if err != nil {
		return 0, false
	}
	fst, err := ls.follower.ReplicationStatus(ctx)
	if err != nil {
		return 0, false
	}
	applied := make(map[string]int64, len(fst.Sessions))
	for _, s := range fst.Sessions {
		applied[s.Name] = s.WALSeq
	}
	var worst int64
	for _, s := range pst.Sessions {
		if !ls.names[s.Name] {
			continue
		}
		if lag := s.WALSeq - applied[s.Name]; lag > worst {
			worst = lag
		}
	}
	return worst, true
}

// waitCaughtUp blocks until the follower drains to the primary.
func (ls *lagSampler) waitCaughtUp(ctx context.Context, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		worst, ok := ls.once(ctx)
		if ok && worst <= 0 {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("replica never caught up (still %d events behind after %v)", worst, timeout)
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// scrapeNodes sums one /v1/metrics scrape across every node of a
// topology. A node that fails to scrape voids the whole cut (nil) —
// a partial sum would silently undercount.
func scrapeNodes(ctx context.Context, nodes []*client.Client) map[string]float64 {
	sum := make(map[string]float64)
	for _, c := range nodes {
		vals, err := c.Metrics(ctx)
		if err != nil {
			return nil
		}
		for k, v := range vals {
			sum[k] += v
		}
	}
	return sum
}

// serverDelta subtracts two summed scrapes, keeping series that moved.
// Quantile samples are dropped: a quantile is a point estimate, and
// neither its difference nor its cross-node sum means anything.
func serverDelta(before, after map[string]float64) map[string]float64 {
	if before == nil || after == nil {
		return nil
	}
	out := make(map[string]float64, len(after))
	for k, v := range after {
		if strings.Contains(k, `quantile="`) {
			continue
		}
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

func runScenario(ctx context.Context, sc Scenario, def Defaults, scratch string) (Metrics, map[string]float64, error) {
	t, err := launchTopology(sc.Topology, scratch)
	if err != nil {
		return Metrics{}, nil, err
	}
	defer t.Close()

	loads, err := generateLoads(sc.Workload, sc.Sessions, sc.Seed, "lm")
	if err != nil {
		return Metrics{}, nil, err
	}
	for _, l := range loads {
		if _, err := t.write.CreateSession(ctx, client.CreateSessionRequest{
			Name: l.name, Builtin: sc.Workload.builtinFor(),
		}); err != nil {
			return Metrics{}, nil, fmt.Errorf("create session %s: %w", l.name, err)
		}
	}
	before := scrapeNodes(ctx, t.scrapers)

	var (
		wg         sync.WaitGroup
		ingested   atomic.Int64
		queried    atomic.Int64
		lineages   atomic.Int64
		queryErrs  atomic.Int64
		mismatches atomic.Int64
		ingestHist Hist
		queryHist  Hist
		errMu      sync.Mutex
		firstErr   error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	var ls *lagSampler
	lagStop := make(chan struct{})
	var lagWG sync.WaitGroup
	if t.hasReplica() {
		names := make(map[string]bool, len(loads))
		for _, l := range loads {
			names[l.name] = true
		}
		ls = &lagSampler{primary: t.primary, follower: t.follower, names: names}
		lagWG.Add(1)
		go func() {
			defer lagWG.Done()
			ticker := time.NewTicker(50 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-lagStop:
					return
				case <-ticker.C:
				}
				if lag, ok := ls.once(ctx); ok {
					ls.mu.Lock()
					ls.samples = append(ls.samples, lag)
					ls.mu.Unlock()
				}
			}
		}()
	}

	start := time.Now()
	for i := range loads {
		l := loads[i]
		watermark := new(atomic.Int64)
		done := make(chan struct{})

		wg.Add(1)
		go func() { // single writer per session
			defer wg.Done()
			defer close(done)
			for lo := 0; lo < len(l.events); lo += sc.Batch {
				hi := min(lo+sc.Batch, len(l.events))
				t0 := time.Now()
				err := ingestVia(ctx, sc.Transport, t.write, l.name, l.events[lo:hi])
				ingestHist.Add(time.Since(t0))
				if err != nil {
					setErr(fmt.Errorf("ingest %s at %d: %w", l.name, lo, err))
					return
				}
				ingested.Add(int64(hi - lo))
				watermark.Store(int64(hi))
			}
		}()

		for ri := 0; ri < sc.Mix.Readers; ri++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for n := 0; ; n++ {
					select {
					case <-done:
						return
					default:
					}
					wm := watermark.Load()
					if wm < 2 {
						time.Sleep(time.Millisecond)
						continue
					}
					if le := sc.Mix.LineageEvery; le > 0 && n%le == le-1 {
						v := int32(l.events[rng.Int63n(wm)].V)
						t0 := time.Now()
						_, err := t.read.Lineage(ctx, l.name, v)
						queryHist.Add(time.Since(t0))
						if err != nil {
							queryErrs.Add(1)
							time.Sleep(time.Millisecond) // a lagging replica is not a spin target
							continue
						}
						lineages.Add(1)
						queried.Add(1)
						continue
					}
					pairs := make([]client.ReachPair, sc.Mix.ReachBatch)
					for pi := range pairs {
						pairs[pi] = client.ReachPair{
							From: int32(l.events[rng.Int63n(wm)].V),
							To:   int32(l.events[rng.Int63n(wm)].V),
						}
					}
					t0 := time.Now()
					answers, err := t.read.ReachBatch(ctx, l.name, pairs)
					queryHist.Add(time.Since(t0))
					if err != nil {
						queryErrs.Add(1)
						time.Sleep(time.Millisecond) // session not yet on the replica, most likely
						continue
					}
					for _, ans := range answers {
						if ans.Code != "" {
							// On a replica an unlabeled vertex usually just
							// means lag — the pair trails the primary's
							// acknowledged prefix.
							queryErrs.Add(1)
							continue
						}
						queried.Add(1)
						if sc.Verify && ans.Reachable != l.oracle.Reaches(graph.VertexID(ans.From), graph.VertexID(ans.To)) {
							mismatches.Add(1)
							setErr(fmt.Errorf("query mismatch: %s reach(%d,%d)=%v", l.name, ans.From, ans.To, ans.Reachable))
						}
					}
				}
			}(int64(i*sc.Mix.Readers+ri) ^ sc.Seed)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	met := Metrics{
		ElapsedSec:       elapsed.Seconds(),
		IngestEvents:     ingested.Load(),
		EventsPerSec:     float64(ingested.Load()) / elapsed.Seconds(),
		IngestP50US:      float64(ingestHist.Quantile(0.50)) / 1e3,
		IngestP95US:      float64(ingestHist.Quantile(0.95)) / 1e3,
		IngestP99US:      float64(ingestHist.Quantile(0.99)) / 1e3,
		Queries:          queried.Load(),
		LineageQueries:   lineages.Load(),
		QueryErrors:      queryErrs.Load(),
		QueriesPerSec:    float64(queried.Load()) / elapsed.Seconds(),
		QueryP50US:       float64(queryHist.Quantile(0.50)) / 1e3,
		QueryP95US:       float64(queryHist.Quantile(0.95)) / 1e3,
		QueryP99US:       float64(queryHist.Quantile(0.99)) / 1e3,
		VerifyChecked:    sc.Verify,
		VerifyMismatches: mismatches.Load(),
		HasReplica:       t.hasReplica(),
	}

	if ls != nil {
		close(lagStop)
		lagWG.Wait()
		// A scenario shorter than the sampling period would otherwise
		// record nothing and trip the no-samples gate: always close with
		// one final sample of the post-ingest lag.
		if lag, ok := ls.once(ctx); ok {
			ls.mu.Lock()
			ls.samples = append(ls.samples, lag)
			ls.mu.Unlock()
		}
		catchup, err := ls.waitCaughtUp(ctx, 2*time.Minute)
		if err != nil {
			return met, nil, err
		}
		met.CatchupSec = catchup.Seconds()
		ls.mu.Lock()
		sort.Slice(ls.samples, func(i, j int) bool { return ls.samples[i] < ls.samples[j] })
		met.ReplicaLagSamples = len(ls.samples)
		if n := len(ls.samples); n > 0 {
			met.ReplicaLagMaxEvents = ls.samples[n-1]
		}
		ls.mu.Unlock()
	}

	if firstErr != nil && mismatches.Load() == 0 {
		// Mismatches surface through the verify gate; anything else —
		// an ingest error, a broken topology — is a harness failure.
		return met, nil, firstErr
	}

	// Server-side truth: scrape again before sessions are torn down, so
	// the deltas still carry the per-session ingest series.
	srv := serverDelta(before, scrapeNodes(ctx, t.scrapers))

	for _, l := range loads {
		if err := t.write.DeleteSession(ctx, l.name); err != nil {
			return met, srv, fmt.Errorf("cleanup %s: %w", l.name, err)
		}
	}
	return met, srv, nil
}
