package loadmatrix

import (
	"errors"
	"testing"
)

// FuzzParseSpec asserts the matrix parser's contract on arbitrary
// input: it never panics, every rejection is a typed *SpecError, and
// anything it accepts expands without panicking into scenarios whose
// bound values are the validated ones.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(validMatrix))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"workloads": [{"name": "w", "kind": "agent"}], "topologies": ["single"], "transports": ["json"], "sessions": [1]}`))
	f.Add([]byte(`{"workloads": [{"name": "w", "kind": "grammar", "spec": "Path"}], "soak": {"workload": "w", "sessions": 3, "duration_sec": 1}}`))
	f.Add([]byte(`{"workloads": [{"name": "w", "kind": "agent", "depth": -1}]}`))
	f.Add([]byte(`{"workloads": [{"name": "w", "kind": "agent", "size": 999999999999}]}`))
	f.Add([]byte("{\"name\": \"\xff\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("rejection is %T, want *SpecError: %v", err, err)
			}
			if se.Path == "" || se.Msg == "" {
				t.Fatalf("rejection with empty path/msg: %+v", se)
			}
			return
		}
		// Accepted: the invariants the runner depends on must hold.
		for _, sc := range m.Expand() {
			if sc.Name == "" {
				t.Fatal("expanded scenario without a name")
			}
			if sc.Workload.Kind != "grammar" && sc.Workload.Kind != "agent" {
				t.Fatalf("accepted workload kind %q", sc.Workload.Kind)
			}
			if sc.Workload.Size < 1 || sc.Workload.Size > maxWorkloadSize {
				t.Fatalf("accepted size %d", sc.Workload.Size)
			}
			if !validTopology(sc.Topology) || !validTransport(sc.Transport) {
				t.Fatalf("accepted topology/transport %q/%q", sc.Topology, sc.Transport)
			}
			if sc.Sessions < 1 || sc.Batch < 1 {
				t.Fatalf("accepted sessions %d / batch %d", sc.Sessions, sc.Batch)
			}
		}
		if s := m.Soak; s != nil {
			if s.Sessions < 1 || s.DurationSec < 1 || s.Workers < 1 || s.SampleEverySec < 1 {
				t.Fatalf("accepted soak %+v", s)
			}
		}
	})
}
