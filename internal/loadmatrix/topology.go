package loadmatrix

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"wfreach/client"
	"wfreach/internal/api"
	"wfreach/internal/cluster"
	"wfreach/internal/obs"
	"wfreach/internal/replica"
	"wfreach/internal/service"
)

// driver is the slice of the SDK surface the harness drives, satisfied
// by both the single-server client.Client and the routing
// client.Cluster — scenario code does not care which.
type driver interface {
	CreateSession(ctx context.Context, req client.CreateSessionRequest) (client.SessionStats, error)
	Session(ctx context.Context, name string) (client.SessionStats, error)
	DeleteSession(ctx context.Context, name string) error
	Ingest(ctx context.Context, session string, events []client.Event) (client.EventsResponse, error)
	IngestFrames(ctx context.Context, session string, events []client.Event) (client.EventsResponse, error)
	ReachBatch(ctx context.Context, session string, pairs []client.ReachPair) ([]client.ReachAnswer, error)
	Reach(ctx context.Context, session string, from, to int32) (bool, error)
	Lineage(ctx context.Context, session string, of int32) ([]int32, error)
}

// topo is one launched in-process server topology: where writes and
// reads go, and — when a follower exists — the status clients the lag
// sampler polls.
type topo struct {
	kind  string
	write driver
	read  driver
	// primary/follower are non-nil exactly for the replica topology.
	primary  *client.Client
	follower *client.Client
	// scrapers holds one plain client per server in the topology; the
	// harness scrapes each node's /v1/metrics before and after a
	// scenario and reports the summed deltas as server-side truth.
	scrapers []*client.Client
	cleanup  []func()
}

func (t *topo) hasReplica() bool { return t.follower != nil }

func (t *topo) Close() {
	for i := len(t.cleanup) - 1; i >= 0; i-- {
		t.cleanup[i]()
	}
}

// serve exposes a handler on a loopback listener and returns its base
// URL — real TCP, because followers and cluster maps dial URLs.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// instrumented serves a registry behind the same request-metrics
// middleware wfserve installs (logs discarded), so harness scrapes see
// the full production metric surface, HTTP timings included.
func instrumented(reg *service.Registry) http.Handler {
	return obs.AccessLog(service.NewHandler(reg), nil, obs.AccessLogOptions{Metrics: reg.Obs()})
}

// durableNode starts one durable registry (no fsync — the harness
// measures the pipeline, not the disk) under dir and serves it.
func durableNode(dir string) (*service.Registry, string, func(), error) {
	reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: dir, Fsync: false})
	if err != nil {
		return nil, "", nil, err
	}
	if _, err := reg.Restore(dir); err != nil {
		_ = reg.Close()
		return nil, "", nil, err
	}
	url, stop, err := serve(instrumented(reg))
	if err != nil {
		_ = reg.Close()
		return nil, "", nil, err
	}
	return reg, url, func() { stop(); _ = reg.Close() }, nil
}

// launchTopology builds the in-process server shape a scenario runs
// against. scratch is a private empty directory for durable state;
// the caller owns its deletion.
//
//   - "single":   one in-memory registry; reads and writes share it.
//   - "replica":  durable primary + durable follower tailing its WAL
//     over HTTP; writes to the primary, reads to the follower.
//   - "cluster3": three durable nodes behind a shared consistent-hash
//     map; the routing client carries both reads and writes.
func launchTopology(kind, scratch string) (*topo, error) {
	switch kind {
	case "single":
		reg := service.NewRegistry()
		url, stop, err := serve(instrumented(reg))
		if err != nil {
			return nil, err
		}
		c := client.New(url, client.WithRetry(0, 0))
		return &topo{kind: kind, write: c, read: c,
			scrapers: []*client.Client{c}, cleanup: []func(){stop}}, nil

	case "replica":
		pdir, fdir := scratch+"/primary", scratch+"/follower"
		for _, d := range []string{pdir, fdir} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, err
			}
		}
		_, purl, pstop, err := durableNode(pdir)
		if err != nil {
			return nil, err
		}
		freg, furl, fstop, err := durableNode(fdir)
		if err != nil {
			pstop()
			return nil, err
		}
		f := replica.New(purl, freg, replica.Options{
			PollInterval:     25 * time.Millisecond,
			ReconnectBackoff: 10 * time.Millisecond,
			MaxBackoff:       100 * time.Millisecond,
		})
		f.Start()
		primary := client.New(purl, client.WithRetry(0, 0))
		follower := client.New(furl, client.WithRetry(0, 0), client.WithoutWriteRedirect())
		return &topo{
			kind:     kind,
			write:    client.New(purl, client.WithRetry(0, 0)),
			read:     client.New(furl, client.WithRetry(0, 0), client.WithoutWriteRedirect()),
			primary:  primary,
			follower: follower,
			scrapers: []*client.Client{primary, follower},
			cleanup:  []func(){pstop, fstop, f.Close},
		}, nil

	case "cluster3":
		var cleanup []func()
		fail := func(err error) (*topo, error) {
			for i := len(cleanup) - 1; i >= 0; i-- {
				cleanup[i]()
			}
			return nil, err
		}
		m := api.ClusterMap{Version: 1}
		regs := make([]*service.Registry, 3)
		for i := 0; i < 3; i++ {
			dir := fmt.Sprintf("%s/node%d", scratch, i)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fail(err)
			}
			reg, url, stop, err := durableNode(dir)
			if err != nil {
				return fail(err)
			}
			cleanup = append(cleanup, stop)
			regs[i] = reg
			m.Nodes = append(m.Nodes, api.ClusterNode{Name: fmt.Sprintf("n%d", i), URL: url})
		}
		for i, reg := range regs {
			// The controller installs the placement gate on its node; the
			// prober stays unstarted — matrix scenarios never move
			// sessions, so there is nothing to gossip.
			if _, err := cluster.New(m.Nodes[i].Name, m, reg, cluster.Options{}); err != nil {
				return fail(err)
			}
		}
		cl, err := client.NewCluster(m, client.WithRetry(0, 0))
		if err != nil {
			return fail(err)
		}
		scrapers := make([]*client.Client, 0, len(m.Nodes))
		for _, n := range m.Nodes {
			scrapers = append(scrapers, client.New(n.URL, client.WithRetry(0, 0)))
		}
		return &topo{kind: kind, write: cl, read: cl, scrapers: scrapers, cleanup: cleanup}, nil

	default:
		return nil, fmt.Errorf("loadmatrix: unknown topology %q", kind)
	}
}
