package loadmatrix

import "wfreach/internal/obs"

// Hist is the shared log-linear latency histogram, promoted to
// internal/obs so the server's metrics registry and this harness
// record latencies identically. The alias keeps the harness's spec,
// runner and report code compiling unchanged.
type Hist = obs.Hist
