package api

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wfreach/internal/wal"
)

// randomEvents generates a mix of ref- and name-form wire events.
func randomEvents(rng *rand.Rand, n int) []Event {
	out := make([]Event, n)
	for i := range out {
		var preds []int32
		for p := 0; p < rng.Intn(4); p++ {
			preds = append(preds, rng.Int31n(int32(i+1)))
		}
		if rng.Intn(2) == 0 {
			g, v := rng.Int31n(8), rng.Int31n(16)
			out[i] = Event{V: int32(i), Graph: &g, Vertex: &v, Preds: preds}
		} else {
			names := []string{"a", "align", "blast", "merge-0", "長"}
			out[i] = Event{V: int32(i), Name: names[rng.Intn(len(names))], Preds: preds}
		}
	}
	return out
}

// TestFrameEncodeMatchesWALBytes is the round-trip property test the
// tee depends on: encoding a stream of events with AppendFrame yields
// byte-for-byte the file a write-ahead log produces for the same
// records via Log.Append.
func TestFrameEncodeMatchesWALBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	events := randomEvents(rng, 500)

	var wire []byte
	path := filepath.Join(t.TempDir(), "events.wal")
	log, err := wal.Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if wire, err = AppendFrame(wire, ev); err != nil {
			t.Fatalf("AppendFrame(%+v): %v", ev, err)
		}
		rec, err := ev.Record()
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, disk) {
		t.Fatalf("wire stream (%d bytes) differs from WAL file (%d bytes)", len(wire), len(disk))
	}

	// And AppendRaw of the wire frames reproduces the same file again.
	path2 := filepath.Join(t.TempDir(), "raw.wal")
	log2, err := wal.Open(path2, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(wire))
	for {
		_, frame, err := fr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := log2.AppendRaw(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	disk2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, disk2) {
		t.Fatal("AppendRaw of wire frames diverges from Append of the records")
	}
}

func TestDecodeFramesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := randomEvents(rng, 200)
	var wire []byte
	var err error
	for _, ev := range events {
		if wire, err = AppendFrame(wire, ev); err != nil {
			t.Fatal(err)
		}
	}
	back, err := DecodeFrames(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i].V != events[i].V || back[i].Name != events[i].Name || len(back[i].Preds) != len(events[i].Preds) {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func oneFrame(t *testing.T, ev Event) []byte {
	t.Helper()
	frame, err := AppendFrame(nil, ev)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestFrameReaderRejectsDamage(t *testing.T) {
	frame := oneFrame(t, Event{V: 3, Name: "x", Preds: []int32{1}})

	expectBadFrame := func(name string, b []byte) {
		t.Helper()
		_, _, err := NewFrameReader(bytes.NewReader(b)).Next()
		var ae *Error
		if !errors.As(err, &ae) || ae.Code != CodeBadFrame {
			t.Fatalf("%s: err = %v, want CodeBadFrame", name, err)
		}
	}

	expectBadFrame("truncated header", frame[:5])
	expectBadFrame("truncated payload", frame[:len(frame)-2])

	crcFlipped := append([]byte(nil), frame...)
	crcFlipped[len(crcFlipped)-1] ^= 0xff
	expectBadFrame("payload corruption", crcFlipped)

	headerFlipped := append([]byte(nil), frame...)
	headerFlipped[4] ^= 0xff
	expectBadFrame("CRC corruption", headerFlipped)

	oversized := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(oversized[0:4], MaxFramePayload+1)
	expectBadFrame("oversized length", oversized)

	zeroLen := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(zeroLen[0:4], 0)
	expectBadFrame("zero length", zeroLen)

	// Clean EOF mid-stream boundary: a full frame then nothing.
	fr := NewFrameReader(bytes.NewReader(frame))
	if _, _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestFrameReaderReusesBuffer documents the aliasing contract: the
// returned frame slice is only valid until the next call.
func TestFrameReaderReusesBuffer(t *testing.T) {
	a := oneFrame(t, Event{V: 1, Name: "aaaa"})
	b := oneFrame(t, Event{V: 2, Name: "bbbb"})
	fr := NewFrameReader(bytes.NewReader(append(append([]byte(nil), a...), b...)))
	_, f1, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]byte(nil), f1...)
	if _, _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(keep, a) {
		t.Fatal("copied frame changed")
	}
}

func TestAppendFrameRejectsMalformedEvent(t *testing.T) {
	_, err := AppendFrame(nil, Event{V: 1})
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeBadEvent {
		t.Fatalf("err = %v, want CodeBadEvent", err)
	}
}
