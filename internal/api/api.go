// Package api is the single source of truth for the wfserve wire
// contract: every request and response type of the versioned /v1 HTTP
// surface, the structured error model shared by server and clients,
// and the binary ingest frame.
//
// The package deliberately holds no behavior beyond encoding — the
// server (internal/service) maps these types onto sessions, the Go
// SDK (package client) re-exports them for external callers, and the
// command-line tools build on the SDK. Anything that goes over the
// wire is declared here exactly once.
//
// # Endpoints (v1)
//
//	POST   /v1/sessions                   create (CreateSessionRequest, or raw spec XML)
//	GET    /v1/sessions                   list sessions (ListSessionsResponse)
//	GET    /v1/sessions/{name}            stats (SessionStats)
//	GET    /v1/sessions/{name}/stats      stats (SessionStats)
//	DELETE /v1/sessions/{name}            delete
//	POST   /v1/sessions/{name}/events     ingest: JSON EventsRequest, or a
//	                                      ContentTypeFrame binary frame stream
//	POST   /v1/sessions/{name}/reach      batch reachability (BatchReachRequest)
//	GET    /v1/sessions/{name}/reach      one pair, ?from=&to= (deprecated)
//	GET    /v1/sessions/{name}/lineage    ?of=&cursor=&limit= (paginated)
//	GET    /v1/sessions/{name}/spec       the session's specification XML
//	GET    /v1/sessions/{name}/wal        tail the session's WAL (replication.go)
//	GET    /v1/replication/status         ReplicationStatus
//	POST   /v1/replication/promote        follower → writable primary
//
// The same paths without the /v1 prefix (replication endpoints
// excepted — they postdate the legacy surface) are served as
// deprecated legacy adapters; see docs/API.md for the migration
// table.
package api

import (
	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wal"
)

// Content types of the /v1 surface.
const (
	// ContentTypeJSON marks JSON request and response bodies (the
	// default for every endpoint).
	ContentTypeJSON = "application/json"
	// ContentTypeFrame marks a binary event-frame stream on the events
	// endpoint (see AppendFrame / FrameReader).
	ContentTypeFrame = "application/x-wfreach-frame"
	// ContentTypeXML marks a raw specification upload on the create
	// endpoint.
	ContentTypeXML = "application/xml"
)

// Event is the wire form of one execution event. Exactly one of
// (Graph, Vertex) or Name identifies the executed specification
// vertex: the ref form mirrors run.Event, the name form
// core.NamedEvent (the Section 5.3 naming-restriction setting).
type Event struct {
	// V is the new run vertex being executed.
	V int32 `json:"v"`
	// Graph and Vertex name the specification vertex (ref form).
	Graph  *int32 `json:"graph,omitempty"`
	Vertex *int32 `json:"vertex,omitempty"`
	// Name is the executed module's name (name form).
	Name string `json:"name,omitempty"`
	// Preds are V's immediate predecessors in the run.
	Preds []int32 `json:"preds"`
}

// FromRun converts a run event to its wire form.
func FromRun(ev run.Event) Event {
	g, v := int32(ev.Ref.Graph), int32(ev.Ref.V)
	w := Event{V: int32(ev.V), Graph: &g, Vertex: &v}
	for _, p := range ev.Preds {
		w.Preds = append(w.Preds, int32(p))
	}
	return w
}

// FromNamed converts a named event to its wire form.
func FromNamed(ev core.NamedEvent) Event {
	w := Event{V: int32(ev.V), Name: ev.Name}
	for _, p := range ev.Preds {
		w.Preds = append(w.Preds, int32(p))
	}
	return w
}

// FromRecord converts a WAL record to its wire form.
func FromRecord(rec wal.Record) Event {
	if rec.Named {
		return FromNamed(rec.NamedEv)
	}
	return FromRun(rec.Ref)
}

func (e Event) preds() []graph.VertexID {
	if len(e.Preds) == 0 {
		return nil
	}
	out := make([]graph.VertexID, len(e.Preds))
	for i, p := range e.Preds {
		out[i] = graph.VertexID(p)
	}
	return out
}

// Record converts the wire event to its WAL record form, validating
// that exactly one of the two identification forms is present. The
// error is a *Error with CodeBadEvent.
func (e Event) Record() (wal.Record, error) {
	switch {
	case e.Name != "" && (e.Graph != nil || e.Vertex != nil):
		return wal.Record{}, Errorf(CodeBadEvent, "name and graph/vertex are mutually exclusive")
	case e.Name != "":
		return wal.NamedRecord(core.NamedEvent{V: graph.VertexID(e.V), Name: e.Name, Preds: e.preds()}), nil
	case e.Graph != nil && e.Vertex != nil:
		return wal.RefRecord(run.Event{
			V:     graph.VertexID(e.V),
			Ref:   spec.VertexRef{Graph: spec.GraphID(*e.Graph), V: graph.VertexID(*e.Vertex)},
			Preds: e.preds(),
		}), nil
	default:
		return wal.Record{}, Errorf(CodeBadEvent, "needs either name or graph+vertex")
	}
}

// CreateSessionRequest is the JSON body of POST /v1/sessions.
type CreateSessionRequest struct {
	// Name is the new session's registry name.
	Name string `json:"name"`
	// Builtin names a built-in specification, SpecXML carries a full
	// specification inline; exactly one must be set.
	Builtin string `json:"builtin,omitempty"`
	SpecXML string `json:"spec_xml,omitempty"`
	// Skeleton is "TCL" (default) or "BFS"; RMode is "designated"
	// (default) or "none".
	Skeleton string `json:"skeleton,omitempty"`
	RMode    string `json:"rmode,omitempty"`
	// Shards is the session store's shard count; zero picks the
	// server's default.
	Shards int `json:"shards,omitempty"`
}

// ShardStat mirrors store.ShardStat on the stats API: one shard's
// published vertex count and view publish epoch.
type ShardStat = store.ShardStat

// SessionStats is a point-in-time snapshot of one session, returned
// by create, get, stats and list.
type SessionStats struct {
	// Name is the session's registry name.
	Name string `json:"name"`
	// ID is the session's stable identity: names are reusable (delete
	// + recreate), identities are not, which is how a replica tells a
	// session apart from a new one that took the same name. Empty only
	// for sessions restored from data written before the field existed.
	ID string `json:"id,omitempty"`
	// Class is the grammar's recursion class.
	Class string `json:"class"`
	// Skeleton is the specification-labeling scheme ("TCL" or "BFS").
	Skeleton string `json:"skeleton"`
	// Mode is the recursion-compression mode.
	Mode string `json:"mode"`
	// Vertices is the number of labeled vertices.
	Vertices int64 `json:"vertices"`
	// ArenaVertices is the number of labels served zero-copy from a
	// mapped arena snapshot (see internal/arena); 0 for sessions whose
	// labels are all heap-resident.
	ArenaVertices int64 `json:"arena_vertices,omitempty"`
	// Batches is the number of event batches ingested since the
	// session was opened or restored in this process.
	Batches int64 `json:"batches"`
	// LabelBits is the total size of the stored encoded labels.
	LabelBits int `json:"label_bits"`
	// SkeletonBits is the size of the shared skeleton labeling.
	SkeletonBits int `json:"skeleton_bits"`
	// PublishEpoch counts the store publishes that made new labels
	// visible to the query path.
	PublishEpoch int64 `json:"publish_epoch"`
	// Shards reports each store shard's published vertex count and
	// view epoch, in shard order.
	Shards []ShardStat `json:"shards,omitempty"`
	// Durable reports whether the session persists its events to a
	// write-ahead log.
	Durable bool `json:"durable,omitempty"`
}

// ListSessionsResponse is the body of GET /v1/sessions.
type ListSessionsResponse struct {
	// Sessions holds one stats snapshot per open session, sorted by
	// name.
	Sessions []SessionStats `json:"sessions"`
}

// SessionIntegrity is the body of GET /v1/sessions/{name}/integrity:
// the session's tamper-evidence anchors. An external auditor that
// periodically fetches and stores this answer off-system can later
// prove or refute the server's entire event history with cmd/wfverify
// — the chain head commits to every WAL byte up to WALSeq, and the
// Merkle root commits to every label the last snapshot served.
// Sessions without a hash-chained log (memory-only, or data predating
// the chain) answer a typed CodeNotDurable error instead: integrity
// is unavailable there, not violated.
type SessionIntegrity struct {
	// Session is the session's registry name.
	Session string `json:"session"`
	// ChainHead is the WAL frame hash-chain head (lowercase hex
	// SHA-256) covering records [1, WALSeq].
	ChainHead string `json:"chain_head"`
	// WALSeq is the sequence of the last record the chain head covers
	// — every event appended at the time of the answer.
	WALSeq int64 `json:"wal_seq"`
	// MerkleRoot is the Merkle root over the label extents of the last
	// integrity-stamped snapshot (empty until one exists).
	MerkleRoot string `json:"merkle_root,omitempty"`
	// SnapshotWatermark is the WAL record count that snapshot covers.
	SnapshotWatermark int64 `json:"snapshot_watermark,omitempty"`
}

// EventsRequest is the JSON body of POST /v1/sessions/{name}/events.
type EventsRequest struct {
	Events []Event `json:"events"`
}

// EventsResponse reports how far an ingest batch got.
type EventsResponse struct {
	// Applied is the number of events ingested from this request.
	Applied int `json:"applied"`
	// Vertices is the session's labeled-vertex total afterwards.
	Vertices int64 `json:"vertices"`
}

// ReachPair is one reachability question: does From reach To?
type ReachPair struct {
	From int32 `json:"from"`
	To   int32 `json:"to"`
}

// ReachAnswer answers one reachability pair. A pair that could not be
// answered (typically CodeVertexNotLabeled: the vertex has not been
// executed yet) carries its error inline — one bad pair never fails
// the batch.
type ReachAnswer struct {
	// From and To echo the queried vertices.
	From int32 `json:"from"`
	To   int32 `json:"to"`
	// Reachable reports whether From reaches To (reflexive). Only
	// meaningful when Code is empty.
	Reachable bool `json:"reachable"`
	// Code and Error are set iff this pair failed.
	Code  ErrorCode `json:"code,omitempty"`
	Error string    `json:"error,omitempty"`
}

// BatchReachRequest is the JSON body of POST
// /v1/sessions/{name}/reach: many pairs, one roundtrip.
type BatchReachRequest struct {
	Pairs []ReachPair `json:"pairs"`
}

// MaxReachPairs caps the pairs accepted in one batch reach request.
const MaxReachPairs = 4096

// BatchReachResponse answers a batch reach request, one answer per
// pair, in request order.
type BatchReachResponse struct {
	Results []ReachAnswer `json:"results"`
}

// LineageResponse is one page of GET /v1/sessions/{name}/lineage.
// Without cursor/limit parameters the full closure is returned in one
// response and NextCursor is empty (the deprecated legacy form).
type LineageResponse struct {
	// Of echoes the queried vertex.
	Of int32 `json:"of"`
	// Ancestors are labeled vertices that reach Of, ascending.
	Ancestors []int32 `json:"ancestors"`
	// NextCursor, when non-empty, resumes the scan after the last
	// returned ancestor (pass it back as ?cursor=). Labels are
	// write-once, so every ancestor a page reports stays correct;
	// ancestors published after a page was served may be missed until
	// the scan is re-run.
	NextCursor string `json:"next_cursor,omitempty"`
}

// DefaultLineageLimit is the page size used when a lineage request
// asks for pagination (a cursor without a limit); MaxLineageLimit
// caps any requested page size.
const (
	DefaultLineageLimit = 1024
	MaxLineageLimit     = 1 << 16
)
