package api

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrorCode is a machine-readable error class. Codes are part of the
// wire contract: clients dispatch on them (via errors.As on *Error),
// so a code, once shipped, never changes meaning.
type ErrorCode string

const (
	// CodeBadRequest is a malformed or inconsistent request that no
	// more specific code covers.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeBadJSON is a request body that does not decode as the
	// endpoint's JSON type.
	CodeBadJSON ErrorCode = "bad_json"
	// CodeBadVertex is a vertex parameter that is not a non-negative
	// 32-bit integer.
	CodeBadVertex ErrorCode = "bad_vertex"
	// CodeBadEvent is an ingest event that is malformed or rejected by
	// the labeler (duplicate vertex, unknown predecessor, …). The
	// message names the failing event's index in the submitted batch.
	CodeBadEvent ErrorCode = "bad_event"
	// CodeBadFrame is a binary ingest stream with a truncated,
	// oversized or checksum-mismatched frame.
	CodeBadFrame ErrorCode = "bad_frame"
	// CodeBadSpec is a specification that does not parse or compile.
	CodeBadSpec ErrorCode = "bad_spec"
	// CodeUnknownBuiltin is a create request naming no built-in
	// specification.
	CodeUnknownBuiltin ErrorCode = "unknown_builtin"
	// CodeSessionNotFound is a request against a session name that is
	// not open.
	CodeSessionNotFound ErrorCode = "session_not_found"
	// CodeSessionExists is a create request for a name already in use
	// (including leftover on-disk data under that name).
	CodeSessionExists ErrorCode = "session_exists"
	// CodeVertexNotLabeled is a query for a vertex the session has not
	// labeled yet; the caller cannot distinguish "not reachable" from
	// "not yet executed", so the right reaction is usually to retry.
	CodeVertexNotLabeled ErrorCode = "vertex_not_labeled"
	// CodeSessionPoisoned is a durable session whose write-ahead log
	// failed (or was closed); it refuses further ingest while queries
	// keep working.
	CodeSessionPoisoned ErrorCode = "session_poisoned"
	// CodeReadOnly is a write (create, delete, ingest) sent to a
	// follower replica. The error detail carries the primary's base
	// URL, Location-style — resend the write there (the Go SDK does so
	// automatically; see PrimaryFromError).
	CodeReadOnly ErrorCode = "read_only"
	// CodeNotFollower is a replication operation on a server that is
	// not a follower. Promote no longer sends it (promoting a writable
	// server is an idempotent no-op); the code is retained for clients
	// compiled against older servers.
	CodeNotFollower ErrorCode = "not_follower"
	// CodeWrongNode is a session request sent to a cluster node that
	// does not own the session's placement. The error detail carries
	// the owning node's base URL — resend the request there (the Go
	// SDK's cluster client does so automatically; see OwnerFromError).
	// It differs from CodeReadOnly in that the receiving node has no
	// copy of the session at all, so not even reads can be served.
	CodeWrongNode ErrorCode = "wrong_node"
	// CodeNotClustered is a cluster operation (map, health, move) on a
	// server that is not running in cluster mode.
	CodeNotClustered ErrorCode = "not_clustered"
	// CodeNotDurable is a WAL tail request against a session that has
	// no write-ahead log to ship (a memory-only session, or one whose
	// log failed); there is nothing a replica could replay.
	CodeNotDurable ErrorCode = "not_durable"
	// CodeMethodNotAllowed is a known path hit with the wrong HTTP
	// method; the response carries an Allow header.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeNotFound is an unknown path.
	CodeNotFound ErrorCode = "not_found"
	// CodeInternal is a server-side failure that is not the client's
	// fault.
	CodeInternal ErrorCode = "internal"
	// CodeUnknown marks a response a client could not map to the
	// structured model (non-JSON error body, proxy page, …). Servers
	// never send it.
	CodeUnknown ErrorCode = "unknown"
)

// HTTPStatus maps the code to its response status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeSessionNotFound, CodeVertexNotLabeled, CodeNotFound:
		return http.StatusNotFound
	case CodeSessionExists, CodeNotFollower, CodeNotClustered:
		return http.StatusConflict
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeReadOnly, CodeWrongNode:
		// The request was sent to the wrong server, not malformed; 421
		// also keeps write-redirect handling out of generic 4xx/5xx
		// retry logic.
		return http.StatusMisdirectedRequest
	case CodeSessionPoisoned, CodeInternal, CodeUnknown:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// Error is the structured error model of the /v1 surface. The server
// sends it as the "error" member of ErrorResponse; the client SDK
// rebuilds it from the response, so callers can dispatch with
//
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeSessionNotFound { … }
type Error struct {
	// Code is the machine-readable error class.
	Code ErrorCode `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Detail optionally carries extra context (the offending value,
	// the acceptable alternatives, …).
	Detail string `json:"detail,omitempty"`
	// HTTPStatus is the response status the error traveled with. It is
	// not serialized: the client fills it in from the response, the
	// server derives it from Code.
	HTTPStatus int `json:"-"`
	// Applied is the partial-ingest progress the error traveled with
	// (ErrorResponse.Applied): events durably applied before the
	// failure. Like HTTPStatus it is client-side enrichment, filled in
	// from the response envelope; zero everywhere else.
	Applied int `json:"-"`
}

// Error renders "code: message" (plus the detail when present).
func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an Error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WithDetail returns a copy of the error carrying the detail string.
func (e *Error) WithDetail(format string, args ...any) *Error {
	cp := *e
	cp.Detail = fmt.Sprintf(format, args...)
	return &cp
}

// AsError coerces any error into the structured model: a *Error
// (possibly wrapped) is returned as-is, anything else is wrapped
// under the fallback code with the original message.
func AsError(err error, fallback ErrorCode) *Error {
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	return &Error{Code: fallback, Message: err.Error()}
}

// PrimaryFromError extracts the primary's base URL from a follower's
// read-only rejection: a *Error (possibly wrapped) with CodeReadOnly
// whose detail carries the address. It is how a client discovers
// where to redirect a misdirected write.
func PrimaryFromError(err error) (string, bool) {
	var ae *Error
	if errors.As(err, &ae) && ae.Code == CodeReadOnly && ae.Detail != "" {
		return ae.Detail, true
	}
	return "", false
}

// OwnerFromError extracts the owning node's base URL from a cluster
// node's misdirected-session rejection: a *Error (possibly wrapped)
// with CodeWrongNode whose detail carries the address. Together with
// PrimaryFromError it is how a routing client chases a session to
// where it actually lives.
func OwnerFromError(err error) (string, bool) {
	var ae *Error
	if errors.As(err, &ae) && ae.Code == CodeWrongNode && ae.Detail != "" {
		return ae.Detail, true
	}
	return "", false
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Err is the structured error, serialized as "error".
	Err *Error `json:"error"`
	// Applied is set on partial ingest batches: the number of events
	// durably applied before the failure.
	Applied int `json:"applied,omitempty"`
}
