package api

// The cluster control-plane surface of /v1 — the wire contract of a
// session-partitioned cluster (see internal/cluster for the placement
// and move machinery, and docs/API.md for the HTTP reference):
//
//	GET  /v1/cluster/map      ClusterMap — placement map with overrides
//	GET  /v1/cluster/health   ClusterHealth — role, map version, WAL seqs, peer probes
//	POST /v1/cluster/move     MoveRequest → MoveResponse — move a session to another node
//	POST /v1/cluster/release  ReleaseRequest → ReleaseResponse — owner-side move handoff
//
// A cluster shards *sessions* across nodes: each session is owned by
// exactly one node, chosen deterministically from the map by
// consistent hashing (plus explicit per-session overrides for moved
// sessions). Clients and servers run the identical placement code over
// the identical map, so a request routed by a current map lands on the
// owner; a stale map costs one redirect — the rejection carries the
// owner's URL (CodeWrongNode for sessions the node never had,
// CodeReadOnly for sessions that moved away and left a local copy).

// ClusterNode is one node entry of the cluster map.
type ClusterNode struct {
	// Name is the node's cluster-unique name (the -node flag).
	Name string `json:"name"`
	// URL is the node's base URL, e.g. "http://10.0.0.1:8080".
	URL string `json:"url"`
	// Follower is the base URL of the node's read replica, if it has
	// one — the promote target a smart client fails over to when the
	// node dies.
	Follower string `json:"follower,omitempty"`
	// Weight scales the node's share of the hash ring; zero means 1.
	Weight int `json:"weight,omitempty"`
}

// ClusterOverride pins one session to a node regardless of its hash
// placement — the record of a move, installed at the owner's release.
type ClusterOverride struct {
	// Node is the owning node's name. Empty on a tombstone (Deleted).
	Node string `json:"node,omitempty"`
	// Version is the map version at which the override was installed.
	// When two maps disagree about a session, the higher version wins —
	// a session's overrides are serialized by its successive owners, so
	// versions along a move chain strictly increase.
	Version int64 `json:"version"`
	// From is the name of the node that released the session to Node —
	// the source an interrupted move resumes its drain from. Empty on
	// operator-pinned overrides and tombstones.
	From string `json:"from,omitempty"`
	// FinalSeq is the source's sealed final WAL sequence at release:
	// the move is complete only once Node's copy has applied through
	// it. Zero on operator-pinned overrides and tombstones.
	FinalSeq int64 `json:"final_seq,omitempty"`
	// ChainHead is the source's WAL hash-chain head at FinalSeq (hex),
	// recorded at release so the target — a resumed drain included —
	// can prove the history it applied is the history that was sealed
	// before it starts serving. Empty when the source had no chain
	// (memory-only session).
	ChainHead string `json:"chain_head,omitempty"`
	// Deleted marks a tombstone: the session was deleted at its owner
	// and places by hash again. Tombstones gossip like live overrides
	// (higher version wins), so peers drop their stale entries instead
	// of re-infecting the deleting node on its next probe.
	Deleted bool `json:"deleted,omitempty"`
}

// ClusterMap is the versioned placement map: the node set (static
// configuration) plus per-session overrides for moved sessions.
// Placement is deterministic in the map alone, so every holder of the
// same map routes identically.
type ClusterMap struct {
	// Version counts map changes; each move bumps it. Nodes merge maps
	// by adopting the per-session override with the higher version and
	// raising Version to the maximum seen.
	Version int64 `json:"version"`
	// Nodes is the node set, sorted by name.
	Nodes []ClusterNode `json:"nodes"`
	// Overrides maps session name → pinned placement.
	Overrides map[string]ClusterOverride `json:"overrides,omitempty"`
}

// Node returns the named node entry.
func (m ClusterMap) Node(name string) (ClusterNode, bool) {
	for _, n := range m.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return ClusterNode{}, false
}

// Clone returns a deep copy of the map.
func (m ClusterMap) Clone() ClusterMap {
	cp := m
	cp.Nodes = append([]ClusterNode(nil), m.Nodes...)
	if m.Overrides != nil {
		cp.Overrides = make(map[string]ClusterOverride, len(m.Overrides))
		for k, v := range m.Overrides {
			cp.Overrides[k] = v
		}
	}
	return cp
}

// ClusterPeer is one peer's health as seen by the reporting node's
// prober.
type ClusterPeer struct {
	// Name and URL identify the peer.
	Name string `json:"name"`
	URL  string `json:"url"`
	// Up reports whether the last probe succeeded.
	Up bool `json:"up"`
	// MapVersion is the peer's map version at the last successful
	// probe.
	MapVersion int64 `json:"map_version,omitempty"`
	// Error is the last probe failure (cleared on recovery).
	Error string `json:"error,omitempty"`
	// AgeMS is how long ago the peer last answered a probe, in
	// milliseconds; -1 if it never has.
	AgeMS int64 `json:"age_ms"`
}

// ClusterHealth is the body of GET /v1/cluster/health: the node's own
// state plus what its prober knows about the peers.
type ClusterHealth struct {
	// Node is the reporting node's name.
	Node string `json:"node"`
	// MapVersion is the node's current map version.
	MapVersion int64 `json:"map_version"`
	// Role is the node's replication role (RolePrimary or
	// RoleFollower).
	Role string `json:"role"`
	// Sessions reports each local session's committed WAL sequence —
	// the same shape the replication status uses, so movers and lag
	// monitors read one format.
	Sessions []SessionReplication `json:"sessions"`
	// Peers is the prober's latest view of the other nodes.
	Peers []ClusterPeer `json:"peers,omitempty"`
	// Metrics is the node's typed metrics snapshot — the health-check
	// form of GET /v1/metrics, for callers that want numbers without a
	// Prometheus parser. Absent on servers built before the field.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// MetricsSnapshot is a typed point-in-time cut of the node's metrics
// registry: the handful of numbers an operator health check or a
// routing client reads most, without scraping and parsing the full
// GET /v1/metrics exposition. Counters are process-lifetime totals;
// latencies are registry-histogram quantiles in microseconds.
type MetricsSnapshot struct {
	// Sessions is the open session count.
	Sessions int64 `json:"sessions"`
	// IngestEvents / IngestBytes total ingested events and wire bytes.
	IngestEvents int64 `json:"ingest_events"`
	IngestBytes  int64 `json:"ingest_bytes,omitempty"`
	// WALAppends counts records appended across every session log;
	// WALCommitP99US / WALFsyncP99US are the p99 group-commit wait and
	// fsync latency in microseconds.
	WALAppends     int64   `json:"wal_appends"`
	WALCommitP99US float64 `json:"wal_commit_p99_us,omitempty"`
	WALFsyncP99US  float64 `json:"wal_fsync_p99_us,omitempty"`
	// SnapshotWrites counts arena snapshots written; ArenaMaps is the
	// number of sessions currently serving labels from a mapped arena.
	SnapshotWrites int64 `json:"snapshot_writes,omitempty"`
	ArenaMaps      int64 `json:"arena_maps,omitempty"`
	// ReplicaLagEvents / ReplicaLagSeconds report the follower's worst
	// per-session tail lag (zero on primaries).
	ReplicaLagEvents  int64   `json:"replica_lag_events"`
	ReplicaLagSeconds float64 `json:"replica_lag_seconds,omitempty"`
	// MovesCompleted counts completed session moves this node received;
	// the rejection counters are misrouted requests this node turned
	// away (the smart client's redirect food).
	MovesCompleted      int64 `json:"moves_completed"`
	WrongNodeRejections int64 `json:"wrong_node_rejections"`
	ReadOnlyRejections  int64 `json:"read_only_rejections"`
	// ChainFramesVerified counts WAL frames hashed by verification
	// passes (restore anchors, replica cross-checks, move drains).
	ChainFramesVerified int64 `json:"chain_frames_verified,omitempty"`
}

// MoveRequest is the JSON body of POST /v1/cluster/move: move the
// session to the target node. It may be POSTed to any node — a node
// that is not the target forwards it; the target pulls the session's
// WAL from the owner, catches up, takes the handoff, and answers.
type MoveRequest struct {
	// Session is the session to move.
	Session string `json:"session"`
	// Target is the receiving node's name.
	Target string `json:"target"`
}

// MoveResponse reports a completed (or idempotently skipped) move.
type MoveResponse struct {
	// Session echoes the moved session.
	Session string `json:"session"`
	// From is the node that owned the session before the move; equal
	// to To when the target already owned it.
	From string `json:"from"`
	// To is the owning node after the move.
	To string `json:"to"`
	// Events is the session's event count on the target after the
	// move.
	Events int64 `json:"events"`
	// Map is the target's map after the move, override included —
	// callers adopt it instead of rediscovering the placement.
	Map ClusterMap `json:"map"`
}

// ReleaseRequest is the JSON body of POST /v1/cluster/release — the
// owner-side half of a move, sent by the caught-up target: install the
// override, seal the session against further local ingest, and report
// the final WAL sequence the target must drain to. It is an internal
// step of the move protocol; operators normally POST /v1/cluster/move.
type ReleaseRequest struct {
	// Session is the session being handed off.
	Session string `json:"session"`
	// Node is the new owner's name, URL its base URL (what the sealed
	// session's read_only rejections will point at).
	Node string `json:"node"`
	URL  string `json:"url"`
}

// ReleaseResponse acknowledges a handoff.
type ReleaseResponse struct {
	// ChainHead is the sealed session's WAL hash-chain head at
	// FinalSeq (hex; empty when the owner has no chain). The target
	// re-verifies its own chain against it after the drain, before the
	// override flips routing to it.
	ChainHead string `json:"chain_head,omitempty"`
	// FinalSeq is the sealed session's last appended WAL sequence; the
	// handoff is complete once the target has applied through it.
	FinalSeq int64 `json:"final_seq"`
	// Map is the owner's map with the new override installed.
	Map ClusterMap `json:"map"`
}
