package api

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"wfreach/internal/wal"
)

// FuzzFrameReader throws arbitrary byte streams at the binary ingest
// decoder. The invariants: it never panics, reports damage only as
// CodeBadFrame, never accepts a frame past the payload cap, and every
// accepted frame's raw bytes are exactly the input bytes it consumed
// (so a server teeing accepted frames to its WAL writes precisely
// what arrived on the wire).
func FuzzFrameReader(f *testing.F) {
	g, v := int32(1), int32(2)
	seed, _ := AppendFrame(nil, Event{V: 0, Graph: &g, Vertex: &v})
	seed, _ = AppendFrame(seed, Event{V: 1, Name: "blast", Preds: []int32{0}})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // truncated payload
	f.Add(seed[:5])           // truncated header

	crc := append([]byte(nil), seed...)
	crc[len(crc)-1] ^= 1 // CRC mismatch
	f.Add(crc)

	huge := make([]byte, FrameHeaderSize)
	binary.LittleEndian.PutUint32(huge, MaxFramePayload+7) // oversized length
	f.Add(huge)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		consumed := 0
		for {
			rec, frame, err := fr.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				var ae *Error
				if !errors.As(err, &ae) || ae.Code != CodeBadFrame {
					t.Fatalf("non-structured decode error: %v", err)
				}
				break
			}
			if len(frame) > FrameHeaderSize+MaxFramePayload {
				t.Fatalf("frame of %d bytes exceeds the cap", len(frame))
			}
			if !bytes.Equal(frame, data[consumed:consumed+len(frame)]) {
				t.Fatal("returned frame bytes differ from the consumed input")
			}
			consumed += len(frame)
			// An accepted record must survive the WAL append path the
			// server tees it through (the cap was already enforced).
			if _, err := wal.AppendFrame(nil, rec); err != nil {
				t.Fatalf("accepted record rejected by the WAL encoder: %v", err)
			}
		}
	})
}
