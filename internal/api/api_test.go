package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
)

func refEvent(v, g, sv int32, preds ...int32) Event {
	e := Event{V: v, Graph: &g, Vertex: &sv}
	e.Preds = append(e.Preds, preds...)
	return e
}

func TestEventRecordRoundTrip(t *testing.T) {
	cases := []Event{
		refEvent(0, 0, 3),
		refEvent(7, 2, 1, 0, 3, 5),
		{V: 4, Name: "align", Preds: []int32{1, 2}},
		{V: 9, Name: "x"},
	}
	for _, e := range cases {
		rec, err := e.Record()
		if err != nil {
			t.Fatalf("Record(%+v): %v", e, err)
		}
		back := FromRecord(rec)
		if back.V != e.V || back.Name != e.Name || len(back.Preds) != len(e.Preds) {
			t.Fatalf("round trip %+v -> %+v", e, back)
		}
		if e.Graph != nil && (*back.Graph != *e.Graph || *back.Vertex != *e.Vertex) {
			t.Fatalf("ref round trip %+v -> %+v", e, back)
		}
		for i := range e.Preds {
			if back.Preds[i] != e.Preds[i] {
				t.Fatalf("preds round trip %+v -> %+v", e, back)
			}
		}
	}
}

func TestEventRecordRejectsMalformedForms(t *testing.T) {
	g0 := int32(0)
	for _, bad := range []Event{
		{V: 1}, // neither form
		{V: 1, Name: "x", Graph: &g0, Vertex: &g0}, // both forms
		{V: 1, Graph: &g0},                         // half a ref
	} {
		_, err := bad.Record()
		var ae *Error
		if !errors.As(err, &ae) || ae.Code != CodeBadEvent {
			t.Fatalf("Record(%+v) = %v, want CodeBadEvent", bad, err)
		}
	}
}

func TestFromRunFromNamed(t *testing.T) {
	rev := run.Event{V: 5, Ref: spec.VertexRef{Graph: 2, V: 1}, Preds: []graph.VertexID{3, 4}}
	e := FromRun(rev)
	if e.V != 5 || *e.Graph != 2 || *e.Vertex != 1 || len(e.Preds) != 2 || e.Name != "" {
		t.Fatalf("FromRun = %+v", e)
	}
	ne := core.NamedEvent{V: 6, Name: "blast", Preds: []graph.VertexID{5}}
	e = FromNamed(ne)
	if e.V != 6 || e.Name != "blast" || e.Graph != nil || len(e.Preds) != 1 {
		t.Fatalf("FromNamed = %+v", e)
	}
}

func TestErrorCodeStatusMapping(t *testing.T) {
	want := map[ErrorCode]int{
		CodeBadRequest:       http.StatusBadRequest,
		CodeBadJSON:          http.StatusBadRequest,
		CodeBadVertex:        http.StatusBadRequest,
		CodeBadEvent:         http.StatusBadRequest,
		CodeBadFrame:         http.StatusBadRequest,
		CodeBadSpec:          http.StatusBadRequest,
		CodeUnknownBuiltin:   http.StatusBadRequest,
		CodeSessionNotFound:  http.StatusNotFound,
		CodeVertexNotLabeled: http.StatusNotFound,
		CodeNotFound:         http.StatusNotFound,
		CodeSessionExists:    http.StatusConflict,
		CodeMethodNotAllowed: http.StatusMethodNotAllowed,
		CodeSessionPoisoned:  http.StatusInternalServerError,
		CodeInternal:         http.StatusInternalServerError,
	}
	for code, status := range want {
		if got := code.HTTPStatus(); got != status {
			t.Errorf("%s -> %d, want %d", code, got, status)
		}
	}
}

func TestErrorRenderingAndWireShape(t *testing.T) {
	e := Errorf(CodeSessionNotFound, "no session %q", "x").WithDetail("have %s", "a, b")
	if got := e.Error(); got != `session_not_found: no session "x" (have a, b)` {
		t.Fatalf("Error() = %q", got)
	}
	raw, err := json.Marshal(ErrorResponse{Err: e, Applied: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The wire shape is {"error":{"code","message","detail"},"applied"}.
	var decoded struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Detail  string `json:"detail"`
		} `json:"error"`
		Applied int `json:"applied"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if decoded.Error.Code != "session_not_found" || decoded.Applied != 3 || decoded.Error.Detail == "" {
		t.Fatalf("wire shape = %s", raw)
	}
}

func TestAsError(t *testing.T) {
	inner := Errorf(CodeBadVertex, "nope")
	wrapped := fmt.Errorf("outer: %w", inner)
	if got := AsError(wrapped, CodeInternal); got != inner {
		t.Fatalf("AsError(wrapped) = %v", got)
	}
	plain := errors.New("plain failure")
	got := AsError(plain, CodeBadRequest)
	if got.Code != CodeBadRequest || !strings.Contains(got.Message, "plain failure") {
		t.Fatalf("AsError(plain) = %+v", got)
	}
}
