package api

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"

	"wfreach/internal/wal"
)

// The binary ingest frame is deliberately byte-identical to the
// write-ahead-log record frame (see internal/wal and the wire-format
// appendix of ARCHITECTURE.md):
//
//	uint32 LE  payload length N (1 ≤ N ≤ MaxFramePayload)
//	uint32 LE  CRC-32 (IEEE) of the payload
//	N bytes    payload (one event: kind byte + uvarint fields)
//
// A ContentTypeFrame ingest body is a plain concatenation of frames.
// Because the formats are identical, a durable server tees each
// accepted frame to its session log as-is — the per-event
// JSON-decode/WAL-re-encode cost of the JSON route disappears.

// FrameHeaderSize is the fixed frame prefix size in bytes.
const FrameHeaderSize = wal.FrameHeaderSize

// MaxFramePayload caps one frame's payload, shared with the WAL
// format.
const MaxFramePayload = wal.MaxPayload

// AppendFrame encodes one wire event as a binary ingest frame onto
// buf and returns the extended slice. The bytes are exactly what the
// server's write-ahead log stores for the same event. Malformed
// events (see Event.Record) are rejected with buf unchanged.
func AppendFrame(buf []byte, ev Event) ([]byte, error) {
	rec, err := ev.Record()
	if err != nil {
		return buf, err
	}
	out, err := wal.AppendFrame(buf, rec)
	if err != nil {
		return buf, Errorf(CodeBadFrame, "%v", err)
	}
	return out, nil
}

// FrameReader decodes a stream of binary ingest frames. Any damage —
// a truncated frame, an oversized length prefix, a CRC mismatch, an
// undecodable payload — is a *Error with CodeBadFrame; unlike the
// WAL's tail-tolerant Scan, a wire stream has no excuse for
// corruption mid-body.
type FrameReader struct {
	br    *bufio.Reader
	frame []byte
}

// NewFrameReader wraps r for frame-by-frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record and its raw frame bytes (header plus
// payload). The frame slice is reused by the following Next call —
// callers that keep it must copy. A clean end of stream returns
// io.EOF.
func (fr *FrameReader) Next() (wal.Record, []byte, error) {
	var header [FrameHeaderSize]byte
	if _, err := io.ReadFull(fr.br, header[:]); err != nil {
		if err == io.EOF {
			return wal.Record{}, nil, io.EOF
		}
		return wal.Record{}, nil, Errorf(CodeBadFrame, "truncated frame header: %v", err)
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	if length == 0 || length > MaxFramePayload {
		return wal.Record{}, nil, Errorf(CodeBadFrame, "frame length %d outside (0, %d]", length, MaxFramePayload)
	}
	total := FrameHeaderSize + int(length)
	if cap(fr.frame) < total {
		fr.frame = make([]byte, total)
	}
	fr.frame = fr.frame[:total]
	copy(fr.frame, header[:])
	if _, err := io.ReadFull(fr.br, fr.frame[FrameHeaderSize:]); err != nil {
		return wal.Record{}, nil, Errorf(CodeBadFrame, "truncated frame payload: want %d bytes: %v", length, err)
	}
	rec, err := decodeVerifiedFrame(fr.frame)
	if err != nil {
		return wal.Record{}, nil, Errorf(CodeBadFrame, "bad frame: %v", err)
	}
	return rec, fr.frame, nil
}

// decodeVerifiedFrame checks a complete frame's CRC and decodes its
// payload into a record (shared by FrameReader and TailReader).
func decodeVerifiedFrame(frame []byte) (wal.Record, error) {
	payload := frame[FrameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4:8]) {
		return wal.Record{}, errors.New("frame CRC mismatch")
	}
	return wal.DecodeRecord(payload)
}

// DecodeFrames decodes a complete in-memory frame stream into wire
// events — the inverse of encoding each event with AppendFrame onto
// one buffer.
func DecodeFrames(b []byte) ([]Event, error) {
	fr := NewFrameReader(bytes.NewReader(b))
	var out []Event
	for {
		rec, _, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, FromRecord(rec))
	}
}
