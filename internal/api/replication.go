package api

import (
	"bufio"
	"encoding/binary"
	"io"

	"wfreach/internal/wal"
)

// The replication surface of /v1: WAL shipping plus status/promote.
//
//	GET  /v1/sessions/{name}/wal?from={seq}&wait={bool}   tail the session's WAL
//	GET  /v1/sessions/{name}/spec                         the session's spec XML
//	GET  /v1/replication/status                           ReplicationStatus
//	POST /v1/replication/promote                          follower → writable
//
// A tail response (ContentTypeWAL) is a stream of entries, each an
// 8-byte little-endian absolute sequence number followed by one raw
// WAL frame — the identical bytes the primary's log holds, which are
// the identical bytes the binary ingest route accepted. A follower
// appends the shipped frames to its own log verbatim, so replication
// preserves the frame-identity chain end to end: ingest frame ≡ WAL
// record ≡ shipped frame ≡ replica WAL record.

// ContentTypeWAL marks a WAL tail stream response.
const ContentTypeWAL = "application/x-wfreach-wal"

// Replication roles reported by ReplicationStatus.
const (
	// RolePrimary is a writable server (the default; every server not
	// following another is a primary, whether or not anything tails it).
	RolePrimary = "primary"
	// RoleFollower is a read-only replica tailing a primary.
	RoleFollower = "follower"
)

// ReplicationStatus is the body of GET /v1/replication/status.
type ReplicationStatus struct {
	// Role is RolePrimary or RoleFollower.
	Role string `json:"role"`
	// Primary is the primary's base URL (followers only).
	Primary string `json:"primary,omitempty"`
	// Sessions reports per-session replication progress, sorted by
	// name.
	Sessions []SessionReplication `json:"sessions"`
}

// SessionReplication is one session's replication state on this
// server. WALSeq has the same meaning on both roles — the sequence of
// the last event committed to this server's own WAL — so a session's
// replica lag is primary.WALSeq − follower.WALSeq.
type SessionReplication struct {
	// Name is the session's registry name.
	Name string `json:"name"`
	// WALSeq is the last committed sequence in this server's WAL for
	// the session (0 for memory-only sessions).
	WALSeq int64 `json:"wal_seq"`
	// Durable reports whether the session has a write-ahead log here.
	Durable bool `json:"durable,omitempty"`
	// Error is the follower's last tail/apply failure for the session,
	// if any (cleared on recovery).
	Error string `json:"error,omitempty"`
}

// TailSeqSize is the fixed per-entry prefix of a tail stream: the
// absolute sequence number, uint64 little-endian.
const TailSeqSize = 8

// AppendTailEntry encodes one tail-stream entry — the sequence prefix
// plus the raw WAL frame — onto buf and returns the extended slice.
func AppendTailEntry(buf []byte, seq int64, frame []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seq))
	return append(buf, frame...)
}

// TailEntry is one decoded tail-stream entry.
type TailEntry struct {
	// Seq is the record's absolute sequence in the primary's WAL.
	Seq int64
	// Frame is the raw WAL frame (header plus payload), CRC-verified.
	// The slice is reused by the reader's following Next call.
	Frame []byte
	// Record is the decoded event.
	Record wal.Record
}

// TailReader decodes a WAL tail stream entry by entry. Damage — a
// truncated entry, a CRC mismatch, an undecodable payload — is a
// *Error with CodeBadFrame; a cleanly ended stream returns io.EOF
// (the primary closed the response; reconnect and resume from the
// last applied sequence).
type TailReader struct {
	br    *bufio.Reader
	frame []byte
}

// NewTailReader wraps r for entry-by-entry decoding.
func NewTailReader(r io.Reader) *TailReader {
	return &TailReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Buffered reports whether at least one byte of a further entry has
// already arrived — the consumer's cue that it can keep batching
// without blocking on the network.
func (t *TailReader) Buffered() bool { return t.br.Buffered() > 0 }

// Next returns the next entry. Entry.Frame is reused by the following
// Next call; consumers that keep it must copy.
func (t *TailReader) Next() (TailEntry, error) {
	var seqBuf [TailSeqSize]byte
	if _, err := io.ReadFull(t.br, seqBuf[:]); err != nil {
		if err == io.EOF {
			return TailEntry{}, io.EOF
		}
		return TailEntry{}, Errorf(CodeBadFrame, "truncated tail entry: %v", err)
	}
	seq := int64(binary.LittleEndian.Uint64(seqBuf[:]))
	if seq <= 0 {
		return TailEntry{}, Errorf(CodeBadFrame, "tail entry sequence %d is not positive", seq)
	}
	var header [FrameHeaderSize]byte
	if _, err := io.ReadFull(t.br, header[:]); err != nil {
		return TailEntry{}, Errorf(CodeBadFrame, "truncated tail frame header at seq %d: %v", seq, err)
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	if length == 0 || length > MaxFramePayload {
		return TailEntry{}, Errorf(CodeBadFrame, "tail frame length %d outside (0, %d] at seq %d", length, MaxFramePayload, seq)
	}
	total := FrameHeaderSize + int(length)
	if cap(t.frame) < total {
		t.frame = make([]byte, total)
	}
	t.frame = t.frame[:total]
	copy(t.frame, header[:])
	if _, err := io.ReadFull(t.br, t.frame[FrameHeaderSize:]); err != nil {
		return TailEntry{}, Errorf(CodeBadFrame, "truncated tail frame payload at seq %d: %v", seq, err)
	}
	rec, err := decodeVerifiedFrame(t.frame)
	if err != nil {
		return TailEntry{}, Errorf(CodeBadFrame, "tail frame at seq %d: %v", seq, err)
	}
	return TailEntry{Seq: seq, Frame: t.frame, Record: rec}, nil
}
