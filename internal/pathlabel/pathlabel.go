// Package pathlabel implements the naive compact execution-based
// scheme of Example 15: for workflow grammars whose runs are simple
// paths (such as the nonlinear-series grammar of Figure 12), labeling
// the i-th inserted vertex with the index i suffices — π is just
// integer comparison — giving logarithmic labels despite the
// nonlinearity. It demarcates the paper's open boundary: nonlinear
// series recursion sometimes admits compact execution-based labeling
// even though derivation-based labeling cannot be compact (Theorem 4).
package pathlabel

import (
	"fmt"

	"wfreach/internal/graph"
)

// Label is a path-position label: bits(i) ≈ log₂ n bits.
type Label int32

// BitLen returns the label size in bits.
func (l Label) BitLen() int {
	b := 1
	for int32(l) >= 1<<b {
		b++
	}
	return b
}

// Labeler labels executions of simple-path runs on the fly.
type Labeler struct {
	next Label
	byID map[graph.VertexID]Label
	last graph.VertexID
}

// New returns an empty labeler.
func New() *Labeler {
	return &Labeler{byID: make(map[graph.VertexID]Label), last: graph.None}
}

// Insert labels the next vertex. The insertion must extend the path:
// its predecessor set must be exactly the previously inserted vertex
// (or empty for the first vertex); anything else means the run is not
// a simple path and the scheme does not apply.
func (p *Labeler) Insert(v graph.VertexID, preds []graph.VertexID) (Label, error) {
	if _, dup := p.byID[v]; dup {
		return 0, fmt.Errorf("pathlabel: vertex %d inserted twice", v)
	}
	if p.last == graph.None {
		if len(preds) != 0 {
			return 0, fmt.Errorf("pathlabel: first vertex with predecessors")
		}
	} else {
		if len(preds) != 1 || preds[0] != p.last {
			return 0, fmt.Errorf("pathlabel: insertion does not extend the path")
		}
	}
	l := p.next
	p.next++
	p.byID[v] = l
	p.last = v
	return l, nil
}

// Pi reports reachability from two labels alone: on a path, v reaches
// w iff v precedes (or equals) w.
func Pi(a, b Label) bool { return a <= b }

// Reach answers reachability between two inserted vertices.
func (p *Labeler) Reach(v, w graph.VertexID) (bool, error) {
	a, ok := p.byID[v]
	if !ok {
		return false, fmt.Errorf("pathlabel: vertex %d not inserted", v)
	}
	b, ok := p.byID[w]
	if !ok {
		return false, fmt.Errorf("pathlabel: vertex %d not inserted", w)
	}
	return Pi(a, b), nil
}

// MaxBits returns the longest label issued so far.
func (p *Labeler) MaxBits() int {
	if p.next == 0 {
		return 0
	}
	return (p.next - 1).BitLen()
}

// Count returns the number of inserted vertices.
func (p *Labeler) Count() int { return len(p.byID) }
