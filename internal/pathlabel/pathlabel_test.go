package pathlabel_test

import (
	"testing"

	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/pathlabel"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// TestFig12RunsAreCompactlyLabelable realizes Example 15: runs of the
// Figure 12 grammar are simple paths, so the index scheme labels them
// with O(log n) bits and answers every query correctly.
func TestFig12RunsAreCompactlyLabelable(t *testing.T) {
	g := spec.MustCompile(wfspecs.Fig12())
	for seed := int64(0); seed < 5; seed++ {
		r := gen.MustGenerate(g, gen.Options{TargetSize: 400, Seed: seed, DepthFirst: seed%2 == 0})
		evs, err := r.Execution(nil)
		if err != nil {
			t.Fatal(err)
		}
		p := pathlabel.New()
		for _, ev := range evs {
			if _, err := p.Insert(ev.V, ev.Preds); err != nil {
				t.Fatalf("seed %d: Fig12 run is not a path? %v", seed, err)
			}
		}
		// Logarithmic labels on a nonlinear grammar (Example 15's
		// point): ⌈log₂ n⌉ bits, never linear.
		n := r.Size()
		if p.MaxBits() > 2+bits(n) {
			t.Fatalf("max label %d bits for n=%d", p.MaxBits(), n)
		}
		live := r.Graph.LiveVertices()
		for _, v := range live {
			for _, w := range live {
				got, err := p.Reach(v, w)
				if err != nil {
					t.Fatal(err)
				}
				if want := r.Graph.Reaches(v, w); got != want {
					t.Fatalf("π(%d,%d)=%v, want %v", v, w, got, want)
				}
			}
		}
	}
}

func bits(n int) int {
	b := 1
	for n >= 1<<b {
		b++
	}
	return b
}

func TestRejectsNonPathInsertions(t *testing.T) {
	p := pathlabel.New()
	if _, err := p.Insert(0, []graph.VertexID{5}); err == nil {
		t.Fatal("first vertex with preds accepted")
	}
	if _, err := p.Insert(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(0, nil); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := p.Insert(1, nil); err == nil {
		t.Fatal("second parentless vertex accepted")
	}
	if _, err := p.Insert(1, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	// Branching breaks the path property.
	if _, err := p.Insert(2, []graph.VertexID{0}); err == nil {
		t.Fatal("branching insertion accepted")
	}
	if _, err := p.Insert(2, []graph.VertexID{0, 1}); err == nil {
		t.Fatal("multi-pred insertion accepted")
	}
}

func TestRejectsForkingWorkflows(t *testing.T) {
	// The running example's runs fork; the path scheme must refuse them.
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 200, Seed: 1})
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := pathlabel.New()
	failed := false
	for _, ev := range evs {
		if _, err := p.Insert(ev.V, ev.Preds); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("a forking run slipped through the path check")
	}
}

func TestAccessors(t *testing.T) {
	p := pathlabel.New()
	if p.MaxBits() != 0 || p.Count() != 0 {
		t.Fatal("empty stats wrong")
	}
	p.Insert(7, nil)
	if p.Count() != 1 {
		t.Fatal("count wrong")
	}
	if _, err := p.Reach(7, 8); err == nil {
		t.Fatal("unknown vertex accepted")
	}
	if _, err := p.Reach(8, 7); err == nil {
		t.Fatal("unknown vertex accepted")
	}
	if !pathlabel.Pi(1, 1) || pathlabel.Pi(2, 1) {
		t.Fatal("Pi wrong")
	}
	if pathlabel.Label(1023).BitLen() != 10 || pathlabel.Label(0).BitLen() != 1 {
		t.Fatal("BitLen wrong")
	}
}
