// Package spec implements workflow specifications and workflow
// grammars (Definitions 5-7 of the paper), together with the
// structural analyses the labeling schemes rely on: the "induces"
// relation, recursive vertices, linear/nonlinear/parallel recursion
// classification (Definitions 10 and 13, Lemma 5.1), termination, and
// the global inlined specification used by the static SKL baseline.
//
// A specification S = (Σ, Δ, ΔL, ΔF, I, g0) is authored through a
// Builder and compiled into a Grammar, which precomputes per-graph
// reachability closures (the ground truth behind skeleton labels and
// recursion flags) and exposes the classification queries.
package spec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"wfreach/internal/graph"
)

// Kind classifies a module name.
type Kind uint8

const (
	// Atomic names label black-box modules; runs consist only of them.
	Atomic Kind = iota
	// Plain names label composite modules with "or" implementation
	// choice but no repetition.
	Plain
	// Loop names label composite modules whose implementation may be
	// repeated in series (Definition 6's S(h, ..., h) productions).
	Loop
	// Fork names label composite modules whose implementation may be
	// repeated in parallel (P(h, ..., h) productions).
	Fork
)

func (k Kind) String() string {
	switch k {
	case Atomic:
		return "atomic"
	case Plain:
		return "plain"
	case Loop:
		return "loop"
	case Fork:
		return "fork"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Composite reports whether the kind denotes a composite module.
func (k Kind) Composite() bool { return k != Atomic }

// GraphID indexes the graphs of a specification: 0 is the start graph
// g0, higher ids are implementation graphs in declaration order.
type GraphID int32

// StartGraph is the GraphID of g0.
const StartGraph GraphID = 0

// VertexRef names one vertex of one specification graph. It is the
// "pointer to a skeleton label" of Algorithm 1 (the paper stores a
// pointer rather than the label itself; a VertexRef costs
// ⌈log₂ n_G⌉ bits where n_G is the total specification size).
type VertexRef struct {
	Graph GraphID
	V     graph.VertexID
}

// NoRef is the zero VertexRef sentinel ("null" in Algorithm 1).
var NoRef = VertexRef{Graph: -1, V: graph.None}

// IsZero reports whether r is the null reference.
func (r VertexRef) IsZero() bool { return r.Graph < 0 }

// NamedGraph is one graph of G(S) = {g0} ∪ {h : (A,h) ∈ I}.
type NamedGraph struct {
	ID    GraphID
	Label string       // display label: "g0", "h1", ...
	Owner string       // composite name this graph implements; "" for g0
	G     *graph.Graph // the graph itself; vertex names are module names
}

// Spec is a validated workflow specification.
type Spec struct {
	kinds  map[string]Kind
	graphs []*NamedGraph
	impls  map[string][]GraphID // composite name -> implementation graphs
}

// Kind returns the kind of a declared name, or Atomic for any name
// that appears only as a vertex label.
func (s *Spec) Kind(name string) Kind { return s.kinds[name] }

// Graphs returns the graphs of G(S); index 0 is the start graph.
func (s *Spec) Graphs() []*NamedGraph { return s.graphs }

// Graph returns the graph with the given id.
func (s *Spec) Graph(id GraphID) *NamedGraph { return s.graphs[id] }

// Implementations returns the implementation graph ids of a composite
// name, in declaration order.
func (s *Spec) Implementations(name string) []GraphID { return s.impls[name] }

// Names returns all declared names in sorted order.
func (s *Spec) Names() []string {
	out := make([]string, 0, len(s.kinds))
	for n := range s.kinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CompositeNames returns the composite names in sorted order.
func (s *Spec) CompositeNames() []string {
	var out []string
	for n, k := range s.kinds {
		if k.Composite() {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TotalVertices returns Σ |V(h)| over all graphs of G(S): the n_G of
// the paper's quality analysis (Table 1).
func (s *Spec) TotalVertices() int {
	n := 0
	for _, g := range s.graphs {
		n += g.G.NumVertices()
	}
	return n
}

// Builder assembles a specification. Names not declared with Declare*
// are implicitly atomic.
type Builder struct {
	kinds  map[string]Kind
	graphs []*NamedGraph
	impls  map[string][]GraphID
	errs   []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		kinds: make(map[string]Kind),
		impls: make(map[string][]GraphID),
	}
}

func (b *Builder) declare(kind Kind, names ...string) *Builder {
	for _, n := range names {
		if prev, ok := b.kinds[n]; ok && prev != kind {
			b.errs = append(b.errs, fmt.Errorf("spec: name %q declared both %v and %v", n, prev, kind))
			continue
		}
		b.kinds[n] = kind
	}
	return b
}

// Composite declares plain composite names.
func (b *Builder) Composite(names ...string) *Builder { return b.declare(Plain, names...) }

// Loop declares loop names (members of ΔL).
func (b *Builder) Loop(names ...string) *Builder { return b.declare(Loop, names...) }

// Fork declares fork names (members of ΔF).
func (b *Builder) Fork(names ...string) *Builder { return b.declare(Fork, names...) }

// Atomic declares atomic names explicitly (usually unnecessary).
func (b *Builder) Atomic(names ...string) *Builder { return b.declare(Atomic, names...) }

// Start sets the start graph g0. It must be called exactly once,
// before any Implement call.
func (b *Builder) Start(label string, g *graph.Graph) *Builder {
	if len(b.graphs) > 0 {
		b.errs = append(b.errs, errors.New("spec: Start must be the first graph"))
		return b
	}
	b.graphs = append(b.graphs, &NamedGraph{ID: StartGraph, Label: label, G: g})
	return b
}

// Implement records (owner, g) ∈ I: one possible implementation of the
// composite module owner.
func (b *Builder) Implement(owner, label string, g *graph.Graph) *Builder {
	if len(b.graphs) == 0 {
		b.errs = append(b.errs, errors.New("spec: Implement before Start"))
		return b
	}
	id := GraphID(len(b.graphs))
	b.graphs = append(b.graphs, &NamedGraph{ID: id, Label: label, Owner: owner, G: g})
	b.impls[owner] = append(b.impls[owner], id)
	return b
}

// G is a convenience graph constructor: vertices are named in order,
// edges are given by name pairs. It panics on malformed input (it is a
// literal-building aid; real validation happens in Build).
func G(vertices []string, edges ...[2]string) *graph.Graph {
	g := graph.New()
	idx := make(map[string]graph.VertexID, len(vertices))
	for _, name := range vertices {
		if _, dup := idx[name]; dup {
			panic(fmt.Sprintf("spec.G: duplicate vertex name %q", name))
		}
		idx[name] = g.AddVertex(name)
	}
	for _, e := range edges {
		from, ok := idx[e[0]]
		if !ok {
			panic(fmt.Sprintf("spec.G: unknown vertex %q", e[0]))
		}
		to, ok := idx[e[1]]
		if !ok {
			panic(fmt.Sprintf("spec.G: unknown vertex %q", e[1]))
		}
		g.MustAddEdge(from, to)
	}
	return g
}

// GIdx builds a graph from vertex names (which may repeat, as in the
// lower-bound grammars of Figures 6 and 12) and index-based edges.
func GIdx(vertices []string, edges ...[2]int) *graph.Graph {
	g := graph.New()
	for _, name := range vertices {
		g.AddVertex(name)
	}
	for _, e := range edges {
		g.MustAddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]))
	}
	return g
}

// Build validates the specification and returns it. The checks cover
// the structural well-formedness assumptions of Section 2.2:
//
//   - the start graph exists; every graph is a two-terminal DAG whose
//     vertices all lie on a source-to-sink path;
//   - the source and sink of every graph are atomic "dummy" modules;
//   - loop and fork names are composite and the sets are disjoint by
//     construction (a name has one kind);
//   - every composite name has at least one implementation, atomic
//     names have none, and every composite name can terminate (derive
//     an all-atomic graph).
//
// The additional naming restrictions of Section 5.3 (distinct names
// within a graph, globally unique terminal names) are only needed to
// resolve execution events by module name; they are checked separately
// by NameResolvable, since the paper's lower-bound grammars (Figures 6
// and 12) legitimately repeat composite names.
func (b *Builder) Build() (*Spec, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.graphs) == 0 {
		return nil, errors.New("spec: no start graph")
	}
	s := &Spec{kinds: b.kinds, graphs: b.graphs, impls: b.impls}

	// Implicitly declare undeclared vertex names as atomic.
	for _, ng := range s.graphs {
		for v := 0; v < ng.G.NumVertices(); v++ {
			name := ng.G.Name(graph.VertexID(v))
			if _, ok := s.kinds[name]; !ok {
				s.kinds[name] = Atomic
			}
		}
	}

	for _, ng := range s.graphs {
		g := ng.G
		if g.NumVertices() < 2 {
			return nil, fmt.Errorf("spec: graph %s has fewer than 2 vertices", ng.Label)
		}
		if !g.IsTwoTerminal() {
			return nil, fmt.Errorf("spec: graph %s is not two-terminal", ng.Label)
		}
		if !g.SpansSourceToSink() {
			return nil, fmt.Errorf("spec: graph %s has vertices off the source-sink paths", ng.Label)
		}
		for _, term := range []graph.VertexID{g.Source(), g.Sink()} {
			name := g.Name(term)
			if s.kinds[name] != Atomic {
				return nil, fmt.Errorf("spec: graph %s terminal %q must be atomic", ng.Label, name)
			}
		}
	}

	for name, kind := range s.kinds {
		n := len(s.impls[name])
		if kind.Composite() && n == 0 {
			return nil, fmt.Errorf("spec: composite name %q has no implementation", name)
		}
		if !kind.Composite() && n > 0 {
			return nil, fmt.Errorf("spec: atomic name %q has implementations", name)
		}
	}
	for owner := range s.impls {
		if !s.kinds[owner].Composite() {
			return nil, fmt.Errorf("spec: implementation owner %q is not composite", owner)
		}
	}

	if bad := s.nonTerminating(); len(bad) > 0 {
		return nil, fmt.Errorf("spec: composite name(s) %v cannot terminate", bad)
	}
	return s, nil
}

// MustBuild is Build panicking on error, for the built-in specs.
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// NameResolvable checks the two naming restrictions of Section 5.3
// under which execution events can be resolved by module name alone:
// (1) all vertices of each graph in G(S) have distinct names, and (2)
// the source and sink dummies of each graph have names occurring in no
// other graph and nowhere else in their own graph. Specifications
// violating these can still be labeled when events carry explicit
// specification-vertex ids (the execution-log mapping).
func (s *Spec) NameResolvable() error {
	terminalOwner := make(map[string]GraphID)
	for _, ng := range s.graphs {
		g := ng.G
		seen := make(map[string]bool, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			name := g.Name(graph.VertexID(v))
			if seen[name] {
				return fmt.Errorf("spec: graph %s repeats vertex name %q", ng.Label, name)
			}
			seen[name] = true
		}
		for _, term := range []graph.VertexID{g.Source(), g.Sink()} {
			name := g.Name(term)
			if prev, ok := terminalOwner[name]; ok && prev != ng.ID {
				return fmt.Errorf("spec: terminal name %q appears in two graphs", name)
			}
			terminalOwner[name] = ng.ID
		}
	}
	for _, ng := range s.graphs {
		g := ng.G
		for v := 0; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			name := g.Name(vid)
			owner, isTerm := terminalOwner[name]
			if isTerm && (owner != ng.ID || (vid != g.Source() && vid != g.Sink())) {
				return fmt.Errorf("spec: dummy name %q reused in graph %s", name, ng.Label)
			}
		}
	}
	return nil
}

// ResolveName returns the unique vertex of graph id with the given
// name, or an error. Intended for name-resolvable specifications.
func (s *Spec) ResolveName(id GraphID, name string) (graph.VertexID, error) {
	g := s.graphs[id].G
	found := graph.None
	for v := 0; v < g.NumVertices(); v++ {
		if g.Name(graph.VertexID(v)) == name {
			if found != graph.None {
				return graph.None, fmt.Errorf("spec: name %q ambiguous in graph %s", name, s.graphs[id].Label)
			}
			found = graph.VertexID(v)
		}
	}
	if found == graph.None {
		return graph.None, fmt.Errorf("spec: name %q not in graph %s", name, s.graphs[id].Label)
	}
	return found, nil
}

// TerminalByName resolves a globally unique terminal-dummy name to its
// graph and vertex, reporting whether it is a source. It returns false
// if the name is not a terminal dummy of any graph.
func (s *Spec) TerminalByName(name string) (ref VertexRef, isSource, ok bool) {
	for _, ng := range s.graphs {
		g := ng.G
		if g.Name(g.Source()) == name {
			return VertexRef{Graph: ng.ID, V: g.Source()}, true, true
		}
		if g.Name(g.Sink()) == name {
			return VertexRef{Graph: ng.ID, V: g.Sink()}, false, true
		}
	}
	return NoRef, false, false
}

// nonTerminating returns the composite names that can never derive an
// all-atomic graph, via the standard fixpoint.
func (s *Spec) nonTerminating() []string {
	term := make(map[string]bool)
	for n, k := range s.kinds {
		if k == Atomic {
			term[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, impls := range s.impls {
			if term[name] {
				continue
			}
			for _, id := range impls {
				all := true
				g := s.graphs[id].G
				for v := 0; v < g.NumVertices(); v++ {
					if !term[g.Name(graph.VertexID(v))] {
						all = false
						break
					}
				}
				if all {
					term[name] = true
					changed = true
					break
				}
			}
		}
	}
	var bad []string
	for name, k := range s.kinds {
		if k.Composite() && !term[name] {
			bad = append(bad, name)
		}
	}
	sort.Strings(bad)
	return bad
}

// String renders the specification in the style of Example 3.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec{start=%s", s.graphs[0].Label)
	for _, name := range s.CompositeNames() {
		var labels []string
		for _, id := range s.impls[name] {
			labels = append(labels, s.graphs[id].Label)
		}
		fmt.Fprintf(&b, " %s(%v):=%s", name, s.kinds[name], strings.Join(labels, "|"))
	}
	b.WriteByte('}')
	return b.String()
}
