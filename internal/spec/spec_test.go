package spec_test

import (
	"strings"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func TestRunningExampleBuilds(t *testing.T) {
	s := wfspecs.RunningExample()
	if got := len(s.Graphs()); got != 7 {
		t.Fatalf("G(S) size = %d, want 7", got)
	}
	if s.Kind("L") != spec.Loop || s.Kind("F") != spec.Fork {
		t.Fatal("L/F kinds wrong")
	}
	if s.Kind("A") != spec.Plain || s.Kind("s0") != spec.Atomic {
		t.Fatal("A/s0 kinds wrong")
	}
	if got := len(s.Implementations("A")); got != 2 {
		t.Fatalf("A has %d implementations, want 2 (h3, h4)", got)
	}
	if err := s.NameResolvable(); err != nil {
		t.Fatalf("running example should be name-resolvable: %v", err)
	}
}

func TestRunningExampleTotals(t *testing.T) {
	s := wfspecs.RunningExample()
	// Example 3: Σ = {s0..s6, t0..t6, L, F, A, B, C}: 19 names.
	if got := len(s.Names()); got != 19 {
		t.Fatalf("|Σ| = %d, want 19", got)
	}
	// g0,h1,h2,h6 have 3 vertices; h3 has 4; h4,h5 have 2: total 20
	// (the name A labels one vertex in h2 and one in h6).
	if got := s.TotalVertices(); got != 20 {
		t.Fatalf("total vertices = %d, want 20", got)
	}
}

func TestInducesRelation(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	// Example 6: A directly induces B and C (via h3); C induces A.
	cases := []struct {
		a, b string
		want bool
	}{
		{"A", "B", true}, {"A", "C", true}, {"C", "A", true},
		{"A", "A", true}, // reflexive
		{"L", "F", true}, {"L", "A", true}, {"F", "A", true},
		{"B", "A", false}, {"A", "L", false}, {"A", "F", false},
		{"s0", "A", false}, {"A", "s3", true},
	}
	for _, c := range cases {
		if got := g.Induces(c.a, c.b); got != c.want {
			t.Errorf("Induces(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRecursiveVertices(t *testing.T) {
	s := wfspecs.RunningExample()
	g := spec.MustCompile(s)
	// Example 6: in A := h3 the vertex named C is recursive.
	h3 := s.Implementations("A")[0]
	rec := g.RecursiveVertices(h3)
	if len(rec) != 1 || s.Graph(h3).G.Name(rec[0]) != "C" {
		t.Fatalf("h3 recursive vertices = %v", rec)
	}
	if g.Designated(h3) != rec[0] {
		t.Fatal("designated vertex of h3 should be its unique recursive vertex")
	}
	// h6 (C := s6 → A → t6): the A vertex is recursive.
	h6 := s.Implementations("C")[0]
	rec6 := g.RecursiveVertices(h6)
	if len(rec6) != 1 || s.Graph(h6).G.Name(rec6[0]) != "A" {
		t.Fatalf("h6 recursive vertices = %v", rec6)
	}
	// h1 (loop body) and h4 (base case) have none.
	h1 := s.Implementations("L")[0]
	if len(g.RecursiveVertices(h1)) != 0 {
		t.Fatal("h1 should have no recursive vertices")
	}
	h4 := s.Implementations("A")[1]
	if len(g.RecursiveVertices(h4)) != 0 || g.Designated(h4) != graph.None {
		t.Fatal("h4 should have no recursive/designated vertices")
	}
	// The start graph heads no production.
	if len(g.RecursiveVertices(spec.StartGraph)) != 0 {
		t.Fatal("start graph has no production")
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		name string
		s    *spec.Spec
		want spec.Class
	}{
		// Example 7: the running example is linear recursive.
		{"running-example", wfspecs.RunningExample(), spec.ClassLinear},
		// Example 7 / Theorem 1: Figure 6 is not linear; its two
		// recursive vertices are parallel (Definition 13).
		{"fig6", wfspecs.Fig6(), spec.ClassNonlinearParallel},
		// Example 15: Figure 12 is nonlinear but series.
		{"fig12", wfspecs.Fig12(), spec.ClassNonlinearSeries},
		{"bioaid", wfspecs.BioAID(), spec.ClassLinear},
		{"bioaid-nonrec", wfspecs.BioAIDNonRecursive(), spec.ClassNonRecursive},
		{"synthetic-linear", wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 10, Depth: 5, RecModules: 1, Seed: 1}), spec.ClassLinear},
	}
	for _, c := range cases {
		g := spec.MustCompile(c.s)
		if g.Class() != c.want {
			t.Errorf("%s: class = %v, want %v", c.name, g.Class(), c.want)
		}
	}
	// Nonlinear synthetic: not linear (series or parallel depends on
	// the random topology).
	g := spec.MustCompile(wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 10, Depth: 5, RecModules: 2, Seed: 1}))
	if g.IsLinearRecursive() {
		t.Error("synthetic with 2 R modules must not be linear recursive")
	}
}

func TestIsLinearRecursive(t *testing.T) {
	if !spec.MustCompile(wfspecs.RunningExample()).IsLinearRecursive() {
		t.Fatal("running example is linear recursive")
	}
	if !spec.MustCompile(wfspecs.BioAIDNonRecursive()).IsLinearRecursive() {
		t.Fatal("non-recursive grammars count as linear (Definition 10 trivially)")
	}
	if spec.MustCompile(wfspecs.Fig6()).IsLinearRecursive() {
		t.Fatal("Figure 6 is not linear recursive")
	}
}

// TestLoopWithRecursiveBodyIsNonlinear checks Lemma 5.1's contrapositive:
// declaring a recursion through a loop module makes the grammar
// nonlinear (the pumped S(h,h) production has two recursive vertices).
func TestLoopWithRecursiveBodyIsNonlinear(t *testing.T) {
	s := spec.NewBuilder().
		Loop("L").
		Start("g0", spec.G([]string{"s0", "L", "t0"},
			[2]string{"s0", "L"}, [2]string{"L", "t0"})).
		// L's first body contains L itself; the second lets it terminate.
		Implement("L", "h1", spec.G([]string{"s1", "L", "t1"},
			[2]string{"s1", "L"}, [2]string{"L", "t1"})).
		Implement("L", "h2", spec.G([]string{"s2", "t2"}, [2]string{"s2", "t2"})).
		MustBuild()
	g := spec.MustCompile(s)
	if g.IsLinearRecursive() {
		t.Fatal("recursion through a loop must be nonlinear (Lemma 5.1)")
	}
	if g.Class() != spec.ClassNonlinearSeries {
		t.Fatalf("loop self-recursion is series: got %v", g.Class())
	}
	// A fork self-recursion is parallel recursive (Theorem 5 applies).
	s2 := spec.NewBuilder().
		Fork("F").
		Start("g0", spec.G([]string{"s0", "F", "t0"},
			[2]string{"s0", "F"}, [2]string{"F", "t0"})).
		Implement("F", "h1", spec.G([]string{"s1", "F", "t1"},
			[2]string{"s1", "F"}, [2]string{"F", "t1"})).
		Implement("F", "h2", spec.G([]string{"s2", "t2"}, [2]string{"s2", "t2"})).
		MustBuild()
	g2 := spec.MustCompile(s2)
	if g2.Class() != spec.ClassNonlinearParallel {
		t.Fatalf("fork self-recursion: got %v", g2.Class())
	}
	// No designated vertex inside loop/fork bodies (§6 adaptation).
	if g.Designated(s.Implementations("L")[0]) != graph.None {
		t.Fatal("loop body must have no designated recursive vertex")
	}
}

func TestTerminationValidation(t *testing.T) {
	// A composite whose only implementation contains itself can never
	// terminate.
	_, err := spec.NewBuilder().
		Composite("X").
		Start("g0", spec.G([]string{"s0", "X", "t0"},
			[2]string{"s0", "X"}, [2]string{"X", "t0"})).
		Implement("X", "h1", spec.G([]string{"s1", "X", "t1"},
			[2]string{"s1", "X"}, [2]string{"X", "t1"})).
		Build()
	if err == nil || !strings.Contains(err.Error(), "terminate") {
		t.Fatalf("non-terminating spec accepted: %v", err)
	}
}

func TestBuildValidationErrors(t *testing.T) {
	two := spec.G([]string{"s", "t"}, [2]string{"s", "t"})
	cases := []struct {
		name  string
		build func() (*spec.Spec, error)
	}{
		{"no-start", func() (*spec.Spec, error) { return spec.NewBuilder().Build() }},
		{"implement-before-start", func() (*spec.Spec, error) {
			return spec.NewBuilder().Composite("A").Implement("A", "h", two).Build()
		}},
		{"composite-without-impl", func() (*spec.Spec, error) {
			return spec.NewBuilder().Composite("A").
				Start("g0", spec.G([]string{"s0", "A", "t0"}, [2]string{"s0", "A"}, [2]string{"A", "t0"})).Build()
		}},
		{"impl-of-atomic", func() (*spec.Spec, error) {
			return spec.NewBuilder().Start("g0", two).Implement("x", "h", two).Build()
		}},
		{"not-two-terminal", func() (*spec.Spec, error) {
			g := graph.New()
			g.AddVertex("a")
			g.AddVertex("b") // two sources
			return spec.NewBuilder().Start("g0", g).Build()
		}},
		{"single-vertex-graph", func() (*spec.Spec, error) {
			g := graph.New()
			g.AddVertex("a")
			return spec.NewBuilder().Start("g0", g).Build()
		}},
		{"composite-terminal", func() (*spec.Spec, error) {
			return spec.NewBuilder().Composite("A").
				Start("g0", spec.G([]string{"A", "t0"}, [2]string{"A", "t0"})).
				Implement("A", "h", two).Build()
		}},
		{"conflicting-kind", func() (*spec.Spec, error) {
			return spec.NewBuilder().Loop("A").Fork("A").Start("g0", two).Build()
		}},
		{"double-start", func() (*spec.Spec, error) {
			return spec.NewBuilder().Start("g0", two).Start("g1", two).Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
		}
	}
}

func TestNameResolvable(t *testing.T) {
	if err := wfspecs.Fig6().NameResolvable(); err == nil {
		t.Fatal("Figure 6 repeats name A within h1; must not be name-resolvable")
	}
	if err := wfspecs.BioAID().NameResolvable(); err != nil {
		t.Fatalf("BioAID should be name-resolvable: %v", err)
	}
	// Terminal name reused as an interior vertex of another graph.
	s := spec.NewBuilder().
		Composite("A").
		Start("g0", spec.G([]string{"s0", "A", "t0"}, [2]string{"s0", "A"}, [2]string{"A", "t0"})).
		Implement("A", "h1", spec.G([]string{"s1", "s0", "t1"}, [2]string{"s1", "s0"}, [2]string{"s0", "t1"})).
		MustBuild()
	if err := s.NameResolvable(); err == nil {
		t.Fatal("reused dummy name must fail NameResolvable")
	}
}

func TestResolveName(t *testing.T) {
	s := wfspecs.RunningExample()
	h3 := s.Implementations("A")[0]
	v, err := s.ResolveName(h3, "C")
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph(h3).G.Name(v) != "C" {
		t.Fatal("resolved wrong vertex")
	}
	if _, err := s.ResolveName(h3, "zzz"); err == nil {
		t.Fatal("unknown name resolved")
	}
	f6 := wfspecs.Fig6()
	if _, err := f6.ResolveName(f6.Implementations("A")[0], "A"); err == nil {
		t.Fatal("ambiguous name resolved")
	}
}

func TestTerminalByName(t *testing.T) {
	s := wfspecs.RunningExample()
	ref, isSource, ok := s.TerminalByName("s3")
	if !ok || !isSource {
		t.Fatal("s3 is the source of h3")
	}
	if s.Graph(ref.Graph).Label != "h3" {
		t.Fatalf("s3 resolved to %s", s.Graph(ref.Graph).Label)
	}
	if _, isSource, ok = s.TerminalByName("t6"); !ok || isSource {
		t.Fatal("t6 is the sink of h6")
	}
	if _, _, ok = s.TerminalByName("B"); ok {
		t.Fatal("B is not a terminal dummy")
	}
}

func TestMinExpansion(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	// B's only expansion is h5: 2 atoms.
	if got := g.MinExpansion("B"); got != 2 {
		t.Fatalf("MinExpansion(B) = %d, want 2", got)
	}
	// A's cheapest expansion is h4: 2 atoms.
	if got := g.MinExpansion("A"); got != 2 {
		t.Fatalf("MinExpansion(A) = %d, want 2", got)
	}
	// C = s6 + t6 + min(A) = 4.
	if got := g.MinExpansion("C"); got != 4 {
		t.Fatalf("MinExpansion(C) = %d, want 4", got)
	}
	// F = s2 + t2 + min(A) = 4; L = s1 + t1 + F = 6.
	if got := g.MinExpansion("L"); got != 6 {
		t.Fatalf("MinExpansion(L) = %d, want 6", got)
	}
	// Min run: s0 + t0 + L = 8.
	if got := g.MinRunSize(); got != 8 {
		t.Fatalf("MinRunSize = %d, want 8", got)
	}
}

func TestPointerBits(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	// 19 total vertices need 5 bits.
	if got := g.PointerBits(); got != 5 {
		t.Fatalf("PointerBits = %d, want 5", got)
	}
	if g.MaxGraphSize() != 4 {
		t.Fatalf("MaxGraphSize = %d, want 4 (h3)", g.MaxGraphSize())
	}
}

func TestGrammarReaches(t *testing.T) {
	s := wfspecs.RunningExample()
	g := spec.MustCompile(s)
	h3 := s.Implementations("A")[0]
	b, _ := s.ResolveName(h3, "B")
	c, _ := s.ResolveName(h3, "C")
	if !g.Reaches(spec.VertexRef{Graph: h3, V: b}, spec.VertexRef{Graph: h3, V: c}) {
		t.Fatal("B reaches C in h3")
	}
	if g.Reaches(spec.VertexRef{Graph: h3, V: c}, spec.VertexRef{Graph: h3, V: b}) {
		t.Fatal("C does not reach B in h3")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-graph Reaches must panic")
		}
	}()
	g.Reaches(spec.VertexRef{Graph: h3, V: b}, spec.VertexRef{Graph: 0, V: 0})
}

func TestProductionsRendering(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	prods := g.Productions()
	if len(prods) != 5 {
		t.Fatalf("productions = %v", prods)
	}
	joined := strings.Join(prods, "\n")
	for _, want := range []string{"A := h3 | h4", "L := h1 | S(h,h)", "F := h2 | P(h,h)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("productions missing %q:\n%s", want, joined)
		}
	}
}

func TestSpecString(t *testing.T) {
	s := wfspecs.RunningExample()
	str := s.String()
	if !strings.Contains(str, "start=g0") || !strings.Contains(str, "A(plain)") {
		t.Fatalf("String() = %s", str)
	}
}

func TestInlineAllNonRecursive(t *testing.T) {
	s := wfspecs.BioAIDNonRecursive()
	g := spec.MustCompile(s)
	in, err := g.InlineAll()
	if err != nil {
		t.Fatal(err)
	}
	// Section 7.4 / Table 2: the global specification graph has 106
	// vertices (⇒ the triangular TCL skeleton is 5565 bits).
	if got := in.Graph.NumVertices(); got != 106 {
		t.Fatalf("global spec vertices = %d, want 106", got)
	}
	if len(in.Origin) != 106 {
		t.Fatalf("origin table size = %d", len(in.Origin))
	}
	if !in.Graph.IsTwoTerminal() {
		t.Fatal("global spec must be two-terminal")
	}
	if !in.Graph.SpansSourceToSink() {
		t.Fatal("global spec must span source to sink")
	}
}

func TestInlineAllRejectsRecursive(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	if _, err := g.InlineAll(); err == nil {
		t.Fatal("inlining a recursive grammar must fail")
	}
}

// TestInlineReachabilityMatchesStructure verifies that inlined-region
// wiring preserves the slot DAG: if slot m reaches slot m' in the host
// graph, then every vertex of m's region reaches every vertex entered
// through m”s region entry.
func TestInlineReachabilityMatchesStructure(t *testing.T) {
	s := spec.NewBuilder().
		Composite("A", "B").
		Start("g0", spec.G([]string{"s0", "A", "B", "t0"},
			[2]string{"s0", "A"}, [2]string{"A", "B"}, [2]string{"B", "t0"})).
		Implement("A", "hA", spec.G([]string{"sa", "x", "ta"},
			[2]string{"sa", "x"}, [2]string{"x", "ta"})).
		Implement("B", "hB", spec.G([]string{"sb", "y", "tb"},
			[2]string{"sb", "y"}, [2]string{"y", "tb"})).
		MustBuild()
	g := spec.MustCompile(s)
	in, err := g.InlineAll()
	if err != nil {
		t.Fatal(err)
	}
	if in.Graph.NumVertices() != 8 {
		t.Fatalf("global size = %d, want 8", in.Graph.NumVertices())
	}
	aRegion := in.Root.Slots[1][0]
	bRegion := in.Root.Slots[2][0]
	if !in.Graph.Reaches(aRegion.Exit(s), bRegion.Entry(s)) {
		t.Fatal("A region must reach B region")
	}
	if in.Graph.Reaches(bRegion.Entry(s), aRegion.Exit(s)) {
		t.Fatal("B region must not reach back")
	}
}

// TestInlineParallelAlternatives checks that two alternatives of one
// slot are wired side by side and mutually unreachable.
func TestInlineParallelAlternatives(t *testing.T) {
	s := spec.NewBuilder().
		Composite("A").
		Start("g0", spec.G([]string{"s0", "A", "t0"},
			[2]string{"s0", "A"}, [2]string{"A", "t0"})).
		Implement("A", "h1", spec.G([]string{"sa", "ta"}, [2]string{"sa", "ta"})).
		Implement("A", "h2", spec.G([]string{"sb", "tb"}, [2]string{"sb", "tb"})).
		MustBuild()
	g := spec.MustCompile(s)
	in, err := g.InlineAll()
	if err != nil {
		t.Fatal(err)
	}
	alts := in.Root.Slots[1]
	if len(alts) != 2 {
		t.Fatalf("alternatives = %d", len(alts))
	}
	if in.Graph.Reaches(alts[0].Entry(s), alts[1].Entry(s)) {
		t.Fatal("alternatives must be mutually unreachable")
	}
	// Both wired from s0 and to t0.
	src := in.Root.GlobalOf[0]
	for _, alt := range alts {
		if !in.Graph.Reaches(src, alt.Entry(s)) {
			t.Fatal("alternative not wired from host predecessor")
		}
	}
}

func TestSyntheticFamilyShape(t *testing.T) {
	for _, depth := range []int{4, 5, 10} {
		s := wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 10, Depth: depth, RecModules: 1, Seed: 42})
		// depth graphs below g0 plus g0 plus the recursive body h′d.
		if got := len(s.Graphs()); got != depth+2 {
			t.Fatalf("depth %d: |G(S)| = %d, want %d", depth, got, depth+2)
		}
		if s.Kind("L") != spec.Loop || s.Kind("F") != spec.Fork || s.Kind("R") != spec.Plain {
			t.Fatalf("depth %d: module kinds wrong", depth)
		}
		g := spec.MustCompile(s)
		if g.Class() != spec.ClassLinear {
			t.Fatalf("depth %d: class = %v", depth, g.Class())
		}
	}
}

func TestSyntheticDeterministicBySeed(t *testing.T) {
	p := wfspecs.SyntheticParams{SubSize: 12, Depth: 6, RecModules: 1, Seed: 9}
	a := wfspecs.Synthetic(p)
	b := wfspecs.Synthetic(p)
	if a.String() != b.String() {
		t.Fatal("synthetic spec not deterministic by seed")
	}
	ga, gb := a.Graphs(), b.Graphs()
	for i := range ga {
		if ga[i].G.String() != gb[i].G.String() {
			t.Fatalf("graph %d differs between identical seeds", i)
		}
	}
}

func TestBioAIDStatistics(t *testing.T) {
	s := wfspecs.BioAID()
	if got := len(s.Graphs()); got != 11 {
		t.Fatalf("BioAID sub-workflows = %d, want 11", got)
	}
	total := s.TotalVertices()
	avg := float64(total) / 11
	if avg < 10.0 || avg > 11.0 {
		t.Fatalf("BioAID average sub-workflow size = %.2f, want ≈10.5", avg)
	}
	loops, forks := 0, 0
	for _, n := range s.CompositeNames() {
		switch s.Kind(n) {
		case spec.Loop:
			loops++
		case spec.Fork:
			forks++
		}
	}
	if loops != 2 || forks != 4 {
		t.Fatalf("BioAID loops/forks = %d/%d, want 2/4", loops, forks)
	}
	// One linear recursion of length 2: A ↔ C.
	g := spec.MustCompile(s)
	if !g.Induces("A", "C") || !g.Induces("C", "A") {
		t.Fatal("A and C must form the recursion")
	}
	if g.Class() != spec.ClassLinear {
		t.Fatalf("BioAID class = %v", g.Class())
	}
}

func TestGIdxAllowsDuplicates(t *testing.T) {
	g := spec.GIdx([]string{"s", "A", "A", "t"}, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	if g.NumVertices() != 4 || g.Name(1) != "A" || g.Name(2) != "A" {
		t.Fatal("GIdx mis-built")
	}
}

func TestGPanicsOnDuplicatesAndUnknown(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dup", func() { spec.G([]string{"a", "a"}) })
	mustPanic("unknown", func() { spec.G([]string{"a"}, [2]string{"a", "b"}) })
}

func TestKindString(t *testing.T) {
	for k, want := range map[spec.Kind]string{
		spec.Atomic: "atomic", spec.Plain: "plain", spec.Loop: "loop", spec.Fork: "fork",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %s", k, k.String())
		}
	}
	if spec.Atomic.Composite() || !spec.Loop.Composite() {
		t.Fatal("Composite() wrong")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[spec.Class]string{
		spec.ClassNonRecursive:      "non-recursive",
		spec.ClassLinear:            "linear-recursive",
		spec.ClassNonlinearSeries:   "nonlinear-series-recursive",
		spec.ClassNonlinearParallel: "nonlinear-parallel-recursive",
	} {
		if c.String() != want {
			t.Errorf("Class.String() = %s, want %s", c.String(), want)
		}
	}
}
