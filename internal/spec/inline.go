package spec

import (
	"fmt"

	"wfreach/internal/graph"
)

// Inline is the "global specification graph" of Section 7.4: the start
// graph with every composite module recursively replaced by its
// sub-workflow(s). It exists only for non-recursive grammars and is
// the skeleton over which the static SKL baseline labels and queries.
//
// When a composite module has several alternative implementations they
// are inlined side by side (parallel alternatives of the same slot);
// vertices of different alternatives of one slot never meet in a
// reachability query whose LCA is that slot's instance, so global
// reachability remains faithful.
type Inline struct {
	Graph *graph.Graph
	Root  *InlineRegion
	// Origin maps every global vertex to the specification vertex it
	// copies.
	Origin []VertexRef
}

// InlineRegion is one inlined occurrence of a specification graph.
type InlineRegion struct {
	GraphID GraphID
	// GlobalOf maps each spec vertex of the region's graph to its
	// global vertex (graph.None for composite vertices, which were
	// replaced by child regions).
	GlobalOf []graph.VertexID
	// Slots maps each composite spec vertex to its child regions, one
	// per implementation alternative, in declaration order.
	Slots map[graph.VertexID][]*InlineRegion
}

// Entry returns the global vertex acting as the region's source.
func (r *InlineRegion) Entry(s *Spec) graph.VertexID {
	return r.GlobalOf[s.graphs[r.GraphID].G.Source()]
}

// Exit returns the global vertex acting as the region's sink.
func (r *InlineRegion) Exit(s *Spec) graph.VertexID {
	return r.GlobalOf[s.graphs[r.GraphID].G.Sink()]
}

// InlineAll builds the global specification graph. It fails for
// recursive grammars, whose inlining would not terminate — exactly
// SKL's limitation (2) in Section 7.4.
func (g *Grammar) InlineAll() (*Inline, error) {
	if g.IsRecursive() {
		return nil, fmt.Errorf("spec: cannot inline a %v grammar", g.class)
	}
	in := &Inline{Graph: graph.New()}
	in.Root = g.inlineRegion(in, StartGraph)
	return in, nil
}

func (g *Grammar) inlineRegion(in *Inline, id GraphID) *InlineRegion {
	s := g.spec
	gg := s.graphs[id].G
	r := &InlineRegion{
		GraphID:  id,
		GlobalOf: make([]graph.VertexID, gg.NumVertices()),
		Slots:    make(map[graph.VertexID][]*InlineRegion),
	}
	// Vertices: atomic vertices become global vertices; composite
	// vertices become child regions.
	for v := 0; v < gg.NumVertices(); v++ {
		vid := graph.VertexID(v)
		name := gg.Name(vid)
		if s.kinds[name].Composite() {
			r.GlobalOf[v] = graph.None
			for _, impl := range s.impls[name] {
				r.Slots[vid] = append(r.Slots[vid], g.inlineRegion(in, impl))
			}
		} else {
			r.GlobalOf[v] = in.Graph.AddVertex(name)
			in.Origin = append(in.Origin, VertexRef{Graph: id, V: vid})
		}
	}
	// Edges: a composite endpoint contributes the entry/exit dummies of
	// each of its alternatives (spec graphs have atomic terminals, so
	// entry and exit are single global vertices per alternative).
	endpoints := func(v graph.VertexID, exit bool) []graph.VertexID {
		if r.GlobalOf[v] != graph.None {
			return []graph.VertexID{r.GlobalOf[v]}
		}
		var out []graph.VertexID
		for _, child := range r.Slots[v] {
			if exit {
				out = append(out, child.Exit(s))
			} else {
				out = append(out, child.Entry(s))
			}
		}
		return out
	}
	for v := 0; v < gg.NumVertices(); v++ {
		vid := graph.VertexID(v)
		for _, w := range gg.Out(vid) {
			for _, from := range endpoints(vid, true) {
				for _, to := range endpoints(w, false) {
					if err := in.Graph.AddEdge(from, to); err != nil {
						panic(err) // structurally impossible on a valid spec
					}
				}
			}
		}
	}
	return r
}
