package spec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wfreach/internal/graph"
)

// Class classifies a workflow grammar by its recursion structure
// (Section 4.1 and Section 6).
type Class uint8

const (
	// ClassNonRecursive grammars have no recursive vertices at all
	// (loops and forks only) — the domain of the static SKL baseline.
	ClassNonRecursive Class = iota
	// ClassLinear grammars are linear recursive (Definition 10): every
	// production has at most one recursive vertex. This is the largest
	// class admitting compact dynamic labeling (Theorems 3 and 4).
	ClassLinear
	// ClassNonlinearSeries grammars have a production with several
	// recursive vertices, all pairwise reachable (series). Whether
	// these admit compact execution-based labeling is the paper's open
	// problem; Example 15 exhibits a compact special case.
	ClassNonlinearSeries
	// ClassNonlinearParallel grammars are parallel recursive
	// (Definition 13): some production has two mutually unreachable
	// recursive vertices. These require Ω(n)-bit labels even in the
	// execution-based model (Theorem 5).
	ClassNonlinearParallel
)

func (c Class) String() string {
	switch c {
	case ClassNonRecursive:
		return "non-recursive"
	case ClassLinear:
		return "linear-recursive"
	case ClassNonlinearSeries:
		return "nonlinear-series-recursive"
	case ClassNonlinearParallel:
		return "nonlinear-parallel-recursive"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Grammar is a compiled specification: the workflow grammar of
// Definition 6 plus the precomputed analyses used by the labelers.
type Grammar struct {
	spec *Spec

	induces    map[string]map[string]bool // reflexive-transitive ↦*
	recVerts   [][]graph.VertexID         // per graph: recursive vertices (ascending)
	designated []graph.VertexID           // per graph: compressed recursive vertex or None
	closures   []*graph.Closure           // per graph: reachability matrix
	class      Class
	minExpand  map[string]int // per composite name: min atomic vertices of a full expansion

	totalVertices int
	maxGraphSize  int
}

// Compile analyzes a specification into a Grammar.
func Compile(s *Spec) (*Grammar, error) {
	g := &Grammar{spec: s, minExpand: make(map[string]int)}

	// Direct "induces" relation: A ↦ B if some implementation of A has
	// a vertex named B (Section 4.1).
	direct := make(map[string]map[string]bool)
	for name := range s.kinds {
		direct[name] = map[string]bool{}
	}
	for owner, impls := range s.impls {
		for _, id := range impls {
			gg := s.graphs[id].G
			for v := 0; v < gg.NumVertices(); v++ {
				direct[owner][gg.Name(graph.VertexID(v))] = true
			}
		}
	}
	g.induces = transitiveReflexiveClosure(direct)

	// Recursive vertices per implementation graph: u is recursive in
	// production A := h iff Name(u) induces A.
	g.recVerts = make([][]graph.VertexID, len(s.graphs))
	g.designated = make([]graph.VertexID, len(s.graphs))
	for i := range g.designated {
		g.designated[i] = graph.None
	}
	recursion := false
	linear := true
	parallel := false
	series := false
	for _, ng := range s.graphs {
		if ng.Owner == "" {
			continue // the start graph heads no production
		}
		gg := ng.G
		var rec []graph.VertexID
		for v := 0; v < gg.NumVertices(); v++ {
			if g.induces[gg.Name(graph.VertexID(v))][ng.Owner] {
				rec = append(rec, graph.VertexID(v))
			}
		}
		g.recVerts[ng.ID] = rec
		if len(rec) == 0 {
			continue
		}
		recursion = true
		ownerKind := s.kinds[ng.Owner]
		if ownerKind == Loop || ownerKind == Fork {
			// The pumped production S(h,h) or P(h,h) has two recursive
			// vertices (Lemma 5.1), so the grammar is nonlinear; for a
			// fork the two copies are mutually unreachable (parallel).
			linear = false
			if ownerKind == Fork {
				parallel = true
			} else {
				series = true
			}
			// No designated vertex inside loop/fork bodies: the §6
			// adaptation treats these occurrences non-recursively.
			continue
		}
		if len(rec) > 1 {
			linear = false
			cl := gg.Closure()
			foundParallel := false
			for i := 0; i < len(rec) && !foundParallel; i++ {
				for j := i + 1; j < len(rec); j++ {
					if !cl.Reaches(rec[i], rec[j]) && !cl.Reaches(rec[j], rec[i]) {
						foundParallel = true
						break
					}
				}
			}
			if foundParallel {
				parallel = true
			} else {
				series = true
			}
		}
		// Designate the topologically first recursive vertex for R-node
		// compression (§6: "compressing at most one recursive vertex
		// using a special R node"). Loop- and fork-named vertices are
		// never designated: a recursion chain member must be a single
		// instance, and in linear grammars such vertices cannot be
		// recursive anyway (Lemma 5.1, part 2).
		var eligible []graph.VertexID
		for _, v := range rec {
			k := s.kinds[gg.Name(v)]
			if k != Loop && k != Fork {
				eligible = append(eligible, v)
			}
		}
		if len(eligible) > 0 {
			g.designated[ng.ID] = firstInTopoOrder(gg, eligible)
		}
	}
	switch {
	case !recursion:
		g.class = ClassNonRecursive
	case linear:
		g.class = ClassLinear
	case parallel:
		g.class = ClassNonlinearParallel
	default:
		g.class = ClassNonlinearSeries
		_ = series
	}

	// Reachability closures (skeleton ground truth, recursion flags).
	g.closures = make([]*graph.Closure, len(s.graphs))
	for _, ng := range s.graphs {
		g.closures[ng.ID] = ng.G.Closure()
		if n := ng.G.NumVertices(); n > g.maxGraphSize {
			g.maxGraphSize = n
		}
		g.totalVertices += ng.G.NumVertices()
	}

	g.computeMinExpand()
	return g, nil
}

// MustCompile is Compile panicking on error.
func MustCompile(s *Spec) *Grammar {
	g, err := Compile(s)
	if err != nil {
		panic(err)
	}
	return g
}

func transitiveReflexiveClosure(direct map[string]map[string]bool) map[string]map[string]bool {
	closure := make(map[string]map[string]bool, len(direct))
	for a := range direct {
		// BFS over the direct relation from a.
		seen := map[string]bool{a: true}
		queue := []string{a}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for nxt := range direct[cur] {
				if !seen[nxt] {
					seen[nxt] = true
					queue = append(queue, nxt)
				}
			}
		}
		closure[a] = seen
	}
	return closure
}

func firstInTopoOrder(g *graph.Graph, candidates []graph.VertexID) graph.VertexID {
	inSet := make(map[graph.VertexID]bool, len(candidates))
	for _, v := range candidates {
		inSet[v] = true
	}
	for _, v := range g.TopoOrder() {
		if inSet[v] {
			return v
		}
	}
	return graph.None
}

func (g *Grammar) computeMinExpand() {
	const inf = math.MaxInt32
	for name, k := range g.spec.kinds {
		if k.Composite() {
			g.minExpand[name] = inf
		}
	}
	cost := func(id GraphID) int {
		gg := g.spec.graphs[id].G
		sum := 0
		for v := 0; v < gg.NumVertices(); v++ {
			name := gg.Name(graph.VertexID(v))
			if g.spec.kinds[name].Composite() {
				c := g.minExpand[name]
				if c == inf {
					return inf
				}
				sum += c
			} else {
				sum++
			}
		}
		return sum
	}
	for changed := true; changed; {
		changed = false
		for name, impls := range g.spec.impls {
			best := g.minExpand[name]
			for _, id := range impls {
				if c := cost(id); c < best {
					best = c
				}
			}
			if best < g.minExpand[name] {
				g.minExpand[name] = best
				changed = true
			}
		}
	}
}

// Spec returns the underlying specification.
func (g *Grammar) Spec() *Spec { return g.spec }

// Class returns the recursion class.
func (g *Grammar) Class() Class { return g.class }

// IsRecursive reports whether any production has a recursive vertex.
func (g *Grammar) IsRecursive() bool { return g.class != ClassNonRecursive }

// IsLinearRecursive reports whether the grammar admits the compact
// dynamic scheme (Definition 10; non-recursive grammars qualify
// trivially).
func (g *Grammar) IsLinearRecursive() bool {
	return g.class == ClassNonRecursive || g.class == ClassLinear
}

// Induces reports A ↦* B (Section 4.1).
func (g *Grammar) Induces(a, b string) bool { return g.induces[a][b] }

// RecursiveVertices returns the recursive vertices of the production
// headed by the owner of graph id (ascending vertex order; empty for
// the start graph).
func (g *Grammar) RecursiveVertices(id GraphID) []graph.VertexID { return g.recVerts[id] }

// IsRecursiveVertex reports whether v is a recursive vertex of the
// production with body id.
func (g *Grammar) IsRecursiveVertex(id GraphID, v graph.VertexID) bool {
	for _, r := range g.recVerts[id] {
		if r == v {
			return true
		}
	}
	return false
}

// Designated returns the recursive vertex of graph id compressed by R
// nodes (graph.None when the graph has none, or when its owner is a
// loop or fork). For linear recursive grammars this is the unique
// recursive vertex.
func (g *Grammar) Designated(id GraphID) graph.VertexID { return g.designated[id] }

// Closure returns the reachability matrix of graph id.
func (g *Grammar) Closure(id GraphID) *graph.Closure { return g.closures[id] }

// Reaches answers u ;*_h v for two vertices of the same specification
// graph; it panics if the refs name different graphs.
func (g *Grammar) Reaches(a, b VertexRef) bool {
	if a.Graph != b.Graph {
		panic("spec: Reaches across graphs")
	}
	return g.closures[a.Graph].Reaches(a.V, b.V)
}

// MinExpansion returns the minimum number of atomic vertices a full
// expansion of the composite name can produce (loops and forks
// repeated once).
func (g *Grammar) MinExpansion(name string) int { return g.minExpand[name] }

// MinRunSize returns the minimum number of vertices in any run of this
// grammar.
func (g *Grammar) MinRunSize() int {
	gg := g.spec.graphs[StartGraph].G
	sum := 0
	for v := 0; v < gg.NumVertices(); v++ {
		name := gg.Name(graph.VertexID(v))
		if g.spec.kinds[name].Composite() {
			sum += g.minExpand[name]
		} else {
			sum++
		}
	}
	return sum
}

// TotalVertices returns Σ|V(h)| over G(S) — the paper's n_G.
func (g *Grammar) TotalVertices() int { return g.totalVertices }

// MaxGraphSize returns max |V(h)| over G(S).
func (g *Grammar) MaxGraphSize() int { return g.maxGraphSize }

// PointerBits returns the width of a skeleton-label pointer:
// ⌈log₂ n_G⌉ bits (Theorem 3's accounting).
func (g *Grammar) PointerBits() int {
	return bitsFor(g.totalVertices)
}

// bitsFor returns ⌈log₂ n⌉ for n ≥ 1 (and 1 for n ≤ 2).
func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

// Productions renders the grammar's finite production seeds in the
// style of Figure 4, for documentation and debugging. Pumped loop and
// fork productions are indicated with "…".
func (g *Grammar) Productions() []string {
	var out []string
	for _, name := range g.spec.CompositeNames() {
		var bodies []string
		for _, id := range g.spec.impls[name] {
			bodies = append(bodies, g.spec.graphs[id].Label)
		}
		rhs := strings.Join(bodies, " | ")
		switch g.spec.kinds[name] {
		case Loop:
			rhs += " | S(h,h) | …"
		case Fork:
			rhs += " | P(h,h) | …"
		}
		out = append(out, fmt.Sprintf("%s := %s", name, rhs))
	}
	sort.Strings(out)
	return out
}
