package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
)

func commitRecord(i int) Record {
	return RefRecord(run.Event{
		V:     graph.VertexID(i),
		Ref:   spec.VertexRef{Graph: 0, V: graph.VertexID(i % 7)},
		Preds: []graph.VertexID{graph.VertexID(i / 2)},
	})
}

// TestCommitterGroupCommit drives several logs through one committer
// from concurrent batch goroutines (appends serialized per log, as the
// service guarantees) and checks every acknowledged record is on disk.
func TestCommitterGroupCommit(t *testing.T) {
	const (
		logs    = 4
		batches = 25
		perB    = 8
	)
	dir := t.TempDir()
	c := NewCommitter()
	var wg sync.WaitGroup
	paths := make([]string, logs)
	for li := 0; li < logs; li++ {
		paths[li] = filepath.Join(dir, fmt.Sprintf("l%d.wal", li))
		l, err := Open(paths[li], 0, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		wg.Add(1)
		go func(l *Log) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				// One goroutine appends per log, but commits overlap
				// across logs — the committer coalesces them.
				for e := 0; e < perB; e++ {
					if err := l.Append(commitRecord(b*perB + e)); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				}
				if err := c.Commit(l, l.AppendSeq()); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(l)
	}
	wg.Wait()

	for li, path := range paths {
		n, _, err := Scan(path, func(i int, rec Record) error {
			if rec.Ref.V != graph.VertexID(i) {
				return fmt.Errorf("log %d record %d holds vertex %d", li, i, rec.Ref.V)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != batches*perB {
			t.Fatalf("log %d holds %d records, want %d", li, n, batches*perB)
		}
	}
}

// TestCommitterConcurrentSameLog models queued batches on one session:
// many goroutines commit different sequences of the same log; all must
// return only after their prefix is durable.
func TestCommitterConcurrentSameLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "x.wal"), 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c := NewCommitter()

	const rounds = 200
	var mu sync.Mutex // stands in for the session's ingest lock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				mu.Lock()
				if err := l.Append(commitRecord(i)); err != nil {
					mu.Unlock()
					t.Errorf("append: %v", err)
					return
				}
				seq := l.AppendSeq()
				mu.Unlock()
				if err := c.Commit(l, seq); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n, _, err := Scan(filepath.Join(dir, "x.wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8*rounds {
		t.Fatalf("%d records on disk, want %d", n, 8*rounds)
	}
}

// TestCommitterClosedLogPoisons checks a commit against a closed log
// fails, and keeps failing (the error is sticky), while other logs on
// the same committer stay healthy.
func TestCommitterClosedLogPoisons(t *testing.T) {
	dir := t.TempDir()
	bad, err := Open(filepath.Join(dir, "bad.wal"), 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Open(filepath.Join(dir, "good.wal"), 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	c := NewCommitter()

	if err := bad.Append(commitRecord(1)); err != nil {
		t.Fatal(err)
	}
	seq := bad.AppendSeq()
	if err := bad.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushed the appended record, so its sequence is already
	// durable and commits without touching the closed file …
	if err := c.Commit(bad, seq); err != nil {
		t.Fatalf("already-durable sequence failed on a closed log: %v", err)
	}
	// … but a sequence beyond the durable prefix needs a flush, which a
	// closed log cannot deliver: the commit fails and poisons the log,
	// stickily — even for sequences that were durable.
	if err := c.Commit(bad, seq+1); err == nil {
		t.Fatal("commit past the durable prefix of a closed log succeeded")
	}
	if err := c.Commit(bad, seq); err == nil {
		t.Fatal("poisoned log committed on retry")
	}

	if err := good.Append(commitRecord(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(good, good.AppendSeq()); err != nil {
		t.Fatalf("healthy log failed alongside a poisoned one: %v", err)
	}
	// An already-durable sequence returns without touching the disk.
	if err := c.Commit(good, good.AppendSeq()); err != nil {
		t.Fatal(err)
	}
}
