package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
)

func testRecords() []Record {
	return []Record{
		RefRecord(run.Event{V: 0, Ref: spec.VertexRef{Graph: 0, V: 0}}),
		RefRecord(run.Event{V: 1, Ref: spec.VertexRef{Graph: 0, V: 1}, Preds: []graph.VertexID{0}}),
		NamedRecord(core.NamedEvent{V: 2, Name: "align", Preds: []graph.VertexID{0, 1}}),
		RefRecord(run.Event{V: 300, Ref: spec.VertexRef{Graph: 7, V: 12}, Preds: []graph.VertexID{2, 299}}),
		NamedRecord(core.NamedEvent{V: 301, Name: ""}),
	}
}

func writeLog(t *testing.T, path string, recs []Record) {
	t.Helper()
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, path string) ([]Record, int64) {
	t.Helper()
	var got []Record
	n, size, err := Scan(path, func(i int, rec Record) error {
		if i != len(got) {
			t.Fatalf("record index %d, want %d", i, len(got))
		}
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(got) {
		t.Fatalf("Scan count %d, callbacks %d", n, len(got))
	}
	return got, size
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	recs := testRecords()
	writeLog(t, path, recs)
	got, size := scanAll(t, path)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if fi, _ := os.Stat(path); fi.Size() != size {
		t.Fatalf("valid size %d, file size %d", size, fi.Size())
	}
}

func TestScanMissingFile(t *testing.T) {
	n, size, err := Scan(filepath.Join(t.TempDir(), "nope.wal"), nil)
	if err != nil || n != 0 || size != 0 {
		t.Fatalf("missing file: n=%d size=%d err=%v", n, size, err)
	}
}

func TestScanCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	writeLog(t, path, testRecords())
	boom := errors.New("boom")
	n, _, err := Scan(path, func(i int, rec Record) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 2 {
		t.Fatalf("callback error: n=%d err=%v", n, err)
	}
}

// TestTruncatedTail cuts the file at every possible byte length and
// checks the scan always yields an intact prefix of the records.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := testRecords()
	writeLog(t, full, recs)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries (each frame is 8 bytes + payload), for deciding
	// how many records survive a cut.
	bounds := []int64{0}
	for off := int64(0); off < int64(len(raw)); {
		n := int64(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		off += 8 + n
		bounds = append(bounds, off)
	}
	if len(bounds) != len(recs)+1 {
		t.Fatalf("found %d records in file, want %d", len(bounds)-1, len(recs))
	}

	path := filepath.Join(dir, "cut.wal")
	for cut := 0; cut <= len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for i, b := range bounds {
			if int64(cut) >= b {
				wantN = i
			}
		}
		got, size := scanAll(t, path)
		if len(got) != wantN {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		if size != bounds[wantN] {
			t.Fatalf("cut at %d: valid size %d, want %d", cut, size, bounds[wantN])
		}
		if wantN > 0 && !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut at %d: wrong prefix", cut)
		}
	}
}

// TestCorruptMiddleRecord flips one payload byte of an interior record
// and checks everything from that record on is discarded.
func TestCorruptMiddleRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	recs := testRecords()
	writeLog(t, path, recs)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries of record 0 and 1: frame is 8 bytes + payload.
	b0 := 8 + int64(uint32(raw[0])|uint32(raw[1])<<8|uint32(raw[2])<<16|uint32(raw[3])<<24)
	raw[b0+8] ^= 0xff // first payload byte of record 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, size := scanAll(t, path)
	if len(got) != 1 || size != b0 {
		t.Fatalf("corrupt record 1: recovered %d records (size %d), want 1 (%d)", len(got), size, b0)
	}
	if !reflect.DeepEqual(got[0], recs[0]) {
		t.Fatalf("surviving record differs")
	}
}

// TestOpenTruncatesAndAppends reopens a log with a torn tail at its
// valid size and appends fresh records; the result must be the valid
// prefix plus the new records.
func TestOpenTruncatesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	recs := testRecords()
	writeLog(t, path, recs)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	valid, size := scanAll(t, path)
	l, err := Open(path, size, int64(len(valid)), false)
	if err != nil {
		t.Fatal(err)
	}
	extra := NamedRecord(core.NamedEvent{V: 999, Name: "after-crash", Preds: []graph.VertexID{1}})
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := scanAll(t, path)
	want := append(append([]Record{}, recs[:len(recs)-1]...), extra)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery log:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	s := Snapshot{
		Events: 3,
		Labels: map[graph.VertexID][]byte{
			0: {0x01},
			1: {0x02, 0x03},
			7: {},
		},
	}
	if err := WriteSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events != s.Events || len(got.Labels) != len(s.Labels) {
		t.Fatalf("snapshot header mismatch: %+v", got)
	}
	for v, enc := range s.Labels {
		if !bytes.Equal(got.Labels[v], enc) {
			t.Fatalf("vertex %d: %v != %v", v, got.Labels[v], enc)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	dir := t.TempDir()
	s := Snapshot{Events: 2, Labels: map[graph.VertexID][]byte{5: {1}, 2: {2}, 9: {3}}}
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := WriteSnapshot(a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(b, s); err != nil {
		t.Fatal(err)
	}
	ra, _ := os.ReadFile(a)
	rb, _ := os.ReadFile(b)
	if !bytes.Equal(ra, rb) {
		t.Fatal("same snapshot produced different bytes")
	}
}

func TestSnapshotMissing(t *testing.T) {
	_, err := ReadSnapshot(filepath.Join(t.TempDir(), "nope.snap"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v", err)
	}
}

func TestSnapshotCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	s := Snapshot{Events: 1, Labels: map[graph.VertexID][]byte{0: {0xaa, 0xbb}}}
	if err := WriteSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad magic":  append([]byte("NOTASNAP"), raw[8:]...),
		"flipped":    flip(raw, len(raw)/2),
		"truncated":  raw[:len(raw)-5],
		"too short":  raw[:6],
		"trailing":   append(append([]byte{}, raw...), 0x00),
		"empty file": {},
	}
	for name, data := range cases {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(path); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func flip(raw []byte, i int) []byte {
	out := append([]byte{}, raw...)
	out[i] ^= 0x01
	return out
}

// TestAppendRejectsOversizedRecord: a record Scan would refuse as
// corrupt must never be accepted (and acknowledged) by Append.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	big := NamedRecord(core.NamedEvent{V: 1, Name: strings.Repeat("x", MaxPayload)})
	if err := l.Append(big); err == nil {
		t.Fatal("oversized record accepted")
	}
	// The rejection must leave the log clean and usable.
	ok := NamedRecord(core.NamedEvent{V: 1, Name: "ok"})
	if err := l.Append(ok); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := scanAll(t, path)
	if len(got) != 1 || !reflect.DeepEqual(got[0], ok) {
		t.Fatalf("log after rejected append: %+v", got)
	}
}

// TestScanFromBoundaries appends records one at a time, recording the
// AppendBytes watermark after each, then scans from every watermark
// and checks the scan yields exactly the records appended after it —
// the contract the arena restore's tail replay depends on.
func TestScanFromBoundaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	recs := testRecords()
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if l.AppendBytes() != 0 {
		t.Fatalf("fresh log AppendBytes = %d, want 0", l.AppendBytes())
	}
	marks := []int64{0}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		marks = append(marks, l.AppendBytes())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if marks[len(marks)-1] != fi.Size() {
		t.Fatalf("final AppendBytes %d, file size %d", marks[len(marks)-1], fi.Size())
	}
	for k, off := range marks {
		var got []Record
		n, size, err := ScanFrom(path, off, func(i int, rec Record) error {
			if i != len(got) {
				t.Fatalf("offset %d: record index %d, want %d", off, i, len(got))
			}
			got = append(got, rec)
			return nil
		})
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if n != len(recs)-k || !reflect.DeepEqual(got, append([]Record(nil), recs[k:]...)) {
			t.Fatalf("offset %d: scanned %d records, want suffix of %d", off, n, len(recs)-k)
		}
		if size != fi.Size() {
			t.Fatalf("offset %d: validSize %d, want %d (absolute)", off, size, fi.Size())
		}
	}
}

// TestScanFromPastEOF checks the "snapshot ahead of this log" probe:
// an offset beyond the file scans empty and echoes the offset back as
// validSize, rather than erroring or misparsing mid-frame bytes.
func TestScanFromPastEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	writeLog(t, path, testRecords())
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	off := fi.Size() + 1000
	n, size, err := ScanFrom(path, off, func(i int, rec Record) error {
		t.Fatalf("unexpected record %d at offset past EOF", i)
		return nil
	})
	if err != nil || n != 0 || size != off {
		t.Fatalf("past EOF: n=%d size=%d err=%v, want 0/%d/nil", n, size, err, off)
	}
	// A missing file behaves the same way for any offset.
	n, size, err = ScanFrom(filepath.Join(t.TempDir(), "nope.wal"), 42, nil)
	if err != nil || n != 0 || size != 42 {
		t.Fatalf("missing file: n=%d size=%d err=%v, want 0/42/nil", n, size, err)
	}
}

// TestAppendBytesResume reopens a log at its valid size and checks the
// watermark is seeded from it, so offsets recorded before a restart
// keep meaning the same byte positions after it.
func TestAppendBytesResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	recs := testRecords()
	writeLog(t, path, recs[:3])
	_, valid, err := Scan(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(path, valid, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if l.AppendBytes() != valid {
		t.Fatalf("reopened AppendBytes = %d, want %d", l.AppendBytes(), valid)
	}
	if err := l.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	if l.AppendBytes() <= valid {
		t.Fatalf("AppendBytes did not advance past %d", valid)
	}
	after := l.AppendBytes()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, _, err := ScanFrom(path, valid, func(i int, rec Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[3:4]) {
		t.Fatalf("tail after resume: got %+v, want %+v", got, recs[3:4])
	}
	if fi, _ := os.Stat(path); fi.Size() != after {
		t.Fatalf("file size %d, AppendBytes %d", fi.Size(), after)
	}
}
