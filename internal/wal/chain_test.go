package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/integrity"
	"wfreach/internal/run"
)

// chainFixture appends n records to a fresh log, flushing in uneven
// batches so the batched chain pass runs over group-commit-shaped
// pending runs, and returns the path and the live log.
func chainFixture(t *testing.T, n int) (string, *Log) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ev := run.Event{V: graph.VertexID(i), Preds: []graph.VertexID{graph.VertexID(i / 2)}}
		if err := l.Append(RefRecord(ev)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 3 {
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	return path, l
}

// TestChainHeadMatchesFileScan pins the batched in-memory chain to the
// file-level definition: hashing the on-disk frames from genesis must
// land on exactly the head the live log reports.
func TestChainHeadMatchesFileScan(t *testing.T) {
	path, l := chainFixture(t, 53)
	seq, head, ok := l.ChainHead()
	if !ok || seq != 53 {
		t.Fatalf("ChainHead = (%d, _, %v), want (53, _, true)", seq, ok)
	}
	fileHead, n, validSize, err := ChainScan(path, 0, integrity.Head{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 53 || fileHead != head {
		t.Fatalf("file scan (%d records, %s) disagrees with live head (%d, %s)", n, fileHead, seq, head)
	}
	toHead, n2, err := ChainTo(path, 0, validSize, integrity.Head{})
	if err != nil || n2 != 53 || toHead != head {
		t.Fatalf("ChainTo = (%s, %d, %v)", toHead, n2, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChainHeadPendingFold: ChainHead on demand must fold appended but
// not yet flushed frames, since callers read it at arbitrary moments
// (snapshot capture happens before the next flush).
func TestChainHeadPendingFold(t *testing.T) {
	path, l := chainFixture(t, 10)
	// Append without flushing; the frames sit in the pending run.
	if err := l.Append(RefRecord(run.Event{V: 10})); err != nil {
		t.Fatal(err)
	}
	seq, head, ok := l.ChainHead()
	if !ok || seq != 11 {
		t.Fatalf("ChainHead = (%d, _, %v) with a pending frame", seq, ok)
	}
	if err := l.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}
	fileHead, _, _, err := ChainScan(path, 0, integrity.Head{})
	if err != nil || fileHead != head {
		t.Fatalf("pending fold head %s, file says %s (%v)", head, fileHead, err)
	}
}

// TestChainSeedAcrossReopen is the restart story: a reopened log has no
// chain until seeded, and seeding with the recomputed head continues
// the chain exactly as if the process never died.
func TestChainSeedAcrossReopen(t *testing.T) {
	path, l := chainFixture(t, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	head, _, validSize, err := ChainScan(path, 0, integrity.Head{})
	if err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path, validSize, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l2.ChainHead(); ok {
		t.Fatal("a reopened log must not have a chain before SeedChain")
	}
	l2.SeedChain(head)
	if err := l2.Append(RefRecord(run.Event{V: 20})); err != nil {
		t.Fatal(err)
	}
	liveSeq, liveHead, ok := l2.ChainHead()
	if !ok || liveSeq != 21 {
		t.Fatalf("seeded ChainHead = (%d, _, %v)", liveSeq, ok)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// One continuous hash over both generations agrees with the seeded
	// continuation: scanning the tail from the seed lands on the same
	// head as scanning the whole file from genesis.
	fullHead, n, _, err := ChainScan(path, 0, integrity.Head{})
	if err != nil || n != 21 {
		t.Fatalf("ChainScan after reopen: n=%d err=%v", n, err)
	}
	if fullHead != liveHead {
		t.Fatalf("live seeded head %s, full-file scan %s", liveHead, fullHead)
	}
	contHead, n2, _, err := ChainScan(path, validSize, head)
	if err != nil || n2 != 1 || contHead != fullHead {
		t.Fatalf("seeded continuation %s over %d records, full scan %s (%v)", contHead, n2, fullHead, err)
	}
}

// TestDisableChain: a disabled chain reports !ok and stops accumulating.
func TestDisableChain(t *testing.T) {
	_, l := chainFixture(t, 5)
	l.DisableChain()
	if err := l.Append(RefRecord(run.Event{V: 5})); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l.ChainHead(); ok {
		t.Fatal("ChainHead ok after DisableChain")
	}
	l.Close()
}

// TestChainToRejectsMisalignedBoundary: every byte of [0, to) must be
// intact frames landing exactly on to — a watermark that points inside
// a frame is corruption, not a rounding error.
func TestChainToRejectsMisalignedBoundary(t *testing.T) {
	path, l := chainFixture(t, 8)
	l.Close()
	if _, _, err := ChainTo(path, 0, 3, integrity.Head{}); err == nil {
		t.Fatal("ChainTo accepted a boundary inside a frame")
	}
}

// TestChainCatchesCRCFixedRewrite is the reason the chain exists: a
// flipped payload byte whose frame CRC was recomputed passes every
// structural check, and only the chain tells the histories apart.
func TestChainCatchesCRCFixedRewrite(t *testing.T) {
	path, l := chainFixture(t, 30)
	_, origHead, _ := l.ChainHead()
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in record 12's payload and fix its CRC.
	off := int64(0)
	for i := 0; i < 12; i++ {
		off += int64(FrameHeaderSize) + int64(binary.LittleEndian.Uint32(raw[off:]))
	}
	plen := binary.LittleEndian.Uint32(raw[off:])
	payload := raw[off+FrameHeaderSize : off+FrameHeaderSize+int64(plen)]
	payload[len(payload)-1] ^= 0x01
	binary.LittleEndian.PutUint32(raw[off+4:], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Structure is pristine…
	n, _, err := Scan(path, func(int, Record) error { return nil })
	if err != nil || n != 30 {
		t.Fatalf("Scan after CRC-fixed rewrite: n=%d err=%v (the tamper must be structurally invisible)", n, err)
	}
	// …but the chain is not.
	head, _, _, err := ChainScan(path, 0, integrity.Head{})
	if err != nil {
		t.Fatal(err)
	}
	if head == origHead {
		t.Fatal("chain head unchanged by a rewritten record")
	}
}
