// Package wal persists labeling sessions: an append-only write-ahead
// log of execution events plus point-in-time snapshots of the encoded
// label map. Together they make a session durable — after a crash the
// event log is replayed through a fresh labeler (labeling is
// deterministic, so replay reissues the exact same labels) and the
// snapshot supplies the already-encoded label bytes for the prefix it
// covers, so recovery never re-encodes a label it already wrote out.
//
// # On-disk format
//
// The byte-level layouts of both files are specified in the
// wire-format appendix of ARCHITECTURE.md; the summary:
//
// A log is a sequence of records, each framed as
//
//	uint32 LE  payload length N
//	uint32 LE  CRC-32 (IEEE) of the payload
//	N bytes    payload
//
// with the payload encoding one execution event (a kind byte followed
// by uvarint fields). A torn write — a crash mid-append — leaves a
// short or CRC-mismatched record at the tail; Scan detects it, reports
// the valid prefix, and Open truncates the garbage before appending.
// Corruption is only ever accepted at the tail: a bad record hides
// everything after it, by design, because the event stream is
// meaningful only as a prefix.
//
// A snapshot is written to a temporary file and atomically renamed
// into place, so a crash during snapshotting leaves the previous
// snapshot intact. Its body (event watermark plus the vertex →
// encoded-label pairs) is protected by a trailing CRC-32; a corrupt
// snapshot is reported as ErrCorrupt and recovery falls back to full
// log replay.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/integrity"
	"wfreach/internal/run"
	"wfreach/internal/spec"
)

// Record kinds (the first payload byte).
const (
	kindRef   = 0x01 // run.Event: specification-reference identified
	kindNamed = 0x02 // core.NamedEvent: module-name identified
)

// MaxPayload caps a record payload at 1 MiB. Real events are tens of
// bytes; the cap stops a corrupt length prefix from allocating
// gigabytes before the CRC check can reject it. The cap is part of the
// frame format: internal/api reuses it for the binary ingest frame,
// which is byte-identical to the WAL frame.
const MaxPayload = 1 << 20

// FrameHeaderSize is the fixed frame prefix: a uint32 LE payload
// length followed by a uint32 LE CRC-32 (IEEE) of the payload.
const FrameHeaderSize = 8

// ErrCorrupt reports a file whose checksum or structure is invalid.
// For logs it is only returned wrapped in tail positions that Scan
// already skipped; for snapshots it means the whole file is unusable.
var ErrCorrupt = errors.New("wal: corrupt data")

// Record is one logged execution event, in either of the two event
// forms the service ingests.
type Record struct {
	// Named selects which event field is meaningful.
	Named bool
	// Ref is the specification-reference form (valid when !Named).
	Ref run.Event
	// NamedEv is the module-name form (valid when Named).
	NamedEv core.NamedEvent
}

// RefRecord wraps a reference-identified event as a Record.
func RefRecord(ev run.Event) Record { return Record{Ref: ev} }

// NamedRecord wraps a name-identified event as a Record.
func NamedRecord(ev core.NamedEvent) Record { return Record{Named: true, NamedEv: ev} }

// appendPayload encodes the record payload (no frame) onto buf.
func appendPayload(buf []byte, rec Record) []byte {
	if rec.Named {
		buf = append(buf, kindNamed)
		buf = binary.AppendUvarint(buf, uint64(rec.NamedEv.V))
		buf = binary.AppendUvarint(buf, uint64(len(rec.NamedEv.Name)))
		buf = append(buf, rec.NamedEv.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(rec.NamedEv.Preds)))
		for _, p := range rec.NamedEv.Preds {
			buf = binary.AppendUvarint(buf, uint64(p))
		}
		return buf
	}
	buf = append(buf, kindRef)
	buf = binary.AppendUvarint(buf, uint64(rec.Ref.V))
	buf = binary.AppendUvarint(buf, uint64(rec.Ref.Ref.Graph))
	buf = binary.AppendUvarint(buf, uint64(rec.Ref.Ref.V))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Ref.Preds)))
	for _, p := range rec.Ref.Preds {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	return buf
}

// payloadReader decodes uvarint fields with bounds checking.
type payloadReader struct {
	b   []byte
	pos int
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at payload offset %d", ErrCorrupt, r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *payloadReader) vertex() (graph.VertexID, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(int32(^uint32(0)>>1)) {
		return 0, fmt.Errorf("%w: vertex id %d out of range", ErrCorrupt, v)
	}
	return graph.VertexID(v), nil
}

func (r *payloadReader) preds() ([]graph.VertexID, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) { // each pred takes ≥ 1 byte
		return nil, fmt.Errorf("%w: predecessor count %d exceeds payload", ErrCorrupt, n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]graph.VertexID, n)
	for i := range out {
		if out[i], err = r.vertex(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AppendFrame appends one record in the log's frame format — the
// 8-byte header (FrameHeaderSize) followed by the payload — onto buf
// and returns the extended slice. The bytes are exactly what
// Log.Append writes, which is what lets a server accept pre-framed
// records off the wire and tee them to the log without re-encoding.
// A record whose payload would exceed MaxPayload is rejected with buf
// unchanged.
func AppendFrame(buf []byte, rec Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, make([]byte, FrameHeaderSize)...)
	buf = appendPayload(buf, rec)
	payload := buf[start+FrameHeaderSize:]
	if len(payload) > MaxPayload {
		return buf[:start], fmt.Errorf("wal: record payload %d bytes exceeds the %d-byte format cap", len(payload), MaxPayload)
	}
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// DecodeRecord parses one record payload (the bytes after a frame
// header, already CRC-verified by the caller).
func DecodeRecord(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	r := &payloadReader{b: b, pos: 1}
	switch b[0] {
	case kindRef:
		var rec Record
		var err error
		if rec.Ref.V, err = r.vertex(); err != nil {
			return Record{}, err
		}
		g, err := r.uvarint()
		if err != nil {
			return Record{}, err
		}
		rec.Ref.Ref.Graph = spec.GraphID(g)
		if rec.Ref.Ref.V, err = r.vertex(); err != nil {
			return Record{}, err
		}
		if rec.Ref.Preds, err = r.preds(); err != nil {
			return Record{}, err
		}
		return rec, nil
	case kindNamed:
		rec := Record{Named: true}
		var err error
		if rec.NamedEv.V, err = r.vertex(); err != nil {
			return Record{}, err
		}
		n, err := r.uvarint()
		if err != nil {
			return Record{}, err
		}
		if n > uint64(len(b)-r.pos) {
			return Record{}, fmt.Errorf("%w: name length %d exceeds payload", ErrCorrupt, n)
		}
		rec.NamedEv.Name = string(b[r.pos : r.pos+int(n)])
		r.pos += int(n)
		if rec.NamedEv.Preds, err = r.preds(); err != nil {
			return Record{}, err
		}
		return rec, nil
	default:
		return Record{}, fmt.Errorf("%w: unknown record kind 0x%02x", ErrCorrupt, b[0])
	}
}

// Scan reads the log at path from the beginning, calling fn for each
// intact record in order. It stops without error at the first torn or
// corrupt record — a crash can only damage the tail, and everything
// after a bad record is unrecoverable by construction — and returns
// the number of records delivered plus the byte offset of the end of
// the valid prefix (the offset Open should truncate to). A missing
// file scans as empty. An error from fn aborts the scan and is
// returned as-is.
func Scan(path string, fn func(i int, rec Record) error) (n int, validSize int64, err error) {
	return ScanFrom(path, 0, fn)
}

// ScanFrom is Scan starting at a byte offset — the tail scan an arena
// restore uses: the snapshot header records the WAL byte position its
// label prefix covers (Meta.WALBytes), so recovery skips straight past
// the covered prefix instead of re-reading gigabytes of already-
// snapshotted records. offset must be a frame boundary previously
// reported by Scan or AppendBytes; an offset past the end of the file
// scans as empty with validSize == offset, which callers treat as "the
// snapshot is ahead of this log" and fall back to a full scan. The
// record indexes passed to fn start at 0 at the offset; validSize is
// absolute (offset + valid tail bytes).
func ScanFrom(path string, offset int64, fn func(i int, rec Record) error) (n int, validSize int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, offset, nil
	}
	if err != nil {
		return 0, offset, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	validSize = offset
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			return 0, offset, fmt.Errorf("wal: %w", err)
		}
	}

	br := bufio.NewReader(f)
	var frame [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return n, validSize, nil // EOF or torn frame: end of valid prefix
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > MaxPayload {
			return n, validSize, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return n, validSize, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return n, validSize, nil // bit rot or torn overwrite
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return n, validSize, nil // framed but malformed: treat as tail damage
		}
		if fn != nil {
			if err := fn(n, rec); err != nil {
				return n, validSize, err
			}
		}
		n++
		validSize += int64(8 + length)
	}
}

// Log is an open write-ahead log. Appends must still come from one
// goroutine at a time (the service serializes them under its
// per-session ingest lock), but Flush, Sync and Close may be called
// from other goroutines — that is what lets a group-commit leader
// (Committer) flush a session's log on the session's behalf, and
// flush many sessions' logs in parallel.
//
// Every record in the log has an absolute sequence number: the first
// record in the file is 1, and Open seeds the counters with the
// record count a prior Scan reported, so sequences survive restarts.
// AppendSeq and DurableSeq read the counters atomically; DurableAdvanced
// is the subscription hook a Tailer uses to switch from history replay
// to live tailing.
type Log struct {
	// mu guards the file handle, the buffered writer and the closed
	// flag. Held across the fsync too: a flush that raced an in-flight
	// append could otherwise sync a torn frame into "durable" territory.
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	path   string
	fsync  bool
	closed bool
	buf    []byte // scratch for payload encoding, used under mu

	// appendSeq is the sequence of the last appended record;
	// durableSeq is the highest appendSeq known to be flushed (by
	// Flush/Sync/Close directly, or by a Committer round).
	appendSeq  atomic.Int64
	durableSeq atomic.Int64
	closedFlag atomic.Bool

	// appendBytes is the file size after the last append — the frame
	// boundary an arena snapshot records (Meta.WALBytes) so restore can
	// ScanFrom the tail only. Seeded with validSize at Open.
	appendBytes atomic.Int64

	// notifyMu guards notifyCh, the broadcast channel closed whenever
	// durableSeq advances or the log closes.
	notifyMu sync.Mutex
	notifyCh chan struct{}

	// Hash-chain state, guarded by mu. Appends only copy their frame
	// bytes into chainPend (a memcpy, no hashing on the hot path); the
	// chain is folded forward in one batched pass per flush round —
	// flushLocked calls advanceChainLocked before writing, so by the
	// time a Committer round acknowledges a batch the head covers it.
	// chainOn is false until the chain is seeded: a log opened over
	// pre-existing records cannot know its head until the caller has
	// hashed the prefix (see SeedChain and ChainScan).
	chainOn   bool
	chainSeq  int64 // sequence chainHead covers
	chainHead integrity.Head
	chainPend []byte // raw frames appended since the last fold
	chainLens []int  // frame lengths within chainPend
	chainer   *integrity.Chainer

	// metrics, when attached, counts appends and observes flush/fsync
	// latency. Guarded by mu; set once at open (SetMetrics).
	metrics *Metrics
}

// AppendSeq returns the sequence of the last record appended so far
// (counting records already in the file at Open) — the sequence to
// pass to Committer.Commit to make the log durable up to this point.
func (l *Log) AppendSeq() int64 { return l.appendSeq.Load() }

// AppendBytes returns the log's byte length after the last append
// (buffered or flushed) — always a frame boundary, and therefore a
// valid ScanFrom offset for a snapshot taken at this point.
func (l *Log) AppendBytes() int64 { return l.appendBytes.Load() }

// DurableSeq returns the sequence of the last record known to be
// flushed (and fsynced, as the log is configured) — the committed
// prefix a crash cannot take back and the only records a Tailer will
// serve. It reads one atomic; callers no longer infer the committed
// sequence by replaying the file.
func (l *Log) DurableSeq() int64 { return l.durableSeq.Load() }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// advanceDurable raises durableSeq monotonically and wakes every
// DurableAdvanced waiter.
func (l *Log) advanceDurable(seq int64) {
	for {
		cur := l.durableSeq.Load()
		if seq <= cur {
			return
		}
		if l.durableSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	l.broadcast()
}

func (l *Log) broadcast() {
	l.notifyMu.Lock()
	if l.notifyCh != nil {
		close(l.notifyCh)
		l.notifyCh = nil
	}
	l.notifyMu.Unlock()
}

// DurableAdvanced returns a channel closed the next time the durable
// sequence advances (or the log closes). To wait without lost
// wakeups: take the channel, re-check DurableSeq (and Closed), then
// receive.
func (l *Log) DurableAdvanced() <-chan struct{} {
	l.notifyMu.Lock()
	defer l.notifyMu.Unlock()
	if l.notifyCh == nil {
		l.notifyCh = make(chan struct{})
	}
	return l.notifyCh
}

// Closed reports whether the log has been closed.
func (l *Log) Closed() bool { return l.closedFlag.Load() }

// errClosed reports appends or flushes on a closed log.
var errClosed = errors.New("wal: log closed")

// Open opens (creating if absent) the log at path for appending and
// truncates it to validSize, discarding any corrupt tail that a prior
// Scan reported. records is the number of intact records in the valid
// prefix (what the same Scan returned); it seeds the absolute
// sequence counters, so the first record appended here gets sequence
// records+1 and tailers see one continuous numbering across restarts.
// fsync selects whether Flush also forces the data to stable storage.
func Open(path string, validSize int64, records int64, fsync bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate corrupt tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, w: bufio.NewWriter(f), path: path, fsync: fsync}
	l.appendSeq.Store(records)
	l.durableSeq.Store(records)
	l.appendBytes.Store(validSize)
	// An empty log starts its hash chain at genesis; a log reopened
	// over existing records stays chainless until SeedChain installs
	// the head of the prefix (restore computes it with ChainScan).
	l.chainOn = records == 0
	l.chainSeq = records
	return l, nil
}

// SeedChain installs head as the hash-chain head covering every record
// already appended (AppendSeq at the time of the call) and enables
// chain tracking from there on. Restore calls it after hashing the
// log's valid prefix; it must not race appends.
func (l *Log) SeedChain(head integrity.Head) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.chainOn = true
	l.chainSeq = l.appendSeq.Load()
	l.chainHead = head
	l.chainPend, l.chainLens = l.chainPend[:0], l.chainLens[:0]
}

// DisableChain turns hash-chain tracking off (ChainHead then reports
// unavailable). It exists for benchmarking the chain's cost and for
// callers that knowingly run without integrity metadata.
func (l *Log) DisableChain() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.chainOn = false
	l.chainPend, l.chainLens = l.chainPend[:0], l.chainLens[:0]
}

// ChainHead folds any pending appends into the hash chain and returns
// the head plus the sequence it covers (every record appended so far).
// ok is false when the log has no chain — tracking disabled, or a
// reopened log that was never seeded.
func (l *Log) ChainHead() (seq int64, head integrity.Head, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.chainOn {
		return 0, integrity.Head{}, false
	}
	l.advanceChainLocked()
	return l.chainSeq, l.chainHead, true
}

// advanceChainLocked is the batched hash pass: it folds every frame
// appended since the previous pass into the chain head. Called under
// mu from flushLocked (once per group-commit round) and ChainHead.
func (l *Log) advanceChainLocked() {
	if !l.chainOn || len(l.chainLens) == 0 {
		return
	}
	if l.chainer == nil {
		l.chainer = integrity.NewChainer()
	}
	off := 0
	for _, n := range l.chainLens {
		l.chainHead = l.chainer.Extend(l.chainHead, l.chainPend[off:off+n])
		off += n
		l.chainSeq++
	}
	if l.metrics != nil {
		l.metrics.ChainedFrames.Add(int64(len(l.chainLens)))
	}
	l.chainPend = l.chainPend[:0]
	l.chainLens = l.chainLens[:0]
}

// Append frames and buffers one record. The record is not durable —
// and must not be acknowledged — until the next Flush. A record whose
// payload exceeds the format's 1 MiB cap is rejected up front: Scan
// would treat it as corruption, silently truncating recovery at that
// point, so it must never be acknowledged as logged.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	// Sampled append timing: one in appendSampleEvery appends pays the
	// two clock reads, keeping the distribution representative without
	// taxing saturated ingest.
	var t0 time.Time
	sample := l.metrics != nil && (l.appendSeq.Load()+1)%appendSampleEvery == 0
	if sample {
		t0 = time.Now()
	}
	var err error
	if l.buf, err = AppendFrame(l.buf[:0], rec); err != nil {
		return err
	}
	if _, err := l.w.Write(l.buf); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.chainOn {
		l.chainPend = append(l.chainPend, l.buf...)
		l.chainLens = append(l.chainLens, len(l.buf))
	}
	l.appendSeq.Add(1)
	l.appendBytes.Add(int64(len(l.buf)))
	if l.metrics != nil {
		l.metrics.Appends.Inc()
		l.metrics.AppendedBytes.Add(int64(len(l.buf)))
		if sample {
			l.metrics.AppendLatency.Add(time.Since(t0))
		}
	}
	return nil
}

// AppendRaw buffers one pre-framed record — header plus payload,
// exactly as AppendFrame produces. The frame's structure (length
// prefix consistent with the slice, within MaxPayload) is validated;
// its CRC is not recomputed — the caller must have verified it when
// the frame was received, because a corrupt frame written here would
// silently truncate recovery at this record. Like Append, the record
// is not durable until the next Flush.
func (l *Log) AppendRaw(frame []byte) error {
	if len(frame) < FrameHeaderSize {
		return fmt.Errorf("wal: raw frame of %d bytes is shorter than the %d-byte header", len(frame), FrameHeaderSize)
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	if length == 0 || length > MaxPayload || int(length) != len(frame)-FrameHeaderSize {
		return fmt.Errorf("wal: raw frame header declares %d payload bytes, frame carries %d", length, len(frame)-FrameHeaderSize)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	var t0 time.Time
	sample := l.metrics != nil && (l.appendSeq.Load()+1)%appendSampleEvery == 0
	if sample {
		t0 = time.Now()
	}
	if _, err := l.w.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.chainOn {
		l.chainPend = append(l.chainPend, frame...)
		l.chainLens = append(l.chainLens, len(frame))
	}
	l.appendSeq.Add(1)
	l.appendBytes.Add(int64(len(frame)))
	if l.metrics != nil {
		l.metrics.Appends.Inc()
		l.metrics.AppendedBytes.Add(int64(len(frame)))
		if sample {
			l.metrics.AppendLatency.Add(time.Since(t0))
		}
	}
	return nil
}

// Flush writes buffered records to the file, fsyncing as configured at
// Open. An acknowledged batch must be flushed first — either directly,
// or through a Committer that amortizes the flush over concurrent
// batches.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(l.fsync)
}

// Sync flushes and forces the log to stable storage regardless of the
// fsync setting.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(true)
}

func (l *Log) flushLocked(sync bool) error {
	if l.closed {
		return errClosed
	}
	start := time.Time{}
	if l.metrics != nil {
		start = time.Now()
	}
	// One batched hash pass per flush round: the records of every
	// batch acknowledged by this round enter the chain here, not one
	// by one on the ingest path.
	l.advanceChainLocked()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var fsyncDur time.Duration
	if sync {
		t0 := start
		if l.metrics != nil {
			t0 = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if l.metrics != nil {
			fsyncDur = time.Since(t0)
		}
	}
	if l.metrics != nil {
		l.metrics.observeFlush(time.Since(start), fsyncDur, sync)
	}
	// Appends hold mu, so everything counted by appendSeq is in the
	// file now; publish it to DurableSeq readers and wake tailers.
	l.advanceDurable(l.appendSeq.Load())
	return nil
}

// Close flushes and closes the log. Later appends, flushes and commits
// fail; waiting tailers are woken and see the log closed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	flushErr := l.flushLocked(l.fsync)
	l.closed = true
	l.closedFlag.Store(true)
	l.broadcast()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return flushErr
}
