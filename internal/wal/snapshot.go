package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"

	"wfreach/internal/graph"
)

// snapMagic identifies a snapshot file and its format version.
var snapMagic = [8]byte{'W', 'F', 'S', 'N', 'A', 'P', '0', '1'}

// Snapshot is a point-in-time copy of a session's encoded label map.
// Labels are write-once, so a snapshot taken at event watermark E
// holds exactly the labels issued by the first E logged events and
// stays valid forever: recovery loads it, replays only the labeler
// state for the covered prefix, and re-encodes nothing.
type Snapshot struct {
	// Events is the number of log records the snapshot covers: the
	// first Events records of the WAL produced exactly the labels in
	// Labels (each event labels one vertex).
	Events int64
	// Labels maps each covered run vertex to its encoded label bytes,
	// exactly as Store.Snapshot returned them.
	Labels map[graph.VertexID][]byte
}

// WriteSnapshot atomically replaces the snapshot at path: the encoding
// is written to a temporary file in the same directory, synced, and
// renamed into place, so a crash mid-write leaves the previous
// snapshot (or its absence) intact.
func WriteSnapshot(path string, s Snapshot) error {
	body := make([]byte, 0, 16+len(s.Labels)*24)
	body = binary.AppendUvarint(body, uint64(s.Events))
	body = binary.AppendUvarint(body, uint64(len(s.Labels)))
	// Deterministic order so identical states produce identical files.
	vs := make([]graph.VertexID, 0, len(s.Labels))
	for v := range s.Labels {
		vs = append(vs, v)
	}
	slices.Sort(vs)
	for _, v := range vs {
		enc := s.Labels[v]
		body = binary.AppendUvarint(body, uint64(v))
		body = binary.AppendUvarint(body, uint64(len(enc)))
		body = append(body, enc...)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(body))

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, err = tmp.Write(snapMagic[:])
	if err == nil {
		_, err = tmp.Write(body)
	}
	if err == nil {
		_, err = tmp.Write(sum[:])
	}
	if err == nil {
		err = tmp.Sync()
	}
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads the snapshot at path. A missing file is reported
// via os.ErrNotExist; a damaged one via ErrCorrupt (callers fall back
// to full log replay in both cases). The returned label slices are
// freshly allocated and owned by the caller.
func ReadSnapshot(path string) (Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("wal: snapshot: %w", err)
	}
	if len(raw) < len(snapMagic)+4 || string(raw[:len(snapMagic)]) != string(snapMagic[:]) {
		return Snapshot{}, fmt.Errorf("%w: snapshot %s: bad magic or size", ErrCorrupt, filepath.Base(path))
	}
	body := raw[len(snapMagic) : len(raw)-4]
	sum := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return Snapshot{}, fmt.Errorf("%w: snapshot %s: checksum mismatch", ErrCorrupt, filepath.Base(path))
	}

	r := &payloadReader{b: body}
	events, err := r.uvarint()
	if err != nil {
		return Snapshot{}, err
	}
	count, err := r.uvarint()
	if err != nil {
		return Snapshot{}, err
	}
	// Each entry takes ≥ 2 bytes (one vertex varint byte, one length
	// byte), so a plausible count is at most half the remaining body —
	// anything larger is a corrupt header trying to pre-size a huge map.
	if count > uint64(len(body))/2 {
		return Snapshot{}, fmt.Errorf("%w: snapshot label count %d exceeds file", ErrCorrupt, count)
	}
	s := Snapshot{Events: int64(events), Labels: make(map[graph.VertexID][]byte, count)}
	for i := uint64(0); i < count; i++ {
		v, err := r.vertex()
		if err != nil {
			return Snapshot{}, err
		}
		n, err := r.uvarint()
		if err != nil {
			return Snapshot{}, err
		}
		if n > uint64(len(body)-r.pos) {
			return Snapshot{}, fmt.Errorf("%w: snapshot label length %d exceeds file", ErrCorrupt, n)
		}
		if _, dup := s.Labels[v]; dup {
			return Snapshot{}, fmt.Errorf("%w: snapshot vertex %d duplicated", ErrCorrupt, v)
		}
		enc := make([]byte, n)
		copy(enc, body[r.pos:r.pos+int(n)])
		r.pos += int(n)
		s.Labels[v] = enc
	}
	if r.pos != len(body) {
		return Snapshot{}, fmt.Errorf("%w: snapshot has %d trailing bytes", ErrCorrupt, len(body)-r.pos)
	}
	return s, nil
}
