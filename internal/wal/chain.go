package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"wfreach/internal/integrity"
)

// ChainScan hashes the log file at path into the frame hash chain,
// starting from seed at byte offset (a frame boundary), and stops at
// the first torn or corrupt record with Scan's exact stopping rule. It
// returns the head over the valid prefix, the number of records folded
// in, and the absolute end of the valid prefix. A missing file scans
// as empty. Unlike Scan it never decodes payloads — it is the restore
// path's cheap "what is the chain head of what's on disk" pass.
func ChainScan(path string, offset int64, seed integrity.Head) (head integrity.Head, n int64, validSize int64, err error) {
	return chainWalk(path, offset, -1, seed)
}

// ChainTo is ChainScan with a hard stop: every byte of [offset, to)
// must be intact frames and a frame boundary must land exactly on to,
// or ErrCorrupt is returned. It is how a verifier answers "what is the
// chain head at this snapshot's watermark" — damage anywhere below the
// watermark is real corruption, not a torn tail, and must surface.
func ChainTo(path string, offset, to int64, seed integrity.Head) (head integrity.Head, n int64, err error) {
	head, n, valid, err := chainWalk(path, offset, to, seed)
	if err != nil {
		return integrity.Head{}, 0, err
	}
	if valid != to {
		return integrity.Head{}, 0, fmt.Errorf("%w: valid frames end at byte %d, not the required boundary %d", ErrCorrupt, valid, to)
	}
	return head, n, nil
}

func chainWalk(path string, offset, stop int64, seed integrity.Head) (head integrity.Head, n int64, validSize int64, err error) {
	head = seed
	validSize = offset
	if stop >= 0 && offset > stop {
		return integrity.Head{}, 0, offset, fmt.Errorf("%w: scan offset %d past stop boundary %d", ErrCorrupt, offset, stop)
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		if stop >= 0 && stop != offset {
			return integrity.Head{}, 0, offset, fmt.Errorf("wal: %w", err)
		}
		return head, 0, offset, nil
	}
	if err != nil {
		return integrity.Head{}, 0, offset, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			return integrity.Head{}, 0, offset, fmt.Errorf("wal: %w", err)
		}
	}

	br := bufio.NewReaderSize(f, 256<<10)
	chainer := integrity.NewChainer()
	var frame []byte
	for {
		if stop >= 0 && validSize == stop {
			return head, n, validSize, nil
		}
		var hdr [FrameHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return head, n, validSize, nil // EOF or torn frame: end of valid prefix
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxPayload {
			return head, n, validSize, nil
		}
		total := FrameHeaderSize + int(length)
		if stop >= 0 && validSize+int64(total) > stop {
			// The frame straddles the required boundary: the boundary is
			// not a frame boundary of this file. Report where the valid
			// prefix actually stood; ChainTo turns that into ErrCorrupt.
			return head, n, validSize, nil
		}
		if cap(frame) < total {
			frame = make([]byte, total)
		}
		frame = frame[:total]
		copy(frame, hdr[:])
		if _, err := io.ReadFull(br, frame[FrameHeaderSize:]); err != nil {
			return head, n, validSize, nil // torn payload
		}
		if crc32.ChecksumIEEE(frame[FrameHeaderSize:]) != sum {
			return head, n, validSize, nil // bit rot or torn overwrite
		}
		head = chainer.Extend(head, frame)
		n++
		validSize += int64(total)
	}
}
