package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Tailer streams the committed records of a live Log as raw frames,
// in order, with absolute sequence numbers. It reads the log's own
// file through an independent read-only handle: history comes off the
// disk (the frames are served byte-for-byte as the writer laid them
// down), and once the reader catches up it blocks on the log's
// DurableAdvanced hook and resumes as new records commit — the
// primary side of WAL shipping.
//
// A Tailer only ever serves records up to DurableSeq. Records that
// are appended but not yet flushed are invisible, so a replica can
// never apply an event the primary might still lose in a crash.
//
// A Tailer is not safe for concurrent use; open one per consumer.
type Tailer struct {
	log   *Log
	f     *os.File
	br    *bufio.Reader
	pos   int64 // sequence of the last record read from the file
	from  int64 // first sequence to deliver
	frame []byte
}

// NewTailer opens a tailer over the log's file, delivering records
// from sequence from (1 is the first record ever written to the log;
// sequences ≤ 0 are rejected). from may point past the current end —
// delivery then starts once the log commits that far.
func NewTailer(l *Log, from int64) (*Tailer, error) {
	if from <= 0 {
		return nil, fmt.Errorf("wal: tail sequence %d is not positive", from)
	}
	if l.path == "" {
		return nil, fmt.Errorf("wal: log has no file path to tail")
	}
	f, err := os.Open(l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Tailer{log: l, f: f, br: bufio.NewReaderSize(f, 64<<10), from: from}, nil
}

// Close releases the tailer's file handle.
func (t *Tailer) Close() error { return t.f.Close() }

// Pending reports whether a committed record is available without
// waiting — the handler's cue to flush its response buffer before
// blocking.
func (t *Tailer) Pending() bool { return t.pos < t.log.DurableSeq() }

// Next returns the next committed record at or past the requested
// start sequence: its sequence number and its raw frame (header plus
// payload, exactly the log's bytes; the slice is reused by the
// following Next call). With wait set Next blocks — on ctx or on the
// log committing more records — until one is available; the log
// closing ends the stream with io.EOF once everything committed has
// been delivered. Without wait, catching up to the committed end
// returns io.EOF immediately.
func (t *Tailer) Next(ctx context.Context, wait bool) (seq int64, frame []byte, err error) {
	for {
		for t.pos >= t.log.DurableSeq() {
			if !wait || t.log.Closed() {
				return 0, nil, io.EOF
			}
			// Subscribe before re-checking, so an advance between the
			// check and the receive cannot be missed.
			ch := t.log.DurableAdvanced()
			if t.pos < t.log.DurableSeq() {
				break
			}
			if t.log.Closed() {
				return 0, nil, io.EOF
			}
			select {
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			case <-ch:
			}
		}
		if err := t.readFrame(); err != nil {
			return 0, nil, err
		}
		t.pos++
		if t.pos >= t.from {
			return t.pos, t.frame, nil
		}
		// Still skipping toward the requested start sequence.
	}
}

// readFrame reads one frame (known to be fully on disk: pos <
// DurableSeq) into t.frame, verifying structure and checksum. Any
// damage below the committed watermark is real corruption, not a torn
// tail, and is reported as such.
func (t *Tailer) readFrame() error {
	var header [FrameHeaderSize]byte
	if _, err := io.ReadFull(t.br, header[:]); err != nil {
		return fmt.Errorf("%w: tail read at seq %d: %v", ErrCorrupt, t.pos+1, err)
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	sum := binary.LittleEndian.Uint32(header[4:8])
	if length == 0 || length > MaxPayload {
		return fmt.Errorf("%w: tail frame length %d at seq %d", ErrCorrupt, length, t.pos+1)
	}
	total := FrameHeaderSize + int(length)
	if cap(t.frame) < total {
		t.frame = make([]byte, total)
	}
	t.frame = t.frame[:total]
	copy(t.frame, header[:])
	payload := t.frame[FrameHeaderSize:]
	if _, err := io.ReadFull(t.br, payload); err != nil {
		return fmt.Errorf("%w: tail payload at seq %d: %v", ErrCorrupt, t.pos+1, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("%w: tail CRC mismatch at seq %d", ErrCorrupt, t.pos+1)
	}
	return nil
}
