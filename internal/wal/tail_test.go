package wal

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"wfreach/internal/core"
	"wfreach/internal/graph"
)

func tailRecord(v int) Record {
	return NamedRecord(core.NamedEvent{V: graph.VertexID(v), Name: "m", Preds: []graph.VertexID{graph.VertexID(v / 2)}})
}

// TestDurableSeq checks the committed sequence is exposed atomically
// and only advances on flush — appends alone stay invisible.
func TestDurableSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.DurableSeq(); got != 0 {
		t.Fatalf("fresh log DurableSeq = %d", got)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(tailRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.DurableSeq(); got != 0 {
		t.Fatalf("unflushed appends visible: DurableSeq = %d", got)
	}
	if got := l.AppendSeq(); got != 3 {
		t.Fatalf("AppendSeq = %d, want 3", got)
	}
	ch := l.DurableAdvanced()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableSeq(); got != 3 {
		t.Fatalf("after Flush DurableSeq = %d, want 3", got)
	}
	select {
	case <-ch:
	default:
		t.Fatal("DurableAdvanced channel not closed by Flush")
	}
}

// TestOpenSeedsSequence checks Open resumes the absolute numbering at
// the record count a prior Scan reported, so sequences are
// restart-stable.
func TestOpenSeedsSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := l.Append(tailRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n, size, err := Scan(path, nil)
	if err != nil || n != 4 {
		t.Fatalf("scan: %d records, err %v", n, err)
	}
	l2, err := Open(path, size, int64(n), false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.AppendSeq() != 4 || l2.DurableSeq() != 4 {
		t.Fatalf("reopened log seqs = %d/%d, want 4/4", l2.AppendSeq(), l2.DurableSeq())
	}
	if err := l2.Append(tailRecord(5)); err != nil {
		t.Fatal(err)
	}
	if got := l2.AppendSeq(); got != 5 {
		t.Fatalf("append after reopen got seq %d, want 5", got)
	}
}

// TestTailerHistoryThenLive checks a tailer serves the committed
// history byte-for-byte, then blocks and picks up records as they
// commit, and ends with io.EOF when the log closes.
func TestTailerHistoryThenLive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	appendOne := func(i int) {
		rec := tailRecord(i)
		frame, err := AppendFrame(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, frame)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 10; i++ {
		appendOne(i)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	tl, err := NewTailer(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	ctx := context.Background()

	// History: all ten, in order, identical bytes.
	for i := 0; i < 10; i++ {
		seq, frame, err := tl.Next(ctx, true)
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i+1) || !bytes.Equal(frame, want[i]) {
			t.Fatalf("record %d: seq %d, frames equal %v", i, seq, bytes.Equal(frame, want[i]))
		}
	}
	if tl.Pending() {
		t.Fatal("caught-up tailer claims pending records")
	}

	// Live: commit two more while the tailer waits.
	go func() {
		time.Sleep(10 * time.Millisecond)
		appendOne(11)
		appendOne(12)
		_ = l.Flush()
		time.Sleep(10 * time.Millisecond)
		_ = l.Close()
	}()
	for i := 10; i < 12; i++ {
		seq, frame, err := tl.Next(ctx, true)
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i+1) || !bytes.Equal(frame, want[i]) {
			t.Fatalf("live record %d: seq %d", i, seq)
		}
	}
	if _, _, err := tl.Next(ctx, true); !errors.Is(err, io.EOF) {
		t.Fatalf("tail past a closed log = %v, want EOF", err)
	}

	// The delivered frames really are the log's decoded records.
	var recs []Record
	if _, _, err := Scan(path, func(_ int, r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	dec := make([]Record, 0, len(want))
	for _, frame := range want {
		r, err := DecodeRecord(frame[FrameHeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		dec = append(dec, r)
	}
	if !reflect.DeepEqual(recs, dec) {
		t.Fatal("shipped frames diverge from the log's records")
	}
}

// TestTailerFromAndNoWait checks the start-sequence skip (including a
// start past the committed end) and the non-waiting catch-up mode.
func TestTailerFromAndNoWait(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 6; i++ {
		if err := l.Append(tailRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tl, err := NewTailer(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	var got []int64
	for {
		seq, _, err := tl.Next(ctx, false)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, seq)
	}
	if !reflect.DeepEqual(got, []int64{4, 5, 6}) {
		t.Fatalf("from=4 delivered %v", got)
	}

	// A start past the end: nothing without wait, delivery once the
	// log commits that far.
	future, err := NewTailer(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer future.Close()
	if _, _, err := future.Next(ctx, false); !errors.Is(err, io.EOF) {
		t.Fatalf("future start without wait = %v, want EOF", err)
	}
	go func() {
		for i := 7; i <= 8; i++ {
			_ = l.Append(tailRecord(i))
		}
		_ = l.Flush()
	}()
	seq, _, err := future.Next(ctx, true)
	if err != nil || seq != 8 {
		t.Fatalf("future start delivered seq %d, err %v, want 8", seq, err)
	}

	if _, err := NewTailer(l, 0); err == nil {
		t.Fatal("non-positive start sequence accepted")
	}
}

// TestTailerContext checks a waiting tailer honors cancellation.
func TestTailerContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tl, err := NewTailer(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := tl.Next(ctx, true); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled wait = %v", err)
	}
}

// TestTailerCommitterWakeup checks the Committer's group-commit path
// wakes tailers too (it advances durability through the same hook).
func TestTailerCommitterWakeup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tl, err := NewTailer(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	c := NewCommitter()
	go func() {
		time.Sleep(5 * time.Millisecond)
		_ = l.Append(tailRecord(1))
		_ = c.Commit(l, l.AppendSeq())
	}()
	seq, _, err := tl.Next(context.Background(), true)
	if err != nil || seq != 1 {
		t.Fatalf("committer-driven delivery: seq %d, err %v", seq, err)
	}
}

// TestTailerCorruptionBelowWatermark: damage below the committed
// watermark is a hard error, not a silent truncation.
func TestTailerCorruptionBelowWatermark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, err := Open(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 2; i++ {
		if err := l.Append(tailRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk behind the log's back.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[FrameHeaderSize] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if _, _, err := tl.Next(context.Background(), false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt committed record = %v, want ErrCorrupt", err)
	}
}
