package wal

import (
	"time"

	"wfreach/internal/obs"
)

// Metrics is the WAL plane's instrument set. One Metrics is built per
// node (constructor path — see NewMetrics) and shared by every
// session's Log plus the node's Committer; the hot paths only touch
// the pre-registered atomics.
type Metrics struct {
	// AppendLatency is sampled — one in appendSampleEvery appends is
	// timed — so the distribution stays representative without paying
	// two clock reads per record on saturated ingest.
	AppendLatency *obs.Histogram
	// CommitLatency is a batch's wait in the group committer: append
	// acknowledged to durable on disk. Observed by the service around
	// Committer.Commit.
	CommitLatency *obs.Histogram
	// FlushLatency covers a whole flush (buffer write + fsync);
	// FsyncLatency the fsync alone.
	FlushLatency *obs.Histogram
	FsyncLatency *obs.Histogram
	// Appends / AppendedBytes count framed records entering the log.
	Appends       *obs.Counter
	AppendedBytes *obs.Counter
	// CommitRounds / CommitLogs size the group commit: logs-per-round
	// is CommitLogs / CommitRounds.
	CommitRounds *obs.Counter
	CommitLogs   *obs.Counter
	// ChainedFrames counts frames folded into the hash chain.
	ChainedFrames *obs.Counter
}

// appendSampleEvery is the append-latency sampling period.
const appendSampleEvery = 16

// NewMetrics registers the WAL instrument set in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		AppendLatency: r.Histogram("wf_wal_append_seconds", "WAL append latency (sampled)."),
		CommitLatency: r.Histogram("wf_wal_commit_seconds", "Group-commit wait per acknowledged batch."),
		FlushLatency:  r.Histogram("wf_wal_flush_seconds", "WAL flush latency (buffered write plus fsync)."),
		FsyncLatency:  r.Histogram("wf_wal_fsync_seconds", "WAL fsync latency."),
		Appends:       r.Counter("wf_wal_appends_total", "WAL records appended."),
		AppendedBytes: r.Counter("wf_wal_append_bytes_total", "WAL bytes appended (framed)."),
		CommitRounds:  r.Counter("wf_wal_commit_rounds_total", "Group-commit flush rounds led."),
		CommitLogs:    r.Counter("wf_wal_commit_logs_total", "Logs flushed across group-commit rounds."),
		ChainedFrames: r.Counter("wf_wal_chain_frames_total", "WAL frames folded into the hash chain."),
	}
}

// SetMetrics attaches the instrument set to the log. Call it right
// after Open, before the log sees traffic; a nil m detaches.
func (l *Log) SetMetrics(m *Metrics) {
	l.mu.Lock()
	l.metrics = m
	l.mu.Unlock()
}

// SetMetrics attaches the instrument set to the committer; rounds it
// leads afterwards record their size. A nil m detaches.
func (c *Committer) SetMetrics(m *Metrics) {
	c.mu.Lock()
	c.metrics = m
	c.mu.Unlock()
}

// observeFlush records one flush round's latencies.
func (m *Metrics) observeFlush(total, fsync time.Duration, synced bool) {
	if m == nil {
		return
	}
	m.FlushLatency.Add(total)
	if synced {
		m.FsyncLatency.Add(fsync)
	}
}
