package wal

import (
	"sync"
)

// Committer coalesces log commits across sessions — the group-commit
// half of the durable registry. Every acknowledged batch must end with
// its events flushed (and, as the log is configured, fsynced); doing
// that once per batch serializes ingest behind the disk. A Committer
// instead lets batches enqueue "make my log durable up to sequence S"
// requests: one caller becomes the leader, flushes every log with
// pending requests in a single round — in parallel across logs — and
// wakes all waiters the round covered, so one flush/fsync per log is
// amortized over every batch (on any session) that queued while the
// previous round was on the disk.
//
// A Committer has no background goroutine: leadership is taken by
// whichever committing goroutine arrives while no leader is active,
// and lapses when no requests are pending.
type Committer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	leading bool
	pending map[*Log]int64 // highest requested append sequence per log
	errs    map[*Log]error // first commit failure per log; permanent
	metrics *Metrics       // optional round-size instruments (SetMetrics)
}

// NewCommitter returns an empty commit coordinator.
func NewCommitter() *Committer {
	c := &Committer{
		pending: make(map[*Log]int64),
		errs:    make(map[*Log]error),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Commit blocks until everything appended to l up to sequence seq
// (see Log.AppendSeq) is flushed — and fsynced, if l was opened with
// fsync — or until committing l has failed. A log whose commit failed
// once is poisoned: every later Commit returns the same error, because
// the log can no longer promise that acknowledged records are on disk.
func (c *Committer) Commit(l *Log, seq int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if err := c.errs[l]; err != nil {
			return err
		}
		if l.durableSeq.Load() >= seq {
			return nil
		}
		if c.pending[l] < seq {
			c.pending[l] = seq
		}
		if c.leading {
			// A leader is flushing; it will broadcast after each round.
			c.cond.Wait()
			continue
		}
		c.lead()
		// Leadership lapsed with no pending work; loop to re-check our
		// own log's outcome.
	}
}

// lead drains the pending set, flushing each log once per round.
// Called with c.mu held; returns with c.mu held. The mutex is
// released during the disk I/O, so new requests pile into c.pending
// and are served by the next round.
func (c *Committer) lead() {
	c.leading = true
	for len(c.pending) > 0 {
		batch := c.pending
		c.pending = make(map[*Log]int64)
		if c.metrics != nil {
			c.metrics.CommitRounds.Inc()
			c.metrics.CommitLogs.Add(int64(len(batch)))
		}
		c.mu.Unlock()

		type outcome struct {
			log   *Log
			cover int64
			err   error
		}
		results := make([]outcome, 0, len(batch))
		var rmu sync.Mutex
		var wg sync.WaitGroup
		for log := range batch {
			wg.Add(1)
			go func(log *Log) {
				defer wg.Done()
				// Everything appended before the flush starts is covered
				// by it; capturing the sequence first makes the claim
				// conservative.
				cover := log.AppendSeq()
				err := log.Flush()
				rmu.Lock()
				results = append(results, outcome{log, cover, err})
				rmu.Unlock()
			}(log)
		}
		wg.Wait()

		c.mu.Lock()
		for _, r := range results {
			if r.err != nil {
				if c.errs[r.log] == nil {
					c.errs[r.log] = r.err
				}
			} else {
				// advanceDurable is monotonic and wakes tailers; Flush
				// already advanced to cover, but an older concurrent round
				// must never regress it.
				r.log.advanceDurable(r.cover)
			}
		}
		c.cond.Broadcast()
	}
	c.leading = false
}
