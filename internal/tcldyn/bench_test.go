package tcldyn_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/tcldyn"
)

func benchDAG(n int) *graph.Graph {
	return graph.RandomDAG(rand.New(rand.NewSource(1)), n, 0.01)
}

// BenchmarkInsert shows the Θ(n) scheme's quadratic total cost: each
// insertion ORs predecessor bitsets of Θ(n/64) words.
func BenchmarkInsert(b *testing.B) {
	g := benchDAG(2000)
	order := g.TopoOrder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := tcldyn.New()
		for _, v := range order {
			if _, err := l.Insert(v, g.In(v)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(order)), "ns/insert")
}

func BenchmarkTCLDynPi(b *testing.B) {
	g := benchDAG(2000)
	l := tcldyn.New()
	for _, v := range g.TopoOrder() {
		if _, err := l.Insert(v, g.In(v)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	type pair struct{ a, b *tcldyn.Label }
	pairs := make([]pair, 1024)
	for i := range pairs {
		la, _ := l.Label(graph.VertexID(rng.Intn(2000)))
		lb, _ := l.Label(graph.VertexID(rng.Intn(2000)))
		pairs[i] = pair{la, lb}
	}
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sink = sink != tcldyn.Pi(p.a, p.b)
	}
	_ = sink
}
