package tcldyn_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/spec"
	"wfreach/internal/tcldyn"
	"wfreach/internal/wfspecs"
)

// insertAll feeds a DAG to the labeler in topological order.
func insertAll(t *testing.T, g *graph.Graph) *tcldyn.Labeler {
	t.Helper()
	l := tcldyn.New()
	for _, v := range g.TopoOrder() {
		if _, err := l.Insert(v, g.In(v)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestMatchesGroundTruthOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomDAG(rng, 15+rng.Intn(25), 0.25)
		l := insertAll(t, g)
		for v := 0; v < g.NumVertices(); v++ {
			for w := 0; w < g.NumVertices(); w++ {
				got, err := l.Reach(graph.VertexID(v), graph.VertexID(w))
				if err != nil {
					t.Fatal(err)
				}
				if want := g.Reaches(graph.VertexID(v), graph.VertexID(w)); got != want {
					t.Fatalf("trial %d: π(%d,%d)=%v, want %v", trial, v, w, got, want)
				}
			}
		}
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomDAG(rng, 20, 0.3)
		l := tcldyn.New()
		for _, v := range g.TopoOrder() {
			if _, err := l.Insert(v, g.In(v)); err != nil {
				return false
			}
		}
		v := graph.VertexID(int(a) % 20)
		w := graph.VertexID(int(b) % 20)
		got, err := l.Reach(v, w)
		return err == nil && got == g.Reaches(v, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelLengthsAreTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomDAG(rng, 40, 0.2)
	l := insertAll(t, g)
	// Section 3.2: the i-th vertex's label has i-1 bits; the maximum is
	// n-1 and the total n(n-1)/2.
	if l.MaxBits() != 39 {
		t.Fatalf("MaxBits = %d, want 39", l.MaxBits())
	}
	if l.TotalBits() != 40*39/2 {
		t.Fatalf("TotalBits = %d", l.TotalBits())
	}
	for i, v := range g.TopoOrder() {
		lab, ok := l.Label(v)
		if !ok || lab.BitLen() != i {
			t.Fatalf("vertex %d: BitLen = %d, want %d", v, lab.BitLen(), i)
		}
	}
}

func TestOnWorkflowRuns(t *testing.T) {
	// The scheme also labels executions of workflow runs (it ignores
	// the grammar entirely) — the paper's point that it costs n-1 bits
	// where DRL costs O(log n).
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 200, Seed: 4})
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	l := tcldyn.New()
	for _, ev := range evs {
		if _, err := l.Insert(ev.V, ev.Preds); err != nil {
			t.Fatal(err)
		}
	}
	if l.MaxBits() != r.Size()-1 {
		t.Fatalf("MaxBits = %d, want %d", l.MaxBits(), r.Size()-1)
	}
	live := r.Graph.LiveVertices()
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 2000; k++ {
		v := live[rng.Intn(len(live))]
		w := live[rng.Intn(len(live))]
		got, err := l.Reach(v, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Graph.Reaches(v, w); got != want {
			t.Fatalf("π(%d,%d)=%v, want %v", v, w, got, want)
		}
	}
}

func TestErrors(t *testing.T) {
	l := tcldyn.New()
	if _, err := l.Insert(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Insert(0, nil); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := l.Insert(1, []graph.VertexID{42}); err == nil {
		t.Fatal("unknown predecessor accepted")
	}
	if _, err := l.Reach(0, 42); err == nil {
		t.Fatal("Reach with unknown vertex accepted")
	}
	if _, err := l.Reach(42, 0); err == nil {
		t.Fatal("Reach with unknown vertex accepted")
	}
	if _, ok := l.Label(42); ok {
		t.Fatal("Label of unknown vertex")
	}
	if l.Count() != 1 {
		t.Fatalf("Count = %d", l.Count())
	}
}

func TestEmptyLabelerStats(t *testing.T) {
	l := tcldyn.New()
	if l.MaxBits() != 0 || l.TotalBits() != 0 || l.Count() != 0 {
		t.Fatal("empty labeler stats wrong")
	}
}
