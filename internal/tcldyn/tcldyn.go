// Package tcldyn implements the execution-based dynamic labeling
// scheme of Section 3.2 for arbitrary DAGs: the i-th inserted vertex
// receives a label of i-1 bits, bit j recording whether the j-th
// vertex reaches it. This is the matching upper bound for the Θ(n)
// lower bounds of Theorems 1, 4 and 5 — and the scheme the paper notes
// would label a 32K-vertex run with labels of exactly 32K-1 bits
// (Section 7.3). It doubles as the ground-truth witness for the
// Figure 1 compactness table.
package tcldyn

import (
	"fmt"

	"wfreach/internal/graph"
)

// Label is a TCL-dynamic reachability label: the vertex's insertion
// index is implicit in the label's bit length (|φ(v_i)| = i-1).
type Label struct {
	index int      // 0-based insertion index
	bits  []uint64 // ancestor set over earlier insertion indexes
}

// BitLen returns the label length in bits: i-1 for the i-th vertex
// (1-based), exactly as Section 3.2 accounts it.
func (l *Label) BitLen() int { return l.index }

// Labeler labels an execution of an arbitrary DAG on the fly.
type Labeler struct {
	labels []*Label
	byID   map[graph.VertexID]*Label
}

// New returns an empty labeler.
func New() *Labeler {
	return &Labeler{byID: make(map[graph.VertexID]*Label)}
}

// Insert labels the next vertex of the execution, given its
// predecessors among the already-inserted vertices (Definition 3's
// g + (v, C) update).
func (t *Labeler) Insert(v graph.VertexID, preds []graph.VertexID) (*Label, error) {
	if _, dup := t.byID[v]; dup {
		return nil, fmt.Errorf("tcldyn: vertex %d inserted twice", v)
	}
	i := len(t.labels)
	words := (i + 63) / 64
	l := &Label{index: i, bits: make([]uint64, words)}
	for _, p := range preds {
		pl, ok := t.byID[p]
		if !ok {
			return nil, fmt.Errorf("tcldyn: predecessor %d not inserted", p)
		}
		// Ancestors of v include p and p's ancestors: φ(v)[j] = 1 iff
		// v_j ; v.
		for w := range pl.bits {
			l.bits[w] |= pl.bits[w]
		}
		l.bits[pl.index/64] |= 1 << (uint(pl.index) % 64)
	}
	t.labels = append(t.labels, l)
	t.byID[v] = l
	return l, nil
}

// Label returns the label of an inserted vertex.
func (t *Labeler) Label(v graph.VertexID) (*Label, bool) {
	l, ok := t.byID[v]
	return l, ok
}

// Count returns the number of inserted vertices.
func (t *Labeler) Count() int { return len(t.labels) }

// TotalBits returns Σ (i-1) = n(n-1)/2: the total label store.
func (t *Labeler) TotalBits() int {
	n := len(t.labels)
	return n * (n - 1) / 2
}

// MaxBits returns the longest label: n-1 bits after n insertions,
// matching the tight bound of Section 3.2.
func (t *Labeler) MaxBits() int {
	if len(t.labels) == 0 {
		return 0
	}
	return len(t.labels) - 1
}

// Pi decides reachability from two labels alone (Section 3.2): with
// i = |φ(v)|+1 and i' = |φ(v')|+1, v reaches v' iff i = i', or i < i'
// and bit i of φ(v') is set.
func Pi(a, b *Label) bool {
	if a.index == b.index {
		return true // same vertex (reflexive reachability)
	}
	if a.index > b.index {
		return false
	}
	return b.bits[a.index/64]&(1<<(uint(a.index)%64)) != 0
}

// Reach is Pi over the labeler's own records.
func (t *Labeler) Reach(v, w graph.VertexID) (bool, error) {
	a, ok := t.byID[v]
	if !ok {
		return false, fmt.Errorf("tcldyn: vertex %d not inserted", v)
	}
	b, ok := t.byID[w]
	if !ok {
		return false, fmt.Errorf("tcldyn: vertex %d not inserted", w)
	}
	return Pi(a, b), nil
}
