// Package store provides a provenance label store: a compact map from
// run vertices to their encoded reachability labels, answering
// queries directly from the stored bytes. This is the artifact a
// provenance-aware workflow system would persist next to its execution
// log — labels are written once (they are immutable, Section 2.4) and
// every "did A contribute to B?" question is answered by decoding two
// byte strings, without the execution graph.
package store

import (
	"fmt"
	"sort"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// Store holds encoded labels for one run.
type Store struct {
	codec *label.Codec
	skel  *skeleton.Scheme
	data  map[graph.VertexID][]byte
	bits  int
}

// New creates an empty store for runs of the grammar, answering
// queries with the given skeleton scheme.
func New(g *spec.Grammar, kind skeleton.Kind) *Store {
	return &Store{
		codec: label.NewCodec(g),
		skel:  skeleton.New(kind, g),
		data:  make(map[graph.VertexID][]byte),
	}
}

// Put encodes and stores the label of v. Labels are immutable: a
// second Put for the same vertex is rejected.
func (s *Store) Put(v graph.VertexID, l label.Label) error {
	if _, dup := s.data[v]; dup {
		return fmt.Errorf("store: vertex %d already stored", v)
	}
	enc := s.codec.Encode(l)
	s.data[v] = enc
	s.bits += len(enc) * 8
	return nil
}

// Get decodes the stored label of v.
func (s *Store) Get(v graph.VertexID) (label.Label, bool, error) {
	enc, ok := s.data[v]
	if !ok {
		return label.Label{}, false, nil
	}
	l, err := s.codec.Decode(enc)
	if err != nil {
		return label.Label{}, true, fmt.Errorf("store: vertex %d: %w", v, err)
	}
	return l, true, nil
}

// Reach answers v ;* w from the stored bytes alone.
func (s *Store) Reach(v, w graph.VertexID) (bool, error) {
	lv, ok, err := s.Get(v)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("store: vertex %d not stored", v)
	}
	lw, ok, err := s.Get(w)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("store: vertex %d not stored", w)
	}
	return core.Pi(s.skel, lv, lw), nil
}

// Lineage returns the stored vertices that reach v (its provenance
// closure), in ascending order. O(stored) decodes.
func (s *Store) Lineage(v graph.VertexID) ([]graph.VertexID, error) {
	lv, ok, err := s.Get(v)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: vertex %d not stored", v)
	}
	var out []graph.VertexID
	for w := range s.data {
		lw, _, err := s.Get(w)
		if err != nil {
			return nil, err
		}
		if core.Pi(s.skel, lw, lv) {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Count returns the number of stored labels.
func (s *Store) Count() int { return len(s.data) }

// Bits returns the total stored label bytes, in bits.
func (s *Store) Bits() int { return s.bits }
